"""Mesh metrics: connectivity, hop optimality, per-link accounting."""

import math

import pytest

from repro import scenarios
from repro.analysis.mesh import (
    aggregate_mesh_counters,
    connectivity_graph,
    mesh_hop_histogram,
    path_stretch,
    per_link_airtime,
    per_link_load,
    shortest_hop_count,
)
from repro.core.topology import Position
from repro.phy.standards import DOT11B
from repro.routing import StaticRouting
from repro.traffic.generators import encode_packet
from repro.traffic.sink import TrafficSink


class TestConnectivityGraph:
    def test_chain_adjacency_is_nearest_neighbor_only(self):
        positions = scenarios.chain_topology(5, 30.0)
        graph = connectivity_graph(positions, range_m=40.0)
        assert graph[0] == [1]
        assert graph[2] == [1, 3]
        assert graph[4] == [3]

    def test_grid_range_between_pitch_and_diagonal_gives_4_neighbors(self):
        positions = scenarios.grid_topology(3, 3, 30.0)
        graph = connectivity_graph(positions, range_m=40.0)
        assert sorted(graph[4]) == [1, 3, 5, 7]    # center: N/S/E/W only
        assert sorted(graph[0]) == [1, 3]          # corner

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            connectivity_graph([Position(0, 0, 0)], range_m=0.0)


class TestShortestHops:
    def test_chain_distance(self):
        graph = connectivity_graph(scenarios.chain_topology(6, 30.0), 40.0)
        assert shortest_hop_count(graph, 0, 5) == 5
        assert shortest_hop_count(graph, 0, 0) == 0

    def test_disconnected_is_none(self):
        positions = [Position(0, 0, 0), Position(1000.0, 0, 0)]
        graph = connectivity_graph(positions, 40.0)
        assert shortest_hop_count(graph, 0, 1) is None

    def test_grid_manhattan_distance(self):
        graph = connectivity_graph(scenarios.grid_topology(3, 3, 30.0), 40.0)
        assert shortest_hop_count(graph, 0, 8) == 4

    def test_path_stretch(self):
        assert path_stretch(4.0, 4) == 1.0
        assert path_stretch(6.0, 4) == 1.5
        with pytest.raises(ValueError):
            path_stretch(3.0, 0)


class TestFleetAccounting:
    @pytest.fixture
    def ran_chain(self, sim):
        mesh = scenarios.build_mesh_network(
            sim, scenarios.chain_topology(4, 30.0), StaticRouting,
            range_m=40.0)
        scenarios.install_chain_routes(mesh.nodes)
        sink = TrafficSink(sim)
        mesh.nodes[3].on_receive(sink)
        for sequence in range(5):
            mesh.nodes[0].send(mesh.nodes[3].address,
                               encode_packet(1, sequence, sim.now, 100))
        sim.run(until=1.0)
        assert sink.total_received == 5
        return mesh

    def test_aggregate_counters_sum_the_fleet(self, ran_chain):
        total = aggregate_mesh_counters(ran_chain.nodes)
        assert total.get("originated") == 5
        assert total.get("forwarded") == 10     # two relays x five packets
        assert total.get("delivered") == 5

    def test_per_link_load_follows_the_chain(self, ran_chain):
        load = per_link_load(ran_chain.nodes)
        forward_links = {key for key in load if key[0].startswith("mesh")}
        assert len(forward_links) == 3          # 0->1, 1->2, 2->3
        for counter in load.values():
            assert counter.get("frames") == 5
            assert counter.get("failures") == 0

    def test_per_link_airtime_positive_and_ordered(self, ran_chain):
        mode = DOT11B.mode_for_rate(DOT11B.basic_rate_bps)
        airtime = per_link_airtime(ran_chain.nodes, DOT11B, mode)
        assert len(airtime) == 3
        for seconds in airtime.values():
            assert seconds > 0
        # Equal loads => equal airtime estimates per link.
        assert len({round(s, 12) for s in airtime.values()}) == 1

    def test_hop_histogram_counts_deliveries(self, ran_chain):
        assert mesh_hop_histogram(ran_chain.nodes) == {3: 5}

    def test_stretch_of_the_chain_is_optimal(self, ran_chain):
        graph = connectivity_graph(
            [node.station.position for node in ran_chain.nodes], 40.0)
        shortest = shortest_hop_count(graph, 0, 3)
        actual = ran_chain.nodes[3].hop_counts.mean
        assert math.isclose(path_stretch(actual, shortest), 1.0)
