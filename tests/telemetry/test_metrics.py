"""Metrics primitives: registry keys, handle memoization, the disabled
null path, histograms, and the kernel-driven periodic sampler."""

import pytest

from repro.core.engine import Simulator
from repro.core.errors import ConfigurationError
from repro.telemetry.metrics import (NULL_METRIC, MetricsRegistry,
                                     PeriodicSampler, format_key, make_key)


class TestKeys:
    def test_labels_sort_and_stringify(self):
        assert make_key("mac", "drops", {"shard": 2, "ap": "a"}) \
            == ("mac", "drops", (("ap", "a"), ("shard", "2")))

    def test_format_key(self):
        assert format_key(make_key("mac", "drops", {})) == "mac/drops"
        assert format_key(make_key("mac", "drops", {"shard": 2})) \
            == "mac/drops{shard=2}"


class TestRegistry:
    def test_handles_are_memoized(self):
        registry = MetricsRegistry()
        counter = registry.counter("mac", "frames", ap="a")
        assert registry.counter("mac", "frames", ap="a") is counter
        assert registry.counter("mac", "frames", ap="b") is not counter

    def test_creation_order_is_remembered(self):
        registry = MetricsRegistry()
        registry.gauge("kernel", "heap")
        registry.counter("mac", "frames")
        registry.gauge("kernel", "heap")  # re-fetch must not reorder
        assert [m.key[1] for m in registry.metrics()] == ["heap", "frames"]

    def test_disabled_registry_hands_out_shared_null(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("mac", "frames")
        assert counter is NULL_METRIC
        assert registry.gauge("kernel", "heap") is NULL_METRIC
        assert registry.histogram("medium", "fanout") is NULL_METRIC
        counter.inc()
        counter.inc(10)
        assert counter.value == 0
        assert len(registry) == 0

    def test_wall_flag_splits_streams(self):
        registry = MetricsRegistry()
        registry.counter("parallel", "rounds")
        registry.gauge("parallel", "busy", wall=True)
        assert [m.key[1] for m in registry.metrics(wall=False)] == ["rounds"]
        assert [m.key[1] for m in registry.metrics(wall=True)] == ["busy"]


class TestHistogram:
    def test_bucketing_is_inclusive_upper_bound(self):
        registry = MetricsRegistry()
        hist = registry.histogram("medium", "fanout", bounds=(1.0, 5.0))
        for value in (0.5, 1.0, 3.0, 5.0, 7.0):
            hist.observe(value)
        assert hist.counts == [2, 2, 1]  # <=1, <=5, +inf
        assert hist.total == 5
        assert hist.mean == pytest.approx(3.3)

    def test_unsorted_bounds_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("medium", "fanout", bounds=(5.0, 1.0))


class TestPeriodicSampler:
    def test_rejects_nonpositive_interval(self):
        sim = Simulator(seed=1)
        with pytest.raises(ConfigurationError):
            PeriodicSampler(sim, MetricsRegistry(), interval=0.0)

    def test_samples_at_sim_time_in_registration_order(self):
        sim = Simulator(seed=1)
        registry = MetricsRegistry()
        sampler = PeriodicSampler(sim, registry, interval=0.25)
        sampler.add("kernel", "heap", lambda: float(sim.heap_depth))
        sampler.add("kernel", "now", lambda: sim._now)
        sampler.install()
        assert sampler.installed
        sim.run(until=1.0)
        key = make_key("kernel", "now", {})
        times = [t for t, _v in registry.series(key)]
        assert times == [0.25, 0.5, 0.75, 1.0]
        # Registration order is the series creation order.
        assert [k[1] for k in registry.series_keys()] == ["heap", "now"]

    def test_disabled_registry_never_arms(self):
        sim = Simulator(seed=1)
        sampler = PeriodicSampler(sim, MetricsRegistry(enabled=False),
                                  interval=0.25)
        sampler.add("kernel", "now", lambda: sim._now)
        sampler.install()
        assert not sampler.installed
        before = sim._scheduled
        sim.run(until=1.0)
        assert sim._scheduled == before  # zero events injected

    def test_sample_now_skips_duplicate_at_boundary(self):
        sim = Simulator(seed=1)
        registry = MetricsRegistry()
        sampler = PeriodicSampler(sim, registry, interval=0.5)
        sampler.add("kernel", "now", lambda: sim._now)
        sampler.install()
        sim.run(until=1.0)  # horizon lands exactly on a sampling edge
        sampler.sample_now()
        key = make_key("kernel", "now", {})
        assert [t for t, _v in registry.series(key)] == [0.5, 1.0]

    def test_sample_now_takes_final_offgrid_edge(self):
        sim = Simulator(seed=1)
        registry = MetricsRegistry()
        sampler = PeriodicSampler(sim, registry, interval=0.4)
        sampler.add("kernel", "now", lambda: sim._now)
        sampler.install()
        sim.run(until=1.0)
        sampler.sample_now()
        key = make_key("kernel", "now", {})
        assert [t for t, _v in registry.series(key)] == [0.4, 0.8, 1.0]

    def test_series_capacity_bounds_retention(self):
        sim = Simulator(seed=1)
        registry = MetricsRegistry()
        registry.set_series_capacity(3)
        sampler = PeriodicSampler(sim, registry, interval=0.1)
        sampler.add("kernel", "now", lambda: sim._now)
        sampler.install()
        sim.run(until=1.0)
        key = make_key("kernel", "now", {})
        assert len(registry.series(key)) == 3
        assert registry.samples_dropped == 7
