"""The medium's energy-only transmission path (adversary substrate).

Covers the contract the adversary subsystem builds on: an energy-only
arrival drives CCA and interference in both exact and fast mode, no
radio ever locks onto it, it composes with the compiled fan-out plans —
and (the PR-5 satellite regression) detune/retune while an energy-only
arrival is in flight leaves the arrival accounting and the plan caches
consistent.
"""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import SimulationError
from repro.adversary.emitters import EnergySource
from repro.phy.channel import ENERGY_ONLY, Medium
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B, DOT11G
from repro.phy.transceiver import PhyListener, Radio, RadioState


class Collector(PhyListener):
    def __init__(self):
        self.received = []
        self.busy_edges = 0
        self.idle_edges = 0

    def phy_rx_end(self, payload, success, snr_db, mode):
        self.received.append((payload, success))

    def phy_cca_busy(self):
        self.busy_edges += 1

    def phy_cca_idle(self):
        self.idle_edges += 1


def build(sim, exact=True, rx_count=1, channel_id=1):
    medium = Medium(sim, FixedLoss(50.0), exact=exact)
    tx = Radio("tx", medium, DOT11B, Position(0, 0, 0),
               channel_id=channel_id)
    receivers = []
    for index in range(rx_count):
        radio = Radio(f"rx{index}", medium, DOT11B,
                      Position(1.0 + index, 0, 0), channel_id=channel_id)
        radio.listener = Collector()
        receivers.append(radio)
    return medium, tx, receivers


class TestEnergyOnlyArrivals:
    @pytest.mark.parametrize("exact", [True, False])
    def test_energy_drives_cca_but_never_locks(self, sim, exact):
        sim = Simulator(seed=2, profile="exact" if exact else "fast")
        _medium, tx, (rx,) = build(sim, exact=exact)
        tx.transmit_energy(1e-3)
        sim.run(until=0.01)
        listener = rx.listener
        assert listener.busy_edges == 1 and listener.idle_edges == 1
        assert listener.received == []  # no lock, no upcall, ever
        assert not rx._arrivals and rx.state is RadioState.IDLE

    def test_energy_mode_is_not_decodable_anywhere(self):
        for standard in (DOT11B, DOT11G):
            assert ENERGY_ONLY.name not in {m.name for m in standard.modes}

    def test_weak_energy_is_interference_not_cca(self, sim):
        medium, tx, (rx,) = build(sim)
        # -60 dBm at 50 dB loss -> -110... use explicit watts: below the
        # CCA threshold but above the reception floor.
        from repro.core.units import dbm_to_watts
        medium.transmit_energy(tx, 1e-3, dbm_to_watts(-90.0 + 50.0))
        sim.run(until=0.0001)
        assert rx._arrivals and not rx.cca_busy()
        sim.run(until=0.01)
        assert not rx._arrivals

    def test_energy_corrupts_overlapping_reception(self):
        # A locked data frame whose tail a strong energy burst stomps
        # must fail the error model (the jamming mechanism end-to-end).
        def run(jam: bool):
            sim = Simulator(seed=5)
            medium = Medium(sim, FixedLoss(50.0))
            sender = Radio("s", medium, DOT11B, Position(0, 0, 0))
            victim = Radio("v", medium, DOT11B, Position(1, 0, 0))
            victim.listener = Collector()
            # 25 dBm -> -25 dBm at the victim: 5 dB above the locked
            # frame, below the 10 dB capture threshold, so it stays
            # pure interference instead of stealing the lock.
            jammer = EnergySource("j", medium, Position(2, 0, 0),
                                  power_dbm=25.0)
            mode = DOT11B.modes[0]
            airtime = DOT11B.frame_airtime(8000, mode)
            sender.transmit("frame", 8000, mode)
            if jam:
                sim.schedule_at(airtime * 0.25,
                                lambda: jammer.emit(airtime))
            sim.run(until=0.1)
            return victim.listener.received

        assert run(jam=False) == [("frame", True)]
        assert run(jam=True) == [("frame", False)]

    def test_transmit_energy_is_half_duplex(self, sim):
        _medium, tx, _ = build(sim)
        tx.transmit_energy(1e-3)
        with pytest.raises(SimulationError):
            tx.transmit_energy(1e-3)
        with pytest.raises(SimulationError):
            tx.transmit("frame", 800, DOT11B.modes[0])

    @pytest.mark.parametrize("exact", [True, False])
    def test_fast_accumulator_and_exact_table_agree_on_energy(self, exact):
        sim = Simulator(seed=3)
        medium, tx, (rx,) = build(sim, exact=exact)
        other = EnergySource("e", medium, Position(0, 1, 0), power_dbm=20.0)
        medium.transmit_energy(tx, 2e-3, tx.tx_power_watts)
        sim.schedule_at(0.5e-3, lambda: other.emit(0.5e-3))
        sim.run(until=0.01)
        assert not rx._arrivals
        if not exact:
            assert rx._incident_watts == 0.0  # exact-zero snap


class TestEnergySourcePlans:
    def test_plan_reuse_and_surgical_retune(self, sim):
        medium, _tx, receivers = build(sim, rx_count=2)
        ch6 = Radio("ch6", medium, DOT11B, Position(0, 5, 0), channel_id=6)
        ch6.listener = Collector()
        source = EnergySource("emitter", medium, Position(0, 2, 0),
                              power_dbm=20.0)
        source.emit(1e-4)
        misses_after_first = medium.plan_misses
        source.emit(1e-4)
        assert medium.plan_misses == misses_after_first  # plan reused
        assert medium.plan_hits >= 1
        other_radio_plans = dict(medium._plans)
        source.channel_id = 6
        # Surgical: only the emitter's own plan dropped, not the world's.
        assert source not in medium._plans
        for sender, plan in other_radio_plans.items():
            if sender is not source:
                assert medium._plans.get(sender) is plan
        source.emit(1e-4)
        sim.run(until=0.01)
        assert ch6.listener.busy_edges == 1
        # Channel-1 victims saw exactly the first two bursts.
        assert receivers[0].listener.busy_edges == 1  # merged overlap

    def test_moving_source_invalidates_links(self, sim):
        medium, _tx, (rx,) = build(sim)
        source = EnergySource("emitter", medium, Position(0, 2, 0))
        source.emit(1e-4)
        assert (source, rx) in medium.links._entries
        source.position = Position(0, 3, 0)
        assert (source, rx) not in medium.links._entries
        assert source not in medium._plans


class TestRetuneMidBurstRegression:
    """PR-5 satellite: detune/retune with an energy arrival in flight.

    The contract: in-flight arrivals are physical (energy already
    launched keeps arriving and its end edge still clears the table —
    a retuned radio never ends up with a stuck CCA), while *new* bursts
    respect the retune immediately because every retune path drops the
    compiled plans.
    """

    def test_detune_away_mid_burst_then_recover(self, sim):
        medium, tx, (rx,) = build(sim)
        tx.transmit_energy(2e-3)
        sim.run(until=1e-3)
        assert rx._arrivals and rx.cca_busy()
        rx.channel_id = 6  # detune mid-burst
        # Historical semantics: the in-flight energy keeps arriving...
        assert rx._arrivals
        sim.run(until=5e-3)
        # ...but its end edge fires regardless of the retune, so the
        # table drains and CCA recovers (no stuck-busy radio).
        assert not rx._arrivals and not rx.cca_busy()
        assert rx.listener.idle_edges == rx.listener.busy_edges == 1
        # New bursts on the old channel no longer reach it: the retune
        # dropped the compiled plan and the channel member lists.
        tx.transmit_energy(1e-3)
        sim.run(until=8e-3)
        assert not rx._arrivals and rx.listener.busy_edges == 1

    def test_retune_back_mid_burst_catches_next_burst(self, sim):
        medium, tx, (rx,) = build(sim)
        rx.channel_id = 6
        tx.transmit_energy(2e-3)  # fans out to nobody
        sim.run(until=1e-3)
        assert not rx._arrivals
        rx.channel_id = 1  # retune back while the burst is in flight
        sim.run(until=5e-3)
        # Missed the begins edge: physically it heard only silence.
        assert not rx._arrivals and rx.listener.busy_edges == 0
        tx.transmit_energy(1e-3)
        sim.run(until=8e-3)
        assert rx.listener.busy_edges == 1 and rx.listener.idle_edges == 1

    @pytest.mark.parametrize("exact", [True, False])
    def test_fast_mode_accumulator_survives_detune(self, exact):
        sim = Simulator(seed=11, profile="exact" if exact else "fast")
        medium, tx, (rx,) = build(sim, exact=exact)
        tx.transmit_energy(2e-3)
        sim.run(until=1e-3)
        rx.channel_id = 6
        rx.channel_id = 1  # bounce: two plan flushes with energy in flight
        sim.run(until=5e-3)
        assert not rx._arrivals
        if not exact:
            assert rx._incident_watts == 0.0

    def test_sender_radio_retune_mid_burst_recompiles_plan(self, sim):
        medium, tx, receivers = build(sim, rx_count=2)
        ch6 = Radio("ch6", medium, DOT11B, Position(0, 5, 0), channel_id=6)
        ch6.listener = Collector()
        tx.transmit_energy(2e-3)
        misses = medium.plan_misses
        sim.run(until=1e-3)
        tx.channel_id = 6  # retune the *sender* while its burst flies
        sim.run(until=2.5e-3)  # let the (half-duplex) first burst finish
        tx.transmit_energy(1e-3)
        assert medium.plan_misses == misses + 1  # recompiled, not reused
        sim.run(until=0.01)
        assert ch6.listener.busy_edges == 1
        for radio in receivers:
            # Exactly one busy period from the first burst; the second
            # landed on channel 6.
            assert radio.listener.busy_edges == 1
            assert radio.listener.idle_edges == 1
            assert not radio._arrivals
