"""Shared harness plumbing: ``--only`` globs and the fork/timeout pool.

Extracted from ``tools/run_bench.py`` so the bench harness and the
campaign executor run on one copy of the tricky machinery: fork-based
per-task isolation with wall-clock timeouts, and an N-way process pool
whose output order is pinned to input order regardless of completion
order.  ``run_bench`` keeps its public functions as thin adapters over
these, byte-stable CLI contract included.

Tasks are zero-argument callables.  Workers are started with the
``fork`` context on purpose: the child shares the parent's loaded
modules — monkeypatches, registries and closures included — so a task
needs no pickling and behaves exactly as it would in-process.
"""

from __future__ import annotations

import fnmatch
import multiprocessing
import multiprocessing.connection
import time
from typing import Any, Callable, Dict, Iterable, Iterator, List, \
    Optional, Sequence, Tuple

__all__ = ["select_names", "call_guarded", "iter_pooled"]

Task = Callable[[], Any]
#: ``(status, payload)``: ("ok", result) | ("error", message) |
#: ("timeout", None).
Outcome = Tuple[str, Any]


def select_names(patterns: Optional[Sequence[str]],
                 available: Iterable[str],
                 what: str = "scenario") -> List[str]:
    """Resolve ``--only`` patterns against an available-name set.

    Each entry is an exact name or a glob; order follows the pattern
    list, duplicates collapse, and a pattern matching nothing raises
    ``ValueError`` (a typo must not silently run zero items and report
    success).  With no patterns, every available name is returned
    sorted.
    """
    names_all = sorted(available)
    if not patterns:
        return names_all
    names: List[str] = []
    unmatched = []
    for pattern in patterns:
        matched = sorted(fnmatch.filter(names_all, pattern))
        if not matched:
            unmatched.append(pattern)
        names.extend(name for name in matched if name not in names)
    if unmatched:
        raise ValueError(f"unknown {what}(s)/pattern(s): {unmatched}; "
                         f"available: {names_all}")
    return names


def _child_entry(conn, task: Task) -> None:
    """Subprocess body: run the task, report, never hang the parent."""
    try:
        conn.send(("ok", task()))
    except BaseException as exc:  # report, don't hang the parent
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    finally:
        conn.close()


def call_guarded(task: Task, timeout: float = 0.0) -> Outcome:
    """Run ``task`` with an optional wall-clock cap.

    With ``timeout`` <= 0, runs in-process exactly as a plain call
    (exceptions propagate to the caller).  With a timeout, the task
    runs in a forked child and one that livelocks or blows its budget
    is killed — yielding a clean ``("timeout", None)`` instead of
    hanging the whole run.
    """
    if timeout <= 0:
        return "ok", task()
    ctx = multiprocessing.get_context("fork")
    parent_conn, child_conn = ctx.Pipe(duplex=False)
    proc = ctx.Process(target=_child_entry, args=(child_conn, task))
    proc.start()
    child_conn.close()
    try:
        if parent_conn.poll(timeout):
            status, payload = parent_conn.recv()
            proc.join()
            return status, payload
    except EOFError:  # child died without reporting (segfault, kill)
        proc.join()
        return "error", f"worker exited with code {proc.exitcode}"
    finally:
        parent_conn.close()
    proc.terminate()
    proc.join()
    return "timeout", None


def iter_pooled(tasks: Sequence[Task], *, timeout: float = 0.0,
                jobs: int = 1) -> Iterator[Tuple[int, str, Any]]:
    """Yield ``(index, status, payload)`` for every task, **in input
    order** regardless of completion order.

    ``jobs <= 1`` preserves the serial path (including the in-process
    no-timeout mode of :func:`call_guarded`).  With ``jobs > 1`` every
    task runs in its own forked child — the same isolation ``timeout``
    already buys — with at most ``jobs`` children alive at once;
    finished results are buffered until their turn so the output rows
    (and failure ordering) are pinned to the input list.
    """
    if jobs <= 1:
        for index, task in enumerate(tasks):
            status, payload = call_guarded(task, timeout)
            yield index, status, payload
        return
    ctx = multiprocessing.get_context("fork")
    # Everything is keyed by input *index*, never by any task-derived
    # name: the same work item may legitimately appear more than once
    # in the input list, and name-keyed buffering would collapse (and
    # lose) those rows.
    queue = list(enumerate(tasks))
    running: Dict[Any, Tuple[int, Any, Optional[float]]] = {}
    results: Dict[int, Outcome] = {}
    emitted = 0
    total = len(tasks)
    while emitted < total:
        while queue and len(running) < jobs:
            index, task = queue.pop(0)
            parent_conn, child_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(target=_child_entry,
                               args=(child_conn, task))
            proc.start()
            child_conn.close()
            deadline = time.monotonic() + timeout if timeout > 0 else None
            running[parent_conn] = (index, proc, deadline)
        if running:
            if timeout > 0:
                horizon = min(deadline for _, _, deadline
                              in running.values())
                wait_s = max(0.0, horizon - time.monotonic())
                ready = multiprocessing.connection.wait(list(running),
                                                        timeout=wait_s)
            else:
                ready = multiprocessing.connection.wait(list(running))
            for conn in ready:
                index, proc, _deadline = running.pop(conn)
                try:
                    status, payload = conn.recv()
                    proc.join()
                except EOFError:
                    proc.join()
                    status = "error"
                    payload = f"worker exited with code {proc.exitcode}"
                conn.close()
                results[index] = (status, payload)
            if not ready:  # some child blew its deadline
                now = time.monotonic()
                for conn in [c for c, (_, _, d) in running.items()
                             if d is not None and d <= now]:
                    index, proc, _deadline = running.pop(conn)
                    proc.terminate()
                    proc.join()
                    conn.close()
                    results[index] = ("timeout", None)
        while emitted < total and emitted in results:
            status, payload = results.pop(emitted)
            yield emitted, status, payload
            emitted += 1
