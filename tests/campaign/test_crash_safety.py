"""Crash-safety gate: kill a campaign mid-grid, resume, compare bytes.

The hard contract from the manifest layer: a campaign killed at any
instant resumes exactly where it stopped, and the resumed store is
byte-identical to an uninterrupted run's.  The kill is simulated with
``REPRO_CAMPAIGN_CRASH_AFTER=N`` — the executor ``os._exit(23)``s right
after the Nth manifest record, an honest SIGKILL stand-in with no
flaky signal timing.
"""

import pathlib
import subprocess
import sys

SPEC_TOML = """\
[campaign]
name = "crashtest"

[scenario]
builder = "infrastructure_bss"
horizon = 0.05
seed = 3

[scenario.params]
stations = 2

[traffic]
kind = "saturate"
payload_bytes = 400
depth = 2

[sweep]
"scenario.params.rts_threshold_bytes" = [2347, 256]

[seeds]
count = 2
"""


def run_cli(repo_root, spec, out_dir, *extra, crash_after=None):
    env = {"PYTHONPATH": str(repo_root / "src"), "PATH": "/usr/bin:/bin"}
    if crash_after is not None:
        env["REPRO_CAMPAIGN_CRASH_AFTER"] = str(crash_after)
    return subprocess.run(
        [sys.executable, str(repo_root / "tools" / "run_campaign.py"),
         str(spec), "--out-dir", str(out_dir), *extra],
        capture_output=True, text=True, env=env, cwd=repo_root)


def test_kill_mid_grid_then_resume_is_byte_identical(tmp_path, repo_root):
    spec = tmp_path / "crashtest.toml"
    spec.write_text(SPEC_TOML)
    interrupted = tmp_path / "interrupted"
    oneshot = tmp_path / "oneshot"

    # 1. Die the hard way after 2 of 4 jobs hit the manifest.
    killed = run_cli(repo_root, spec, interrupted, crash_after=2)
    assert killed.returncode == 23, killed.stderr
    manifest = interrupted / "crashtest.manifest.json"
    assert manifest.exists()
    assert manifest.read_text().count('"status": "done"') == 2
    # The crash predates the store projection: no result files yet.
    assert not (interrupted / "crashtest.results.jsonl").exists()

    # 2. Resume: only the missing half runs, the store comes out whole.
    resumed = run_cli(repo_root, spec, interrupted)
    assert resumed.returncode == 0, resumed.stderr
    assert "2 ran, 2 reused" in resumed.stdout

    # 3. Byte-identity against a run that was never interrupted.
    clean = run_cli(repo_root, spec, oneshot)
    assert clean.returncode == 0, clean.stderr
    for suffix in ("results.jsonl", "results.csv"):
        assert (interrupted / f"crashtest.{suffix}").read_bytes() \
            == (oneshot / f"crashtest.{suffix}").read_bytes()


def test_two_cli_runs_fanned_out_are_byte_identical(tmp_path, repo_root):
    spec = tmp_path / "crashtest.toml"
    spec.write_text(SPEC_TOML)
    stores = []
    for sub in ("a", "b"):
        out = tmp_path / sub
        proc = run_cli(repo_root, spec, out, "--jobs", "2",
                       "--timeout", "120")
        assert proc.returncode == 0, proc.stderr
        stores.append((out / "crashtest.results.jsonl").read_bytes()
                      + (out / "crashtest.results.csv").read_bytes())
    assert stores[0] == stores[1]
