"""E12 — the driver-mechanism ablation: ARF vs AARF vs fixed rates vs
the SNR oracle.

Scenario 1 (mobile): a station walks away from its peer at 1.5 m/s
across the whole rate ladder; whatever the controller picks, the frames
either land or burn retries.  Good adaptation rides the ladder down.

Scenario 2 (static, good channel): the channel supports the top rate
forever.  Plain ARF keeps probing the (non-existent) next rate up and
pays a lost frame every threshold; AARF backs its probe rate off
exponentially.  The metric is retransmission overhead at equal goodput.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core import Position, Simulator
from repro.mac.addresses import allocate_address
from repro.mac.dcf import DcfMac, MacListener
from repro.mac.rate_adapt import Aarf, Arf, IdealSnr, fixed_rate_factory
from repro.mobility.models import LinearMobility
from repro.phy.channel import Medium
from repro.phy.propagation import LogDistance
from repro.phy.standards import DOT11A
from repro.phy.transceiver import Radio

CONTROLLERS = {
    "ARF": Arf,
    "AARF": Aarf,
    "ideal-SNR": lambda std: IdealSnr(std, margin_db=1.0),
    "fixed-54M": fixed_rate_factory("OFDM-54"),
    "fixed-24M": fixed_rate_factory("OFDM-24"),
    "fixed-6M": fixed_rate_factory("OFDM-6"),
}


class _Refill(MacListener):
    def __init__(self, mac, destination, payload):
        self.mac = mac
        self.destination = destination
        self.payload = payload
        self.delivered = 0
        self.dropped = 0

    def prime(self, depth=3):
        for _ in range(depth):
            self.mac.send(self.destination, self.payload)

    def mac_tx_complete(self, msdu, success):
        if success:
            self.delivered += 1
        else:
            self.dropped += 1
        self.mac.send(self.destination, self.payload)


class _Count(MacListener):
    def __init__(self):
        self.bytes = 0

    def mac_receive(self, source, destination, payload, meta):
        self.bytes += len(payload)


def run_walk(controller_name, horizon=25.0, speed=1.5, seed=21):
    sim = Simulator(seed=seed)
    medium = Medium(sim, LogDistance(DOT11A.band_hz, exponent=3.2))
    factory = CONTROLLERS[controller_name]
    rx_radio = Radio("rx", medium, DOT11A, Position(0, 0, 0))
    rx = DcfMac(sim, rx_radio, allocate_address(), rate_factory=factory)
    counter = _Count()
    rx.listener = counter
    tx_radio = Radio("tx", medium, DOT11A, Position(3, 0, 0))
    tx = DcfMac(sim, tx_radio, allocate_address(), rate_factory=factory)
    refill = _Refill(tx, rx.address, bytes(1000))
    tx.listener = refill
    refill.prime()
    LinearMobility(sim, tx_radio, Position(3 + speed * horizon, 0, 0),
                   speed_mps=speed, tick=0.2).start()
    sim.run(until=horizon)
    goodput = counter.bytes * 8 / horizon
    retries = tx.counters.get("ack_timeouts")
    return goodput, retries, refill.dropped


def run_static(controller_name, horizon=6.0, seed=22):
    sim = Simulator(seed=seed)
    medium = Medium(sim, LogDistance(DOT11A.band_hz, exponent=3.0))
    factory = CONTROLLERS[controller_name]
    rx_radio = Radio("rx", medium, DOT11A, Position(0, 0, 0))
    rx = DcfMac(sim, rx_radio, allocate_address(), rate_factory=factory)
    counter = _Count()
    rx.listener = counter
    # ~15 dB of SNR: OFDM-24 is stable, OFDM-36 is doomed — the channel
    # where ARF's periodic up-probes burn frames.
    tx_radio = Radio("tx", medium, DOT11A, Position(56.0, 0, 0))
    tx = DcfMac(sim, tx_radio, allocate_address(), rate_factory=factory)
    refill = _Refill(tx, rx.address, bytes(1000))
    tx.listener = refill
    refill.prime()
    sim.run(until=horizon)
    goodput = counter.bytes * 8 / horizon
    retries = tx.counters.get("ack_timeouts")
    sent = tx.counters.get("tx_data")
    return goodput, retries, sent


def run_mobile_comparison():
    names = ("ARF", "AARF", "ideal-SNR", "fixed-54M", "fixed-6M")
    return {name: run_walk(name) for name in names}


def run_static_comparison():
    # fixed-24M is the omniscient choice for this channel; fixed-54M
    # would deliver nothing (54M needs 23 dB, the link has ~15).
    return {name: run_static(name) for name in ("ARF", "AARF",
                                                "fixed-24M")}


def test_rate_adaptation_mobile(benchmark, record_result):
    results = benchmark.pedantic(run_mobile_comparison, rounds=1,
                                 iterations=1)
    rows = [[name, goodput / 1e6, retries, dropped]
            for name, (goodput, retries, dropped) in results.items()]
    text = render_table(
        "E12: rate adaptation on a 37m walk-away (802.11a, 1000B frames)",
        ["controller", "goodput Mb/s", "retry timeouts", "MSDUs lost"],
        rows, formats=[None, ".2f", None, None])
    record_result("E12_rate_adaptation", text)

    goodputs = {name: result[0] for name, result in results.items()}
    # Adaptive controllers beat both fixed extremes over the whole walk.
    for adaptive in ("ARF", "AARF", "ideal-SNR"):
        assert goodputs[adaptive] > goodputs["fixed-6M"]
        assert goodputs[adaptive] > goodputs["fixed-54M"]
    # The oracle bounds the driver algorithms from above (with margin).
    assert goodputs["ideal-SNR"] >= 0.8 * max(goodputs["ARF"],
                                              goodputs["AARF"])
    # Pinning 54M across the walk loses frames once SNR collapses.
    assert results["fixed-54M"][2] > results["AARF"][2]


def test_rate_adaptation_static_probe_overhead(benchmark, record_result):
    results = benchmark.pedantic(run_static_comparison, rounds=1,
                                 iterations=1)
    rows = [[name, goodput / 1e6, retries, retries / max(sent, 1)]
            for name, (goodput, retries, sent) in results.items()]
    text = render_table(
        "E12b: probe overhead on a stable mid-ladder channel (ablation)",
        ["controller", "goodput Mb/s", "retry timeouts",
         "timeouts/frame"],
        rows, formats=[None, ".2f", None, ".4f"])
    record_result("E12b_probe_overhead", text)

    arf_timeouts = results["ARF"][1]
    aarf_timeouts = results["AARF"][1]
    # AARF's adaptive threshold suppresses most doomed up-probes.
    assert aarf_timeouts < arf_timeouts
    # And converts that into goodput over ARF.
    assert results["AARF"][0] > results["ARF"][0]
    # Both stay within reach of the omniscient fixed choice.
    assert results["AARF"][0] > 0.8 * results["fixed-24M"][0]
