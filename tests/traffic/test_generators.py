"""Tests for traffic generators."""

import pytest

from repro.core.errors import ConfigurationError
from repro.traffic.generators import (
    BulkTransferSource,
    CbrSource,
    HEADER_SIZE,
    OnOffSource,
    PoissonSource,
    decode_packet,
    encode_packet,
)


class TestPacketCodec:
    def test_round_trip(self):
        packet = encode_packet(flow_id=7, sequence=42, timestamp=1.5,
                               size_bytes=100)
        assert len(packet) == 100
        assert decode_packet(packet) == (7, 42, 1.5)

    def test_foreign_bytes_rejected(self):
        assert decode_packet(b"not a measurement packet" * 2) is None
        assert decode_packet(b"") is None

    def test_minimum_size_enforced(self):
        with pytest.raises(ConfigurationError):
            encode_packet(1, 0, 0.0, HEADER_SIZE - 1)


class TestCbr:
    def test_packet_count_over_interval(self, sim):
        sent = []
        CbrSource(sim, lambda p: (sent.append(p), True)[1],
                  packet_bytes=100, interval=0.1, start=0.0)
        sim.run(until=1.05)
        assert len(sent) == 11  # t = 0.0, 0.1, ..., 1.0

    def test_at_rate_constructor(self, sim):
        source = CbrSource.at_rate(sim, lambda p: True, packet_bytes=125,
                                   rate_bps=10_000)
        # 125 bytes = 1000 bits at 10 kb/s -> one packet per 100 ms.
        assert source.interval == pytest.approx(0.1)

    def test_stop_after_limit(self, sim):
        source = CbrSource(sim, lambda p: True, packet_bytes=100,
                           interval=0.01, stop_after=5)
        sim.run(until=2.0)
        assert source.generated == 5

    def test_stop_halts(self, sim):
        source = CbrSource(sim, lambda p: True, packet_bytes=100,
                           interval=0.01)
        sim.run(until=0.1)
        source.stop()
        generated = source.generated
        sim.run(until=1.0)
        assert source.generated == generated

    def test_rejections_counted(self, sim):
        source = CbrSource(sim, lambda p: False, packet_bytes=100,
                           interval=0.1)
        sim.run(until=1.0)
        assert source.rejected == source.generated > 0

    def test_sequences_increase(self, sim):
        sequences = []
        CbrSource(sim, lambda p: (sequences.append(decode_packet(p)[1]),
                                  True)[1],
                  packet_bytes=100, interval=0.1)
        sim.run(until=1.0)
        assert sequences == sorted(sequences)
        assert len(set(sequences)) == len(sequences)

    def test_flow_ids_unique_across_sources(self, sim):
        a = CbrSource(sim, lambda p: True, 100, 0.1)
        b = CbrSource(sim, lambda p: True, 100, 0.1)
        assert a.flow_id != b.flow_id


class TestPoisson:
    def test_mean_rate_approximately_met(self, sim):
        source = PoissonSource(sim, lambda p: True, packet_bytes=100,
                               rate_pps=200.0)
        sim.run(until=10.0)
        assert source.generated == pytest.approx(2000, rel=0.15)

    def test_interarrivals_vary(self, sim):
        times = []
        PoissonSource(sim, lambda p: (times.append(sim.now), True)[1],
                      packet_bytes=100, rate_pps=100.0)
        sim.run(until=2.0)
        gaps = {round(b - a, 6) for a, b in zip(times, times[1:])}
        assert len(gaps) > 10  # not periodic


class TestOnOff:
    def test_bursty_structure(self, sim):
        times = []
        OnOffSource(sim, lambda p: (times.append(sim.now), True)[1],
                    packet_bytes=100, interval=0.01,
                    mean_on=0.2, mean_off=0.5)
        sim.run(until=20.0)
        assert len(times) > 10
        gaps = [b - a for a, b in zip(times, times[1:])]
        # There must exist long silences (OFF periods) between bursts.
        assert max(gaps) > 0.1
        assert min(gaps) == pytest.approx(0.01, abs=1e-6)

    def test_parameter_validation(self, sim):
        with pytest.raises(ConfigurationError):
            OnOffSource(sim, lambda p: True, 100, 0.01, mean_on=0.0,
                        mean_off=1.0)


class TestBulkTransfer:
    def test_transfer_completes_with_callback(self, sim):
        inflight = []

        def send(payload):
            # Deliver after 1 ms, then notify the source.
            sim.schedule(0.001, source.packet_done)
            inflight.append(payload)
            return True

        durations = []
        source = BulkTransferSource(sim, send, packet_bytes=1000,
                                    total_bytes=50_000, window=4,
                                    on_complete=durations.append)
        sim.run(until=10.0)
        assert source.done
        assert source.completed == 50
        assert len(durations) == 1
        assert source.throughput_bps() > 0

    def test_window_limits_outstanding(self, sim):
        outstanding = []

        def send(payload):
            outstanding.append(payload)
            return True

        BulkTransferSource(sim, send, packet_bytes=1000,
                           total_bytes=100_000, window=3)
        sim.run(until=0.1)
        assert len(outstanding) == 3  # nothing completed yet

    def test_throughput_nan_until_done(self, sim):
        import math
        source = BulkTransferSource(sim, lambda p: True, packet_bytes=1000,
                                    total_bytes=10_000)
        assert math.isnan(source.throughput_bps())

    def test_validation(self, sim):
        with pytest.raises(ConfigurationError):
            BulkTransferSource(sim, lambda p: True, packet_bytes=1000,
                               total_bytes=10)
