"""The perf harness's --only scenario filter (exact names and globs)."""

import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import run_bench  # noqa: E402
from perf.macro import MACROS  # noqa: E402


def select(argv):
    """Run main()'s argument handling far enough to capture the
    selected scenario names (the scenarios themselves are stubbed)."""
    captured = {}

    def fake_run_full(names, scale, repeats, out_dir, profile=False,
                      timeout=0.0, jobs=1, telemetry=False):
        captured["names"] = list(names)
        return 0

    original = run_bench.run_full
    run_bench.run_full = fake_run_full
    try:
        code = run_bench.main(argv)
    finally:
        run_bench.run_full = original
    return code, captured.get("names")


class TestOnlyFilter:
    def test_exact_name(self):
        code, names = select(["--only", "dcf_saturation"])
        assert code == 0 and names == ["dcf_saturation"]

    def test_glob_matches_both_profiles(self):
        code, names = select(["--only", "interference_field*"])
        assert code == 0
        assert names == ["interference_field", "interference_field_fast"]

    def test_patterns_accumulate_without_duplicates(self):
        code, names = select(["--only", "dcf_saturation*",
                              "--only", "dcf_saturation"])
        assert code == 0
        assert names == sorted(n for n in MACROS
                               if n.startswith("dcf_saturation"))

    def test_unmatched_pattern_is_an_error(self):
        with pytest.raises(SystemExit) as excinfo:
            select(["--only", "no_such_macro*"])
        assert excinfo.value.code == 2

    def test_no_filter_runs_everything(self):
        code, names = select([])
        assert code == 0 and names == sorted(MACROS)
