"""Metrics, airtime, mesh paths, adversarial impact, table rendering."""

from .adversary import (
    AttackImpact,
    aggregate_impact,
    duty_cycle_sweep,
    per_station_impact,
    render_duty_curve,
    render_impact_table,
    render_pdr_grid,
    spatial_pdr_grid,
)
from .airtime import AirtimeReport, SourceAirtime
from .mesh import (
    aggregate_mesh_counters,
    connectivity_graph,
    mesh_hop_histogram,
    path_stretch,
    per_link_airtime,
    per_link_load,
    shortest_hop_count,
)
from .metrics import (
    aggregate_throughput_bps,
    bianchi_saturation_throughput,
    bianchi_tau,
    delay_percentiles,
    jain_fairness,
)
from .resilience import (
    ReassociationProbe,
    pdr_timeline,
    recovery_time,
    route_repair_time,
    steady_state_pdr,
)
from .tables import format_value, render_series, render_table

__all__ = [
    "AirtimeReport",
    "AttackImpact",
    "ReassociationProbe",
    "SourceAirtime",
    "aggregate_impact",
    "aggregate_mesh_counters",
    "aggregate_throughput_bps",
    "bianchi_saturation_throughput",
    "bianchi_tau",
    "connectivity_graph",
    "delay_percentiles",
    "duty_cycle_sweep",
    "format_value",
    "jain_fairness",
    "mesh_hop_histogram",
    "path_stretch",
    "pdr_timeline",
    "per_link_airtime",
    "per_link_load",
    "per_station_impact",
    "recovery_time",
    "render_duty_curve",
    "render_impact_table",
    "render_pdr_grid",
    "render_series",
    "render_table",
    "route_repair_time",
    "shortest_hop_count",
    "spatial_pdr_grid",
    "steady_state_pdr",
]
