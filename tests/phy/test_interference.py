"""Unit tests for SINR tracking and the capture model."""

import math

import pytest

from repro.phy.interference import CaptureModel, SinrTracker


class TestSinrTracker:
    def test_noise_only(self):
        tracker = SinrTracker(signal_watts=1e-9, noise_watts=1e-12,
                              start=0.0)
        tracker.set_interference(0.0, 0.0)
        # SNR = 30 dB.
        assert tracker.sinr_db(1.0) == pytest.approx(30.0)

    def test_full_overlap_interference(self):
        tracker = SinrTracker(signal_watts=1e-9, noise_watts=1e-15,
                              start=0.0)
        tracker.set_interference(0.0, 1e-9)  # equal-power interferer
        assert tracker.sinr_db(1.0) == pytest.approx(0.0, abs=0.01)

    def test_partial_overlap_weighted_by_time(self):
        tracker = SinrTracker(signal_watts=1e-9, noise_watts=1e-15,
                              start=0.0)
        tracker.set_interference(0.0, 0.0)
        tracker.set_interference(0.9, 1e-9)   # last 10% overlapped
        # Mean interference = 0.1e-9 -> SINR = 10 dB.
        assert tracker.sinr_db(1.0) == pytest.approx(10.0, abs=0.05)

    def test_interference_that_ends_early(self):
        tracker = SinrTracker(signal_watts=1e-9, noise_watts=1e-15,
                              start=0.0)
        tracker.set_interference(0.0, 1e-9)
        tracker.set_interference(0.5, 0.0)    # interferer leaves halfway
        assert tracker.sinr_db(1.0) == pytest.approx(3.01, abs=0.05)

    def test_time_cannot_go_backwards(self):
        tracker = SinrTracker(1e-9, 1e-15, start=1.0)
        with pytest.raises(ValueError):
            tracker.set_interference(0.5, 0.0)
        with pytest.raises(ValueError):
            tracker.sinr_db(0.5)

    def test_zero_noise_zero_interference_is_infinite(self):
        tracker = SinrTracker(1e-9, 0.0, start=0.0)
        assert math.isinf(tracker.sinr_db(1.0))


class TestCaptureModel:
    def test_threshold_behaviour(self):
        model = CaptureModel(enabled=True, threshold_db=10.0)
        assert model.should_capture(locked_power_watts=1e-9,
                                    new_power_watts=1e-8 * 1.01)
        assert not model.should_capture(locked_power_watts=1e-9,
                                        new_power_watts=5e-9)

    def test_disabled_never_captures(self):
        model = CaptureModel(enabled=False)
        assert not model.should_capture(1e-12, 1.0)

    def test_zero_locked_power_always_captured(self):
        model = CaptureModel(enabled=True)
        assert model.should_capture(0.0, 1e-15)
