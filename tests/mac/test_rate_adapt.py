"""Tests for the rate-adaptation algorithms (the driver mechanism)."""

import pytest

from repro.core.errors import ConfigurationError
from repro.mac.rate_adapt import (
    Aarf,
    Arf,
    FixedRate,
    IdealSnr,
    fixed_rate_factory,
)
from repro.phy.standards import DOT11A, DOT11B


class TestFixedRate:
    def test_pins_the_mode(self):
        controller = FixedRate(DOT11B, DOT11B.modes[2])
        controller.on_failure()
        controller.on_failure()
        assert controller.current_mode() is DOT11B.modes[2]

    def test_foreign_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedRate(DOT11B, DOT11A.modes[0])

    def test_factory_lookup_by_name(self):
        build = fixed_rate_factory("CCK-11")
        assert build(DOT11B).current_mode().name == "CCK-11"
        with pytest.raises(ConfigurationError):
            fixed_rate_factory("no-such")(DOT11B)


class TestArf:
    def test_starts_at_top_by_default(self):
        controller = Arf(DOT11A)
        assert controller.current_mode() is DOT11A.modes[-1]

    def test_two_failures_step_down(self):
        controller = Arf(DOT11A, initial_index=4)
        controller.on_failure()
        assert controller.index == 4
        controller.on_failure()
        assert controller.index == 3

    def test_ten_successes_step_up(self):
        controller = Arf(DOT11A, initial_index=2, success_threshold=10)
        for _ in range(9):
            controller.on_success()
        assert controller.index == 2
        controller.on_success()
        assert controller.index == 3

    def test_failed_probe_drops_immediately(self):
        controller = Arf(DOT11A, initial_index=2, success_threshold=10)
        for _ in range(10):
            controller.on_success()
        assert controller.index == 3  # probing the new rate
        controller.on_failure()       # single probe failure
        assert controller.index == 2

    def test_success_after_probe_confirms_rate(self):
        controller = Arf(DOT11A, initial_index=2, success_threshold=10)
        for _ in range(10):
            controller.on_success()
        controller.on_success()  # probe succeeded
        controller.on_failure()  # one ordinary failure: no step yet
        assert controller.index == 3

    def test_floor_and_ceiling(self):
        controller = Arf(DOT11A, initial_index=0, failure_threshold=2)
        controller.on_failure()
        controller.on_failure()
        assert controller.index == 0
        top = Arf(DOT11A, initial_index=len(DOT11A.modes) - 1,
                  success_threshold=1)
        top.on_success()
        assert top.index == len(DOT11A.modes) - 1

    def test_timer_triggers_probe(self):
        controller = Arf(DOT11A, initial_index=0, success_threshold=100,
                         timer_threshold=5)
        for _ in range(5):
            controller.on_success()
        assert controller.index == 1

    def test_counters(self):
        controller = Arf(DOT11A, initial_index=2, success_threshold=2,
                         failure_threshold=2)
        controller.on_success()
        controller.on_success()
        assert controller.rate_increases == 1
        controller.on_failure()  # failed probe
        assert controller.rate_decreases == 1


class TestAarf:
    def test_failed_probe_doubles_threshold(self):
        controller = Aarf(DOT11A, initial_index=2, success_threshold=10)
        for _ in range(10):
            controller.on_success()
        controller.on_failure()  # failed probe
        assert controller.success_threshold == 20

    def test_threshold_capped(self):
        controller = Aarf(DOT11A, initial_index=2, success_threshold=10,
                          max_success_threshold=40)
        for _round in range(5):
            for _ in range(controller.success_threshold):
                controller.on_success()
            if controller.index == 3:
                controller.on_failure()
        assert controller.success_threshold <= 40

    def test_genuine_failure_resets_threshold(self):
        controller = Aarf(DOT11A, initial_index=3, success_threshold=10)
        # Push the threshold up via a failed probe.
        for _ in range(10):
            controller.on_success()
        controller.on_failure()
        assert controller.success_threshold == 20
        # Now two genuine failures (not probes) drop the rate and reset.
        controller.on_failure()
        controller.on_failure()
        assert controller.success_threshold == 10

    def test_aarf_loses_fewer_probes_than_arf_on_stable_channel(self):
        """On a channel where the next rate up always fails, AARF should
        attempt fewer doomed probes than ARF over the same horizon."""

        def run(controller_cls):
            controller = controller_cls(DOT11A, initial_index=3,
                                        success_threshold=10)
            probe_losses = 0
            for _ in range(2000):
                if controller.index > 3:
                    controller.on_failure()  # probe always fails
                    probe_losses += 1
                else:
                    controller.on_success()
            return probe_losses

        assert run(Aarf) < run(Arf)


class TestIdealSnr:
    def test_uses_measured_snr(self):
        controller = IdealSnr(DOT11A, margin_db=0.0)
        controller.on_snr_measurement(50.0)
        assert controller.current_mode() is DOT11A.modes[-1]
        controller.on_snr_measurement(9.0)
        assert controller.current_mode().name == "OFDM-12"

    def test_no_measurement_uses_base_rate(self):
        assert IdealSnr(DOT11A).current_mode() is DOT11A.modes[0]

    def test_margin_backs_off(self):
        eager = IdealSnr(DOT11A, margin_db=0.0)
        careful = IdealSnr(DOT11A, margin_db=3.0)
        for controller in (eager, careful):
            controller.on_snr_measurement(23.5)
        assert careful.current_mode().data_rate_bps <= \
            eager.current_mode().data_rate_bps
