"""Network Allocation Vector — virtual carrier sensing.

Every 802.11 frame's duration field announces how long the remainder of
its frame exchange will occupy the medium.  Stations that overhear a
frame *not addressed to them* set their NAV accordingly and treat the
medium as busy until it expires, even if the air goes quiet — this is
what protects an ACK (or a CTS-reserved data frame) from a station that
cannot hear the other end of the exchange.

The NAV only ever moves forward: a shorter overheard duration never
truncates a longer reservation already in place.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.engine import EventHandle, Simulator


class Nav:
    """Per-station NAV timer with an expiry callback."""

    __slots__ = ("_sim", "_until", "_on_expire", "_timer")

    def __init__(self, sim: Simulator,
                 on_expire: Optional[Callable[[], None]] = None):
        self._sim = sim
        self._until = 0.0
        self._on_expire = on_expire
        self._timer: Optional[EventHandle] = None

    @property
    def busy(self) -> bool:
        """True while the NAV reservation is in the future."""
        return self._sim.now < self._until

    @property
    def until(self) -> float:
        return self._until

    def set_until(self, time: float) -> None:
        """Extend the NAV to ``time`` (ignored if it would shorten it)."""
        if time <= self._until:
            return
        self._until = time
        if self._timer is not None:
            self._timer.cancel()
        if self._on_expire is not None:
            self._timer = self._sim.schedule(max(time - self._sim.now, 0.0),
                                             self._fire)

    def set_duration(self, duration: float) -> None:
        """Extend the NAV ``duration`` seconds from now."""
        self.set_until(self._sim.now + duration)

    def clear(self) -> None:
        """Cancel the reservation (e.g. CF-End, or test teardown)."""
        self._until = 0.0
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _fire(self) -> None:
        self._timer = None
        if not self.busy and self._on_expire is not None:
            self._on_expire()
