"""Key management: PSK derivation, the 4-way handshake, and WPS.

Implements the 802.11i key hierarchy the way WPA/WPA2-PSK deployments
use it (source text §5.2, "WPA-PSK (Pre-Shared Key) ... 256-bit"):

* :func:`derive_psk` — PBKDF2-HMAC-SHA1(passphrase, ssid, 4096, 32):
  the 256-bit pairwise master key,
* :func:`prf` / :func:`derive_ptk` — the 802.11i PRF expanding
  PMK + both MAC addresses + both nonces into the pairwise transient
  key (KCK | KEK | TK | Michael keys),
* :class:`FourWayHandshake` — the EAPOL message-1..4 exchange with KCK
  MIC verification, yielding matching TKs on both ends (and failing
  loudly on a wrong passphrase),
* :class:`WpsRegistrar` / :func:`wps_pin_attack` — the WPS PIN design
  flaw: the 8-digit PIN verifies in two halves (4 + 3 digits + check
  digit), so online search needs at most 10^4 + 10^3 = 11000 attempts
  — the "2-14 hours of sustained effort" the text cites.
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.errors import AuthenticationError, SecurityError

PMK_LEN = 32
PTK_LEN = 64  # KCK(16) | KEK(16) | TK(16) | MIC-TX(8) | MIC-RX(8)
NONCE_LEN = 32


def derive_psk(passphrase: str, ssid: str) -> bytes:
    """The WPA-PSK pairwise master key (256-bit)."""
    if not 8 <= len(passphrase) <= 63:
        raise SecurityError("WPA passphrase must be 8..63 characters")
    return hashlib.pbkdf2_hmac("sha1", passphrase.encode(),
                               ssid.encode(), 4096, PMK_LEN)


def prf(key: bytes, label: str, data: bytes, length: int) -> bytes:
    """The 802.11i PRF: iterated HMAC-SHA1 with a counter byte."""
    output = b""
    counter = 0
    while len(output) < length:
        message = label.encode() + b"\x00" + data + bytes([counter])
        output += hmac.new(key, message, hashlib.sha1).digest()
        counter += 1
    return output[:length]


@dataclass(frozen=True)
class PairwiseKeys:
    """The expanded PTK, split into its roles."""

    kck: bytes  # key confirmation key (handshake MICs)
    kek: bytes  # key encryption key (GTK wrapping; unused here)
    tk: bytes   # temporal key (CCMP key, or TKIP encryption key)
    mic_tx: bytes  # Michael key, authenticator->supplicant
    mic_rx: bytes  # Michael key, supplicant->authenticator


def derive_ptk(pmk: bytes, authenticator: bytes, supplicant: bytes,
               anonce: bytes, snonce: bytes) -> PairwiseKeys:
    """Expand the PMK into the PTK, exactly as 802.11i orders the input:
    min/max of the addresses then min/max of the nonces."""
    if len(pmk) != PMK_LEN:
        raise SecurityError(f"PMK must be {PMK_LEN} bytes")
    data = (min(authenticator, supplicant) + max(authenticator, supplicant)
            + min(anonce, snonce) + max(anonce, snonce))
    raw = prf(pmk, "Pairwise key expansion", data, PTK_LEN)
    return PairwiseKeys(kck=raw[0:16], kek=raw[16:32], tk=raw[32:48],
                        mic_tx=raw[48:56], mic_rx=raw[56:64])


def _eapol_mic(kck: bytes, message: bytes) -> bytes:
    return hmac.new(kck, message, hashlib.sha1).digest()[:16]


@dataclass
class HandshakeResult:
    keys: PairwiseKeys
    messages_exchanged: int


class FourWayHandshake:
    """The EAPOL-Key 4-way handshake between authenticator and supplicant.

    Both sides are driven by this one object for clarity; each side only
    ever reads its own inputs (its PMK, the nonces it has seen, the MICs
    it can verify), so the exchange is faithful to the protocol even
    though it runs in-process.
    """

    def __init__(self, authenticator_addr: bytes, supplicant_addr: bytes,
                 authenticator_pmk: bytes, supplicant_pmk: bytes,
                 rng=None):
        import random as _random
        self.aa = authenticator_addr
        self.spa = supplicant_addr
        self.authenticator_pmk = authenticator_pmk
        self.supplicant_pmk = supplicant_pmk
        self._rng = rng if rng is not None else _random.Random(0xA11CE)
        self.transcript: List[str] = []

    def _nonce(self) -> bytes:
        return bytes(self._rng.getrandbits(8) for _ in range(NONCE_LEN))

    def run(self) -> HandshakeResult:
        """Execute messages 1-4.  Raises AuthenticationError when the two
        sides hold different PMKs (wrong passphrase)."""
        # Message 1: authenticator -> supplicant: ANonce (no MIC).
        anonce = self._nonce()
        self.transcript.append("M1: ANonce")
        # Supplicant derives its PTK and answers with SNonce + MIC.
        snonce = self._nonce()
        supplicant_ptk = derive_ptk(self.supplicant_pmk, self.aa, self.spa,
                                    anonce, snonce)
        message2 = b"EAPOL-2" + snonce
        mic2 = _eapol_mic(supplicant_ptk.kck, message2)
        self.transcript.append("M2: SNonce + MIC")
        # Authenticator derives its PTK and verifies the supplicant's MIC.
        authenticator_ptk = derive_ptk(self.authenticator_pmk, self.aa,
                                       self.spa, anonce, snonce)
        if _eapol_mic(authenticator_ptk.kck, message2) != mic2:
            raise AuthenticationError(
                "4-way handshake message 2 MIC mismatch (wrong passphrase?)")
        # Message 3: authenticator proves key knowledge back (+ install).
        message3 = b"EAPOL-3" + anonce
        mic3 = _eapol_mic(authenticator_ptk.kck, message3)
        self.transcript.append("M3: install + MIC")
        if _eapol_mic(supplicant_ptk.kck, message3) != mic3:
            raise AuthenticationError(
                "4-way handshake message 3 MIC mismatch")
        # Message 4: supplicant confirms.
        message4 = b"EAPOL-4"
        mic4 = _eapol_mic(supplicant_ptk.kck, message4)
        if _eapol_mic(authenticator_ptk.kck, message4) != mic4:
            raise AuthenticationError(
                "4-way handshake message 4 MIC mismatch")
        self.transcript.append("M4: confirm")
        assert supplicant_ptk == authenticator_ptk
        return HandshakeResult(keys=supplicant_ptk, messages_exchanged=4)


# --- WPS ----------------------------------------------------------------------

def wps_checksum_digit(seven_digits: int) -> int:
    """The WPS PIN Luhn-style check digit over the first seven digits."""
    accum = 0
    value = seven_digits
    multipliers = [3, 1, 3, 1, 3, 1, 3]
    digits = []
    for _ in range(7):
        digits.append(value % 10)
        value //= 10
    for digit, multiplier in zip(reversed(digits), multipliers):
        accum += digit * multiplier
    return (10 - accum % 10) % 10


def make_wps_pin(seven_digits: int) -> int:
    """A full valid 8-digit WPS PIN from its first seven digits."""
    if not 0 <= seven_digits < 10_000_000:
        raise SecurityError("need seven digits")
    return seven_digits * 10 + wps_checksum_digit(seven_digits)


class WpsRegistrar:
    """An AP-side WPS registrar exposing the split-PIN oracle.

    The protocol proves the PIN in two halves (M4 checks digits 1-4,
    M6 checks digits 5-7 + checksum), and the AP's response reveals
    which half failed — the design flaw behind the Reaver attack.
    """

    def __init__(self, pin: int):
        if not 0 <= pin < 100_000_000:
            raise SecurityError("WPS PIN must be 8 digits")
        if pin % 10 != wps_checksum_digit(pin // 10):
            raise SecurityError("WPS PIN has a bad checksum digit")
        self.pin = pin
        self.attempts = 0

    def try_first_half(self, half: int) -> bool:
        self.attempts += 1
        return half == self.pin // 10_000

    def try_second_half(self, half: int) -> bool:
        self.attempts += 1
        return half == self.pin % 10_000


def wps_pin_attack(registrar: WpsRegistrar) -> Tuple[int, int]:
    """Online split-PIN search; returns (pin, attempts).

    Worst case 10^4 + 10^3 = 11000 attempts versus 10^7 for a monolithic
    PIN — the gap experiment E9 quantifies.
    """
    first_half = None
    for candidate in range(10_000):
        if registrar.try_first_half(candidate):
            first_half = candidate
            break
    if first_half is None:
        raise AuthenticationError("WPS first half not found (impossible)")
    for candidate_3 in range(1_000):
        # Second half = last 4 digits: 3 free digits + the checksum digit.
        seven = first_half * 1_000 + candidate_3
        second_half = candidate_3 * 10 + wps_checksum_digit(seven)
        if registrar.try_second_half(second_half):
            return seven * 10 + wps_checksum_digit(seven), registrar.attempts
    raise AuthenticationError("WPS second half not found (impossible)")
