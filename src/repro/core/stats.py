"""Statistics primitives used across the simulator.

Three kinds of measurement recur in wireless evaluation:

* **Counters** — frames sent, collisions, retries.
* **Sample statistics** — per-packet delay, jitter: mean/percentiles and
  confidence intervals over independent samples.
* **Time-weighted statistics** — queue occupancy, medium busy fraction:
  values that persist over intervals, where the mean must weight each
  value by how long it was held.

All three are implemented here, dependency-free, with Welford's online
algorithm for numerically-stable variance.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple


class Counter:
    """A named bundle of integer counters."""

    def __init__(self) -> None:
        self._counts: Dict[str, int] = {}

    def incr(self, name: str, amount: int = 1) -> None:
        self._counts[name] = self._counts.get(name, 0) + amount

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self.get(name)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def merge(self, other: "Counter") -> "Counter":
        """Add another counter's values into this one (fleet-wide
        aggregation: summing per-node mesh counters, per-BSS MAC stats).
        Returns self for chaining."""
        for name, value in other._counts.items():
            self._counts[name] = self._counts.get(name, 0) + value
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{key}={value}" for key, value in sorted(self._counts.items()))
        return f"Counter({inner})"


class SampleStat:
    """Online mean/variance/min/max plus retained samples for percentiles.

    Welford's algorithm keeps the running moments stable; raw samples are
    retained (optionally capped) so percentiles and confidence intervals
    can be computed exactly for the sample sizes typical of a simulation
    run.
    """

    def __init__(self, keep_samples: bool = True,
                 max_samples: Optional[int] = None):
        self._count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._keep = keep_samples
        self._max_samples = max_samples
        self._samples: List[float] = []

    def add(self, value: float) -> None:
        self._count += 1
        delta = value - self._mean
        self._mean += delta / self._count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._keep:
            if self._max_samples is None or len(self._samples) < self._max_samples:
                self._samples.append(value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def samples(self) -> List[float]:
        """The retained raw samples (copy; empty when not kept)."""
        return list(self._samples)

    @property
    def mean(self) -> float:
        return self._mean if self._count else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN until two samples exist)."""
        if self._count < 2:
            return math.nan
        return self._m2 / (self._count - 1)

    @property
    def stdev(self) -> float:
        variance = self.variance
        return math.sqrt(variance) if variance == variance else math.nan

    @property
    def minimum(self) -> float:
        return self._min if self._count else math.nan

    @property
    def maximum(self) -> float:
        return self._max if self._count else math.nan

    def percentile(self, fraction: float) -> float:
        """Linear-interpolated percentile over retained samples."""
        if not self._samples:
            return math.nan
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        position = fraction * (len(ordered) - 1)
        low = int(math.floor(position))
        high = int(math.ceil(position))
        if low == high:
            return ordered[low]
        weight = position - low
        return ordered[low] * (1.0 - weight) + ordered[high] * weight

    def confidence_interval(self, confidence: float = 0.95) -> Tuple[float, float]:
        """Normal-approximation CI for the mean (fine for n >= ~30)."""
        if self._count < 2:
            return (math.nan, math.nan)
        z = _z_value(confidence)
        half = z * self.stdev / math.sqrt(self._count)
        return (self._mean - half, self._mean + half)


def _z_value(confidence: float) -> float:
    """Two-sided standard-normal quantile for common confidence levels."""
    table = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}
    if confidence in table:
        return table[confidence]
    # Fall back to an Acklam-style rational approximation of the probit.
    p = 1.0 - (1.0 - confidence) / 2.0
    if not 0.0 < p < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    # Beasley-Springer-Moro approximation.
    a = [-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00]
    b = [-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01]
    c = [-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00]
    d = [7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00]
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / \
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    q = math.sqrt(-2.0 * math.log(1.0 - p))
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / \
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)


class TimeWeightedStat:
    """Mean of a piecewise-constant signal, weighted by holding time.

    Typical uses: queue length over time, fraction of time the medium is
    busy.  Call :meth:`update` whenever the value changes; call
    :meth:`finish` (or read :attr:`mean` with an explicit ``until``) at
    the end of the run.
    """

    def __init__(self, initial_value: float = 0.0, start_time: float = 0.0):
        self._value = initial_value
        self._last_time = start_time
        self._weighted_sum = 0.0
        self._elapsed = 0.0

    @property
    def value(self) -> float:
        """Current value of the signal."""
        return self._value

    def update(self, time: float, value: float) -> None:
        """Record that the signal changed to ``value`` at ``time``."""
        if time < self._last_time:
            raise ValueError(
                f"time went backwards: {time} < {self._last_time}")
        dt = time - self._last_time
        self._weighted_sum += self._value * dt
        self._elapsed += dt
        self._value = value
        self._last_time = time

    def finish(self, time: float) -> None:
        """Close the final interval at ``time`` without changing the value."""
        self.update(time, self._value)

    @property
    def mean(self) -> float:
        if self._elapsed <= 0.0:
            return math.nan
        return self._weighted_sum / self._elapsed


def jain_fairness(values: List[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = maximally unfair."""
    if not values:
        return math.nan
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0.0:
        return math.nan
    return (total * total) / (len(values) * squares)
