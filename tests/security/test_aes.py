"""Tests for the from-scratch AES-128."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import SecurityError
from repro.security.aes import Aes128, SBOX, expand_key


class TestFips197:
    """The appendix-C vector from FIPS-197."""

    KEY = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    PLAIN = bytes.fromhex("00112233445566778899aabbccddeeff")
    CIPHER = bytes.fromhex("69c4e0d86a7b0430d8cdb78070b4c55a")

    def test_encrypt(self):
        assert Aes128(self.KEY).encrypt_block(self.PLAIN) == self.CIPHER

    def test_decrypt(self):
        assert Aes128(self.KEY).decrypt_block(self.CIPHER) == self.PLAIN

    def test_nist_sp800_38a_vector(self):
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        plain = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        expected = bytes.fromhex("3ad77bb40d7a3660a89ecaf32466ef97")
        assert Aes128(key).encrypt_block(plain) == expected


class TestSbox:
    def test_generated_sbox_known_entries(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX) == list(range(256))


class TestProperties:
    @given(st.binary(min_size=16, max_size=16),
           st.binary(min_size=16, max_size=16))
    def test_encrypt_decrypt_identity(self, key, block):
        aes = Aes128(key)
        assert aes.decrypt_block(aes.encrypt_block(block)) == block

    @given(st.binary(min_size=16, max_size=16))
    def test_encryption_changes_the_block(self, block):
        aes = Aes128(b"0123456789abcdef")
        assert aes.encrypt_block(block) != block

    def test_key_sensitivity(self):
        block = bytes(16)
        a = Aes128(bytes(16)).encrypt_block(block)
        b = Aes128(bytes(15) + b"\x01").encrypt_block(block)
        differing_bits = sum(bin(x ^ y).count("1") for x, y in zip(a, b))
        assert differing_bits > 32  # avalanche


class TestValidation:
    def test_wrong_key_length_rejected(self):
        with pytest.raises(SecurityError):
            expand_key(b"short")

    def test_wrong_block_length_rejected(self):
        aes = Aes128(bytes(16))
        with pytest.raises(SecurityError):
            aes.encrypt_block(b"tiny")
        with pytest.raises(SecurityError):
            aes.decrypt_block(bytes(17))

    def test_key_schedule_has_11_round_keys(self):
        schedule = expand_key(bytes(16))
        assert len(schedule) == 11
        assert all(len(round_key) == 16 for round_key in schedule)
