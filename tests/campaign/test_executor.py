"""Executor end-to-end: determinism, resume, partial invocations."""

import pytest

from repro.campaign import read_store, run_campaign, validate_spec

from .conftest import small_spec


def run(tmp_path, sub="out", **kwargs):
    spec = validate_spec(kwargs.pop("spec", small_spec()))
    return run_campaign(spec, tmp_path / sub, **kwargs)


def store_bytes(result):
    return result.store_path.read_bytes(), result.csv_path.read_bytes()


def test_end_to_end(tmp_path):
    result = run(tmp_path)
    assert result.ok
    assert result.ran == 4 and result.reused == 0
    assert [row["status"] for row in result.rows] == ["done"] * 4
    for row in result.rows:
        assert row["stats"]["rx_frames"] > 0
        assert row["stats"]["events"] > 0
    assert result.store_path.exists() and result.csv_path.exists()
    assert len(read_store(result.store_path)) == 4


def test_jobs_fanout_is_byte_identical_to_serial(tmp_path):
    serial = run(tmp_path, "serial", jobs=1)
    fanned = run(tmp_path, "fanned", jobs=2, timeout=120.0)
    assert store_bytes(serial) == store_bytes(fanned)


def test_two_runs_same_bytes(tmp_path):
    first = run(tmp_path, "a")
    second = run(tmp_path, "b")
    assert store_bytes(first) == store_bytes(second)


def test_resume_reuses_done_jobs(tmp_path):
    partial = run(tmp_path, "out", max_jobs=2)
    assert partial.ran == 2
    statuses = [row["status"] for row in partial.rows]
    assert statuses == ["done", "done", "pending", "pending"]

    resumed = run(tmp_path, "out")
    assert resumed.ran == 2 and resumed.reused == 2
    uninterrupted = run(tmp_path, "oneshot")
    assert store_bytes(resumed) == store_bytes(uninterrupted)


def test_only_filters_labels_but_keeps_row_shape(tmp_path):
    result = run(tmp_path, "out", only=["*seed=3*"])
    assert result.ran == 2
    by_status = [row["status"] for row in result.rows]
    assert by_status == ["done", "pending", "done", "pending"]

    with pytest.raises(ValueError, match="unknown job label"):
        run(tmp_path, "out2", only=["*seed=99*"])


def test_partial_invocations_compose_to_identical_store(tmp_path):
    run(tmp_path, "sliced", only=["*seed=4*"])
    sliced = run(tmp_path, "sliced")  # picks up the rest
    oneshot = run(tmp_path, "oneshot")
    assert store_bytes(sliced) == store_bytes(oneshot)


def test_failing_job_becomes_failure_row_not_crash(tmp_path):
    # mesh scenarios reject saturate traffic at run time — a per-job
    # error must become a failed row, not poison the campaign.
    spec = small_spec(
        scenario={"builder": "mesh_chain", "horizon": 0.1, "seed": 1,
                  "params": {"nodes": 3}},
        traffic={"kind": "saturate"}, sweep={}, seeds={"count": 2})
    result = run(tmp_path, spec=spec)
    assert not result.ok
    assert len(result.failed) == 2
    rows = read_store(result.store_path)
    assert all(row["status"] == "failed" for row in rows)
    assert all("traffic.kind" in row["error"] for row in rows)

    # A retry (e.g. after fixing an environmental cause) re-runs them.
    again = run(tmp_path, spec=spec)
    assert again.ran == 2


def test_fresh_discards_manifest(tmp_path):
    run(tmp_path, "out", max_jobs=2)
    result = run(tmp_path, "out", fresh=True)
    assert result.ran == 4 and result.reused == 0


def test_timeout_produces_failure_row(tmp_path):
    spec = small_spec()
    spec["scenario"] = dict(spec["scenario"], horizon=30.0)
    spec["sweep"] = {}
    spec["seeds"] = {"count": 1}
    result = run(tmp_path, spec=spec, timeout=0.05)
    assert not result.ok
    rows = read_store(result.store_path)
    assert rows[0]["status"] == "failed"
    assert "timed out" in rows[0]["error"]
