"""Tests for the uniform link-security suites."""

import pytest

from repro.core.errors import ConfigurationError, IntegrityError
from repro.security.suites import (
    LinkSecurity,
    SUITE_OVERHEAD,
    SecuritySuite,
    build_link_security,
)

ALL_SUITES = list(SecuritySuite)


def build(suite):
    return build_link_security(suite, passphrase="a strong passphrase",
                               ssid="suite-test",
                               wep_key=b"\x01\x02\x03\x04\x05")


class TestRoundTrips:
    @pytest.mark.parametrize("suite", ALL_SUITES)
    def test_a_to_b(self, suite):
        a, b = build(suite)
        protected = a.protect(b"payload across the link")
        assert b.unprotect(protected) == b"payload across the link"

    @pytest.mark.parametrize("suite", ALL_SUITES)
    def test_b_to_a(self, suite):
        a, b = build(suite)
        protected = b.protect(b"reverse direction")
        assert a.unprotect(protected) == b"reverse direction"

    @pytest.mark.parametrize("suite", ALL_SUITES)
    def test_many_frames(self, suite):
        a, b = build(suite)
        for index in range(10):
            payload = bytes([index]) * 20
            assert b.unprotect(a.protect(payload), now=float(index)) == \
                payload


class TestOverhead:
    def test_overhead_table_matches_reality(self):
        for suite in ALL_SUITES:
            a, _b = build(suite)
            payload = b"x" * 50
            assert len(a.protect(payload)) - len(payload) == \
                SUITE_OVERHEAD[suite]
            assert a.overhead_bytes == SUITE_OVERHEAD[suite]

    def test_open_adds_nothing(self):
        a, b = build(SecuritySuite.OPEN)
        assert a.protect(b"clear") == b"clear"

    def test_aes_suites_cost_more_than_open_less_than_tkip(self):
        assert SUITE_OVERHEAD[SecuritySuite.OPEN] == 0
        assert 0 < SUITE_OVERHEAD[SecuritySuite.WEP] < \
            SUITE_OVERHEAD[SecuritySuite.WPA2_AES] < \
            SUITE_OVERHEAD[SecuritySuite.WPA_TKIP]


class TestKeySeparation:
    def test_different_passphrases_do_not_interoperate(self):
        a, _ = build_link_security(SecuritySuite.WPA2_AES,
                                   passphrase="first passphrase",
                                   ssid="net")
        _, b = build_link_security(SecuritySuite.WPA2_AES,
                                   passphrase="other passphrase",
                                   ssid="net")
        with pytest.raises(IntegrityError):
            b.unprotect(a.protect(b"secret"))

    def test_tkip_cross_direction_isolated(self):
        a, b = build(SecuritySuite.WPA_TKIP)
        protected = a.protect(b"to b")
        # a cannot decrypt its own transmit-direction frame.
        with pytest.raises(Exception):
            a.unprotect(protected)


class TestValidation:
    def test_wep_requires_key(self):
        with pytest.raises(ConfigurationError):
            build_link_security(SecuritySuite.WEP)

    def test_wpa_requires_credentials(self):
        with pytest.raises(ConfigurationError):
            build_link_security(SecuritySuite.WPA2_AES)
