"""Grid expansion: a campaign spec becomes an ordered list of jobs.

Expansion order is the determinism contract of the whole campaign
layer: the result store's row order, the manifest's grid fingerprint,
and the resume logic all key off it.  The rules are fixed:

* sweep axes iterate in **sorted path order** (the spec author's TOML
  table order is not stable across serializers, sorted paths are),
* each axis's values iterate in **declared order** (a sweep over
  ``[2347, 256]`` runs 2347 first — curves come out in the author's
  order),
* the **seed ensemble is the innermost axis** (all seeds of one sweep
  point run adjacently, which is also the order the ensemble
  aggregator wants to consume).

Every job's identity is the sha1 of its canonical concrete spec — a
pure function of configuration, independent of position in the grid —
so two campaigns that share a point share its key, and a resumed
campaign recognizes finished work by content, not by row number.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List

from .spec import SpecError, concrete_job_spec, spec_sha1

__all__ = ["Job", "expand_grid", "grid_sha1"]


@dataclass(frozen=True)
class Job:
    """One fully-concrete unit of work in a campaign grid."""

    #: Position in expansion order (== result-store row order).
    index: int
    #: Content address: sha1 of the canonical concrete spec.
    key: str
    #: Human-readable coordinates, e.g. ``rts_threshold_bytes=256/seed=11``.
    label: str
    #: The swept axes pinned to this job's values (full spec paths).
    axes: Dict[str, Any] = field(hash=False)
    seed: int = 0
    #: The validated concrete spec the runner executes.
    spec: Dict[str, Any] = field(default=None, hash=False)


def _leaf(path: str) -> str:
    return path.rsplit(".", 1)[-1]


def _label(axes: Dict[str, Any], seed: int) -> str:
    parts = [f"{_leaf(path)}={axes[path]}" for path in sorted(axes)]
    parts.append(f"seed={seed}")
    return "/".join(parts)


def expand_grid(spec: Dict[str, Any]) -> List[Job]:
    """Expand a validated campaign spec into its ordered job list."""
    sweep = spec.get("sweep", {})
    seeds = spec["seeds"]["list"]
    paths = sorted(sweep)
    jobs: List[Job] = []
    seen: Dict[str, str] = {}
    for combo in itertools.product(*(sweep[path] for path in paths)):
        axes = dict(zip(paths, combo))
        for seed in seeds:
            concrete = concrete_job_spec(spec, axes, seed)
            key = spec_sha1(concrete)
            label = _label(axes, seed)
            if key in seen:
                # Two grid points collapsing to one content address is
                # almost always an axis that doesn't actually change
                # the scenario — surface it instead of silently
                # double-counting one run.
                raise SpecError("sweep",
                                f"jobs {seen[key]!r} and {label!r} expand "
                                f"to the identical concrete spec ({key})")
            seen[key] = label
            jobs.append(Job(index=len(jobs), key=key, label=label,
                            axes=axes, seed=seed, spec=concrete))
    return jobs


def grid_sha1(jobs: List[Job]) -> str:
    """Fingerprint of the whole grid: keys in expansion order.

    Stored in the manifest so a resume against an *edited* spec (new
    axes, different seeds — anything that changes membership or order)
    is detected instead of producing a store that mixes two grids.
    """
    digest = hashlib.sha1()
    for job in jobs:
        digest.update(job.key.encode())
        digest.update(b"\n")
    return digest.hexdigest()
