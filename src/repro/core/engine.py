"""The discrete-event simulation kernel.

The kernel is a deterministic event-heap executor:

* :class:`Simulator` owns the clock, the pending-event heap, the RNG
  registry (see :mod:`repro.core.rng`) and the trace log.
* :class:`EventHandle` is returned by :meth:`Simulator.schedule` and
  supports O(1) cancellation (lazy deletion from the heap).
* Ties in time are broken by a monotonically increasing sequence number,
  so two events scheduled for the same instant always fire in the order
  they were scheduled — this is what makes runs bit-reproducible.

Protocol code in this library is written in *callback style*: components
schedule plain callables.  That keeps the kernel tiny, easy to reason
about, and fast enough to run thousands of stations on a laptop.

Hot-path notes: the heap stores tuples rather than bare handles so
ordering uses C-level tuple comparison instead of
``EventHandle.__lt__`` (the single biggest cost in large runs);
:attr:`Simulator.pending_events` is a counter maintained by
``schedule``/``cancel``/``run`` instead of an O(N) heap scan; and
fire-and-forget callers (the medium's per-receiver arrival fan-out —
the most-scheduled events in any run) can use
:meth:`Simulator.schedule_fast_at` to skip the
:class:`EventHandle` allocation entirely.  Components that arm and
re-arm the *same* deadline over and over (DIFS waits, the batched
backoff countdown, the NAV, reception completion) use a reusable
:class:`Timer`, which replaces the per-arm :class:`EventHandle`
allocation with a version check on a pre-allocated object.

Heap entries are therefore one of three shapes — ``(time, seq,
handle)``, ``(time, seq, timer, version)`` or ``(time, seq, None,
callback, args)`` — and ties never compare past ``seq``, which is
unique, so entries of different shapes never compare element 2.
"""

from __future__ import annotations

import heapq
import itertools
import math
import os
from typing import Any, Callable, List, Optional, Tuple

from .errors import SchedulingError, SimulationError
from .rng import RngRegistry
from .trace import TraceLog

_INF = math.inf
_heappush = heapq.heappush

#: Accepted values for ``Simulator(kernel=...)`` / ``REPRO_KERNEL``.
KERNELS = ("auto", "python", "c")

_ckernel: Optional[Any] = None
_ckernel_checked = False


def _load_ckernel() -> Optional[Any]:
    """Import and bind the optional compiled kernel, once.

    Returns the installed :mod:`repro.core._ckernel` module, or ``None``
    when the extension is not built (the normal state on machines that
    never ran ``tools/build_kernel.py``) or fails to bind against the
    event classes.  The result is cached either way; a failed probe is
    never retried within the process.
    """
    global _ckernel, _ckernel_checked
    if _ckernel_checked:
        return _ckernel
    _ckernel_checked = True
    try:
        from . import _ckernel as ext  # type: ignore[attr-defined]
    except ImportError:
        return None
    try:
        ext.install(Timer, EventHandle, SimulationError)
    except Exception:
        # A built-but-incompatible extension (stale ABI, renamed slots)
        # must degrade to the reference loop, not poison every run.
        return None
    _ckernel = ext
    return ext


def ckernel_available() -> bool:
    """True when the compiled kernel is built and binds cleanly."""
    return _load_ckernel() is not None


def default_kernel() -> str:
    """The kernel selected when ``Simulator(kernel=None)`` (the default):
    the ``REPRO_KERNEL`` environment variable, or ``"auto"``."""
    return os.environ.get("REPRO_KERNEL", "auto")


def resolve_kernel(requested: Optional[str] = None) -> str:
    """Resolve a kernel request to the concrete kernel that will run.

    ``None`` reads :func:`default_kernel`.  ``"auto"`` resolves to
    ``"c"`` when the extension is available, else ``"python"``.
    ``"c"`` raises :class:`SimulationError` when the extension is not
    built — an explicit request must not silently run the other kernel
    (CI's ``REPRO_KERNEL=c`` lane relies on this to prove the compiled
    path actually executed).
    """
    if requested is None:
        requested = default_kernel()
    if requested not in KERNELS:
        raise SimulationError(
            f"unknown kernel {requested!r}; expected one of {KERNELS}")
    if requested == "python":
        return "python"
    if _load_ckernel() is not None:
        return "c"
    if requested == "c":
        raise SimulationError(
            "kernel='c' requested but repro.core._ckernel is not built "
            "(run: python tools/build_kernel.py)")
    return "python"


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "seq", "callback", "args", "_cancelled", "_fired",
                 "_sim")

    def __init__(self, time: float, seq: int,
                 callback: Callable[..., None], args: Tuple[Any, ...],
                 sim: Optional["Simulator"] = None):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self._cancelled = False
        self._fired = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing; safe to call multiple times."""
        if not self._cancelled and not self._fired:
            self._cancelled = True
            sim = self._sim
            if sim is not None:
                sim._cancelled_events += 1
        # Drop references so cancelled events don't pin objects alive
        # while they sit in the heap awaiting lazy deletion.
        self.callback = _noop
        self.args = ()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def pending(self) -> bool:
        return not self._cancelled and not self._fired

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("cancelled" if self._cancelled
                 else "fired" if self._fired else "pending")
        return f"<EventHandle t={self.time:.9f} seq={self.seq} {state}>"


def _noop(*_args: Any) -> None:
    return None


class Timer:
    """A reusable, re-anchorable one-shot timer.

    Unlike :meth:`Simulator.schedule`, arming a :class:`Timer` allocates
    no :class:`EventHandle` — the timer object itself rides in the heap
    entry together with a version number.  Re-arming or cancelling bumps
    the version; superseded entries left in the heap are dropped by the
    run loop when they surface, exactly like a cancelled handle (they do
    not count as executed events).  This makes ``cancel + reschedule``
    the cheap operation the DCF's contention machinery needs: a DIFS
    wait, the batched backoff countdown and the NAV each re-anchor on
    every CCA edge.

    At most one deadline is live at a time; the callback is fixed at
    construction and fires with no arguments.
    """

    __slots__ = ("_sim", "_callback", "_version", "_armed", "_time")

    def __init__(self, sim: "Simulator", callback: Callable[[], None]):
        self._sim = sim
        self._callback = callback
        self._version = 0
        self._armed = False
        self._time = 0.0

    @property
    def armed(self) -> bool:
        """True while a deadline is pending."""
        return self._armed

    @property
    def time(self) -> float:
        """The pending deadline (meaningless unless :attr:`armed`)."""
        return self._time

    def schedule(self, delay: float) -> None:
        """Arm (or re-anchor) the timer ``delay`` seconds from now."""
        # schedule_at inlined: this is the contention hot path (DIFS
        # re-arms on every idle edge at every station).
        sim = self._sim
        time = sim._now + delay
        if not sim._now <= time < _INF:
            if time < sim._now:
                raise SchedulingError(
                    f"cannot schedule at t={time!r} before now={sim._now!r}")
            raise SchedulingError(f"invalid time: {time!r}")
        if self._armed:
            sim._cancelled_events += 1
        else:
            self._armed = True
        self._version += 1
        self._time = time
        sim._scheduled += 1
        _heappush(sim._heap, (time, sim._next_seq(), self, self._version))

    def schedule_at(self, time: float) -> None:
        """Arm (or re-anchor) the timer at absolute time ``time``."""
        sim = self._sim
        if not sim._now <= time < _INF:
            if time < sim._now:
                raise SchedulingError(
                    f"cannot schedule at t={time!r} before now={sim._now!r}")
            raise SchedulingError(f"invalid time: {time!r}")
        if self._armed:
            sim._cancelled_events += 1  # the live entry is superseded
        else:
            self._armed = True
        self._version += 1
        self._time = time
        sim._scheduled += 1
        _heappush(sim._heap, (time, sim._next_seq(), self, self._version))

    def cancel(self) -> None:
        """Disarm; safe to call when idle.  The heap entry is dropped
        lazily when it surfaces."""
        if self._armed:
            self._armed = False
            self._sim._cancelled_events += 1


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    seed:
        Master seed for all named RNG streams.
    trace:
        Optional :class:`~repro.core.trace.TraceLog`; a fresh one is
        created when omitted so tracing is always available.
    profile:
        Numeric-fidelity profile inherited by components built on this
        simulator.  ``"exact"`` (the default) demands bit-identical
        floating-point behavior from every subsystem — the determinism
        contract all golden traces and seeded fixtures rely on.
        ``"fast"`` lets subsystems that offer a relaxed-ulp fast path
        (currently :class:`~repro.phy.channel.Medium`, see its ``exact``
        parameter) default to it: protocol semantics are preserved but
        results are NOT bit-compatible with exact mode.  The kernel
        itself (event ordering, tie-breaks, RNG streams) is identical in
        both profiles; only component-level float math is relaxed.
    kernel:
        Which run-loop implementation dispatches events.  ``"python"``
        is the pure-Python reference loop; ``"c"`` is the compiled
        :mod:`repro.core._ckernel` twin (bit-identical event sequence,
        raises if the extension is not built); ``"auto"`` picks the
        compiled loop when available.  ``None`` (the default) reads the
        ``REPRO_KERNEL`` environment variable, falling back to
        ``"auto"``.  The kernel choice never changes results — the two
        loops are byte-for-byte interchangeable (gated by
        ``tools/capture_golden.py --kernel`` and the randomized parity
        harness) — only throughput.
    """

    PROFILES = ("exact", "fast")
    KERNELS = KERNELS

    def __init__(self, seed: int = 0, trace: Optional[TraceLog] = None,
                 profile: str = "exact", kernel: Optional[str] = None):
        if profile not in self.PROFILES:
            raise SimulationError(
                f"unknown profile {profile!r}; expected one of {self.PROFILES}")
        self.profile = profile
        self._kernel = resolve_kernel(kernel)
        self._ckernel_run = (_ckernel.run if self._kernel == "c"
                             else None)
        self._now = 0.0
        self._heap: List[Tuple[Any, ...]] = []
        self._seq = itertools.count()
        self._next_seq = self._seq.__next__
        self._running = False
        self._stopped = False
        self._events_executed = 0
        self._scheduled = 0
        self._cancelled_events = 0
        self.rng = RngRegistry(seed)
        self.trace = trace if trace is not None else TraceLog()

    # --- clock ---------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_executed(self) -> int:
        """Number of events fired so far (diagnostics / progress)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of not-yet-cancelled events waiting in the heap (O(1)).

        Derived from three monotone counters (scheduled, executed,
        cancelled) so neither the run loop nor ``cancel`` pays a
        per-event decrement for a diagnostics-only figure.
        """
        return self._scheduled - self._events_executed - self._cancelled_events

    @property
    def heap_depth(self) -> int:
        """Raw heap length, lazily-deleted entries included.

        Differs from :attr:`pending_events` by the cancelled/superseded
        entries still awaiting lazy deletion — the figure that matters
        when heap memory or heappush cost is the question (telemetry
        samples it as ``kernel/heap_depth``).
        """
        return len(self._heap)

    # --- kernel selection ------------------------------------------------

    @property
    def kernel(self) -> str:
        """The concrete run-loop implementation: ``"python"`` or ``"c"``."""
        return self._kernel

    def pin_python_kernel(self) -> None:
        """Permanently select the pure-Python reference loop.

        For hooks that must observe the interpreted dispatch loop
        itself (telemetry's :class:`KernelDispatchProbe` shadows
        ``run`` directly and needs the shapes counted in Python;
        debuggers stepping callbacks want Python frames).  Safe to call
        on any simulator, including one already on the Python kernel;
        there is deliberately no way back — a mid-suite kernel flip
        would make ``kernel`` lie to telemetry exports.
        """
        self._kernel = "python"
        self._ckernel_run = None

    # --- scheduling ------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[..., None],
                 *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        # The chained comparison is False for NaN, so one expression
        # covers the negative, NaN and infinity rejections.
        if 0.0 <= delay < _INF:
            time = self._now + delay
            seq = self._next_seq()
            event = EventHandle(time, seq, callback, args, self)
            self._scheduled += 1
            _heappush(self._heap, (time, seq, event))
            return event
        if delay < 0:
            raise SchedulingError(
                f"cannot schedule {delay!r} s in the past (now={self._now!r})")
        raise SchedulingError(f"invalid delay: {delay!r}")

    def schedule_at(self, time: float, callback: Callable[..., None],
                    *args: Any) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if self._now <= time < _INF:
            seq = self._next_seq()
            event = EventHandle(time, seq, callback, args, self)
            self._scheduled += 1
            _heappush(self._heap, (time, seq, event))
            return event
        if time < self._now:
            raise SchedulingError(
                f"cannot schedule at t={time!r} before now={self._now!r}")
        raise SchedulingError(f"invalid time: {time!r}")

    def call_now(self, callback: Callable[..., None], *args: Any) -> EventHandle:
        """Schedule a callback for the current instant (after current event)."""
        return self.schedule(0.0, callback, *args)

    # --- fire-and-forget fast path -----------------------------------------

    def schedule_fast(self, delay: float, callback: Callable[..., None],
                      *args: Any) -> None:
        """Like :meth:`schedule` but returns no handle (not cancellable).

        Skips the :class:`EventHandle` allocation; use only for events
        that are never cancelled (frame arrival fan-out, TX-complete).
        Ordering relative to handle-based events is identical — both
        share the same time/sequence heap.
        """
        if not 0.0 <= delay < _INF:
            if delay < 0:
                raise SchedulingError(
                    f"cannot schedule {delay!r} s in the past "
                    f"(now={self._now!r})")
            raise SchedulingError(f"invalid delay: {delay!r}")
        self._scheduled += 1
        _heappush(self._heap, (self._now + delay, self._next_seq(),
                               None, callback, args))

    def schedule_fast_at(self, time: float, callback: Callable[..., None],
                         *args: Any) -> None:
        """Absolute-time variant of :meth:`schedule_fast`."""
        if not self._now <= time < _INF:
            if time < self._now:
                raise SchedulingError(
                    f"cannot schedule at t={time!r} before now={self._now!r}")
            raise SchedulingError(f"invalid time: {time!r}")
        self._scheduled += 1
        _heappush(self._heap, (time, self._next_seq(),
                               None, callback, args))

    # --- execution --------------------------------------------------------

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> float:
        """Run events until the heap drains, ``until`` is reached, or
        ``max_events`` have fired.  Returns the simulation time when the
        run stopped.

        When the run stops because of ``until``, the clock is advanced to
        exactly ``until`` so that back-to-back ``run`` calls observe a
        continuous timeline.
        """
        if self._ckernel_run is not None:
            # Compiled twin of everything below — identical event
            # sequence, counters and clock writes (see _ckernel.c's
            # bit-identity contract).  Instance-attribute shadows of
            # ``run`` (KernelDispatchProbe) bypass this automatically.
            return self._ckernel_run(self, until, max_events)
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        self._stopped = False
        heap = self._heap
        heappop = heapq.heappop
        heappush = heapq.heappush
        timer_class = Timer
        try:
            if max_events is None and until is not None:
                # Dominant case (run-until): no budget bookkeeping, and
                # the executed-events counter lives in a local that is
                # flushed after every callback *assignment-free* region:
                # the attribute store happens once per loop exit instead
                # of once per event.  Callbacks observing
                # ``events_executed`` mid-run would read a stale figure;
                # nothing in the library does (the counter is
                # diagnostics), and ``finally`` keeps it correct across
                # stop()/exception exits.
                executed = self._events_executed
                try:
                    while heap and not self._stopped:
                        entry = heappop(heap)
                        time = entry[0]
                        if time > until:
                            heappush(heap, entry)
                            break
                        event = entry[2]
                        if event is None:
                            callback = entry[3]
                            args = entry[4]
                        elif event.__class__ is timer_class:
                            # Timer entry: (time, seq, timer, version).
                            # Checked before the handle shape —
                            # re-anchoring timers outnumber EventHandles
                            # in contention-heavy runs, so the common
                            # case pays one class test, not two.
                            if event._version != entry[3] \
                                    or not event._armed:
                                continue  # superseded: lazy drop
                            event._armed = False
                            callback = event._callback
                            args = ()
                        else:
                            if event._cancelled:
                                continue
                            event._fired = True
                            callback = event.callback
                            args = event.args
                        self._now = time
                        executed += 1
                        callback(*args)
                finally:
                    self._events_executed = executed
            else:
                budget = max_events if max_events is not None else _INF
                while heap and not self._stopped and budget > 0:
                    entry = heappop(heap)
                    time = entry[0]
                    if until is not None and time > until:
                        heappush(heap, entry)
                        break
                    event = entry[2]
                    if event is None:
                        callback = entry[3]
                        args = entry[4]
                    elif event.__class__ is timer_class:
                        # Timer entry: (time, seq, timer, version).
                        # Checked before the handle shape — re-anchoring
                        # timers outnumber EventHandles in contention-
                        # heavy runs, so the common case pays one class
                        # test, not two.
                        if event._version != entry[3] or not event._armed:
                            continue  # superseded/cancelled: lazy drop
                        event._armed = False
                        callback = event._callback
                        args = ()
                    else:
                        if event._cancelled:
                            continue
                        event._fired = True
                        callback = event.callback
                        args = event.args
                    self._now = time
                    self._events_executed += 1
                    budget -= 1
                    callback(*args)
            if until is not None and not self._stopped and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def stop(self) -> None:
        """Stop the current :meth:`run` after the in-flight event returns."""
        self._stopped = True

    def clear(self) -> None:
        """Cancel every pending event (used between experiment phases).

        Call it between runs, not from inside a callback: mid-run the
        executed-events counter is held in a run-loop local (flushed on
        exit), so a mid-callback clear would re-baseline the
        diagnostics-only ``pending_events`` figure from a stale value.
        """
        for entry in self._heap:
            event = entry[2]
            if event is not None:
                event.cancel()
        self._heap.clear()
        # Re-baseline so pending_events reads zero (raw fire-and-forget
        # entries were dropped without passing through cancel()).
        self._scheduled = self._events_executed + self._cancelled_events


class PeriodicTask:
    """Re-arms a callback at a fixed period until cancelled.

    Used for beacons, polling loops, and traffic generators.  The task
    fires first after ``offset`` seconds (default: one full period).
    """

    def __init__(self, sim: Simulator, period: float,
                 callback: Callable[[], None],
                 offset: Optional[float] = None):
        if period <= 0:
            raise SchedulingError(f"period must be positive, got {period}")
        self._sim = sim
        self._period = period
        self._callback = callback
        self._active = True
        self._fired = 0
        first = period if offset is None else offset
        self._handle = sim.schedule(first, self._fire)

    @property
    def fired(self) -> int:
        """How many times the task has fired."""
        return self._fired

    @property
    def active(self) -> bool:
        return self._active

    @property
    def period(self) -> float:
        return self._period

    def _fire(self) -> None:
        if not self._active:
            return
        self._fired += 1
        self._callback()
        if self._active:
            self._handle = self._sim.schedule(self._period, self._fire)

    def cancel(self) -> None:
        """Stop the task; the callback will not fire again."""
        self._active = False
        self._handle.cancel()
