"""Tests for binary-exponential backoff."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.mac.backoff import BackoffWindow


def window(cw_min=15, cw_max=1023, seed=1):
    return BackoffWindow(cw_min, cw_max, random.Random(seed))


class TestWindowEvolution:
    def test_starts_at_cw_min(self):
        assert window().cw == 15

    def test_doubles_on_failure(self):
        w = window()
        expected = [31, 63, 127, 255, 511, 1023, 1023]
        observed = []
        for _ in expected:
            w.on_failure()
            observed.append(w.cw)
        assert observed == expected

    def test_capped_at_cw_max(self):
        w = window(cw_min=15, cw_max=63)
        for _ in range(10):
            w.on_failure()
        assert w.cw == 63

    def test_success_resets(self):
        w = window()
        w.on_failure()
        w.on_failure()
        w.on_success()
        assert w.cw == 15
        assert w.stage == 0

    def test_reset_after_drop(self):
        w = window()
        for _ in range(5):
            w.on_failure()
        w.reset()
        assert w.cw == 15

    def test_stage_counts_failures(self):
        w = window()
        w.on_failure()
        w.on_failure()
        assert w.stage == 2


class TestDraws:
    @given(st.integers(min_value=0, max_value=20))
    def test_draw_within_bounds(self, failures):
        w = window(seed=7)
        for _ in range(failures):
            w.on_failure()
        for _ in range(50):
            value = w.draw()
            assert 0 <= value <= w.cw

    def test_draws_cover_the_range(self):
        w = window(cw_min=7, seed=3)
        draws = {w.draw() for _ in range(500)}
        assert draws == set(range(8))

    def test_deterministic_given_seed(self):
        a = [window(seed=9).draw() for _ in range(5)]
        b = [window(seed=9).draw() for _ in range(5)]
        assert a == b


class TestValidation:
    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            BackoffWindow(0, 1023, random.Random(1))
        with pytest.raises(ConfigurationError):
            BackoffWindow(31, 15, random.Random(1))
