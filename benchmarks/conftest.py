"""Shared helpers for the benchmark/experiment harness.

Every benchmark regenerates one table or figure from the source text
(see DESIGN.md §2 and EXPERIMENTS.md).  Rendered tables are printed and
also written to ``benchmarks/results/<experiment>.txt`` so the numbers
quoted in EXPERIMENTS.md can be regenerated verbatim.
"""

import pathlib

import pytest

from repro.mac.addresses import reset_allocator

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def _fresh_state():
    reset_allocator()
    yield
    reset_allocator()


@pytest.fixture
def record_result():
    """Write (and echo) an experiment's rendered output."""

    def _record(experiment_id: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _record
