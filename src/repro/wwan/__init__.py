"""WWAN substrates: cellular generations and GEO satellite links."""

from .cellular import (
    Cell,
    CellularNetwork,
    GENERATIONS,
    Generation,
    MobileDevice,
)
from .satellite import (
    DVBS2_RATE_BPS,
    GEO_ALTITUDE_M,
    GeoSatellite,
    GroundStation,
    SatelliteLink,
    Transponder,
)

__all__ = [
    "Cell",
    "CellularNetwork",
    "DVBS2_RATE_BPS",
    "GENERATIONS",
    "GEO_ALTITUDE_M",
    "Generation",
    "GeoSatellite",
    "GroundStation",
    "MobileDevice",
    "SatelliteLink",
    "Transponder",
]
