"""Mobility models: static, linear, random waypoint."""

from .models import (
    LinearMobility,
    MobilityModel,
    RandomWaypoint,
    StaticMobility,
)

__all__ = [
    "LinearMobility",
    "MobilityModel",
    "RandomWaypoint",
    "StaticMobility",
]
