"""Tests for the power-save frame types (PS-Poll, null data)."""

import pytest
from hypothesis import given, strategies as st

from repro.mac.addresses import MacAddress
from repro.mac.frames import (
    ControlSubtype,
    DataSubtype,
    Dot11Frame,
    RTS_SIZE_BYTES,
    make_null,
    make_ps_poll,
)

TA = MacAddress.from_string("02:00:00:00:00:01")
BSSID = MacAddress.from_string("02:00:00:00:00:02")


class TestPsPoll:
    def test_is_20_bytes_like_rts(self):
        frame = make_ps_poll(TA, BSSID, aid=7)
        assert frame.wire_size_bytes() == RTS_SIZE_BYTES == 20
        assert len(frame.serialize()) == 20

    def test_duration_field_carries_the_aid(self):
        frame = make_ps_poll(TA, BSSID, aid=42)
        assert frame.duration_us == 42  # AID, not microseconds

    @given(st.integers(min_value=0, max_value=2007))
    def test_round_trip(self, aid):
        frame = make_ps_poll(TA, BSSID, aid=aid)
        parsed = Dot11Frame.parse(frame.serialize())
        assert parsed.fc.subtype == ControlSubtype.PS_POLL
        assert parsed.duration_us == aid
        assert parsed.transmitter == TA
        assert parsed.addr1 == BSSID


class TestNullFrame:
    def test_has_no_body(self):
        frame = make_null(TA, BSSID, BSSID, sequence=5,
                          power_management=True)
        assert frame.body == b""
        assert frame.fc.subtype == DataSubtype.NULL

    @given(st.booleans(), st.integers(min_value=0, max_value=4095))
    def test_round_trip_preserves_pm_bit(self, pm, sequence):
        frame = make_null(TA, BSSID, BSSID, sequence=sequence,
                          power_management=pm)
        parsed = Dot11Frame.parse(frame.serialize())
        assert parsed.fc.power_management == pm
        assert parsed.seq.sequence == sequence
        assert parsed.fc.type.name == "DATA"

    def test_to_ds_flag(self):
        uplink = make_null(TA, BSSID, BSSID, 0, True, to_ds=True)
        assert uplink.fc.to_ds
        peer = make_null(TA, BSSID, BSSID, 0, True, to_ds=False)
        assert not peer.fc.to_ds


class TestTimRoundTrip:
    @given(st.lists(st.integers(min_value=1, max_value=255), max_size=20))
    def test_beacon_tim_round_trip(self, aids):
        from repro.net.elements import BeaconBody
        body = BeaconBody(timestamp_us=0, beacon_interval_tu=100,
                          capability=1, ssid="tim-test",
                          tim_aids=tuple(aids))
        decoded = BeaconBody.decode(body.encode())
        assert set(decoded.tim_aids) == set(aids)

    def test_out_of_range_aid_rejected(self):
        from repro.core.errors import FrameError
        from repro.net.elements import BeaconBody
        body = BeaconBody(0, 100, 1, "x", tim_aids=(0,))
        with pytest.raises(FrameError):
            body.encode()
