"""The access point: beaconing, association management, bridging.

An :class:`AccessPoint` is the master of an infrastructure BSS (source
text §3): it broadcasts beacons, answers probe requests, runs the
open-system authentication and association exchanges, and bridges
traffic between its wireless stations and the distribution system.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Optional, Tuple

from ..core.engine import PeriodicTask
from ..core.errors import ProtocolError
from ..core.stats import Counter
from ..mac.addresses import BROADCAST, MacAddress
from ..mac.frames import Dot11Frame, ManagementSubtype
from .device import WirelessDevice
from .ds import DistributionSystem
from ..security.shared_key_auth import SharedKeyAuthenticator
from ..security.wep import WepCipher
from .elements import (
    AssocRequestBody,
    AssocResponseBody,
    AuthBody,
    AUTH_OPEN_SYSTEM,
    AUTH_SHARED_KEY,
    BeaconBody,
    CAP_ESS,
    CAP_PRIVACY,
    STATUS_REFUSED,
    STATUS_SUCCESS,
)

#: Beacon interval expressed in time units of 1024 us (the standard's TU).
DEFAULT_BEACON_INTERVAL_TU = 100
TU_SECONDS = 1024e-6


@dataclass
class AssociationRecord:
    """Per-station state kept by the AP."""

    address: MacAddress
    aid: int
    associated_at: float
    authenticated: bool = True
    last_seen: float = 0.0
    #: True while the station has announced power-save mode (PM bit).
    power_save: bool = False


class AccessPoint(WirelessDevice):
    """Infrastructure-mode AP for one BSS."""

    def __init__(self, *args: Any, ssid: str = "repro-net",
                 ds: Optional[DistributionSystem] = None,
                 beacon_interval_tu: int = DEFAULT_BEACON_INTERVAL_TU,
                 privacy: bool = False, max_stations: int = 2007,
                 auth_algorithm: int = AUTH_OPEN_SYSTEM,
                 wep_key: Optional[bytes] = None,
                 **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.ssid = ssid
        self.privacy = privacy
        self.auth_algorithm = auth_algorithm
        self._shared_key_auth: Optional[SharedKeyAuthenticator] = None
        if auth_algorithm == AUTH_SHARED_KEY:
            if wep_key is None:
                raise ProtocolError(
                    "shared-key authentication requires a WEP key")
            self._shared_key_auth = SharedKeyAuthenticator(
                WepCipher(wep_key),
                rng=self.sim.rng.stream(f"skauth.{ssid}"))
        self.max_stations = max_stations
        self.beacon_interval_tu = beacon_interval_tu
        self.associations: Dict[MacAddress, AssociationRecord] = {}
        self.ap_counters = Counter()
        self._next_aid = 1
        self.mac.bssid = self.address  # the BSSID is the AP's MAC address
        self.ds = ds
        if ds is not None:
            ds.attach_ap(self)
        self._beacon_task: Optional[PeriodicTask] = None
        #: Frames buffered for dozing stations: (source, payload, protected).
        self._ps_buffers: Dict[MacAddress,
                               Deque[Tuple[MacAddress, bytes, bool]]] = {}
        self.ps_buffer_limit = 64
        #: Stale-station reaping (off until start_reaping is called).
        self._reap_task: Optional[PeriodicTask] = None
        self._reap_idle_timeout: Optional[float] = None
        self._reap_interval: Optional[float] = None

    # --- BSS identity ------------------------------------------------------------

    @property
    def bssid(self) -> MacAddress:
        return self.address

    @property
    def capability(self) -> int:
        capability = CAP_ESS
        if self.privacy:
            capability |= CAP_PRIVACY
        return capability

    def is_associated(self, station: MacAddress) -> bool:
        return station in self.associations

    @property
    def station_count(self) -> int:
        return len(self.associations)

    # --- beaconing ------------------------------------------------------------

    def start_beaconing(self, offset: Optional[float] = None) -> None:
        """Begin the periodic beacon broadcast."""
        if self._beacon_task is not None:
            return
        interval = self.beacon_interval_tu * TU_SECONDS
        self._beacon_task = PeriodicTask(self.sim, interval,
                                         self._send_beacon, offset=offset)

    def stop_beaconing(self) -> None:
        if self._beacon_task is not None:
            self._beacon_task.cancel()
            self._beacon_task = None

    def _beacon_body(self) -> bytes:
        rates = tuple(mode.data_rate_bps / 1e6
                      for mode in self.radio.standard.modes[:8])
        tim_aids = tuple(
            self.associations[station].aid
            for station, buffered in self._ps_buffers.items()
            if buffered and station in self.associations
            and 1 <= self.associations[station].aid <= 255)
        return BeaconBody(
            timestamp_us=int(self.sim.now * 1e6),
            beacon_interval_tu=self.beacon_interval_tu,
            capability=self.capability,
            ssid=self.ssid,
            supported_rates_mbps=rates,
            channel=self.radio.channel_id,
            tim_aids=tim_aids,
        ).encode()

    def _send_beacon(self) -> None:
        self.ap_counters.incr("beacons")
        self.mac.send_management(ManagementSubtype.BEACON, BROADCAST,
                                 self._beacon_body())

    # --- stale-station reaping -------------------------------------------------

    def start_reaping(self, idle_timeout: float = 2.0,
                      interval: Optional[float] = None) -> None:
        """Periodically drop stations not heard from in ``idle_timeout``.

        A station that crashed (or walked out of range without
        disassociating) otherwise stays in :attr:`associations` forever,
        holding an AID, a dedup history and possibly a power-save buffer.
        Checks run every ``interval`` seconds (default: half the
        timeout).  Survives :meth:`restart` once enabled.
        """
        if self._reap_task is not None:
            return
        self._reap_idle_timeout = idle_timeout
        self._reap_interval = interval if interval is not None \
            else idle_timeout / 2.0
        self._reap_task = PeriodicTask(self.sim, self._reap_interval,
                                       self._reap_stale)

    def stop_reaping(self) -> None:
        """Disable stale-station reaping (and forget its configuration)."""
        if self._reap_task is not None:
            self._reap_task.cancel()
            self._reap_task = None
        self._reap_idle_timeout = None
        self._reap_interval = None

    def _reap_stale(self) -> None:
        now = self.sim.now
        timeout = self._reap_idle_timeout
        if timeout is None:
            return
        stale = [address for address, record in self.associations.items()
                 if now - max(record.last_seen, record.associated_at) > timeout]
        for address in stale:
            self._ps_buffers.pop(address, None)
            self.mac.dedup.forget(address)
            self._remove_station(address, "stale")

    # --- management handling ------------------------------------------------------

    def mac_management(self, frame: Dot11Frame, snr_db: float) -> None:
        subtype = ManagementSubtype(frame.fc.subtype)
        sender = frame.transmitter
        if sender is None:
            return
        if subtype == ManagementSubtype.PROBE_REQUEST:
            self._handle_probe(sender, frame.body)
        elif subtype == ManagementSubtype.AUTHENTICATION:
            self._handle_auth(sender, frame.body)
        elif subtype in (ManagementSubtype.ASSOC_REQUEST,
                         ManagementSubtype.REASSOC_REQUEST):
            self._handle_assoc(sender, frame.body)
        elif subtype == ManagementSubtype.DISASSOCIATION:
            self._remove_station(sender, "disassociation")
        elif subtype == ManagementSubtype.DEAUTHENTICATION:
            self._remove_station(sender, "deauthentication")

    def _handle_probe(self, sender: MacAddress, body: bytes) -> None:
        # A probe request carries the SSID being sought; empty = wildcard.
        try:
            request = AssocRequestBody.decode(body) if body else None
        except Exception:
            request = None
        ssid = request.ssid if request is not None else ""
        if ssid and ssid != self.ssid:
            return
        self.ap_counters.incr("probe_responses")
        self.mac.send_management(ManagementSubtype.PROBE_RESPONSE, sender,
                                 self._beacon_body())

    def _handle_auth(self, sender: MacAddress, body: bytes) -> None:
        auth = AuthBody.decode(body)
        if auth.algorithm != self.auth_algorithm:
            if auth.sequence == 1:
                self.ap_counters.incr("auth_refused")
                self._send_auth_frame(sender, AuthBody(
                    auth.algorithm, 2, STATUS_REFUSED))
            return
        if self.auth_algorithm == AUTH_OPEN_SYSTEM:
            if auth.sequence != 1:
                return
            self.ap_counters.incr("auth_ok")
            self._send_auth_frame(sender, AuthBody(
                AUTH_OPEN_SYSTEM, 2, STATUS_SUCCESS))
            return
        # Shared-key: seq 1 -> challenge; seq 3 -> verify the WEP response.
        assert self._shared_key_auth is not None
        if auth.sequence == 1:
            challenge = self._shared_key_auth.issue_challenge(
                sender.to_bytes())
            self.ap_counters.incr("auth_challenges")
            self._send_auth_frame(sender, AuthBody(
                AUTH_SHARED_KEY, 2, STATUS_SUCCESS, challenge=challenge))
        elif auth.sequence == 3:
            ok = self._shared_key_auth.verify_response(sender.to_bytes(),
                                                       auth.challenge)
            status = STATUS_SUCCESS if ok else STATUS_REFUSED
            self.ap_counters.incr("auth_ok" if ok else "auth_refused")
            self._send_auth_frame(sender, AuthBody(
                AUTH_SHARED_KEY, 4, status))

    def _send_auth_frame(self, sender: MacAddress, body: AuthBody) -> None:
        self.mac.send_management(ManagementSubtype.AUTHENTICATION, sender,
                                 body.encode())

    def _handle_assoc(self, sender: MacAddress, body: bytes) -> None:
        request = AssocRequestBody.decode(body)
        if request.ssid != self.ssid or \
                len(self.associations) >= self.max_stations:
            response = AssocResponseBody(self.capability, STATUS_REFUSED, 0)
            self.ap_counters.incr("assoc_refused")
        else:
            record = self.associations.get(sender)
            if record is None:
                record = AssociationRecord(address=sender,
                                           aid=self._next_aid,
                                           associated_at=self.sim.now)
                self._next_aid += 1
                self.associations[sender] = record
            record.last_seen = self.sim.now
            response = AssocResponseBody(self.capability, STATUS_SUCCESS,
                                         record.aid)
            self.ap_counters.incr("assoc_ok")
            if self.ds is not None:
                self.ds.station_moved(sender, self)
        self.mac.send_management(ManagementSubtype.ASSOC_RESPONSE, sender,
                                 response.encode())

    def _remove_station(self, station: MacAddress, reason: str) -> None:
        if station in self.associations:
            del self.associations[station]
            self.ap_counters.incr(f"removed_{reason}")
            if self.ds is not None:
                self.ds.station_left(station, self)

    def station_roamed_away(self, station: MacAddress) -> None:
        """DS callback: the station reassociated with another AP."""
        self.associations.pop(station, None)
        self.mac.dedup.forget(station)

    def deauthenticate(self, station: MacAddress) -> None:
        """Kick a station: send DEAUTHENTICATION and drop its state
        (load shedding, admin policy, key rotation)."""
        if station not in self.associations:
            return
        self.mac.send_management(ManagementSubtype.DEAUTHENTICATION,
                                 station, b"")
        self._remove_station(station, "deauthenticated")

    # --- bridging ------------------------------------------------------------

    def mac_receive(self, source: MacAddress, destination: MacAddress,
                    payload: bytes, meta: Dict[str, Any]) -> None:
        if not meta.get("to_ds"):
            # Stray IBSS-style frame; deliver only if explicitly for us.
            if destination == self.address:
                self.deliver_up(source, payload, meta)
            return
        if source not in self.associations:
            # Class-3 frame from a station we hold no association for.
            # Answer with a Deauthentication (IEEE 802.11 class-3 rule):
            # a station carrying stale association state — typically
            # because *we* crashed and rebooted underneath it — learns
            # immediately to re-enter the state machine instead of
            # feeding a void until beacon-loss timers notice.
            self.ap_counters.incr("unassociated_data")
            self.mac.send_management(ManagementSubtype.DEAUTHENTICATION,
                                     source, b"")
            return
        self.associations[source].last_seen = self.sim.now
        protected = bool(meta.get("protected"))
        if destination == self.address:
            self.deliver_up(source, payload, meta)
        elif destination.is_broadcast or destination.is_multicast:
            # Deliver locally, rebroadcast into the BSS, and forward to the DS.
            self.deliver_up(source, payload, meta)
            self._send_from_ds(source, destination, payload, protected)
            if self.ds is not None:
                self.ds.forward(self, source, destination, payload, meta)
        elif destination in self.associations:
            self.ap_counters.incr("intra_bss_relays")
            self._send_from_ds(source, destination, payload, protected)
        elif self.ds is not None:
            self.ds.forward(self, source, destination, payload, meta)
        else:
            self.ap_counters.incr("no_route")

    def deliver_from_ds(self, source: MacAddress, destination: MacAddress,
                        payload: bytes, protected: bool = False) -> None:
        """DS hands us a frame for one of our stations (or broadcast)."""
        if destination == self.address:
            self.deliver_up(source, payload, {"from_ds": True,
                                              "protected": protected})
            return
        if not destination.is_broadcast and not destination.is_multicast \
                and destination not in self.associations:
            self.ap_counters.incr("ds_unknown_station")
            return
        self._send_from_ds(source, destination, payload, protected)

    def _send_from_ds(self, source: MacAddress, destination: MacAddress,
                      payload: bytes, protected: bool = False) -> None:
        record = self.associations.get(destination)
        if record is not None and record.power_save:
            self._buffer_for_dozing(source, destination, payload, protected)
            return
        self.mac.send(destination, payload, protected=protected,
                      meta={"from_ds": True, "source": source})

    # --- power-save support --------------------------------------------------

    def _buffer_for_dozing(self, source: MacAddress,
                           destination: MacAddress, payload: bytes,
                           protected: bool) -> None:
        buffered = self._ps_buffers.setdefault(destination, deque())
        if len(buffered) >= self.ps_buffer_limit:
            buffered.popleft()  # drop-oldest under pressure
            self.ap_counters.incr("ps_buffer_drops")
        buffered.append((source, payload, protected))
        self.ap_counters.incr("ps_buffered")

    def mac_power_state(self, station: MacAddress,
                        power_save: bool) -> None:
        record = self.associations.get(station)
        if record is None:
            return
        was_dozing = record.power_save
        record.power_save = power_save
        if was_dozing and not power_save:
            # The station woke up for good: flush everything.
            buffered = self._ps_buffers.pop(station, deque())
            self.ap_counters.incr("ps_flushes", len(buffered) or 0)
            for source, payload, protected in buffered:
                self.mac.send(station, payload, protected=protected,
                              meta={"from_ds": True, "source": source})

    def mac_ps_poll(self, station: MacAddress, aid: int) -> None:
        record = self.associations.get(station)
        if record is None or record.aid != aid:
            self.ap_counters.incr("ps_poll_bad_aid")
            return
        buffered = self._ps_buffers.get(station)
        if not buffered:
            self.ap_counters.incr("ps_poll_empty")
            return
        source, payload, protected = buffered.popleft()
        self.ap_counters.incr("ps_poll_releases")
        self.mac.send(station, payload, protected=protected,
                      meta={"from_ds": True, "source": source,
                            "more_data": bool(buffered)})

    def buffered_for(self, station: MacAddress) -> int:
        """Frames currently held for a dozing station (diagnostics)."""
        return len(self._ps_buffers.get(station, ()))

    def send_to_station(self, destination: MacAddress, payload: bytes,
                        protected: bool = False) -> bool:
        """AP-originated traffic (the AP as a host, e.g. a captive portal).

        Routed through the same path as relayed traffic so frames for a
        dozing station are buffered and announced in the TIM."""
        if not destination.is_broadcast and destination not in self.associations:
            raise ProtocolError(f"{destination} is not associated with {self.name}")
        self._send_from_ds(self.address, destination, payload, protected)
        return True

    # --- fault injection ---------------------------------------------------------

    def crash(self) -> None:
        """Power loss: the whole BSS state evaporates, radio off.

        Beaconing stops, the association table, AID space and power-save
        buffers are dropped (the DS is told each station left, so ESS
        forwarding stops routing through us), and the MAC and radio are
        torn down.  Stations discover the outage through beacon loss —
        a crashed AP sends no disassociation frames.
        """
        self.ap_counters.incr("crashes")
        self.stop_beaconing()
        if self._reap_task is not None:
            self._reap_task.cancel()
            self._reap_task = None  # re-armed by restart(); config kept
        stations = list(self.associations)
        self.associations.clear()
        self._ps_buffers.clear()
        self._next_aid = 1
        if self.ds is not None:
            for station in stations:
                self.ds.station_left(station, self)
        self.mac.crash()
        self.radio.power_off()

    def restart(self, beacon_offset: Optional[float] = None) -> None:
        """Boot after :meth:`crash`: radio on, beaconing resumed (with a
        fresh empty association table), reaping re-armed if it had been
        configured before the crash."""
        self.ap_counters.incr("restarts")
        self.radio.power_on()
        self.start_beaconing(offset=beacon_offset)
        if self._reap_idle_timeout is not None and self._reap_task is None:
            self._reap_task = PeriodicTask(self.sim, self._reap_interval,
                                           self._reap_stale)
