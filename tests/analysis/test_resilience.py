"""Resilience metrics: PDR timelines, recovery time, reassociation."""

import math

import pytest

from repro import scenarios
from repro.analysis.resilience import (
    ReassociationProbe,
    pdr_timeline,
    recovery_time,
    route_repair_time,
    steady_state_pdr,
)


class TestPdrTimeline:
    def test_perfect_delivery_is_flat_one(self):
        offered = [0.05, 0.15, 0.25, 0.35]
        timeline = pdr_timeline(offered, offered, bin_width=0.1)
        assert [pdr for _, pdr in timeline] == [1.0] * 4
        assert [start for start, _ in timeline] == \
            pytest.approx([0.0, 0.1, 0.2, 0.3])

    def test_outage_bin_reads_zero(self):
        offered = [0.05, 0.15, 0.25]
        delivered = [0.05, 0.25]
        timeline = pdr_timeline(offered, delivered, bin_width=0.1)
        assert [pdr for _, pdr in timeline] == [1.0, 0.0, 1.0]

    def test_empty_offer_bin_is_nan_not_zero(self):
        timeline = pdr_timeline([0.05, 0.25], [0.05, 0.25],
                                bin_width=0.1)
        assert math.isnan(timeline[1][1])

    def test_backlog_flush_can_exceed_one(self):
        # Two deliveries land in a bin with one offer: the flush after
        # an outage.  Documented behaviour — PDR > 1 in that bin.
        timeline = pdr_timeline([0.05, 0.15], [0.15, 0.18],
                                bin_width=0.1)
        assert timeline[1][1] == 2.0

    def test_horizon_pads_trailing_bins(self):
        timeline = pdr_timeline([0.05], [0.05], bin_width=0.1,
                                horizon=0.5)
        assert len(timeline) == 5
        assert all(math.isnan(pdr) for _, pdr in timeline[1:])


class TestSteadyStateAndRecovery:
    def _timeline(self):
        # 1.0 until the fault at t=0.5, dip, then climb back.
        return [(0.0, 1.0), (0.1, 1.0), (0.2, 1.0), (0.3, 1.0),
                (0.4, 1.0), (0.5, 0.2), (0.6, 0.0), (0.7, 0.5),
                (0.8, 0.95), (0.9, 1.0), (1.0, 1.0)]

    def test_steady_state_mean_skips_nan(self):
        timeline = [(0.0, 1.0), (0.1, float("nan")), (0.2, 0.5)]
        assert steady_state_pdr(timeline, 0.0, 0.3) == pytest.approx(0.75)

    def test_recovery_is_first_sustained_bin(self):
        timeline = self._timeline()
        baseline = steady_state_pdr(timeline, 0.0, 0.5)
        assert baseline == pytest.approx(1.0)
        # First sustained bin is 0.8; the metric is a duration from
        # the fault, so 0.8 - 0.5.
        assert recovery_time(timeline, fault_at=0.5,
                             baseline_pdr=baseline) == pytest.approx(0.3)

    def test_unsustained_spike_does_not_count(self):
        timeline = [(0.0, 1.0), (0.1, 0.0), (0.2, 1.0), (0.3, 0.1),
                    (0.4, 1.0), (0.5, 1.0)]
        # The 0.2 spike dips again at 0.3: recovery only holds from the
        # 0.4 bin, i.e. 0.3 after the fault.
        assert recovery_time(timeline, fault_at=0.1,
                             baseline_pdr=1.0) == pytest.approx(0.3)

    def test_never_recovering_returns_none(self):
        timeline = [(0.0, 1.0), (0.1, 0.1), (0.2, 0.2)]
        assert recovery_time(timeline, fault_at=0.1,
                             baseline_pdr=1.0) is None

    def test_route_repair_time(self):
        delivered = [0.1, 0.2, 0.9, 1.0]
        assert route_repair_time(delivered, fault_at=0.5) == \
            pytest.approx(0.4)
        assert route_repair_time([0.1], fault_at=0.5) is None


class TestReassociationProbe:
    def test_crash_restart_cycle_is_measured(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=1)
        station = bss.stations[0]
        probe = ReassociationProbe(sim, station)
        crash_at = sim.now + 0.1
        sim.schedule_at(crash_at, station.crash)
        sim.schedule_at(crash_at + 0.2, station.restart)
        sim.run(until=crash_at + 5.0)
        assert station.associated
        assert probe.reassociations == 1
        outage = probe.time_to_reassociate(after=crash_at)
        assert outage is not None
        assert 0.2 < outage < 5.0
        spans = probe.outage_spans()
        assert len(spans) == 1
        begin, end = spans[0]
        assert begin == pytest.approx(crash_at)
        assert end - begin == pytest.approx(outage)

    def test_no_outage_no_spans(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=1)
        probe = ReassociationProbe(sim, bss.stations[0])
        sim.run(until=sim.now + 1.0)
        assert probe.reassociations == 0
        assert probe.outage_spans() == []
        assert probe.time_to_reassociate(after=0.0) is None
