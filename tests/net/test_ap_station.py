"""Integration tests: AP + station association and data relay."""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import ProtocolError
from repro.mac.addresses import BROADCAST
from repro.net.ap import AccessPoint
from repro.net.station import Station, StationState
from repro.phy.channel import Medium
from repro.phy.propagation import LogDistance
from repro.phy.standards import DOT11G


def build_bss(sim, station_count=2, ssid="testnet", ap_kwargs=None):
    medium = Medium(sim, LogDistance(2.4e9, exponent=3.0))
    ap = AccessPoint(sim, medium, DOT11G, Position(0, 0, 0), name="ap",
                     ssid=ssid, **(ap_kwargs or {}))
    ap.start_beaconing()
    stations = [Station(sim, medium, DOT11G, Position(10.0 + i, 0, 0),
                        name=f"sta{i}") for i in range(station_count)]
    return medium, ap, stations


class TestAssociation:
    def test_station_walks_the_state_machine(self, sim):
        _, ap, (sta,) = build_bss(sim, 1)
        hooks = []
        sta.on_associated(hooks.append)
        sta.associate("testnet")
        sim.run(until=2.0)
        assert sta.state == StationState.ASSOCIATED
        assert sta.serving_ap == ap.bssid
        assert sta.mac.bssid == ap.bssid
        assert hooks == [ap.bssid]
        assert ap.is_associated(sta.address)

    def test_aids_are_unique(self, sim):
        _, ap, stations = build_bss(sim, 3)
        for sta in stations:
            sta.associate("testnet")
        sim.run(until=3.0)
        aids = [record.aid for record in ap.associations.values()]
        assert len(set(aids)) == 3

    def test_wrong_ssid_never_associates(self, sim):
        _, ap, (sta,) = build_bss(sim, 1)
        sta.associate("not-this-network")
        sim.run(until=3.0)
        assert sta.state != StationState.ASSOCIATED
        assert ap.station_count == 0

    def test_station_limit_refused(self, sim):
        _, ap, stations = build_bss(sim, 3,
                                    ap_kwargs={"max_stations": 2})
        for sta in stations:
            sta.associate("testnet")
        sim.run(until=5.0)
        assert ap.station_count == 2
        refused = [sta for sta in stations if not sta.associated]
        assert len(refused) == 1
        assert refused[0].sta_counters.get("assoc_refused") >= 1

    def test_beacons_populate_tracker(self, sim):
        _, ap, (sta,) = build_bss(sim, 1)
        sim.run(until=1.0)
        observation = sta.tracker.get(ap.bssid)
        assert observation is not None
        assert observation.ssid == "testnet"
        assert observation.beacons >= 5

    def test_privacy_capability_advertised(self, sim):
        _, ap, (sta,) = build_bss(sim, 1, ap_kwargs={"privacy": True})
        sim.run(until=0.5)
        from repro.net.elements import CAP_PRIVACY
        observation = sta.tracker.get(ap.bssid)
        assert observation.capability & CAP_PRIVACY


class TestDataPath:
    def test_send_requires_association(self, sim):
        _, ap, (sta,) = build_bss(sim, 1)
        with pytest.raises(ProtocolError):
            sta.send(ap.address, b"too early")

    def test_station_to_station_via_ap(self, sim):
        _, ap, (a, b) = build_bss(sim)
        a.associate("testnet")
        b.associate("testnet")
        sim.run(until=2.0)
        inbox = []
        b.on_receive(lambda src, payload, meta: inbox.append((src, payload)))
        a.send(b.address, b"relayed")
        sim.run(until=3.0)
        assert inbox == [(a.address, b"relayed")]
        assert ap.ap_counters.get("intra_bss_relays") == 1

    def test_station_to_ap_host_traffic(self, sim):
        _, ap, (sta,) = build_bss(sim, 1)
        sta.associate("testnet")
        sim.run(until=2.0)
        inbox = []
        ap.on_receive(lambda src, payload, meta: inbox.append(payload))
        sta.send(ap.address, b"for the ap itself")
        sim.run(until=3.0)
        assert inbox == [b"for the ap itself"]

    def test_ap_to_station_downlink(self, sim):
        _, ap, (sta,) = build_bss(sim, 1)
        sta.associate("testnet")
        sim.run(until=2.0)
        inbox = []
        sta.on_receive(lambda src, payload, meta: inbox.append(payload))
        ap.send_to_station(sta.address, b"downlink")
        sim.run(until=3.0)
        assert inbox == [b"downlink"]

    def test_ap_rejects_downlink_to_stranger(self, sim):
        _, ap, (sta,) = build_bss(sim, 1)
        with pytest.raises(ProtocolError):
            ap.send_to_station(sta.address, b"x")

    def test_broadcast_reaches_all_stations(self, sim):
        _, ap, stations = build_bss(sim, 3)
        for sta in stations:
            sta.associate("testnet")
        sim.run(until=3.0)
        inboxes = {sta.name: [] for sta in stations}
        for sta in stations:
            sta.on_receive(
                lambda src, p, m, name=sta.name: inboxes[name].append(p))
        stations[0].send(BROADCAST, b"hello all")
        sim.run(until=4.0)
        # The other two stations get the AP's rebroadcast.
        assert inboxes["sta1"] == [b"hello all"]
        assert inboxes["sta2"] == [b"hello all"]

    def test_unassociated_sender_ignored(self, sim):
        """Class-3 data from a station that never associated is dropped."""
        medium, ap, (a, b) = build_bss(sim)
        b.associate("testnet")
        sim.run(until=2.0)
        inbox = []
        b.on_receive(lambda src, p, m: inbox.append(p))
        # Bypass the Station guard and push a to_ds frame directly,
        # spoofing the BSSID the way a rogue sender would.
        a.mac.bssid = ap.bssid
        a.mac.send(b.address, b"sneaky", meta={"to_ds": True})
        sim.run(until=3.0)
        assert inbox == []
        assert ap.ap_counters.get("unassociated_data") == 1


class TestAdhoc:
    def test_peer_to_peer_without_ap(self, sim):
        medium = Medium(sim, LogDistance(2.4e9, exponent=3.0))
        from repro.net.bss import IndependentBss
        ibss = IndependentBss.start(sim)
        a = Station(sim, medium, DOT11G, Position(0, 0, 0), name="a",
                    adhoc=True, ibss_bssid=ibss.bssid)
        b = Station(sim, medium, DOT11G, Position(5, 0, 0), name="b",
                    adhoc=True, ibss_bssid=ibss.bssid)
        ibss.join(a)
        ibss.join(b)
        inbox = []
        b.on_receive(lambda src, p, m: inbox.append(p))
        a.send(b.address, b"direct")
        sim.run(until=1.0)
        assert inbox == [b"direct"]

    def test_adhoc_station_cannot_scan(self, sim):
        medium = Medium(sim, LogDistance(2.4e9, exponent=3.0))
        sta = Station(sim, medium, DOT11G, Position(0, 0, 0), adhoc=True)
        with pytest.raises(ProtocolError):
            sta.start_scan("anything")
