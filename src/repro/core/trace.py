"""Structured event tracing.

Every protocol entity can record what it did and when.  Traces are the
ground truth for debugging MAC interleavings ("who held the medium at
t=1.2034?") and they back several tests that assert on protocol event
*ordering* rather than only on aggregate counters.

A :class:`TraceLog` is a bounded, filterable, in-memory list of
:class:`TraceRecord` entries.  It is intentionally simple — no file I/O
in the hot path; callers can dump to text after the run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced protocol event."""

    time: float
    source: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """Render as a single human-readable line."""
        parts = [f"{self.time * 1e6:12.3f}us", self.source, self.event]
        if self.detail:
            kv = " ".join(f"{key}={value}" for key, value in sorted(self.detail.items()))
            parts.append(kv)
        return "  ".join(parts)


class TraceLog:
    """Bounded in-memory trace collector.

    Parameters
    ----------
    capacity:
        Maximum records retained; older records are discarded FIFO.
        ``None`` means unbounded (use in tests, not long runs).
    enabled:
        Tracing can be disabled wholesale for performance-sensitive
        benchmark runs; :meth:`record` then becomes a cheap no-op.
    """

    def __init__(self, capacity: Optional[int] = 100_000, enabled: bool = True):
        self._records: List[TraceRecord] = []
        self._capacity = capacity
        self._dropped = 0
        self.enabled = enabled

    def record(self, time: float, source: str, event: str, **detail: Any) -> None:
        """Append a trace record (no-op when tracing is disabled)."""
        if not self.enabled:
            return
        self._records.append(TraceRecord(time, source, event, detail))
        if self._capacity is not None and len(self._records) > self._capacity:
            overflow = len(self._records) - self._capacity
            del self._records[:overflow]
            self._dropped += overflow

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def dropped(self) -> int:
        """Records discarded due to the capacity bound."""
        return self._dropped

    def clear(self) -> None:
        self._records.clear()

    def select(self, source: Optional[str] = None, event: Optional[str] = None,
               predicate: Optional[Callable[[TraceRecord], bool]] = None
               ) -> List[TraceRecord]:
        """Filter records by source and/or event name and/or a predicate."""
        result = []
        for record in self._records:
            if source is not None and record.source != source:
                continue
            if event is not None and record.event != event:
                continue
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result

    def events(self, event: str) -> List[TraceRecord]:
        """Shorthand for :meth:`select` on event name only."""
        return self.select(event=event)

    def format(self, limit: Optional[int] = None) -> str:
        """Render the (tail of the) trace as text."""
        records = self._records if limit is None else self._records[-limit:]
        return "\n".join(record.format() for record in records)
