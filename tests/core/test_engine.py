"""Tests for the discrete-event kernel."""

import math

import pytest

from repro.core import SchedulingError, SimulationError, Simulator
from repro.core.engine import PeriodicTask


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(0.3, fired.append, "c")
        sim.schedule(0.1, fired.append, "a")
        sim.schedule(0.2, fired.append, "b")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self, sim):
        fired = []
        for label in "abcdef":
            sim.schedule(1.0, fired.append, label)
        sim.run()
        assert fired == list("abcdef")

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(-0.1, lambda: None)

    def test_nan_and_inf_delays_rejected(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule(math.nan, lambda: None)
        with pytest.raises(SchedulingError):
            sim.schedule(math.inf, lambda: None)

    def test_schedule_at_before_now_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SchedulingError):
            sim.schedule_at(0.5, lambda: None)

    def test_args_are_passed(self, sim):
        received = []
        sim.schedule(0.1, lambda a, b: received.append((a, b)), 1, "x")
        sim.run()
        assert received == [(1, "x")]

    def test_call_now_runs_after_current_event(self, sim):
        order = []

        def outer():
            sim.call_now(order.append, "inner")
            order.append("outer")

        sim.schedule(0.1, outer)
        sim.run()
        assert order == ["outer", "inner"]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule(0.1, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule(0.1, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_count_excludes_cancelled(self, sim):
        keep = sim.schedule(0.1, lambda: None)
        drop = sim.schedule(0.2, lambda: None)
        drop.cancel()
        assert sim.pending_events == 1
        assert keep.pending


class TestRunControl:
    def test_run_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=2.0)
        assert fired == ["early"]
        assert sim.now == 2.0

    def test_until_advances_clock_even_with_no_events(self, sim):
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_remaining_events_fire_on_second_run(self, sim):
        fired = []
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=1.0)
        sim.run(until=10.0)
        assert fired == ["late"]

    def test_stop_halts_processing(self, sim):
        fired = []
        sim.schedule(0.1, lambda: (fired.append("first"), sim.stop()))
        sim.schedule(0.2, fired.append, "second")
        sim.run()
        assert fired == ["first"]

    def test_max_events_budget(self, sim):
        fired = []
        for index in range(10):
            sim.schedule(0.1 * (index + 1), fired.append, index)
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_reentrant_run_rejected(self, sim):
        def nested():
            sim.run()

        sim.schedule(0.1, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_clear_cancels_everything(self, sim):
        fired = []
        sim.schedule(0.1, fired.append, "x")
        sim.clear()
        sim.run()
        assert fired == []

    def test_events_executed_counter(self, sim):
        for index in range(4):
            sim.schedule(0.1, lambda: None)
        sim.run()
        assert sim.events_executed == 4


class TestPeriodicTask:
    def test_fires_at_period(self, sim):
        times = []
        PeriodicTask(sim, 0.5, lambda: times.append(sim.now))
        sim.run(until=2.1)
        assert times == pytest.approx([0.5, 1.0, 1.5, 2.0])

    def test_offset_controls_first_firing(self, sim):
        times = []
        PeriodicTask(sim, 1.0, lambda: times.append(sim.now), offset=0.25)
        sim.run(until=2.5)
        assert times == pytest.approx([0.25, 1.25, 2.25])

    def test_cancel_stops_firing(self, sim):
        count = []
        task = PeriodicTask(sim, 0.5, lambda: count.append(1))
        sim.run(until=1.1)
        task.cancel()
        sim.run(until=5.0)
        assert len(count) == 2
        assert not task.active

    def test_cancel_inside_callback(self, sim):
        task_box = {}

        def fire_once():
            task_box["task"].cancel()

        task_box["task"] = PeriodicTask(sim, 0.5, fire_once)
        sim.run(until=5.0)
        assert task_box["task"].fired == 1

    def test_zero_period_rejected(self, sim):
        with pytest.raises(SchedulingError):
            PeriodicTask(sim, 0.0, lambda: None)


class TestFastScheduling:
    def test_schedule_fast_fires_in_order_with_handles(self, sim):
        fired = []
        sim.schedule(0.2, fired.append, "handle")
        sim.schedule_fast(0.1, fired.append, "fast")
        sim.schedule_fast_at(0.3, fired.append, "fast-at")
        sim.run()
        assert fired == ["fast", "handle", "fast-at"]

    def test_schedule_fast_ties_respect_scheduling_order(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule_fast(1.0, fired.append, "b")
        sim.schedule(1.0, fired.append, "c")
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_schedule_fast_validates_like_schedule(self, sim):
        with pytest.raises(SchedulingError):
            sim.schedule_fast(-0.1, lambda: None)
        with pytest.raises(SchedulingError):
            sim.schedule_fast(math.nan, lambda: None)
        with pytest.raises(SchedulingError):
            sim.schedule_fast_at(-1.0, lambda: None)

    def test_schedule_fast_counts_as_pending(self, sim):
        sim.schedule_fast(0.5, lambda: None)
        assert sim.pending_events == 1
        sim.run()
        assert sim.pending_events == 0

    def test_clear_drops_fast_events(self, sim):
        fired = []
        sim.schedule_fast(0.1, fired.append, "x")
        sim.clear()
        sim.run()
        assert fired == []
        assert sim.pending_events == 0


class TestPendingCounter:
    def test_counter_tracks_schedule_execute_cancel(self, sim):
        handles = [sim.schedule(0.1 * (i + 1), lambda: None)
                   for i in range(4)]
        assert sim.pending_events == 4
        handles[0].cancel()
        assert sim.pending_events == 3
        sim.run(until=0.25)  # fires events at 0.2 (0.1 was cancelled)
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0

    def test_cancel_after_firing_does_not_skew_counter(self, sim):
        handle = sim.schedule(0.1, lambda: None)
        sim.run()
        handle.cancel()  # late cancel of an already-fired event
        assert sim.pending_events == 0
        assert not handle.pending

    def test_run_until_boundary_keeps_future_event_pending(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, "early")
        sim.schedule(5.0, fired.append, "late")
        sim.run(until=2.0)
        assert sim.pending_events == 1
        sim.run()
        assert fired == ["early", "late"]


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def run(seed):
            sim = Simulator(seed=seed)
            rng = sim.rng.stream("test")
            values = []
            for _ in range(5):
                sim.schedule(rng.random(), lambda: values.append(sim.now))
            sim.run()
            return values

        assert run(7) == run(7)
        assert run(7) != run(8)
