"""Tests for the WiMAX substrate (Fig 1.7 behaviour)."""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import LinkError
from repro.wman.wimax import (
    BURST_PROFILES,
    SubscriberStation,
    WimaxBand,
    WimaxBaseStation,
)


def bs_with_subscribers(sim, distances, band=WimaxBand.NLOS, los=False):
    bs = WimaxBaseStation(sim, Position(0, 0, 0), band=band)
    subscribers = []
    for index, distance in enumerate(distances):
        ss = SubscriberStation(f"ss{index}", Position(distance, 0, 0),
                               line_of_sight=los)
        bs.attach(ss)
        subscribers.append(ss)
    return bs, subscribers


class TestLinkBudget:
    def test_peak_rate_near_70mbps(self, sim):
        bs = WimaxBaseStation(sim, Position(0, 0, 0))
        assert bs.peak_rate_bps() == pytest.approx(70e6, rel=0.1)

    def test_coverage_tens_of_km(self, sim):
        bs = WimaxBaseStation(sim, Position(0, 0, 0))
        assert 20_000 < bs.max_range_m() < 80_000

    def test_profile_degrades_with_distance(self, sim):
        bs = WimaxBaseStation(sim, Position(0, 0, 0))
        efficiencies = []
        for distance in (500, 2_000, 8_000, 20_000):
            ss = SubscriberStation("probe", Position(distance, 0, 0))
            profile = bs.link_profile(ss)
            assert profile is not None
            efficiencies.append(profile[1])
        assert efficiencies == sorted(efficiencies, reverse=True)

    def test_out_of_coverage_attach_rejected(self, sim):
        bs = WimaxBaseStation(sim, Position(0, 0, 0))
        far = SubscriberStation("far", Position(500_000, 0, 0))
        with pytest.raises(LinkError):
            bs.attach(far)

    def test_los_band_requires_line_of_sight(self, sim):
        bs = WimaxBaseStation(sim, Position(0, 0, 0), band=WimaxBand.LOS)
        nlos_subscriber = SubscriberStation("indoor", Position(1_000, 0, 0),
                                            line_of_sight=False)
        with pytest.raises(LinkError, match="line of sight"):
            bs.attach(nlos_subscriber)

    def test_los_band_accepts_los_subscriber(self, sim):
        bs = WimaxBaseStation(sim, Position(0, 0, 0), band=WimaxBand.LOS)
        tower = SubscriberStation("tower", Position(2_000, 0, 0),
                                  line_of_sight=True)
        bs.attach(tower)
        assert bs.link_profile(tower) is not None


class TestScheduler:
    def test_single_subscriber_gets_full_downlink(self, sim):
        bs, (ss,) = bs_with_subscribers(sim, [1_000])
        bs.start()
        ss.offer_downlink(100_000_000)
        horizon = 2.0
        sim.run(until=horizon)
        rate = ss.delivered_bytes * 8 / horizon
        # Near subscriber at the top profile: close to the DL share of peak.
        assert rate > 0.5 * bs.peak_rate_bps()

    def test_airtime_shared_equally_among_backlogged(self, sim):
        bs, subscribers = bs_with_subscribers(sim, [1_000] * 4)
        bs.start()
        for ss in subscribers:
            ss.offer_downlink(100_000_000)
        sim.run(until=2.0)
        delivered = [ss.delivered_bytes for ss in subscribers]
        assert max(delivered) - min(delivered) <= delivered[0] * 0.05

    def test_far_subscriber_moves_fewer_bytes_per_slot(self, sim):
        """Equal airtime, worse modulation: the distance penalty."""
        bs, (near, far) = bs_with_subscribers(sim, [1_000, 30_000])
        assert bs.link_profile(near)[1] > bs.link_profile(far)[1]
        bs.start()
        near.offer_downlink(100_000_000)
        far.offer_downlink(100_000_000)
        sim.run(until=2.0)
        ratio = bs.link_profile(near)[1] / bs.link_profile(far)[1]
        assert near.delivered_bytes == pytest.approx(
            far.delivered_bytes * ratio, rel=0.05)

    def test_idle_subscribers_consume_nothing(self, sim):
        bs, (active, idle) = bs_with_subscribers(sim, [1_000, 1_000])
        bs.start()
        active.offer_downlink(10_000_000)
        sim.run(until=2.0)
        assert idle.delivered_bytes == 0
        assert active.delivered_bytes == 10_000_000

    def test_no_contention_no_loss(self, sim):
        """Scheduled MAC: every offered byte is eventually delivered."""
        bs, subscribers = bs_with_subscribers(sim, [1_000, 5_000, 10_000])
        bs.start()
        for ss in subscribers:
            ss.offer_downlink(1_000_000)
        sim.run(until=5.0)
        assert all(ss.delivered_bytes == 1_000_000 for ss in subscribers)

    def test_stop_halts_scheduling(self, sim):
        bs, (ss,) = bs_with_subscribers(sim, [1_000])
        bs.start()
        ss.offer_downlink(100_000_000)
        sim.run(until=0.5)
        bs.stop()
        delivered_at_stop = ss.delivered_bytes
        sim.run(until=1.0)
        assert ss.delivered_bytes == delivered_at_stop


class TestBurstProfiles:
    def test_ladder_ordered(self):
        efficiencies = [profile[1] for profile in BURST_PROFILES]
        snrs = [profile[2] for profile in BURST_PROFILES]
        assert efficiencies == sorted(efficiencies)
        assert snrs == sorted(snrs)
