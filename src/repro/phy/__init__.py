"""Physical layer: propagation, modulation, standards, medium, radios."""

from .channel import ENERGY_ONLY, Medium, Transmission
from .error_models import (
    BerErrorModel,
    ErrorModel,
    FixedPerErrorModel,
    SnrThresholdErrorModel,
)
from .interference import CaptureModel, SinrTracker
from .modulation import Modulation, q_function
from .propagation import (
    FixedLoss,
    FreeSpace,
    LogDistance,
    PropagationModel,
    RangePropagation,
    Shadowing,
    TwoRayGround,
    max_range_for_budget,
)
from .standards import (
    DOT11A,
    DOT11AC,
    DOT11B,
    DOT11G,
    DOT11N,
    DOT11_LEGACY,
    PhyMode,
    PhyStandard,
    STANDARDS,
    get_standard,
)
from .transceiver import PhyListener, Radio, RadioConfig, RadioState

__all__ = [
    "BerErrorModel",
    "ENERGY_ONLY",
    "CaptureModel",
    "DOT11A",
    "DOT11AC",
    "DOT11B",
    "DOT11G",
    "DOT11N",
    "DOT11_LEGACY",
    "ErrorModel",
    "FixedLoss",
    "FixedPerErrorModel",
    "FreeSpace",
    "LogDistance",
    "Medium",
    "Modulation",
    "PhyListener",
    "PhyMode",
    "PhyStandard",
    "PropagationModel",
    "q_function",
    "Radio",
    "RadioConfig",
    "RadioState",
    "RangePropagation",
    "STANDARDS",
    "Shadowing",
    "SinrTracker",
    "SnrThresholdErrorModel",
    "Transmission",
    "TwoRayGround",
    "get_standard",
    "max_range_for_budget",
]
