"""ASCII table rendering for benchmark output.

Every benchmark regenerates a table or figure from the source text;
this module renders them uniformly so EXPERIMENTS.md can quote the
output verbatim.  Numeric cells can carry per-column formatting.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence


def format_value(value: Any, spec: Optional[str]) -> str:
    if value is None:
        return "-"
    if spec is not None and isinstance(value, (int, float)):
        return format(value, spec)
    return str(value)


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence[Any]],
                 formats: Optional[Sequence[Optional[str]]] = None) -> str:
    """Render a boxed ASCII table.

    ``formats`` optionally gives a format spec per column
    (e.g. ``".1f"``); None columns use ``str``.
    """
    if formats is None:
        formats = [None] * len(headers)
    if len(formats) != len(headers):
        raise ValueError("formats must match headers")
    rendered_rows: List[List[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}")
        rendered_rows.append([format_value(cell, spec)
                              for cell, spec in zip(row, formats)])
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(cell.ljust(width)
                                 for cell, width in zip(cells, widths)) + " |"

    separator = "+-" + "-+-".join("-" * width for width in widths) + "-+"
    parts = [f"== {title} ==", separator, line(headers), separator]
    for row in rendered_rows:
        parts.append(line(row))
    parts.append(separator)
    return "\n".join(parts)


def render_series(title: str, x_label: str, y_labels: Sequence[str],
                  points: Sequence[Sequence[Any]],
                  formats: Optional[Sequence[Optional[str]]] = None) -> str:
    """Render a figure's data series as a table (x column + y columns)."""
    headers = [x_label, *y_labels]
    return render_table(title, headers, points, formats)
