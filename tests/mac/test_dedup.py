"""Tests for receiver-side duplicate detection."""

from repro.mac.addresses import MacAddress
from repro.mac.dedup import DuplicateCache

TA = MacAddress.from_string("02:00:00:00:00:01")
TB = MacAddress.from_string("02:00:00:00:00:02")


class TestDuplicateCache:
    def test_first_sighting_is_not_duplicate(self):
        cache = DuplicateCache()
        assert not cache.is_duplicate(TA, 1, 0, retry=False)

    def test_retry_of_seen_tuple_is_duplicate(self):
        cache = DuplicateCache()
        cache.is_duplicate(TA, 1, 0, retry=False)
        assert cache.is_duplicate(TA, 1, 0, retry=True)
        assert cache.duplicates_dropped == 1

    def test_non_retry_repeat_is_wraparound_not_duplicate(self):
        cache = DuplicateCache()
        cache.is_duplicate(TA, 1, 0, retry=False)
        assert not cache.is_duplicate(TA, 1, 0, retry=False)

    def test_per_sender_separation(self):
        cache = DuplicateCache()
        cache.is_duplicate(TA, 1, 0, retry=False)
        assert not cache.is_duplicate(TB, 1, 0, retry=True)

    def test_fragments_tracked_separately(self):
        cache = DuplicateCache()
        cache.is_duplicate(TA, 1, 0, retry=False)
        assert not cache.is_duplicate(TA, 1, 1, retry=True)

    def test_history_bound_evicts_oldest(self):
        cache = DuplicateCache(history_per_sender=2)
        cache.is_duplicate(TA, 1, 0, retry=False)
        cache.is_duplicate(TA, 2, 0, retry=False)
        cache.is_duplicate(TA, 3, 0, retry=False)  # evicts (1, 0)
        assert not cache.is_duplicate(TA, 1, 0, retry=True)

    def test_sender_cap_evicts_lru(self):
        cache = DuplicateCache(max_senders=2)
        a = MacAddress(1)
        b = MacAddress(2)
        c = MacAddress(3)
        cache.is_duplicate(a, 1, 0, retry=False)
        cache.is_duplicate(b, 1, 0, retry=False)
        cache.is_duplicate(c, 1, 0, retry=False)  # evicts a
        assert not cache.is_duplicate(a, 1, 0, retry=True)

    def test_forget(self):
        cache = DuplicateCache()
        cache.is_duplicate(TA, 1, 0, retry=False)
        cache.forget(TA)
        assert not cache.is_duplicate(TA, 1, 0, retry=True)
