"""DSDV: destination-sequenced distance-vector routing.

A faithful-in-spirit implementation of Perkins & Bhagwat's DSDV on top
of the mesh control channel:

* every node periodically broadcasts its **full table**, leading with
  its own entry at metric 0 and an **even** own-sequence number bumped
  each dump — sequence freshness is what makes distance-vector loops
  impossible,
* receiving a dump installs/refreshes routes by the classic rule:
  *newer sequence wins; equal sequence, better metric wins; the current
  next hop's word about its own routes is always believed*,
* **triggered updates** go out (jittered, rate-limited) when
  *significant* information changes — a new destination, a next-hop or
  metric change, or a break — so route information floods the mesh in
  hop-count time rather than one hop per period,
* a **link break** (reported by the MAC retry-limit path through
  :meth:`on_link_failure`) marks every route through the dead neighbor
  with an infinite metric and an **odd** sequence one above the last
  known — downstream nodes adopt the break, and the destination's next
  periodic dump (with a higher even sequence) repairs the mesh.

All timing rides on reusable kernel
:class:`~repro.core.engine.Timer` objects with per-node RNG-stream
jitter, so convergence is fast, collision-shy, and bit-reproducible
under a fixed seed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.engine import Timer
from ..core.errors import ConfigurationError
from ..mac.addresses import MacAddress
from .packet import (INFINITE_METRIC, RouteAdvert, decode_dsdv_update,
                     encode_dsdv_update)
from .protocol import RouteEntry, RoutingProtocol


@dataclass
class DsdvConfig:
    """Protocol timing knobs."""

    #: Full-table broadcast interval.
    period: float = 0.25
    #: Jitter fraction applied to every periodic interval (desynchronizes
    #: neighbors that booted in lockstep).
    jitter: float = 0.2
    #: Delay before a triggered update fires (batches a burst of changes).
    triggered_delay: float = 0.02
    #: Minimum spacing between consecutive update transmissions.
    min_update_gap: float = 0.05

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ConfigurationError(f"period must be > 0: {self.period}")
        if not 0 <= self.jitter < 1:
            raise ConfigurationError(f"jitter must be in [0, 1): {self.jitter}")
        if self.triggered_delay < 0 or self.min_update_gap < 0:
            raise ConfigurationError("delays must be >= 0")


class DsdvRouting(RoutingProtocol):
    """Periodic + triggered distance-vector routing with sequence numbers."""

    name = "dsdv"

    def __init__(self, config: Optional[DsdvConfig] = None):
        super().__init__()
        self.config = config if config is not None else DsdvConfig()
        self._table: Dict[MacAddress, RouteEntry] = {}
        self._sequence = 0          # own destination sequence (kept even)
        self._last_update_tx = -math.inf
        self._rng = None
        self._periodic: Optional[Timer] = None
        self._triggered: Optional[Timer] = None
        self._running = False

    # --- lifecycle ---------------------------------------------------------

    def attach(self, node) -> None:
        super().attach(node)
        self._rng = node.sim.rng.stream(f"dsdv.{node.address}")
        self._periodic = Timer(node.sim, self._periodic_fire)
        self._triggered = Timer(node.sim, self._send_update)

    def start(self) -> None:
        """Begin advertising; the first dump is jitter-delayed so
        co-booted nodes don't broadcast in lockstep."""
        assert self.node is not None, "attach() before start()"
        self._running = True
        self._periodic.schedule(
            self.config.period * self.config.jitter * self._rng.random())

    def stop(self) -> None:
        self._running = False
        if self._periodic is not None:
            self._periodic.cancel()
        if self._triggered is not None:
            self._triggered.cancel()

    def restart(self) -> None:
        """Rejoin the mesh after a crash: cleared table, fresh even seq.

        The crashed node's routing table is RAM and is gone, but its own
        sequence number must keep monotonically out-running whatever the
        mesh still holds for us — including odd "broken" sequences a
        transit node advertised during the outage.  The protocol object
        survives the crash, so the retained counter is bumped by 2
        (staying even, per the paper's destination-sequencing rule) —
        the DSDV equivalent of stable storage.  Should neighbors still
        out-advertise us, :meth:`on_control`'s broken-route self-defense
        bumps past them on first contact.  The first announce is
        jitter-delayed by :meth:`start` exactly like a cold boot.
        """
        self._table.clear()
        self._sequence += 2
        self._last_update_tx = -math.inf
        self.start()

    # --- table queries -----------------------------------------------------

    def next_hop(self, destination: MacAddress) -> Optional[MacAddress]:
        entry = self._table.get(destination)
        if entry is None or entry.metric >= INFINITE_METRIC:
            return None
        return entry.next_hop

    def routes(self) -> Dict[MacAddress, RouteEntry]:
        return dict(self._table)

    def reachable_destinations(self) -> List[MacAddress]:
        return [destination for destination, entry in self._table.items()
                if entry.metric < INFINITE_METRIC]

    # --- advertisement -----------------------------------------------------

    def _entries(self) -> List[RouteAdvert]:
        """The full dump, own entry first (metric 0, freshest sequence)."""
        assert self.node is not None
        entries: List[RouteAdvert] = [(self.node.address, 0, self._sequence)]
        for destination, entry in self._table.items():
            entries.append((destination, entry.metric, entry.sequence))
        return entries

    def _periodic_fire(self) -> None:
        if not self._running:
            return
        # Each dump advertises a fresh even sequence: the heartbeat that
        # out-dates any stale or broken route others hold toward us.
        self._sequence += 2
        self._send_update()
        jitter = self.config.jitter
        self._periodic.schedule(
            self.config.period * (1.0 - jitter / 2.0 + jitter * self._rng.random()))

    def _send_update(self) -> None:
        if not self._running:
            return
        now = self.node.sim.now
        # Rate limit on the *absolute* next-allowed instant: the retry
        # is scheduled exactly at it, so the re-check compares the same
        # float and fires (a relative `gap` re-arm can underflow into a
        # zero-advance delay and livelock the timer at one instant).
        allowed_at = self._last_update_tx + self.config.min_update_gap
        if now < allowed_at:
            self._triggered.schedule_at(allowed_at)
            return
        self._last_update_tx = now
        self.node.send_control(encode_dsdv_update(self._entries()))

    def _schedule_triggered(self) -> None:
        if not self._running or self._triggered.armed:
            return
        self._triggered.schedule(
            self.config.triggered_delay * (0.5 + self._rng.random()))

    # --- update processing -------------------------------------------------

    def on_control(self, transmitter: MacAddress, payload: bytes) -> None:
        adverts = decode_dsdv_update(payload)
        if adverts is None or self.node is None:
            return
        now = self.node.sim.now
        significant = False
        routes_gained = 0
        for destination, metric, sequence in adverts:
            if destination == self.node.address:
                # Someone advertises a *broken* route to us: out-run it
                # with a fresh, higher even sequence of our own.
                if metric >= INFINITE_METRIC and sequence > self._sequence:
                    self._sequence = sequence + (1 if sequence % 2 else 2)
                    significant = True
                continue
            advertised = metric + 1 if metric < INFINITE_METRIC \
                else INFINITE_METRIC
            current = self._table.get(destination)
            adopt = False
            if current is None:
                adopt = advertised < INFINITE_METRIC
            elif sequence > current.sequence:
                adopt = True
            elif sequence == current.sequence and advertised < current.metric:
                adopt = True
            elif current.next_hop == transmitter and \
                    sequence >= current.sequence:
                # Our next hop's own view of this route always stands.
                adopt = True
            if not adopt:
                continue
            was_reachable = current is not None and \
                current.metric < INFINITE_METRIC
            changed = current is None or current.metric != advertised \
                or current.next_hop != transmitter
            if current is None:
                self._table[destination] = RouteEntry(
                    destination, transmitter, advertised, sequence, now)
            else:
                current.next_hop = transmitter
                current.metric = advertised
                current.sequence = sequence
                current.updated_at = now
            if changed:
                significant = True
                if advertised < INFINITE_METRIC and not was_reachable:
                    routes_gained += 1   # per route, mirroring routes_broken
                if advertised >= INFINITE_METRIC and was_reachable:
                    self.node.counters.incr("routes_lost")
        if routes_gained:
            self.node.counters.incr("routes_gained", routes_gained)
            self.node.flush_pending()
        if significant:
            self._schedule_triggered()

    # --- failure handling --------------------------------------------------

    def on_link_failure(self, neighbor: MacAddress) -> None:
        """Poison every route through the dead neighbor (odd sequence)."""
        if self.node is None:
            return
        now = self.node.sim.now
        broken = 0
        for entry in self._table.values():
            if entry.next_hop == neighbor and entry.metric < INFINITE_METRIC:
                entry.metric = INFINITE_METRIC
                entry.sequence += 1   # odd: "broken by a transit node"
                entry.updated_at = now
                broken += 1
        if broken:
            self.node.counters.incr("routes_broken", broken)
            self._schedule_triggered()
