"""Adversarial RF: jammers, coexistence interferers, capture, attacks.

The subsystem models the hostile (and merely rude) RF environment real
deployments live in, on top of the existing PHY/MAC layers:

* :mod:`~repro.adversary.emitters` — energy-only interference sources
  driven through the medium's energy path: barrage / duty-cycled /
  sweeping / reactive jammers, plus coexistence profiles (a
  Bluetooth-style frequency hopper, a broadband microwave-oven burst
  source).
* :mod:`~repro.adversary.monitor` — monitor-mode promiscuous capture:
  a receive-only radio feeding a deterministic :class:`CaptureLog`
  whose WEP traffic plugs straight into the security audit's FMS
  machinery.
* :mod:`~repro.adversary.attacks` — MAC-layer attack nodes: spoofed
  deauthentication floods, evil-twin rogue APs, CTS-to-self NAV abuse.

Impact metrics (PDR deltas, duty-cycle/goodput curves, spatial PDR
grids) live in :mod:`repro.analysis.adversary`;
``examples/jamming_study.py`` runs the full story and the
``interference_field`` macro pins the dense-emitter workload in the
perf suite.
"""

from .attacks import (
    CtsNavAttacker,
    DeauthFlooder,
    FrameInjector,
    MAX_DURATION_US,
    RogueAp,
)
from .emitters import (
    BluetoothHopper,
    ConstantJammer,
    EnergySource,
    Emitter,
    MicrowaveOven,
    PeriodicJammer,
    ReactiveJammer,
    SweepingJammer,
)
from .monitor import CaptureLog, CaptureRecord, MonitorRadio

__all__ = [
    "BluetoothHopper",
    "CaptureLog",
    "CaptureRecord",
    "ConstantJammer",
    "CtsNavAttacker",
    "DeauthFlooder",
    "Emitter",
    "EnergySource",
    "FrameInjector",
    "MAX_DURATION_US",
    "MicrowaveOven",
    "MonitorRadio",
    "PeriodicJammer",
    "ReactiveJammer",
    "RogueAp",
    "SweepingJammer",
]
