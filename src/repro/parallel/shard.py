"""Shard-local medium: boundary-arrival export and injection.

Each worker process owns one :class:`ShardMedium` — a normal
:class:`~repro.phy.channel.Medium` for everything *inside* the shard,
plus two extra duties at the shard boundary:

* **Export**: every transmission on a channel some *other* shard can
  hear is appended to the outbox as a flat :class:`BoundaryRecord`
  (start time, sender geometry, channel, power, duration).  The
  coordinator drains outboxes at each fence and routes the records to
  the coupled destination shards.
* **Inject**: records arriving from other shards are fanned out to the
  local co-channel radios as **energy-only ghost transmissions** — the
  receive power is computed through the same
  ``received_power_watts`` call the single-process medium uses (so the
  floats are bit-identical), but the arrival rides the
  :data:`~repro.phy.channel.ENERGY_ONLY` mode: it drives CCA, capture
  and SINR accounting exactly like the real frame's energy would, and
  no local radio ever locks onto it.

The energy-faithful (not frame-faithful) boundary is the executor's
declared contract: when cross-shard power stays below every receiver's
preamble-detect floor — which a sane partition guarantees by
construction — a ghost is *provably* indistinguishable from the real
frame (neither can be locked onto; all remaining physics is power
arithmetic), so sharded stats match single-process bit-for-bit.
Partitions that split strongly-coupled cells fall back to the
declared-tolerance regime (see README, "Sharded execution").
"""

from __future__ import annotations

import itertools
from heapq import heappush as _heappush
from typing import Any, FrozenSet, List, NamedTuple, Optional

from ..core.errors import InvariantViolation
from ..core.topology import Position
from ..core.units import SPEED_OF_LIGHT
from ..phy.channel import ENERGY_ONLY, Medium, Transmission


class BoundaryRecord(NamedTuple):
    """One cross-shard transmission, flat and picklable.

    The tuple order *is* the canonical merge key prefix:
    ``(start_time, shard, seq)`` pins the coordinator's merge order and
    the arrival-log byte layout.  ``seq`` is a per-shard export counter,
    so two runs of the same partition export identical streams.
    """

    start_time: float
    shard: int
    seq: int
    sender: str
    x: float
    y: float
    z: float
    channel: int
    power_watts: float
    duration: float


class _GhostSender:
    """Stand-in for a remote transmitter during boundary injection.

    Quacks like the transmit-only senders the energy path already
    accepts (``name``/``position``/``_position``/``_channel_id``); it
    exists so injected :class:`Transmission` objects carry an honest
    sender identity for tracing without the remote Radio being present
    in this process.
    """

    __slots__ = ("name", "_position", "_channel_id")

    def __init__(self, name: str, position: Position, channel_id: int):
        self.name = name
        self._position = position
        self._channel_id = channel_id

    @property
    def position(self) -> Position:
        return self._position


class ShardMedium(Medium):
    """A medium that exports and injects boundary arrivals.

    Parameters beyond :class:`~repro.phy.channel.Medium`'s:

    shard:
        This shard's index (stamped into every exported record).
    export_channels:
        Channels whose transmissions must be exported — the partition
        plan's per-shard coupling surface.  Empty set = fully decoupled
        shard: ``transmit`` stays byte-for-byte the base implementation
        plus one set lookup.
    """

    def __init__(self, *args, shard: int = 0,
                 export_channels: FrozenSet[int] = frozenset(), **kwargs):
        super().__init__(*args, **kwargs)
        self.shard = shard
        self.export_channels = frozenset(export_channels)
        self.outbox: List[BoundaryRecord] = []
        self._export_seq = itertools.count()
        self.boundary_injected = 0

    def transmit(self, sender, payload, size_bits, mode, duration,
                 power_watts) -> Transmission:
        transmission = super().transmit(sender, payload, size_bits, mode,
                                        duration, power_watts)
        if sender._channel_id in self.export_channels:
            pos = sender.position
            self.outbox.append(BoundaryRecord(
                transmission.start_time, self.shard,
                next(self._export_seq), sender.name,
                pos.x, pos.y, pos.z, sender._channel_id,
                power_watts, duration))
        return transmission

    def drain_outbox(self) -> List[BoundaryRecord]:
        """Hand the pending exports to the coordinator (fence time)."""
        pending, self.outbox = self.outbox, []
        return pending

    def inject_boundary(self, record: BoundaryRecord) -> Transmission:
        """Fan a remote transmission out to the local co-channel radios.

        Mirrors the uncached :meth:`Medium.transmit` loop — fresh
        ``received_power_watts`` per receiver in exact mode (the same
        pure function the remote shard's LinkCache memoizes, so the
        receive powers are bit-identical to the single-process run),
        ``link_gain`` in fast mode, floor cull, and the exact
        ``start + delay`` / ``start + (delay + duration)``
        parenthesization the in-process fan-out uses.  Injection does
        not go through compiled plans: boundary traffic is sparse by
        construction, and ghost senders are transient objects.
        """
        sim = self.sim
        now = sim._now
        start = record.start_time
        ghost = _GhostSender(record.sender,
                             Position(record.x, record.y, record.z),
                             record.channel)
        transmission = Transmission(ghost, None, 0, ENERGY_ONLY,
                                    record.power_watts, start,
                                    record.duration)
        active = self._active.get(record.channel)
        if active is None:
            active = self._active[record.channel] = []
        active.append(transmission)
        floor = self.reception_floor_watts
        propagation = self.propagation
        model_delay = self.propagation_delay
        exact = self.exact
        tx_pos = ghost._position
        heap = sim._heap
        next_seq = sim._next_seq
        duration = record.duration
        power = record.power_watts
        scheduled = 0
        for receiver, begins, ends in self._channel_members(record.channel):
            rx_pos = receiver.position
            if exact:
                rx_power = propagation.received_power_watts(power, tx_pos,
                                                            rx_pos)
            else:
                rx_power = power * propagation.link_gain(tx_pos, rx_pos)
            if rx_power < floor:
                continue
            delay = tx_pos.distance_to(rx_pos) / SPEED_OF_LIGHT \
                if model_delay else 0.0
            arrival = start + delay
            if arrival < now:
                # A conservative-lookahead executor must never deliver
                # into the past; this firing means the synchronization
                # bound was wrong (or a lookahead override lied), so it
                # is always fatal, not an opt-in invariant.
                raise InvariantViolation(
                    f"shard {self.shard}: boundary arrival from "
                    f"{record.sender!r} at t={arrival!r} is behind the "
                    f"local clock t={now!r} (lookahead violation)")
            _heappush(heap, (arrival, next_seq(), None, begins,
                             (transmission, rx_power)))
            _heappush(heap, (start + (delay + duration), next_seq(), None,
                             ends, (transmission,)))
            scheduled += 2
        sim._scheduled += scheduled
        self.boundary_injected += 1
        return transmission
