"""The station (STA): scanning, association, roaming, data transfer.

A :class:`Station` runs the client side of the 802.11 connection
state machine::

    IDLE -> SCANNING -> AUTHENTICATING -> ASSOCIATING -> ASSOCIATED

In infrastructure mode all data flows through the associated AP
(To DS frames); in ad-hoc (IBSS) mode stations talk peer-to-peer with
a shared IBSS BSSID and no association at all (source text §3.2).

Roaming: while associated, the station keeps scoring beacons from
same-SSID APs through its :class:`~repro.net.roaming.BeaconTracker`;
when the :class:`~repro.net.roaming.RoamingPolicy` fires, it simply
re-runs authentication/association against the better AP — the DS
location table does the rest.  Beacon loss (``beacon_loss_limit``
missed intervals) tears the link down and triggers a rescan.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Callable, Dict, List, Optional

from ..core.engine import PeriodicTask, Timer
from ..core.errors import ProtocolError
from ..core.stats import Counter
from ..mac.addresses import BROADCAST, MacAddress
from ..mac.frames import Dot11Frame, ManagementSubtype
from .ap import TU_SECONDS
from .device import WirelessDevice
from ..security.shared_key_auth import SharedKeyClient
from ..security.wep import WepCipher
from .elements import (
    AssocRequestBody,
    AssocResponseBody,
    AuthBody,
    AUTH_OPEN_SYSTEM,
    AUTH_SHARED_KEY,
    BeaconBody,
    STATUS_SUCCESS,
)
from .roaming import BeaconObservation, BeaconTracker, RoamingPolicy


class StationState(Enum):
    IDLE = "idle"
    SCANNING = "scanning"
    AUTHENTICATING = "authenticating"
    ASSOCIATING = "associating"
    ASSOCIATED = "associated"


#: Callback fired on association/roam: (bssid) -> None.
AssociationHook = Callable[[MacAddress], None]


class Station(WirelessDevice):
    """A client station, infrastructure or ad-hoc."""

    #: Management exchange timeout and retry budget.
    MGMT_TIMEOUT = 20e-3
    MGMT_RETRIES = 4
    #: Empty-scan retry backoff: the first retry comes after exactly
    #: RESCAN_BASE (no RNG draw — the common single-miss case stays
    #: bit-identical to historical runs); consecutive misses then
    #: double the delay up to RESCAN_CAP with +/-50% jitter drawn from
    #: the station's dedicated ``sta.<name>`` stream, so a cell full of
    #: orphaned stations does not rescan in lockstep forever.
    RESCAN_BASE = 0.2
    RESCAN_CAP = 5.0

    def __init__(self, *args: Any, adhoc: bool = False,
                 ibss_bssid: Optional[MacAddress] = None,
                 roaming_policy: Optional[RoamingPolicy] = None,
                 auth_algorithm: int = AUTH_OPEN_SYSTEM,
                 wep_key: Optional[bytes] = None,
                 **kwargs: Any):
        super().__init__(*args, **kwargs)
        self.auth_algorithm = auth_algorithm
        self._shared_key_client: Optional[SharedKeyClient] = None
        if auth_algorithm == AUTH_SHARED_KEY:
            if wep_key is None:
                raise ProtocolError(
                    "shared-key authentication requires a WEP key")
            self._shared_key_client = SharedKeyClient(WepCipher(wep_key))
        self.adhoc = adhoc
        if adhoc:
            # In an IBSS the BSSID is a locally administered address
            # chosen by the IBSS starter; peers must share it.
            self.mac.bssid = ibss_bssid if ibss_bssid is not None \
                else self.address
        self.state = StationState.IDLE
        self.tracker = BeaconTracker()
        self.roaming = roaming_policy if roaming_policy is not None \
            else RoamingPolicy()
        self.sta_counters = Counter()
        self.target_ssid: Optional[str] = None
        self.serving_ap: Optional[MacAddress] = None
        self._target_bssid: Optional[MacAddress] = None
        # Management/scan/power-save deadlines ride on reusable kernel
        # Timers (the same re-anchorable primitive the MAC contention
        # machinery uses) — they are armed and re-armed constantly
        # during scans and PS cycles.
        self._mgmt_timer = Timer(self.sim, self._mgmt_timeout)
        self._mgmt_retry: Optional[Callable[[], None]] = None
        self._mgmt_attempts = 0
        self._scan_timer = Timer(self.sim, self._scan_next_channel)
        self._rescan_timer = Timer(self.sim, self._retry_scan)
        self._scan_channels: List[int] = []
        self._scan_dwell = 0.0
        self._scan_active = False
        #: Consecutive empty scans (drives the rescan backoff).
        self._scan_failures = 0
        #: Give up scanning (-> IDLE) after this many consecutive empty
        #: scans; ``None`` retries forever (historical behaviour).
        self.max_scan_failures: Optional[int] = None
        self._rescan_rng = None  # lazily bound `sta.<name>` jitter stream
        self._last_roam = -1e9
        self._link_monitor: Optional[PeriodicTask] = None
        self._last_beacon_from_serving = 0.0
        self._assoc_hooks: List[AssociationHook] = []
        self._disassoc_hooks: List[Callable[[], None]] = []
        #: Power-save state (§4.2 Power Management / PS-Poll machinery).
        self.power_save = False
        self.aid: Optional[int] = None
        self._ps_retrieving = False
        self._ps_guard = 2e-3
        self._ps_awake_window = 8e-3
        self._ps_doze_timer = Timer(self.sim, self._ps_try_doze)
        self._ps_wake_timer = Timer(self.sim, self._ps_wake)

    # --- hooks ------------------------------------------------------------

    def on_associated(self, hook: AssociationHook) -> Callable[[], None]:
        """Register an association hook; returns an unsubscribe callable
        (safe to call more than once)."""
        self._assoc_hooks.append(hook)

        def _unsubscribe() -> None:
            try:
                self._assoc_hooks.remove(hook)
            except ValueError:
                pass
        return _unsubscribe

    def on_disassociated(self, hook: Callable[[], None]) -> Callable[[], None]:
        """Register a disassociation hook; returns an unsubscribe callable."""
        self._disassoc_hooks.append(hook)

        def _unsubscribe() -> None:
            try:
                self._disassoc_hooks.remove(hook)
            except ValueError:
                pass
        return _unsubscribe

    @property
    def associated(self) -> bool:
        return self.state == StationState.ASSOCIATED

    # --- data path ------------------------------------------------------------

    def send(self, destination: MacAddress, payload: bytes,
             protected: bool = False, context: Any = None,
             priority: bool = False) -> bool:
        """Send an MSDU; via the AP in infrastructure mode.

        ``priority`` frames jump the interface queue (routing control
        traffic must not starve behind a saturated data backlog).
        """
        self.radio.wake()  # dozing stations wake to transmit
        if self.adhoc:
            return self.mac.send(destination, payload, protected=protected,
                                 context=context, priority=priority)
        if not self.associated:
            raise ProtocolError(f"{self.name} is not associated")
        return self.mac.send(destination, payload, protected=protected,
                             context=context, meta={"to_ds": True},
                             priority=priority)

    # --- power save (§4.2: PM bit, TIM, PS-Poll) --------------------------------

    def enable_power_save(self, awake_window: float = 8e-3,
                          guard: float = 2e-3) -> None:
        """Enter power-save: announce the PM bit, then doze between
        beacons, waking to read the TIM and PS-Poll buffered frames."""
        if not self.associated:
            raise ProtocolError("cannot enter power save while unassociated")
        self.power_save = True
        self._ps_awake_window = awake_window
        self._ps_guard = guard
        self.mac.power_management = True
        assert self.serving_ap is not None
        self.mac.send_null(self.serving_ap, power_management=True)
        self.sta_counters.incr("ps_enabled")
        self._schedule_ps_doze(delay=10e-3)

    def disable_power_save(self) -> None:
        """Leave power-save: wake for good and tell the AP (it flushes)."""
        if not self.power_save:
            return
        self.power_save = False
        self.mac.power_management = False
        self._ps_retrieving = False
        self._cancel_ps_timers()
        self.radio.wake()
        if self.associated and self.serving_ap is not None:
            self.mac.send_null(self.serving_ap, power_management=False)
        self.sta_counters.incr("ps_disabled")

    def _cancel_ps_timers(self) -> None:
        self._ps_doze_timer.cancel()
        self._ps_wake_timer.cancel()

    def _schedule_ps_doze(self, delay: float) -> None:
        self._ps_doze_timer.schedule(delay)

    def _beacon_interval_seconds(self) -> float:
        serving = self.tracker.get(self.serving_ap) \
            if self.serving_ap is not None else None
        interval_tu = serving.beacon_interval_tu if serving is not None \
            else 100
        return interval_tu * TU_SECONDS

    def _ps_try_doze(self) -> None:
        if not self.power_save or not self.associated:
            return
        if self._ps_retrieving or not self.mac.idle:
            self._schedule_ps_doze(delay=2e-3)
            return
        self.radio.sleep()
        interval = self._beacon_interval_seconds()
        next_beacon = self._last_beacon_from_serving + interval
        while next_beacon - self._ps_guard <= self.sim.now:
            next_beacon += interval
        self._ps_wake_timer.schedule(
            next_beacon - self._ps_guard - self.sim.now)

    def _ps_wake(self) -> None:
        if not self.power_save:
            return
        self.radio.wake()
        self._schedule_ps_doze(delay=self._ps_guard + self._ps_awake_window)

    def deliver_up(self, source: MacAddress, payload: bytes,
                   meta: Dict[str, Any]) -> None:
        if self.power_save and meta.get("from_ds"):
            if meta.get("more_data") and self.aid is not None:
                self.mac.send_ps_poll(self.aid)  # keep draining the buffer
            else:
                self._ps_retrieving = False
        super().deliver_up(source, payload, meta)

    # --- scanning ------------------------------------------------------------

    def start_scan(self, ssid: str, channels: Optional[List[int]] = None,
                   dwell: float = 0.15, active: bool = False) -> None:
        """Scan for ``ssid`` and associate with the strongest AP found.

        Passive (default): dwell on each channel collecting beacons.
        Active: additionally fire a directed probe request on arrival at
        each channel — probe responses come back immediately, so active
        scans work with much shorter dwells than a beacon interval.
        """
        if self.adhoc:
            raise ProtocolError("ad-hoc stations do not scan/associate")
        self.target_ssid = ssid
        self.state = StationState.SCANNING
        self._scan_channels = list(channels) if channels \
            else [self.radio.channel_id]
        self._scan_dwell = dwell
        self._scan_active = active
        self.sta_counters.incr("scans")
        self._scan_next_channel()

    def _scan_next_channel(self) -> None:
        if not self._scan_channels:
            self._finish_scan()
            return
        self.radio.channel_id = self._scan_channels.pop(0)
        if self._scan_active and self.target_ssid:
            self._send_probe_request(self.target_ssid)
        self._scan_timer.schedule(self._scan_dwell)

    def _send_probe_request(self, ssid: str) -> None:
        from ..mac.addresses import BROADCAST as _BROADCAST
        body = AssocRequestBody(capability=0, listen_interval=0,
                                ssid=ssid).encode()
        self.sta_counters.incr("probe_requests")
        self.mac.send_management(ManagementSubtype.PROBE_REQUEST,
                                 _BROADCAST, body)

    def _finish_scan(self) -> None:
        assert self.target_ssid is not None
        best = self.tracker.best(self.target_ssid)
        if best is None:
            # Nothing heard: retry after a beat, backing off on
            # consecutive misses (see RESCAN_BASE/RESCAN_CAP).
            self.sta_counters.incr("scan_empty")
            self._scan_failures += 1
            if self.max_scan_failures is not None and \
                    self._scan_failures >= self.max_scan_failures:
                # Scan timeout: the network is gone (dead AP, wrong
                # channel list).  Go IDLE instead of rescanning forever
                # — the caller decides whether/when to try again.
                self.sta_counters.incr("scan_abandoned")
                self.state = StationState.IDLE
                return
            delay = self.RESCAN_BASE
            if self._scan_failures > 1:
                if self._rescan_rng is None:
                    self._rescan_rng = self.sim.rng.stream(f"sta.{self.name}")
                delay = min(self.RESCAN_BASE * 2.0 ** (self._scan_failures - 1),
                            self.RESCAN_CAP)
                delay *= 0.5 + self._rescan_rng.random()
            self._rescan_timer.schedule(delay)
            return
        self._scan_failures = 0
        self._begin_authentication(best)

    def _retry_scan(self) -> None:
        self.start_scan(self.target_ssid or "", dwell=self._scan_dwell)

    def associate(self, ssid: str,
                  channels: Optional[List[int]] = None) -> None:
        """Join the (strongest AP of the) named network."""
        known = self.tracker.best(ssid)
        if known is not None:
            self.target_ssid = ssid
            self._begin_authentication(known)
        else:
            self.start_scan(ssid, channels=channels)

    # --- authentication & association -------------------------------------------

    def _begin_authentication(self, target: BeaconObservation) -> None:
        self._target_bssid = target.bssid
        self.radio.channel_id = target.channel
        self.state = StationState.AUTHENTICATING
        self._mgmt_attempts = 0
        self._send_auth()

    def _send_auth(self) -> None:
        assert self._target_bssid is not None
        self._mgmt_attempts += 1
        body = AuthBody(self.auth_algorithm, 1).encode()
        self.mac.send_management(ManagementSubtype.AUTHENTICATION,
                                 self._target_bssid, body)
        self._arm_mgmt_timer(self._send_auth)

    def _send_assoc_request(self) -> None:
        assert self._target_bssid is not None and self.target_ssid is not None
        self._mgmt_attempts += 1
        body = AssocRequestBody(capability=0, listen_interval=10,
                                ssid=self.target_ssid).encode()
        self.mac.send_management(ManagementSubtype.ASSOC_REQUEST,
                                 self._target_bssid, body)
        self._arm_mgmt_timer(self._send_assoc_request)

    def _arm_mgmt_timer(self, retry: Callable[[], None]) -> None:
        self._mgmt_retry = retry
        self._mgmt_timer.schedule(self.MGMT_TIMEOUT)

    def _cancel_mgmt_timer(self) -> None:
        self._mgmt_timer.cancel()

    def _mgmt_timeout(self) -> None:
        retry = self._mgmt_retry
        assert retry is not None
        if self._mgmt_attempts >= self.MGMT_RETRIES:
            # Give up on this AP; forget it and rescan.
            self.sta_counters.incr("mgmt_failures")
            if self._target_bssid is not None:
                self.tracker.forget(self._target_bssid)
            self._target_bssid = None
            if self.target_ssid is not None:
                self.start_scan(self.target_ssid, dwell=self._scan_dwell or 0.15)
            return
        retry()

    # --- management reception ----------------------------------------------------

    def mac_management(self, frame: Dot11Frame, snr_db: float) -> None:
        subtype = ManagementSubtype(frame.fc.subtype)
        if subtype in (ManagementSubtype.BEACON,
                       ManagementSubtype.PROBE_RESPONSE):
            self._handle_beacon(frame, snr_db)
        elif subtype == ManagementSubtype.AUTHENTICATION:
            self._handle_auth_response(frame)
        elif subtype in (ManagementSubtype.ASSOC_RESPONSE,
                         ManagementSubtype.REASSOC_RESPONSE):
            self._handle_assoc_response(frame)
        elif subtype in (ManagementSubtype.DISASSOCIATION,
                         ManagementSubtype.DEAUTHENTICATION):
            if frame.transmitter == self.serving_ap:
                self._link_lost("ap_kicked_us")

    def _handle_beacon(self, frame: Dot11Frame, snr_db: float) -> None:
        if frame.transmitter is None:
            return
        try:
            body = BeaconBody.decode(frame.body)
        except Exception:
            self.sta_counters.incr("bad_beacons")
            return
        entry = self.tracker.observe(
            frame.transmitter, body.ssid,
            body.channel if body.channel is not None else self.radio.channel_id,
            body.capability, body.beacon_interval_tu, snr_db, self.sim.now)
        if self.associated and frame.transmitter == self.serving_ap:
            self._last_beacon_from_serving = self.sim.now
            if self.power_save and self.aid is not None and \
                    self.aid in body.tim_aids and not self._ps_retrieving:
                # The TIM names us: retrieve the buffered traffic.
                self._ps_retrieving = True
                self.sta_counters.incr("ps_polls")
                self.mac.send_ps_poll(self.aid)
        elif self.associated and body.ssid == self.target_ssid:
            self._consider_roaming(entry)

    def _handle_auth_response(self, frame: Dot11Frame) -> None:
        if self.state != StationState.AUTHENTICATING or \
                frame.transmitter != self._target_bssid:
            return
        auth = AuthBody.decode(frame.body)
        if auth.status != STATUS_SUCCESS:
            self._cancel_mgmt_timer()
            self.sta_counters.incr("auth_refused")
            self.state = StationState.IDLE
            return
        if auth.sequence == 2 and auth.challenge and \
                self._shared_key_client is not None:
            # Shared-key step 3: return the WEP-encrypted challenge.
            self._cancel_mgmt_timer()
            response = AuthBody(
                AUTH_SHARED_KEY, 3,
                challenge=self._shared_key_client.answer(auth.challenge))
            self.mac.send_management(ManagementSubtype.AUTHENTICATION,
                                     self._target_bssid, response.encode())
            self._arm_mgmt_timer(self._send_auth)
            return
        final_sequence = 4 if self.auth_algorithm == AUTH_SHARED_KEY else 2
        if auth.sequence != final_sequence:
            return
        self._cancel_mgmt_timer()
        self.state = StationState.ASSOCIATING
        self._mgmt_attempts = 0
        self._send_assoc_request()

    def _handle_assoc_response(self, frame: Dot11Frame) -> None:
        if self.state != StationState.ASSOCIATING or \
                frame.transmitter != self._target_bssid:
            return
        response = AssocResponseBody.decode(frame.body)
        self._cancel_mgmt_timer()
        if response.status != STATUS_SUCCESS:
            self.sta_counters.incr("assoc_refused")
            self.state = StationState.IDLE
            return
        previous = self.serving_ap
        self.serving_ap = self._target_bssid
        self.aid = response.association_id
        self._target_bssid = None
        assert self.serving_ap is not None
        self.mac.bssid = self.serving_ap
        self.state = StationState.ASSOCIATED
        self._last_beacon_from_serving = self.sim.now
        self.sta_counters.incr("associations")
        if previous is not None and previous != self.serving_ap:
            self.sta_counters.incr("roams")
            self._last_roam = self.sim.now
        self._start_link_monitor()
        for hook in self._assoc_hooks:
            hook(self.serving_ap)

    # --- roaming & link supervision --------------------------------------------

    def _consider_roaming(self, candidate: BeaconObservation) -> None:
        serving = self.tracker.get(self.serving_ap) \
            if self.serving_ap is not None else None
        serving_snr = serving.snr_db if serving is not None else -100.0
        if self.roaming.should_roam(serving_snr, candidate.snr_db,
                                    self.sim.now - self._last_roam):
            self.sta_counters.incr("roam_decisions")
            self._begin_authentication(candidate)

    def _start_link_monitor(self) -> None:
        if self._link_monitor is not None:
            self._link_monitor.cancel()
        serving = self.tracker.get(self.serving_ap) \
            if self.serving_ap is not None else None
        interval_tu = serving.beacon_interval_tu if serving is not None else 100
        period = interval_tu * TU_SECONDS
        self._link_monitor = PeriodicTask(self.sim, period,
                                          self._check_beacon_loss)

    def _check_beacon_loss(self) -> None:
        if not self.associated or self.serving_ap is None:
            return
        serving = self.tracker.get(self.serving_ap)
        interval_tu = serving.beacon_interval_tu if serving is not None else 100
        allowance = self.roaming.beacon_loss_limit * interval_tu * TU_SECONDS
        if self.sim.now - self._last_beacon_from_serving > allowance:
            self._link_lost("beacon_loss")

    def _link_lost(self, reason: str) -> None:
        self.sta_counters.incr(f"link_lost_{reason}")
        lost_bssid = self.serving_ap
        self.serving_ap = None
        self.state = StationState.IDLE
        if self._link_monitor is not None:
            self._link_monitor.cancel()
            self._link_monitor = None
        if lost_bssid is not None:
            self.tracker.forget(lost_bssid)
        for hook in self._disassoc_hooks:
            hook()
        if self.target_ssid is not None:
            self.start_scan(self.target_ssid, dwell=self._scan_dwell or 0.15)

    # --- fault injection ---------------------------------------------------------

    def crash(self) -> None:
        """Power loss: all volatile state dropped, radio off.

        Everything RAM-resident goes — the connection state machine,
        beacon observations, pending management retries, the MAC's
        queue and timers — and the radio powers off mid-whatever (an
        in-flight transmission is torn down, in-flight arrivals keep
        draining).  Disassociation hooks fire if we were associated, so
        traffic sources wired to them stop offering.  The configured
        ``target_ssid`` survives (it is configuration, not state) and
        drives the rescan on :meth:`restart`.
        """
        self.sta_counters.incr("crashes")
        was_associated = self.associated
        self._cancel_mgmt_timer()
        self._scan_timer.cancel()
        self._rescan_timer.cancel()
        self._cancel_ps_timers()
        if self._link_monitor is not None:
            self._link_monitor.cancel()
            self._link_monitor = None
        self.state = StationState.IDLE
        self.serving_ap = None
        self._target_bssid = None
        self._mgmt_retry = None
        self._mgmt_attempts = 0
        self._scan_channels = []
        self._scan_failures = 0
        self.aid = None
        self.power_save = False
        self._ps_retrieving = False
        self.tracker = BeaconTracker()
        self.mac.crash()
        self.mac.power_management = False
        if not self.adhoc:
            self.mac.bssid = self.address
        self.radio.power_off()
        if was_associated:
            for hook in tuple(self._disassoc_hooks):
                hook()

    def restart(self) -> None:
        """Boot after :meth:`crash`: power the radio on and, when an
        infrastructure SSID is configured, rescan for it."""
        self.sta_counters.incr("restarts")
        self.radio.power_on()
        if not self.adhoc and self.target_ssid is not None:
            self.start_scan(self.target_ssid, dwell=self._scan_dwell or 0.15)
