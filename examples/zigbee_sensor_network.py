#!/usr/bin/env python3
"""A ZigBee home-automation mesh: the §2.1 'wirelessly networked
monitoring and control' scenario.

A coordinator (the hub) sits in the living room; routers (mains-powered
smart plugs) form a mesh through the house; battery RFD sensors hang
off the routers as leaves.  Every sensor reports periodically; the hub
occasionally multicasts an actuation command back out.  The script
prints the mesh routes, delivery statistics, and per-hop latency.

Run:  python examples/zigbee_sensor_network.py
"""

from repro import Simulator
from repro.core.topology import Position
from repro.wpan.zigbee import DeviceType, Topology, ZigbeeNode, ZigbeePan

HOUSE = {
    # name: (x, y, device type, parent)
    "hub": (0, 0, DeviceType.COORDINATOR, None),
    "plug-kitchen": (12, 3, DeviceType.ROUTER, "hub"),
    "plug-hall": (8, 14, DeviceType.ROUTER, "hub"),
    "plug-garage": (26, 6, DeviceType.ROUTER, "plug-kitchen"),
    "plug-bedroom": (14, 26, DeviceType.ROUTER, "plug-hall"),
    "sensor-fridge": (16, 1, DeviceType.END_DEVICE, "plug-kitchen"),
    "sensor-door": (6, 20, DeviceType.END_DEVICE, "plug-hall"),
    "sensor-car": (33, 8, DeviceType.END_DEVICE, "plug-garage"),
    "sensor-window": (18, 31, DeviceType.END_DEVICE, "plug-bedroom"),
}


def main() -> None:
    sim = Simulator(seed=3)
    pan = ZigbeePan(sim, Topology.MESH, range_m=18.0)
    nodes = {}
    for name, (x, y, device_type, parent) in HOUSE.items():
        node = ZigbeeNode(name, Position(x, y, 0), device_type)
        pan.add_node(node, parent=nodes.get(parent))
        nodes[name] = node

    sensors = [name for name, spec in HOUSE.items()
               if spec[2] == DeviceType.END_DEVICE]
    print("mesh routes to the hub:")
    for sensor in sensors:
        print(f"  {sensor}: {' -> '.join(pan.route(sensor, 'hub'))}")

    # Each sensor reports every 2 s for a minute.
    reports = {}
    nodes["hub"].on_receive(
        lambda src, payload, meta:
        reports.setdefault(src, []).append(meta["hops"]))
    for index, sensor in enumerate(sensors):
        for round_index in range(30):
            sim.schedule(round_index * 2.0 + index * 0.05,
                         lambda s=sensor: pan.send(s, "hub", b"reading"))
    sim.run(until=70.0)

    print("\nsensor reports received at the hub:")
    for sensor in sensors:
        hops = reports.get(nodes[sensor].name, [])
        print(f"  {sensor}: {len(hops)}/30 delivered, "
              f"{sum(hops) / max(len(hops), 1):.1f} hops avg")
    print(f"\nPAN delivery ratio: {pan.delivery_ratio:.3f}")
    print(f"mean end-to-end latency: {pan.latency.mean * 1e3:.2f} ms")
    print(f"CSMA busy-channel deferrals: {pan.counters.get('cca_busy')}, "
          f"collisions: {pan.counters.get('collisions')}")


if __name__ == "__main__":
    main()
