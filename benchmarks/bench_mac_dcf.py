"""E10 — DCF saturation throughput vs station count, simulated against
the Bianchi analytic model (the MAC-level evaluation the calibration
band implies).

Every station is kept saturated; the aggregate goodput at the receiver
is reported per population size, next to the Bianchi prediction
computed from the library's own timing constants.  The shape to
reproduce: a mild decline with contention, the simulation tracking the
model.

A second series compares basic access against RTS/CTS on a 1 Mb/s
channel with 1500-byte payloads — Bianchi's classic configuration where
reservation wins once the collision cost dwarfs the RTS overhead.
"""

import pytest

from repro.analysis.metrics import bianchi_saturation_throughput
from repro.analysis.tables import render_table
from repro.core import Position, Simulator
from repro.mac.addresses import allocate_address
from repro.mac.dcf import DcfConfig, DcfMac, MacListener
from repro.mac.rate_adapt import fixed_rate_factory
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio


class _Refill(MacListener):
    def __init__(self, mac, destination, payload):
        self.mac = mac
        self.destination = destination
        self.payload = payload

    def prime(self, depth=4):
        for _ in range(depth):
            self.mac.send(self.destination, self.payload)

    def mac_tx_complete(self, msdu, success):
        self.mac.send(self.destination, self.payload)


class _Count(MacListener):
    def __init__(self):
        self.bytes = 0

    def mac_receive(self, source, destination, payload, meta):
        self.bytes += len(payload)


def run_saturation(n, payload_bytes=800, rate_mode="CCK-11",
                   rts_threshold=2347, horizon=3.0, seed=5):
    sim = Simulator(seed=seed)
    medium = Medium(sim, FixedLoss(50.0))
    config = DcfConfig(rts_threshold_bytes=rts_threshold)
    receiver_radio = Radio("rx", medium, DOT11B, Position(0, 0, 0))
    receiver = DcfMac(sim, receiver_radio, allocate_address(),
                      config=config,
                      rate_factory=fixed_rate_factory(rate_mode))
    counter = _Count()
    receiver.listener = counter
    payload = bytes(payload_bytes)
    for index in range(n):
        radio = Radio(f"tx{index}", medium, DOT11B,
                      Position(1.0 + index * 0.1, 0, 0))
        mac = DcfMac(sim, radio, allocate_address(), config=config,
                     rate_factory=fixed_rate_factory(rate_mode))
        refill = _Refill(mac, receiver.address, payload)
        mac.listener = refill
        refill.prime()
    warmup = 0.4
    sim.run(until=warmup)
    counter.bytes = 0
    sim.run(until=warmup + horizon)
    return counter.bytes * 8 / horizon


def run_population_sweep():
    rows = []
    for n in (1, 2, 5, 10, 20):
        simulated = run_saturation(n)
        analytic = bianchi_saturation_throughput(
            n, DOT11B, payload_bytes=800, data_rate_bps=11e6)
        rows.append([n, simulated / 1e6, analytic / 1e6,
                     simulated / analytic])
    return rows


def test_dcf_saturation_vs_bianchi(benchmark, record_result):
    rows = benchmark.pedantic(run_population_sweep, rounds=1, iterations=1)
    text = render_table(
        "E10: DCF saturation throughput vs stations "
        "(802.11b, 800B payload, 11 Mb/s)",
        ["stations", "simulated Mb/s", "Bianchi Mb/s", "sim/model"],
        rows, formats=[None, ".3f", ".3f", ".2f"])
    record_result("E10_dcf_saturation", text)

    # Simulation tracks the analytic model within 25% everywhere.
    for row in rows:
        assert row[3] == pytest.approx(1.0, abs=0.25), row
    # The canonical decline with contention beyond a couple of stations.
    simulated = [row[1] for row in rows]
    assert simulated[-1] < simulated[1]


def run_rts_comparison():
    rows = []
    for n in (2, 5, 10):
        basic = run_saturation(n, payload_bytes=1500, rate_mode="DSSS-1",
                               rts_threshold=2347, horizon=6.0)
        rts = run_saturation(n, payload_bytes=1500, rate_mode="DSSS-1",
                             rts_threshold=400, horizon=6.0)
        analytic_basic = bianchi_saturation_throughput(
            n, DOT11B, 1500, 1e6, use_rts=False)
        analytic_rts = bianchi_saturation_throughput(
            n, DOT11B, 1500, 1e6, use_rts=True)
        rows.append([n, basic / 1e3, rts / 1e3,
                     analytic_basic / 1e3, analytic_rts / 1e3])
    return rows


def test_dcf_basic_vs_rts(benchmark, record_result):
    rows = benchmark.pedantic(run_rts_comparison, rounds=1, iterations=1)
    text = render_table(
        "E10b: basic access vs RTS/CTS (1500B payload, 1 Mb/s channel)",
        ["stations", "basic kb/s", "RTS kb/s", "Bianchi basic kb/s",
         "Bianchi RTS kb/s"],
        rows, formats=[None, ".0f", ".0f", ".0f", ".0f"])
    text += ("\n\nNote: the simulated PHY models DSSS-1's 11-chip Barker "
             "processing gain, which lets some equal-power overlaps "
             "survive; the Bianchi model charges every overlap as a full "
             "loss, so the simulated basic-access penalty is milder than "
             "the analytic one. The RTS advantage trend with n matches.")
    record_result("E10b_rts_vs_basic", text)

    # As contention grows, RTS/CTS closes the gap on (or beats) basic
    # access: the relative advantage improves monotonically with n.
    advantages = [row[2] / row[1] for row in rows]
    assert advantages == sorted(advantages)
    # The analytic model agrees RTS wins by n=10 in this configuration.
    assert rows[-1][4] > rows[-1][3]
