"""Execute one concrete campaign job: spec in, protocol-stats row out.

The runner is the bridge between the declarative layer and the
existing scenario builders (:mod:`repro.scenarios`): every builder
registered here wires a complete topology, primes traffic, attaches
any declared adversaries, runs to the spec's horizon, and returns a
flat ``stats`` dict that is a **pure function of the seed** — the
determinism contract the content-addressed manifest and the
byte-compared result store rely on.

Builders never print and never read the wall clock; everything
machine- or time-dependent lives in the executor layer.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional

from .. import scenarios
from ..adversary.emitters import (BluetoothHopper, ConstantJammer,
                                  MicrowaveOven, PeriodicJammer,
                                  ReactiveJammer)
from ..analysis.mesh import aggregate_mesh_counters
from ..core.engine import Simulator
from ..core.topology import Position
from ..core.trace import TraceLog
from ..mac.addresses import reset_allocator
from ..mac.dcf import DcfConfig, MacListener
from ..phy.standards import DOT11B, DOT11G
from ..routing.protocol import StaticRouting
from ..traffic.generators import CbrSource
from ..traffic.sink import TrafficSink
from .spec import SpecError

__all__ = ["run_job", "BUILDERS"]

_STANDARDS = {"b": DOT11B, "g": DOT11G}


# --- shared wiring ----------------------------------------------------------

class _RxCount(MacListener):
    """Receiver-side byte/frame counter (the saturation workloads)."""

    def __init__(self) -> None:
        self.bytes = 0
        self.frames = 0

    def count(self, payload: bytes) -> None:
        self.bytes += len(payload)
        self.frames += 1


def _mac_config(params: Dict[str, Any]) -> Optional[DcfConfig]:
    threshold = params.get("rts_threshold_bytes")
    if threshold is None:
        return None
    return DcfConfig(rts_threshold_bytes=threshold)


def _standard(params: Dict[str, Any], default: str = "g"):
    name = params.get("standard", default)
    if name not in _STANDARDS:
        raise SpecError("scenario.params.standard",
                        f"unknown standard {name!r}; available: "
                        f"{sorted(_STANDARDS)}")
    return _STANDARDS[name]


ADVERSARY_KINDS: Dict[str, Any] = {
    "periodic_jammer": PeriodicJammer,
    "constant_jammer": ConstantJammer,
    "reactive_jammer": ReactiveJammer,
    "bluetooth_hopper": BluetoothHopper,
    "microwave_oven": MicrowaveOven,
}


def _attach_adversaries(sim: Simulator, medium, standard,
                        entries: List[Dict[str, Any]]) -> None:
    """Instantiate + start every declared adversary on ``medium``.

    Each entry was validated by the spec layer; here the declarative
    form turns into the concrete emitter objects.  ``start`` delays
    the switch-on (an attack-phase study: baseline first, jam later);
    the default is on-from-the-start.
    """
    for index, entry in enumerate(entries):
        kind = entry["kind"]
        cls = ADVERSARY_KINDS[kind]
        kwargs = {key: value for key, value in entry.items()
                  if key not in ("kind", "position", "start")}
        if kind == "microwave_oven" and "channels" in kwargs:
            kwargs["channels"] = tuple(kwargs["channels"])
        if kind == "reactive_jammer":
            kwargs.setdefault("standard", standard)
        kwargs.setdefault("name", f"adv{index}-{kind}")
        position = Position(*entry["position"])
        try:
            emitter = cls(sim, medium, position, **kwargs)
        except TypeError as exc:
            raise SpecError(f"adversaries.{index}", str(exc))
        start = entry.get("start", 0.0)
        if start > 0.0:
            sim.schedule(start, emitter.start)
        else:
            emitter.start()


def _cbr_uplink(sim: Simulator, bss, traffic: Dict[str, Any]):
    """Per-station CBR uplink into a sink on the AP (the jamming-study
    wiring).  Returns ``(sink, sources)``."""
    sink = TrafficSink(sim)
    bss.ap.on_receive(lambda source, payload, meta: sink.consume(payload))
    payload_bytes = traffic.get("payload_bytes", 400)
    interval = traffic.get("interval", 4e-3)
    sources = {}
    for station in bss.stations:
        sources[station.name] = CbrSource(
            sim,
            lambda p, s=station: s.associated and s.send(bss.ap.address, p),
            packet_bytes=payload_bytes, interval=interval)
    return sink, sources


def _saturate_uplink(sim: Simulator, bss, traffic: Dict[str, Any]
                     ) -> _RxCount:
    """Keep every station's queue non-empty; count delivery at the AP."""
    counter = _RxCount()
    bss.ap.on_receive(lambda source, payload, meta: counter.count(payload))
    payload = bytes(traffic.get("payload_bytes", 800))
    depth = traffic.get("depth", 3)
    for station in bss.stations:
        mac = station.mac
        destination = bss.ap.address

        def _refill(msdu, ok, _mac=mac, _dst=destination) -> None:
            _mac.send(_dst, payload)

        station.on_tx_complete(_refill)
        for _ in range(depth):
            mac.send(destination, payload)
    return counter


def _flow_stats(sink: TrafficSink, sources: Dict[str, Any]
                ) -> Dict[str, Any]:
    offered = sum(source.generated for source in sources.values())
    delivered = 0
    delivered_bytes = 0
    for source in sources.values():
        flow = sink.flow(source.flow_id)
        if flow is not None:
            delivered += flow.received
            delivered_bytes += flow.bytes_received
    return {
        "offered": offered,
        "delivered": delivered,
        "delivered_bytes": delivered_bytes,
        "pdr": (delivered / offered) if offered else 0.0,
    }


def _mac_drops(stations) -> int:
    return sum(station.mac.counters.get("msdu_dropped")
               for station in stations)


# --- builders ---------------------------------------------------------------

def _run_infrastructure_bss(sim: Simulator, spec: Dict[str, Any]
                            ) -> Dict[str, Any]:
    """An AP-centred cell (``build_infrastructure_bss``) under CBR or
    saturation uplink, with optional adversaries on the same medium."""
    params = spec["scenario"]["params"]
    traffic = spec["traffic"]
    bss = scenarios.build_infrastructure_bss(
        sim, params.get("stations", 6),
        standard=_standard(params),
        radius_m=params.get("radius_m", 15.0),
        path_loss_exponent=params.get("path_loss_exponent", 3.0),
        mac_config=_mac_config(params))
    _attach_adversaries(sim, bss.medium, bss.ap.radio.standard,
                        spec["adversaries"])
    horizon = spec["scenario"]["horizon"]
    if traffic["kind"] == "cbr":
        sink, sources = _cbr_uplink(sim, bss, traffic)
        sim.run(until=sim.now + horizon)
        stats = _flow_stats(sink, sources)
    elif traffic["kind"] == "saturate":
        counter = _saturate_uplink(sim, bss, traffic)
        sim.run(until=sim.now + horizon)
        stats = {"rx_bytes": counter.bytes, "rx_frames": counter.frames}
    else:  # none: association + adversaries only (a control row)
        sim.run(until=sim.now + horizon)
        stats = {}
    stats["mac_drops"] = _mac_drops(bss.stations)
    return stats


def _run_hidden_terminal(sim: Simulator, spec: Dict[str, Any]
                         ) -> Dict[str, Any]:
    """Two mutually hidden saturated senders, one receiver
    (``build_hidden_terminal``) — the RTS/CTS study as data."""
    params = spec["scenario"]["params"]
    traffic = spec["traffic"]
    if traffic["kind"] != "saturate":
        raise SpecError("traffic.kind",
                        "hidden_terminal is a saturation scenario; "
                        "use kind = 'saturate'")
    scenario = scenarios.build_hidden_terminal(
        sim, carrier_range_m=params.get("carrier_range_m", 250.0),
        mac_config=_mac_config(params))
    _attach_adversaries(sim, scenario.medium,
                        scenario.receiver.radio.standard,
                        spec["adversaries"])
    counter = _RxCount()
    scenario.receiver.on_receive(
        lambda source, payload, meta: counter.count(payload))
    payload = bytes(traffic.get("payload_bytes", 800))
    depth = traffic.get("depth", 3)
    destination = scenario.receiver.address
    for sender in (scenario.sender_a, scenario.sender_b):
        mac = sender.mac
        sender.on_tx_complete(
            lambda msdu, ok, _m=mac: _m.send(destination, payload))
        for _ in range(depth):
            mac.send(destination, payload)
    sim.run(until=sim.now + spec["scenario"]["horizon"])
    return {
        "rx_bytes": counter.bytes,
        "rx_frames": counter.frames,
        "mac_drops": _mac_drops([scenario.sender_a, scenario.sender_b]),
    }


def _run_mesh(sim: Simulator, spec: Dict[str, Any],
              positions, chain: bool) -> Dict[str, Any]:
    params = spec["scenario"]["params"]
    traffic = spec["traffic"]
    protocol = params.get("protocol", "dsdv")
    if protocol == "static":
        if not chain:
            raise SpecError("scenario.params.protocol",
                            "static routing is only wired for chains "
                            "(install_chain_routes); use 'dsdv'")
        factory = StaticRouting
    elif protocol == "dsdv":
        from ..routing.dsdv import DsdvRouting
        factory = DsdvRouting
    else:
        raise SpecError("scenario.params.protocol",
                        f"unknown protocol {protocol!r}; available: "
                        f"['dsdv', 'static']")
    mesh = scenarios.build_mesh_network(
        sim, positions, factory,
        range_m=params.get("range_m", 45.0))
    if protocol == "static":
        scenarios.install_chain_routes(mesh.nodes)
    _attach_adversaries(sim, mesh.medium, DOT11B, spec["adversaries"])
    mesh.start_routing()
    warmup = params.get("warmup", 1.0)
    if warmup > 0:
        sim.run(until=sim.now + warmup)
    source_index = params.get("source", len(mesh.nodes) - 1)
    dest_index = params.get("destination", 0)
    for name, index in (("source", source_index),
                        ("destination", dest_index)):
        if not 0 <= index < len(mesh.nodes):
            raise SpecError(f"scenario.params.{name}",
                            f"node index {index} out of range "
                            f"(mesh has {len(mesh.nodes)} nodes)")
    if traffic["kind"] != "cbr":
        raise SpecError("traffic.kind",
                        "mesh scenarios carry an end-to-end CBR flow; "
                        "use kind = 'cbr'")
    sink = TrafficSink(sim)
    mesh.nodes[dest_index].on_receive(sink)
    source = CbrSource(
        sim, mesh.nodes[source_index].sender(
            mesh.nodes[dest_index].address),
        packet_bytes=traffic.get("payload_bytes", 200),
        interval=traffic.get("interval", 0.02))
    sim.run(until=sim.now + spec["scenario"]["horizon"])
    totals = aggregate_mesh_counters(mesh.nodes)
    delivered = sink.total_received
    flow = sink.flow(source.flow_id)
    return {
        "offered": source.generated,
        "delivered": delivered,
        "delivered_bytes": sink.total_bytes,
        "pdr": (delivered / source.generated) if source.generated else 0.0,
        "mean_delay_ms": (flow.delay.mean * 1e3
                          if flow is not None and flow.received else 0.0),
        "forwarded": totals.get("forwarded"),
        "link_failures": totals.get("link_failures"),
        "converged": sum(
            1 for node in mesh.nodes
            if len(node.protocol.routes()) >= len(mesh.nodes) - 1),
    }


def _run_mesh_chain(sim: Simulator, spec: Dict[str, Any]
                    ) -> Dict[str, Any]:
    """A relay chain (``chain_topology`` + ``build_mesh_network``) with
    an end-to-end CBR flow over static or DSDV routing."""
    params = spec["scenario"]["params"]
    positions = scenarios.chain_topology(params.get("nodes", 4),
                                         params.get("spacing_m", 30.0))
    return _run_mesh(sim, spec, positions, chain=True)


def _run_mesh_grid(sim: Simulator, spec: Dict[str, Any]) -> Dict[str, Any]:
    """A rows x cols mesh grid (``grid_topology``) with an end-to-end
    CBR flow — the redundant-path topology."""
    params = spec["scenario"]["params"]
    positions = scenarios.grid_topology(params.get("rows", 2),
                                        params.get("cols", 4),
                                        params.get("spacing_m", 30.0))
    return _run_mesh(sim, spec, positions, chain=False)


def _run_interference_field(sim: Simulator, spec: Dict[str, Any]
                            ) -> Dict[str, Any]:
    """A CBR-uplink BSS ringed by duty-cycled emitters
    (``build_interference_field``), plus any declared adversaries."""
    params = spec["scenario"]["params"]
    traffic = spec["traffic"]
    field = scenarios.build_interference_field(
        sim,
        station_count=params.get("stations", 6),
        emitter_count=params.get("emitters", 8),
        radius_m=params.get("radius_m", 20.0),
        emitter_ring_m=params.get("emitter_ring_m", 35.0),
        emitter_power_dbm=params.get("emitter_power_dbm", 0.0),
        emitter_on_time=params.get("emitter_on_time", 300e-6),
        emitter_period=params.get("emitter_period", 900e-6),
        path_loss_exponent=params.get("path_loss_exponent", 3.0))
    bss = field.bss
    _attach_adversaries(sim, bss.medium, bss.ap.radio.standard,
                        spec["adversaries"])
    if traffic["kind"] != "cbr":
        raise SpecError("traffic.kind",
                        "interference_field measures delivery under "
                        "interference; use kind = 'cbr'")
    sink, sources = _cbr_uplink(sim, bss, traffic)
    field.start_emitters()
    sim.run(until=sim.now + spec["scenario"]["horizon"])
    stats = _flow_stats(sink, sources)
    stats["mac_drops"] = _mac_drops(bss.stations)
    return stats


def _run_city_cells(sim: Simulator, spec: Dict[str, Any]
                    ) -> Dict[str, Any]:
    """The sharded-executor city grid (``build_city_cells``) through the
    single-process oracle — the bulk-sweep face of ``city_scale``.

    ``run_single`` owns its own kernel, so the ``sim`` built by
    :func:`run_job` is unused here (its seed/profile were already
    consumed into the call below).
    """
    from ..parallel import run_single
    params = spec["scenario"]["params"]
    cells = scenarios.build_city_cells(
        bss_count=params.get("bss_count", 4),
        stations_per_bss=params.get("stations_per_bss", 4),
        spacing_m=params.get("spacing_m", 120.0),
        payload_size=params.get("payload_size", 800))
    result = run_single(cells, seed=spec["scenario"]["seed"],
                        horizon=spec["scenario"]["horizon"],
                        propagation_factory=scenarios.city_propagation,
                        exact=spec["mode"]["profile"] == "exact")
    rx_bytes = sum(cell["rx_bytes"] for cell in result["cells"].values())
    rx_frames = sum(cell["rx_frames"] for cell in result["cells"].values())
    return {"rx_bytes": rx_bytes, "rx_frames": rx_frames,
            "cells": len(result["cells"]),
            "events": result["events"]}


BUILDERS: Dict[str, Callable[[Simulator, Dict[str, Any]], Dict[str, Any]]] = {
    "infrastructure_bss": _run_infrastructure_bss,
    "hidden_terminal": _run_hidden_terminal,
    "mesh_chain": _run_mesh_chain,
    "mesh_grid": _run_mesh_grid,
    "interference_field": _run_interference_field,
    "city_cells": _run_city_cells,
}


def run_job(spec: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one concrete job spec; return its ``stats`` dict.

    The returned stats always include ``events`` (total kernel events
    executed) and are a pure function of the spec — the runner resets
    the global MAC address allocator and builds a fresh tracing-off
    simulator per job, so jobs are independent whether they run
    in-process, serially, or fanned out across forked workers.
    """
    builder = spec["scenario"]["builder"]
    mode = spec["mode"]
    reset_allocator()
    sim = Simulator(seed=spec["scenario"]["seed"],
                    trace=TraceLog(enabled=False),
                    profile=mode["profile"],
                    kernel=None if mode["kernel"] == "auto"
                    else mode["kernel"])
    # Subsystems that build their own Simulator (run_single under
    # city_cells) resolve the kernel from REPRO_KERNEL; pin it for the
    # duration of the job so an explicit spec kernel reaches them too.
    saved = os.environ.get("REPRO_KERNEL")
    if mode["kernel"] != "auto":
        os.environ["REPRO_KERNEL"] = mode["kernel"]
    try:
        stats = BUILDERS[builder](sim, spec)
    finally:
        if mode["kernel"] != "auto":
            if saved is None:
                os.environ.pop("REPRO_KERNEL", None)
            else:
                os.environ["REPRO_KERNEL"] = saved
    stats.setdefault("events", sim.events_executed)
    return stats
