"""Medium.detach: removing a radio from every fan-out surface.

Satellite regression: a compiled fan-out plan must not keep delivering
to a receiver that has since been detached (the plan pre-resolves the
receiver's bound upcalls, so stale plans would raise or deliver energy
to a corpse).
"""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import ConfigurationError
from repro.mac.addresses import allocate_address
from repro.mac.dcf import DcfMac, MacListener
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio, RadioState

A = Position(0, 0, 0)
B = Position(10, 0, 0)


class _Count(MacListener):
    def __init__(self):
        self.frames = 0

    def mac_receive(self, source, destination, payload, meta):
        self.frames += 1


def _pair(sim, exact=False):
    medium = Medium(sim, FixedLoss(50.0), exact=exact)
    tx_radio = Radio("tx", medium, DOT11B, A)
    tx = DcfMac(sim, tx_radio, allocate_address())
    rx_radio = Radio("rx", medium, DOT11B, B)
    rx = DcfMac(sim, rx_radio, allocate_address())
    counter = _Count()
    rx.listener = counter
    return medium, tx, rx, counter


class TestDetach:
    def test_transmit_with_plan_compiled_against_dead_receiver(self):
        sim = Simulator(seed=3)
        medium, tx, rx, counter = _pair(sim)
        tx.send(rx.address, bytes(200))
        sim.run(until=0.05)
        assert counter.frames == 1          # plan is compiled and warm
        medium.detach(rx.radio)
        tx.send(rx.address, bytes(200))
        sim.run(until=0.5)
        # The retransmissions burn out against silence; nothing reaches
        # the detached radio and nothing raises.
        assert counter.frames == 1
        assert not rx.radio._arrivals
        assert tx.counters.get("retry_fail") >= 1 or \
            tx.counters.get("drops_retry") >= 1 or tx.idle

    def test_detach_clears_compiled_plans(self):
        sim = Simulator(seed=3)
        medium, tx, rx, counter = _pair(sim)
        tx.send(rx.address, bytes(200))
        sim.run(until=0.05)
        assert medium._plans
        medium.detach(rx.radio)
        assert not medium._plans
        assert not medium._by_channel

    def test_detach_unknown_radio_raises(self):
        sim = Simulator(seed=3)
        medium, tx, rx, counter = _pair(sim)
        medium.detach(rx.radio)
        with pytest.raises(ConfigurationError):
            medium.detach(rx.radio)

    def test_reattach_restores_delivery(self):
        sim = Simulator(seed=3)
        medium, tx, rx, counter = _pair(sim)
        tx.send(rx.address, bytes(200))
        sim.run(until=0.05)
        medium.detach(rx.radio)
        sim.run(until=0.1)
        medium.attach(rx.radio)
        tx.send(rx.address, bytes(200))
        sim.run(until=0.6)
        assert counter.frames == 2

    @pytest.mark.parametrize("exact", [True, False])
    def test_inflight_arrival_drains_after_detach(self, exact):
        """Detaching mid-reception: the arrival edges already in the
        heap still fire and the energy drains to exactly zero."""
        sim = Simulator(seed=3)
        medium, tx, rx, counter = _pair(sim, exact=exact)
        tx.send(rx.address, bytes(1500))
        sim.run(until=0.0007)               # mid-burst (see crash_drain)
        assert tx.radio.state is RadioState.TX
        assert rx.radio.total_incident_power_watts() > 0.0
        medium.detach(rx.radio)
        sim.run(until=0.5)
        assert not rx.radio._arrivals
        assert rx.radio._incident_watts == 0.0
