"""Ultra Wide Band (IEEE 802.15.3): short-range, very high rate links.

UWB (source text §2.1, Fig 1.5) transmits sub-nanosecond pulses over
several GHz of bandwidth at very low power spectral density, carrying
information in pulse position/polarity.  The defining behaviour the
text tabulates is the steep rate-vs-distance profile: **480 Mb/s at
~2 m falling to 110 Mb/s at ~10 m**, i.e. a wireless USB-class cable
replacement.

The model: a rate ladder (the WiMedia band-group-1 ladder) selected by
link SNR, where SNR follows free-space loss over the huge bandwidth
(high noise floor — that is *why* UWB range is short despite the
processing gain).  Regulatory bands (US: 3.1–10.6 GHz; EU: 3.4–4.8 +
6–8.5 GHz) cap the usable bandwidth per region.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.engine import Simulator
from ..core.errors import ConfigurationError, LinkError
from ..core.topology import Position
from ..core.units import (
    dbm_to_watts,
    linear_to_db,
    mbps,
    thermal_noise_watts,
    watts_to_dbm,
)
from ..phy.propagation import FreeSpace


@dataclass(frozen=True)
class UwbRegulatoryDomain:
    """A regulatory allocation: usable spectrum for UWB."""

    name: str
    bands_hz: Tuple[Tuple[float, float], ...]

    @property
    def total_bandwidth_hz(self) -> float:
        return sum(high - low for low, high in self.bands_hz)

    @property
    def center_frequency_hz(self) -> float:
        low = min(band[0] for band in self.bands_hz)
        high = max(band[1] for band in self.bands_hz)
        return (low + high) / 2.0


USA = UwbRegulatoryDomain("USA (FCC)", ((3.1e9, 10.6e9),))
EUROPE = UwbRegulatoryDomain("Europe (ECC)",
                             ((3.4e9, 4.8e9), (6.0e9, 8.5e9)))

#: WiMedia-style rate ladder: (rate, required SNR dB over the channel).
#: Thresholds calibrated so the profile matches the text's figures:
#: 480 Mb/s out to ~2 m, 110 Mb/s out to ~10 m, dead well before 20 m.
UWB_RATE_LADDER = (
    (mbps(53.3), -5.5),
    (mbps(110.0), -4.0),
    (mbps(200.0), 2.0),
    (mbps(320.0), 5.5),
    (mbps(480.0), 8.0),
)

#: FCC Part 15 limit: -41.3 dBm/MHz EIRP.
PSD_LIMIT_DBM_PER_MHZ = -41.3


class UwbLink:
    """A point-to-point UWB link with distance-driven rate selection."""

    def __init__(self, sim: Simulator, a: Position, b: Position,
                 domain: UwbRegulatoryDomain = USA,
                 channel_bandwidth_hz: float = 528e6,
                 noise_figure_db: float = 7.0):
        if channel_bandwidth_hz <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if channel_bandwidth_hz > domain.total_bandwidth_hz:
            raise ConfigurationError(
                f"channel wider than the {domain.name} allocation")
        self.sim = sim
        self.a = a
        self.b = b
        self.domain = domain
        self.channel_bandwidth_hz = channel_bandwidth_hz
        # Total TX power = PSD limit integrated over the channel.
        self.tx_power_dbm = PSD_LIMIT_DBM_PER_MHZ + \
            10.0 * math.log10(channel_bandwidth_hz / 1e6)
        self.noise_watts = thermal_noise_watts(channel_bandwidth_hz,
                                               noise_figure_db)
        self._propagation = FreeSpace(domain.center_frequency_hz,
                                      min_distance=0.1)
        self.bytes_transferred = 0

    # --- link budget -------------------------------------------------------------

    @property
    def distance(self) -> float:
        return self.a.distance_to(self.b)

    def snr_db(self, distance: Optional[float] = None) -> float:
        d = distance if distance is not None else self.distance
        loss_db = self._propagation.path_loss_db(Position(0, 0, 0),
                                                 Position(d, 0, 0))
        rx_dbm = self.tx_power_dbm - loss_db
        return rx_dbm - watts_to_dbm(self.noise_watts)

    def rate_bps(self, distance: Optional[float] = None) -> float:
        """The fastest ladder rate the link SNR supports (0 if none)."""
        snr = self.snr_db(distance)
        best = 0.0
        for rate, required_snr in UWB_RATE_LADDER:
            if snr >= required_snr:
                best = rate
        return best

    def max_range_for_rate(self, rate_bps_wanted: float,
                           upper_bound_m: float = 100.0) -> float:
        """Farthest distance at which the ladder still yields the rate."""
        low, high = 0.1, upper_bound_m
        if self.rate_bps(high) >= rate_bps_wanted:
            return high
        if self.rate_bps(low) < rate_bps_wanted:
            return 0.0
        for _ in range(60):
            mid = (low + high) / 2.0
            if self.rate_bps(mid) >= rate_bps_wanted:
                low = mid
            else:
                high = mid
        return low

    # --- transfer ---------------------------------------------------------------

    def transfer_time(self, size_bytes: int,
                      efficiency: float = 0.8) -> float:
        """Time to move a payload at the current distance's rate.

        ``efficiency`` accounts for preambles/ACK gaps of the 802.15.3
        superframe; the link is dead (raises) when out of range.
        """
        rate = self.rate_bps()
        if rate <= 0:
            raise LinkError(
                f"UWB link budget does not close at {self.distance:.1f} m")
        return size_bytes * 8 / (rate * efficiency)

    def transfer(self, size_bytes: int, on_done=None) -> float:
        finish = self.sim.now + self.transfer_time(size_bytes)

        def _complete() -> None:
            self.bytes_transferred += size_bytes
            if on_done is not None:
                on_done(size_bytes)

        self.sim.schedule_at(finish, _complete)
        return finish
