"""Structured event tracing.

Every protocol entity can record what it did and when.  Traces are the
ground truth for debugging MAC interleavings ("who held the medium at
t=1.2034?") and they back several tests that assert on protocol event
*ordering* rather than only on aggregate counters.

A :class:`TraceLog` is a bounded, filterable, in-memory collection of
:class:`TraceRecord` entries.  It is intentionally simple — no file I/O
in the hot path; callers can dump to text after the run.

Performance contract: when tracing is disabled, or an event type is
filtered out by :meth:`TraceLog.enable_only`, recording must not
allocate.  :meth:`TraceLog.record` constructs the :class:`TraceRecord`
lazily (only once the event passes the enable mask), and hot call sites
can pre-check :meth:`TraceLog.wants` to skip even building the keyword
detail dict.  Retention uses ``collections.deque(maxlen=...)`` so
eviction at capacity is O(1) per record instead of a slice-delete.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import (Any, Callable, Deque, Dict, FrozenSet, Iterable,
                    Iterator, List, Optional)


@dataclass(frozen=True)
class TraceRecord:
    """One traced protocol event."""

    time: float
    source: str
    event: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """Render as a single human-readable line."""
        parts = [f"{self.time * 1e6:12.3f}us", self.source, self.event]
        if self.detail:
            kv = " ".join(f"{key}={value}" for key, value in sorted(self.detail.items()))
            parts.append(kv)
        return "  ".join(parts)


class TraceLog:
    """Bounded in-memory trace collector.

    Parameters
    ----------
    capacity:
        Maximum records retained; older records are discarded FIFO.
        ``None`` means unbounded (use in tests, not long runs).
    enabled:
        Tracing can be disabled wholesale for performance-sensitive
        benchmark runs; :meth:`record` then becomes a cheap no-op.
    """

    def __init__(self, capacity: Optional[int] = 100_000, enabled: bool = True):
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)
        self._dropped = 0
        self.enabled = enabled
        #: ``None`` means every event type is recorded; otherwise only
        #: event names in the mask are kept.
        self._event_mask: Optional[FrozenSet[str]] = None

    @property
    def capacity(self) -> Optional[int]:
        """Retention bound; the deque's ``maxlen`` is the single source
        of truth."""
        return self._records.maxlen

    # --- enable mask -------------------------------------------------------

    def enable_only(self, *events: str) -> None:
        """Record only the named event types (per-event-type enable mask)."""
        self._event_mask = frozenset(events)

    def enable_all_events(self) -> None:
        """Drop the event mask: record every event type again."""
        self._event_mask = None

    @property
    def event_mask(self) -> Optional[FrozenSet[str]]:
        return self._event_mask

    def wants(self, event: str) -> bool:
        """Cheap hot-path pre-check: would :meth:`record` keep ``event``?

        Call sites with expensive detail kwargs should guard on this so a
        disabled or filtered log costs neither the detail dict nor the
        record allocation.
        """
        if not self.enabled:
            return False
        mask = self._event_mask
        return mask is None or event in mask

    # --- recording ---------------------------------------------------------

    def record(self, time: float, source: str, event: str, **detail: Any) -> None:
        """Append a trace record (no-op when disabled or filtered)."""
        if not self.enabled:
            return
        mask = self._event_mask
        if mask is not None and event not in mask:
            return
        records = self._records
        if records.maxlen is not None and len(records) == records.maxlen:
            self._dropped += 1
        records.append(TraceRecord(time, source, event, detail))

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    @property
    def dropped(self) -> int:
        """Records discarded due to the capacity bound."""
        return self._dropped

    def clear(self) -> None:
        self._records.clear()

    def select(self, source: Optional[str] = None, event: Optional[str] = None,
               predicate: Optional[Callable[[TraceRecord], bool]] = None
               ) -> List[TraceRecord]:
        """Filter records by source and/or event name and/or a predicate."""
        result = []
        for record in self._records:
            if source is not None and record.source != source:
                continue
            if event is not None and record.event != event:
                continue
            if predicate is not None and not predicate(record):
                continue
            result.append(record)
        return result

    def events(self, event: str) -> List[TraceRecord]:
        """Shorthand for :meth:`select` on event name only."""
        return self.select(event=event)

    def format(self, limit: Optional[int] = None) -> str:
        """Render the (tail of the) trace as text."""
        records: Iterable[TraceRecord] = self._records
        if limit is not None:
            records = list(self._records)[-limit:]
        return "\n".join(record.format() for record in records)
