"""E5 — Fig 1.5: UWB rate vs distance and the regulatory allocations.

Reproduces the text's §2.1 UWB claims: "data transfer over 110 Mbps up
to 480 Mbps at distances up to few meters", the US (3.1-10.6 GHz) vs
Europe (3.4-4.8 + 6-8.5 GHz) allocations, and the wireless-USB-class
bulk-transfer use case.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core import Position, Simulator
from repro.core.units import mbps, to_mbps
from repro.wpan.uwb import EUROPE, USA, UwbLink

DISTANCES_M = [0.5, 1, 2, 3, 4, 6, 8, 10, 12, 15]


def sweep(domain, seed=1):
    sim = Simulator(seed=seed)
    rows = []
    for distance in DISTANCES_M:
        link = UwbLink(sim, Position(0, 0, 0), Position(distance, 0, 0),
                       domain=domain)
        rate = link.rate_bps()
        transfer_s = (link.transfer_time(100_000_000)
                      if rate > 0 else None)
        rows.append([distance, to_mbps(rate), link.snr_db(), transfer_s])
    return rows


def test_fig_uwb(benchmark, record_result):
    us_rows = benchmark.pedantic(sweep, args=(USA,), rounds=1, iterations=1)
    text = render_table(
        "E5: UWB rate vs distance, US allocation (Fig 1.5)",
        ["distance m", "rate Mb/s", "SNR dB", "100MB transfer s"],
        us_rows, formats=[None, ".1f", ".1f", ".2f"])
    record_result("E5_uwb", text)

    by_distance = {row[0]: row[1] for row in us_rows}
    # The text's profile: 480 close in, >= 110 out to ~10 m, dead beyond.
    assert by_distance[2] == 480.0
    assert by_distance[10] >= 110.0
    assert by_distance[15] < 110.0
    # Monotone decline.
    rates = [row[1] for row in us_rows]
    assert rates == sorted(rates, reverse=True)
    # Cable-replacement: a 100 MB file at 2 m in single-digit seconds.
    transfer_at_2m = [row[3] for row in us_rows if row[0] == 2][0]
    assert transfer_at_2m < 5.0


def test_uwb_regulatory_domains(benchmark, record_result):
    def run():
        sim = Simulator(seed=2)
        rows = []
        for domain in (USA, EUROPE):
            link = UwbLink(sim, Position(0, 0, 0), Position(2, 0, 0),
                           domain=domain)
            rows.append([domain.name, domain.total_bandwidth_hz / 1e9,
                         to_mbps(link.rate_bps()),
                         link.max_range_for_rate(mbps(110.0))])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        "E5b: UWB regulatory allocations (text §2.1)",
        ["domain", "allocation GHz", "rate @2m Mb/s", "110Mb/s range m"],
        rows, formats=[None, ".1f", ".0f", ".1f"])
    record_result("E5b_uwb_domains", text)
    us, europe = rows
    assert us[1] == pytest.approx(7.5)
    assert europe[1] == pytest.approx(3.9)
    # Both regions sustain the headline rates at 2 m.
    assert us[2] == europe[2] == 480
