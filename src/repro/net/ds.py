"""The distribution system (DS).

The DS is "the mechanism by which APs exchange frames with one another
and with wired networks" (source text §3.1).  We model the nearly
universal commercial choice — a wired Ethernet backbone — as a
constant-latency, reliable bus connecting every AP in an ESS, plus an
optional **portal** representing the gateway to the wired LAN /
Internet.

The DS keeps the ESS-wide station location table: which AP each
station is currently associated with.  APs update it on (re)association
and disassociation, which is exactly what makes roaming seamless — the
moment a station reassociates, frames for it flow through the new AP.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, TYPE_CHECKING

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.stats import Counter
from ..mac.addresses import MacAddress

if TYPE_CHECKING:  # pragma: no cover
    from .ap import AccessPoint

#: Portal delivery callback: (source, destination, payload) -> None.
PortalHook = Callable[[MacAddress, MacAddress, bytes], None]


class DistributionSystem:
    """Wired backbone connecting the APs of an ESS."""

    def __init__(self, sim: Simulator, latency: float = 50e-6):
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0: {latency}")
        self.sim = sim
        self.latency = latency
        self._aps: List["AccessPoint"] = []
        self._locations: Dict[MacAddress, "AccessPoint"] = {}
        self._portal: Optional[PortalHook] = None
        self.counters = Counter()

    # --- membership ------------------------------------------------------------

    def attach_ap(self, ap: "AccessPoint") -> None:
        if ap in self._aps:
            raise ConfigurationError(f"AP {ap.name} attached twice")
        self._aps.append(ap)

    @property
    def aps(self) -> List["AccessPoint"]:
        return list(self._aps)

    def set_portal(self, hook: PortalHook) -> None:
        """Register the wired-LAN gateway callback."""
        self._portal = hook

    # --- the station location table ----------------------------------------------

    def station_moved(self, station: MacAddress, ap: "AccessPoint") -> None:
        """Record that ``station`` is now associated with ``ap``."""
        previous = self._locations.get(station)
        self._locations[station] = ap
        if previous is not None and previous is not ap:
            previous.station_roamed_away(station)
            self.counters.incr("roams")

    def station_left(self, station: MacAddress, ap: "AccessPoint") -> None:
        """Remove the entry if it still points at ``ap``."""
        if self._locations.get(station) is ap:
            del self._locations[station]

    def locate(self, station: MacAddress) -> Optional["AccessPoint"]:
        return self._locations.get(station)

    # --- forwarding -----------------------------------------------------------

    def forward(self, from_ap: "AccessPoint", source: MacAddress,
                destination: MacAddress, payload: bytes,
                meta: Optional[Dict[str, Any]] = None) -> None:
        """Carry a frame across the backbone.

        Destinations associated anywhere in the ESS are delivered to
        their current AP (which queues a wireless from-DS transmission);
        broadcast goes to every other AP and the portal; anything else
        goes to the portal, or is counted as undeliverable.
        """
        self.counters.incr("forwarded")
        protected = bool(meta.get("protected")) if meta else False
        if destination.is_broadcast or destination.is_multicast:
            for ap in self._aps:
                if ap is not from_ap:
                    self.sim.schedule(self.latency, ap.deliver_from_ds,
                                      source, destination, payload,
                                      protected)
            if self._portal is not None:
                self.sim.schedule(self.latency, self._portal, source,
                                  destination, payload)
            return
        target_ap = self._locations.get(destination)
        if target_ap is not None:
            self.sim.schedule(self.latency, target_ap.deliver_from_ds,
                              source, destination, payload, protected)
        elif self._portal is not None:
            self.sim.schedule(self.latency, self._portal, source,
                              destination, payload)
        else:
            self.counters.incr("undeliverable")

    def inject_from_portal(self, source: MacAddress, destination: MacAddress,
                           payload: bytes) -> None:
        """Wired-side traffic entering the ESS through the portal."""
        target_ap = self._locations.get(destination)
        if target_ap is None:
            self.counters.incr("undeliverable")
            return
        self.counters.incr("portal_in")
        self.sim.schedule(self.latency, target_ap.deliver_from_ds,
                          source, destination, payload)
