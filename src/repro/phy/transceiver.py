"""The radio transceiver: TX/RX state machine, carrier sensing, capture.

A :class:`Radio` sits between the shared :class:`~repro.phy.channel.Medium`
and a MAC.  Its responsibilities:

* transmit frames handed down by the MAC (one at a time — half duplex),
* track every transmission currently incident on the antenna, lock onto
  at most one (reception), and integrate the rest as interference,
* run clear-channel assessment (CCA) and tell the MAC the instant the
  medium turns busy or idle — the DCF backoff freezes on these edges,
* decide frame delivery with the error model on the integrated SINR.

Upcalls to the MAC go through four direct bound-method slots —
:attr:`Radio.on_rx_end`, :attr:`Radio.on_tx_end`,
:attr:`Radio.on_cca_busy`, :attr:`Radio.on_cca_idle` — so the hot path
(every arrival edge of every frame, at every co-channel radio) does a
single attribute load and call instead of walking through a listener
object.  The classic :class:`PhyListener` interface remains as the
convenience surface: assigning :attr:`Radio.listener` rebinds all four
slots from the listener's methods.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from heapq import heappush as _heappush
from typing import Any, Callable, Dict, Optional, Set, TYPE_CHECKING

from ..core.engine import Timer
from ..core.errors import SimulationError
from ..core.topology import Position
from ..core.units import dbm_to_watts, linear_to_db, watts_to_dbm
from .error_models import BerErrorModel, ErrorModel
from .interference import CaptureModel, SinrTracker
from .standards import PhyMode, PhyStandard

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from .channel import Medium, Transmission


class RadioState(Enum):
    IDLE = "idle"
    RX = "rx"
    TX = "tx"
    SLEEP = "sleep"


class PhyListener:
    """Upcall interface the MAC implements.  Default methods are no-ops
    so simple listeners only override what they need.

    Assigning an instance to :attr:`Radio.listener` copies its four
    bound methods into the radio's direct upcall slots; overriding a
    listener method *after* assignment therefore requires re-assigning
    the listener (or setting the slot directly)."""

    def phy_rx_end(self, payload: Any, success: bool, snr_db: float,
                   mode: PhyMode) -> None:
        """A locked reception finished; ``success`` reflects the error model."""

    def phy_tx_end(self) -> None:
        """Our own transmission left the antenna completely."""

    def phy_cca_busy(self) -> None:
        """Medium transitioned idle -> busy."""

    def phy_cca_idle(self) -> None:
        """Medium transitioned busy -> idle."""


@dataclass
class RadioConfig:
    """Tunable radio parameters (defaults follow common 802.11 practice)."""

    tx_power_dbm: Optional[float] = None  # None -> standard default
    #: Energy-detection CCA threshold.
    cca_threshold_dbm: float = -82.0
    #: SNR needed to detect/lock a preamble.
    preamble_detection_snr_db: float = 0.0
    capture: CaptureModel = CaptureModel()


class Radio:
    """Half-duplex radio bound to one medium, one standard, one channel."""

    __slots__ = ("name", "medium", "standard", "_position", "_channel_id",
                 "config", "error_model", "_listener", "on_rx_end",
                 "on_tx_end", "on_cca_busy", "on_cca_idle",
                 "on_state_change", "_state", "tx_power_watts",
                 "_noise_watts", "_cca_threshold_watts", "decodable_modes",
                 "_tx_mode_names", "_arrivals", "_locked", "_locked_power",
                 "_locked_tracker", "_cca_busy", "_sim", "_rng", "_trace",
                 "_rx_timer", "_capture", "_snr_cache", "_exact",
                 "_tracker", "_incident_watts", "_edges_since_rebase",
                 "_rebases", "_preamble_floor_watts", "_capture_ratio",
                 "_tx_epoch")

    def __init__(self, name: str, medium: "Medium", standard: PhyStandard,
                 position: Position, channel_id: int = 1,
                 config: Optional[RadioConfig] = None,
                 error_model: Optional[ErrorModel] = None):
        self.name = name
        self.medium = medium
        self.standard = standard
        self._position = position
        self._channel_id = channel_id
        self.config = config if config is not None else RadioConfig()
        self.error_model = error_model if error_model is not None else BerErrorModel()
        # Direct upcall slots — the flattened hot path.  `listener`
        # below rebinds all four from a PhyListener-style object.
        self._listener: PhyListener = PhyListener()
        self.on_rx_end: Callable[[Any, bool, float, PhyMode], None] = \
            self._listener.phy_rx_end
        self.on_tx_end: Callable[[], None] = self._listener.phy_tx_end
        self.on_cca_busy: Callable[[], None] = self._listener.phy_cca_busy
        self.on_cca_idle: Callable[[], None] = self._listener.phy_cca_idle
        #: Optional hook fired with the new state name on every radio
        #: state transition (used by the energy meter).
        self.on_state_change = None
        self._state = RadioState.IDLE
        tx_dbm = (self.config.tx_power_dbm
                  if self.config.tx_power_dbm is not None
                  else standard.default_tx_power_dbm)
        self.tx_power_watts = dbm_to_watts(tx_dbm)
        self._noise_watts = standard.noise_floor_watts
        self._cca_threshold_watts = dbm_to_watts(self.config.cca_threshold_dbm)
        #: Mode names this radio can decode; starts as the standard's own
        #: ladder and may be extended (e.g. a "mixed-mode" 802.11g radio
        #: also decodes 802.11b DSSS/CCK frames).
        self.decodable_modes: Set[str] = {mode.name for mode in standard.modes}
        self._tx_mode_names = {mode.name for mode in standard.modes}
        # Arrivals currently incident on the antenna: transmission -> rx power.
        self._arrivals: Dict["Transmission", float] = {}
        # The transmission currently locked for reception (plus its
        # receive power and SINR tracker, flattened into slots).
        self._locked: Optional["Transmission"] = None
        self._locked_power = 0.0
        self._locked_tracker: Optional[SinrTracker] = None
        self._cca_busy = False
        self._sim = medium.sim
        self._rng = medium.sim.rng.stream(f"radio.{name}")
        self._trace = medium.sim.trace
        self._rx_timer = Timer(medium.sim, self._reception_complete)
        self._capture = self.config.capture
        # Memoized preamble SNR per exact receive power (pure function
        # of power/noise; static links repeat the same few powers).
        self._snr_cache: Dict[float, float] = {}
        # Pre-allocated SINR tracker, reset per lock (a radio locks at
        # most one frame at a time; the per-lock allocation showed up
        # in saturation profiles).
        self._tracker = SinrTracker(0.0, 0.0, 0.0)
        # Relaxed-math (fast mode) state; maintained only when the
        # medium binds the *_fast arrival methods.  _incident_watts is
        # the running incident-power accumulator (drift-rebased);
        # _preamble_floor_watts / _capture_ratio are the linear-domain
        # decision thresholds fast mode uses in place of the dB math.
        self._exact = medium.exact
        self._incident_watts = 0.0
        self._tx_epoch = 0
        self._edges_since_rebase = 0
        #: Cumulative drift-rebase count (telemetry: the fast-mode
        #: accumulator health figure; `_edges_since_rebase` resets).
        self._rebases = 0
        self._preamble_floor_watts = self._noise_watts * \
            10.0 ** (self.config.preamble_detection_snr_db / 10.0)
        self._capture_ratio = self._capture.threshold_ratio()
        medium.attach(self)

    # --- helpers ----------------------------------------------------------

    @property
    def listener(self) -> PhyListener:
        """The registered upcall object (compatibility surface)."""
        return self._listener

    @listener.setter
    def listener(self, value: PhyListener) -> None:
        """Register a listener by copying its methods into the direct
        upcall slots (the hot path never touches the listener object)."""
        self._listener = value
        self.on_rx_end = value.phy_rx_end
        self.on_tx_end = value.phy_tx_end
        self.on_cca_busy = value.phy_cca_busy
        self.on_cca_idle = value.phy_cca_idle

    @property
    def position(self) -> Position:
        return self._position

    @position.setter
    def position(self, value: Position) -> None:
        """Move the radio; invalidates this radio's cached link budgets."""
        if value is self._position:
            return
        self._position = value
        self.medium.invalidate_links(self)

    @property
    def noise_watts(self) -> float:
        return self._noise_watts

    @noise_watts.setter
    def noise_watts(self, value: float) -> None:
        """Change the noise floor; invalidates the memoized preamble
        SNRs (which are pure functions of power / noise) and refreshes
        the fast mode's linear-domain preamble floor."""
        if value == self._noise_watts:
            return
        self._noise_watts = value
        self._snr_cache.clear()
        self._preamble_floor_watts = value * \
            10.0 ** (self.config.preamble_detection_snr_db / 10.0)

    @property
    def channel_id(self) -> int:
        return self._channel_id

    @channel_id.setter
    def channel_id(self, value: int) -> None:
        """Retune; invalidates the medium's per-channel receiver lists."""
        if value == self._channel_id:
            return
        self._channel_id = value
        self.medium.invalidate_channels()

    @property
    def state(self) -> RadioState:
        return self._state

    @state.setter
    def state(self, value: RadioState) -> None:
        if value is self._state:
            return
        self._state = value
        if self.on_state_change is not None:
            self.on_state_change(value.value)

    @property
    def sim(self):
        return self._sim

    def allow_decoding(self, standard: PhyStandard) -> None:
        """Additionally decode another standard's modes (b/g coexistence)."""
        self.decodable_modes.update(mode.name for mode in standard.modes)

    def total_incident_power_watts(self) -> float:
        return sum(self._arrivals.values())

    # --- transmit path ------------------------------------------------------

    def transmit(self, payload: Any, size_bits: int, mode: PhyMode) -> float:
        """Send a frame; returns its airtime.  MAC must be idle/decided."""
        if self.state == RadioState.TX:
            raise SimulationError(f"{self.name}: transmit while already in TX")
        if self.state == RadioState.SLEEP:
            raise SimulationError(f"{self.name}: transmit while asleep")
        if mode.name not in self._tx_mode_names:
            raise SimulationError(
                f"{self.name}: mode {mode.name} not in {self.standard.name}")
        # Transmitting aborts any in-progress reception (half duplex).
        if self._locked is not None:
            self._abort_locked()
        # state-property setter inlined on the TX/RX hot transitions:
        # these are always real state changes, so only the upcall check
        # remains (KEEP IN SYNC with the state setter).
        self._state = RadioState.TX
        if self.on_state_change is not None:
            self.on_state_change(RadioState.TX.value)
        self._update_cca()
        duration = self.standard.frame_airtime(size_bits, mode)
        self.medium.transmit(self, payload, size_bits, mode, duration,
                             self.tx_power_watts)
        self._sim.schedule_fast(duration, self._tx_complete, self._tx_epoch)
        trace = self._trace
        if trace.enabled and trace.wants("phy-tx-start"):
            trace.record(self._sim.now, self.name, "phy-tx-start",
                         bits=size_bits, mode=mode.name)
        return duration

    def transmit_energy(self, duration: float,
                        power_watts: Optional[float] = None) -> float:
        """Emit a burst of raw, non-decodable energy (jamming).

        The burst is fanned out through
        :meth:`~repro.phy.channel.Medium.transmit_energy`: co-channel
        radios see it as CCA energy and interference but never lock
        onto it.  The radio itself goes half-duplex TX for the burst —
        it cannot carrier-sense while jamming, exactly like a frame
        transmission — and fires :attr:`on_tx_end` when done.
        """
        if self.state == RadioState.TX:
            raise SimulationError(
                f"{self.name}: transmit_energy while already in TX")
        if self.state == RadioState.SLEEP:
            raise SimulationError(
                f"{self.name}: transmit_energy while asleep")
        if duration <= 0.0:
            raise SimulationError(
                f"{self.name}: energy burst needs a positive duration")
        if self._locked is not None:
            self._abort_locked()
        self._state = RadioState.TX  # state setter inlined (see transmit)
        if self.on_state_change is not None:
            self.on_state_change(RadioState.TX.value)
        self._update_cca()
        self.medium.transmit_energy(
            self, duration,
            self.tx_power_watts if power_watts is None else power_watts)
        self._sim.schedule_fast(duration, self._tx_complete, self._tx_epoch)
        trace = self._trace
        if trace.enabled and trace.wants("phy-energy-start"):
            trace.record(self._sim.now, self.name, "phy-energy-start",
                         duration=duration)
        return duration

    def _tx_complete(self, epoch: int = 0) -> None:
        if epoch != self._tx_epoch:
            # A power_off() mid-burst already tore the transmission down;
            # this is the stale completion event draining out of the heap
            # (schedule_fast events cannot be cancelled, only outlived).
            return
        self._state = RadioState.IDLE  # state setter inlined (TX -> IDLE)
        if self.on_state_change is not None:
            self.on_state_change(RadioState.IDLE.value)
        self._update_cca()
        self.on_tx_end()

    # --- sleep ------------------------------------------------------------

    def sleep(self) -> None:
        """Power down: no reception, no carrier sense."""
        if self.state == RadioState.TX:
            raise SimulationError(f"{self.name}: cannot sleep mid-transmission")
        if self._locked is not None:
            self._abort_locked()
        self.state = RadioState.SLEEP

    def wake(self) -> None:
        if self.state == RadioState.SLEEP:
            self.state = RadioState.IDLE
            self._update_cca()
            # A MAC that queued frames while asleep never saw a CCA
            # edge (sleeping radios do not contend), so kick it if the
            # medium is quiet — _update_cca above only fires on a
            # busy/idle *transition*, and idle->idle is no transition.
            if not self._cca_busy:
                self.on_cca_idle()

    # --- fault injection ----------------------------------------------------

    def power_off(self) -> None:
        """Hard power loss (fault injection): unlike :meth:`sleep`, legal
        mid-transmission.

        A burst that already left the antenna keeps propagating — its
        arrival edges are in the heap and drain at every receiver on
        their own — but our TX-complete upcall is suppressed by bumping
        the TX epoch (``schedule_fast`` events cannot be cancelled), and
        any locked reception is aborted.  Arrivals keep being *tracked*
        while powered off exactly as in SLEEP: the table must stay
        consistent so in-flight energy drains and a later
        :meth:`power_on` resumes carrier sense from truthful state.
        """
        if self._state is RadioState.TX:
            self._tx_epoch += 1
        if self._locked is not None:
            self._abort_locked()
        self.state = RadioState.SLEEP
        trace = self._trace
        if trace.enabled and trace.wants("phy-power-off"):
            trace.record(self._sim.now, self.name, "phy-power-off")

    def power_on(self) -> None:
        """Boot after :meth:`power_off` (delegates to :meth:`wake`)."""
        self.wake()

    # --- receive path (called by the Medium) --------------------------------

    def arrival_begins(self, transmission: "Transmission",
                       power_watts: float) -> None:
        """A transmission's energy starts arriving at our antenna.

        The hottest callback in any run (once per frame per co-channel
        radio); ``_update_cca`` is inlined at the tail (KEEP IN SYNC).
        Single-arrival edges skip the full table re-sum: ``sum([x])``
        is ``0.0 + x``, which is bit-identical to ``x`` for the
        non-negative powers the medium delivers, so the fast path is
        exact, not approximate.
        """
        arrivals = self._arrivals
        arrivals[transmission] = power_watts
        state = self._state
        if state is RadioState.SLEEP:
            return
        if self._locked is not None:
            if self._capture.should_capture(self._locked_power,
                                            power_watts):
                self._abort_locked()
                self._try_lock(transmission, power_watts)
            else:
                self._refresh_interference()
        elif state is RadioState.IDLE:
            self._try_lock(transmission, power_watts)
        state = self._state
        if state is RadioState.TX or state is RadioState.RX:
            busy = True
        elif len(arrivals) == 1:
            busy = power_watts >= self._cca_threshold_watts
        else:
            busy = sum(arrivals.values()) >= self._cca_threshold_watts
        if busy != self._cca_busy:
            self._cca_busy = busy
            if busy:
                self.on_cca_busy()
            else:
                self.on_cca_idle()

    def arrival_ends(self, transmission: "Transmission") -> None:
        """A transmission's energy stops arriving (its airtime elapsed).

        ``_update_cca`` inlined at the tail (KEEP IN SYNC).  An emptied
        arrival table short-circuits the re-sum (``sum([])`` is exactly
        ``0.0``).
        """
        arrivals = self._arrivals
        arrivals.pop(transmission, None)
        locked = self._locked
        if locked is not None and locked is not transmission:
            self._refresh_interference()
        state = self._state
        if state is RadioState.TX or state is RadioState.RX:
            busy = True
        elif state is RadioState.SLEEP:
            busy = False
        elif not arrivals:
            busy = 0.0 >= self._cca_threshold_watts
        else:
            busy = sum(arrivals.values()) >= self._cca_threshold_watts
        if busy != self._cca_busy:
            self._cca_busy = busy
            if busy:
                self.on_cca_busy()
            else:
                self.on_cca_idle()

    # --- relaxed-math receive path (fast mode; medium binds these) ----------

    def arrival_begins_fast(self, transmission: "Transmission",
                            power_watts: float) -> None:
        """Fast-mode twin of :meth:`arrival_begins`.

        Maintains the running incident-power accumulator instead of
        re-summing the arrival table, and decides capture with the
        precomputed linear threshold ratio.  Semantics match the exact
        path; float results may differ by a few ulp (see the medium's
        ``exact`` parameter).
        """
        self._arrivals[transmission] = power_watts
        self._incident_watts += power_watts
        state = self._state
        if state is RadioState.SLEEP:
            return
        if self._locked is not None:
            # Linear capture check: with capture disabled the ratio is
            # +inf, so the comparison is False for every finite power
            # (0 * inf -> nan also compares False) — one multiply
            # replaces CaptureModel.should_capture's branchy dB math.
            if power_watts >= self._locked_power * self._capture_ratio:
                self._abort_locked()
                self._try_lock_fast(transmission, power_watts)
            else:
                self._refresh_interference_fast()
        elif state is RadioState.IDLE:
            self._try_lock_fast(transmission, power_watts)
        state = self._state
        if state is RadioState.TX or state is RadioState.RX:
            busy = True
        else:
            busy = self._incident_watts >= self._cca_threshold_watts
        if busy != self._cca_busy:
            self._cca_busy = busy
            if busy:
                self.on_cca_busy()
            else:
                self.on_cca_idle()

    def arrival_ends_fast(self, transmission: "Transmission") -> None:
        """Fast-mode twin of :meth:`arrival_ends`.

        Decrements the accumulator and rebases it against the exact
        table sum every 256 departures (and exactly to ``0.0`` whenever
        the table empties), so float residue from the running
        add/subtract stream cannot drift the CCA decision over a long
        run.
        """
        arrivals = self._arrivals
        power = arrivals.pop(transmission, None)
        if power is not None:
            if arrivals:
                self._edges_since_rebase += 1
                if self._edges_since_rebase >= 256:
                    self._edges_since_rebase = 0
                    self._rebases += 1
                    self._incident_watts = sum(arrivals.values())
                else:
                    total = self._incident_watts - power
                    self._incident_watts = total if total > 0.0 else 0.0
            else:
                self._incident_watts = 0.0
                self._edges_since_rebase = 0
        locked = self._locked
        if locked is not None and locked is not transmission:
            self._refresh_interference_fast()
        state = self._state
        if state is RadioState.TX or state is RadioState.RX:
            busy = True
        elif state is RadioState.SLEEP:
            busy = False
        else:
            busy = self._incident_watts >= self._cca_threshold_watts
        if busy != self._cca_busy:
            self._cca_busy = busy
            if busy:
                self.on_cca_busy()
            else:
                self.on_cca_idle()

    def _try_lock_fast(self, transmission: "Transmission",
                       power_watts: float) -> None:
        """Fast-mode preamble detection: one linear-domain compare
        against the precomputed ``noise * 10^(snr/10)`` floor instead of
        a memoized ``log10`` — within ulp of the dB decision."""
        if power_watts < self._preamble_floor_watts:
            return  # too weak to even see a preamble: pure noise
        if transmission.mode.name not in self.decodable_modes:
            return  # foreign PHY: energy only
        sim = self._sim
        timer = self._rx_timer  # Timer.schedule inlined (see _try_lock)
        if timer._armed:
            sim._cancelled_events += 1
        else:
            timer._armed = True
        timer._version += 1
        time = sim._now + transmission.duration
        timer._time = time
        sim._scheduled += 1
        _heappush(sim._heap, (time, sim._next_seq(), timer, timer._version))
        self._locked = transmission
        self._locked_power = power_watts
        interference = self._incident_watts - power_watts
        self._locked_tracker = self._tracker.reset(
            power_watts, self._noise_watts, sim._now,
            interference if interference > 0.0 else 0.0)
        self._state = RadioState.RX  # state setter inlined (IDLE -> RX)
        if self.on_state_change is not None:
            self.on_state_change(RadioState.RX.value)

    def _refresh_interference_fast(self) -> None:
        if self._locked is None:
            return
        interference = self._incident_watts - self._locked_power
        if interference < 0.0:
            interference = 0.0
        tracker = self._locked_tracker
        if interference == 0.0 and tracker._current_interference == 0.0:
            return  # zero-rate segment either way; skip the bookkeeping
        tracker.set_interference(self._sim._now, interference)

    def _try_lock(self, transmission: "Transmission",
                  power_watts: float) -> None:
        # Kept as the historical dB-space comparison deliberately: a
        # linear-domain rewrite disagrees within a few ulp of the
        # threshold, which is enough to desynchronize a seeded run.
        # Memoized on the exact receive power (one log10 per distinct
        # link budget instead of one per arrival).
        try:
            snr_db = self._snr_cache[power_watts]
        except KeyError:
            snr_db = linear_to_db(power_watts / self.noise_watts) \
                if self.noise_watts > 0 else float("inf")
            if len(self._snr_cache) >= 4096:
                self._snr_cache.clear()
            self._snr_cache[power_watts] = snr_db
        if snr_db < self.config.preamble_detection_snr_db:
            return  # too weak to even see a preamble: pure noise
        if transmission.mode.name not in self.decodable_modes:
            return  # foreign PHY: energy only
        sim = self._sim
        arrivals = self._arrivals
        # _try_lock only runs from arrival_begins, so the new arrival is
        # already in the table; when it is the only one the re-sum
        # collapses to exactly 0.0 (sum([x]) - x == (0.0 + x) - x).
        if len(arrivals) == 1:
            interference = 0.0
        else:
            interference = sum(arrivals.values()) - power_watts
        # _try_lock only ever runs at the instant the energy starts
        # arriving, so the frame's tail lands exactly one airtime later
        # (the propagation delay shifted the whole frame, not its length).
        # Timer.schedule inlined (KEEP IN SYNC with engine.Timer):
        # airtime is a positive finite float so the bounds check cannot
        # fire, and this runs once per lock at every receiver.
        timer = self._rx_timer
        if timer._armed:
            sim._cancelled_events += 1
        else:
            timer._armed = True
        timer._version += 1
        now = sim._now
        time = now + transmission.duration
        timer._time = time
        sim._scheduled += 1
        _heappush(sim._heap, (time, sim._next_seq(), timer, timer._version))
        self._locked = transmission
        self._locked_power = power_watts
        # SinrTracker.reset inlined (KEEP IN SYNC): one lock per decoded
        # frame per receiver, and the field stores are all there is.
        tracker = self._tracker
        tracker.signal_watts = power_watts
        tracker.noise_watts = self._noise_watts
        tracker._start = now
        tracker._last_time = now
        tracker._current_interference = interference
        tracker._energy = 0.0
        self._locked_tracker = tracker
        self._state = RadioState.RX  # state setter inlined (IDLE -> RX)
        if self.on_state_change is not None:
            self.on_state_change(RadioState.RX.value)

    def _refresh_interference(self) -> None:
        locked = self._locked
        if locked is None:
            return
        arrivals = self._arrivals
        if len(arrivals) == 1 and locked in arrivals:
            # Only the locked signal is on the air: the historical
            # expression sum([locked_power]) - locked_power is exactly
            # 0.0, so skip the re-sum.
            interference = 0.0
        else:
            interference = sum(arrivals.values()) - self._locked_power
            # The locked signal may have already left the arrival table
            # if it ended; guard against a small negative residue (the
            # `< 0.0` branch keeps -0.0 exactly as max(x, 0.0) did).
            if interference < 0.0:
                interference = 0.0
        tracker = self._locked_tracker
        if interference == 0.0 and tracker._current_interference == 0.0:
            # A zero->zero update only moves the tracker's last-update
            # time across a segment that accrues 0.0 energy either way;
            # skipping it leaves every later energy sum bit-identical.
            return
        tracker.set_interference(self._sim._now, interference)

    def _abort_locked(self) -> None:
        assert self._locked is not None
        self._rx_timer.cancel()
        self._locked = None
        self._locked_tracker = None
        if self.state == RadioState.RX:
            self.state = RadioState.IDLE

    def _reception_complete(self) -> None:
        transmission = self._locked
        if transmission is None:
            return  # lock was aborted meanwhile (defensive; timer cancels)
        tracker = self._locked_tracker
        self._locked = None
        self._locked_tracker = None
        self._state = RadioState.IDLE  # state setter inlined (RX -> IDLE)
        if self.on_state_change is not None:
            self.on_state_change(RadioState.IDLE.value)
        now = self._sim._now
        snr_db = tracker.sinr_db(now)
        success = self.error_model.frame_survives(
            snr_db, transmission.size_bits, transmission.mode.modulation,
            self._rng)
        trace = self._trace
        if trace.enabled and trace.wants("phy-rx-end"):
            trace.record(now, self.name, "phy-rx-end",
                         ok=success, snr=round(snr_db, 1),
                         mode=transmission.mode.name)
        # _update_cca inlined (KEEP IN SYNC): the state was just set to
        # IDLE above, so only the arrival-table branch remains.
        arrivals = self._arrivals
        if not arrivals:
            busy = 0.0 >= self._cca_threshold_watts
        elif self._exact:
            busy = sum(arrivals.values()) >= self._cca_threshold_watts
        else:
            busy = self._incident_watts >= self._cca_threshold_watts
        if busy != self._cca_busy:
            self._cca_busy = busy
            if busy:
                self.on_cca_busy()
            else:
                self.on_cca_idle()
        self.on_rx_end(transmission.payload, success, snr_db,
                       transmission.mode)

    # --- CCA ---------------------------------------------------------------

    def cca_busy(self) -> bool:
        """Clear-channel assessment: is the medium busy right now?

        KEEP IN SYNC with the flattened copies of this predicate in
        :meth:`_update_cca` below and ``DcfMac._medium_idle`` — they
        avoid the method-call layers on the per-arrival hot path.  In
        fast mode the incident-power accumulator is the single source
        of truth (matching the decisions the ``*_fast`` arrival edges
        made), so threshold-straddling float residue cannot disagree
        with an already-delivered CCA edge.
        """
        state = self._state
        if state is RadioState.TX or state is RadioState.RX:
            return True
        if state is RadioState.SLEEP:
            return False
        if not self._exact:
            return self._incident_watts >= self._cca_threshold_watts
        return sum(self._arrivals.values()) >= self._cca_threshold_watts

    def _update_cca(self) -> None:
        # cca_busy() inlined: this runs on every arrival edge.
        # KEEP IN SYNC with cca_busy() and DcfMac._medium_idle.
        state = self._state
        if state is RadioState.TX or state is RadioState.RX:
            busy = True
        elif state is RadioState.SLEEP:
            busy = False
        else:
            arrivals = self._arrivals
            if not arrivals:
                busy = 0.0 >= self._cca_threshold_watts
            elif self._exact:
                busy = sum(arrivals.values()) >= self._cca_threshold_watts
            else:
                busy = self._incident_watts >= self._cca_threshold_watts
        if busy == self._cca_busy:
            return
        self._cca_busy = busy
        if busy:
            self.on_cca_busy()
        else:
            self.on_cca_idle()

    # --- introspection -------------------------------------------------------

    def snr_from_dbm(self, rx_power_dbm: float) -> float:
        """SNR this radio would see for a given receive power."""
        return rx_power_dbm - watts_to_dbm(self.noise_watts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Radio {self.name} {self.standard.name} ch={self.channel_id} "
                f"state={self.state.value}>")
