"""Core discrete-event simulation kernel and shared utilities."""

from .energy import EnergyMeter, PowerProfile
from .engine import (
    KERNELS,
    EventHandle,
    PeriodicTask,
    Simulator,
    ckernel_available,
    default_kernel,
    resolve_kernel,
)
from .errors import (
    AuthenticationError,
    ConfigurationError,
    FrameError,
    IntegrityError,
    LinkError,
    ProtocolError,
    ReplayError,
    ReproError,
    SchedulingError,
    SecurityError,
    SimulationError,
)
from .rng import RngRegistry
from .stats import Counter, SampleStat, TimeWeightedStat, jain_fairness
from .topology import (
    ORIGIN,
    Position,
    circle_layout,
    grid_layout,
    hexagonal_cell_centers,
    line_layout,
    nearest,
    random_disc_layout,
)
from .trace import TraceLog, TraceRecord
from . import units

__all__ = [
    "AuthenticationError",
    "ConfigurationError",
    "Counter",
    "EnergyMeter",
    "EventHandle",
    "FrameError",
    "IntegrityError",
    "KERNELS",
    "LinkError",
    "ORIGIN",
    "PeriodicTask",
    "Position",
    "PowerProfile",
    "ProtocolError",
    "ReplayError",
    "ReproError",
    "RngRegistry",
    "SampleStat",
    "SchedulingError",
    "SecurityError",
    "SimulationError",
    "Simulator",
    "TimeWeightedStat",
    "TraceLog",
    "TraceRecord",
    "ckernel_available",
    "circle_layout",
    "default_kernel",
    "grid_layout",
    "hexagonal_cell_centers",
    "jain_fairness",
    "line_layout",
    "nearest",
    "random_disc_layout",
    "resolve_kernel",
    "units",
]
