#!/usr/bin/env python3
"""A community wireless network: mesh backhaul with a wired gateway.

The networks the source paper describes are not single AP cells —
coverage is stitched together from rooftop relays that haul traffic
toward a handful of wired uplinks.  This example builds exactly that:

* a 2x4 **mesh grid** of rooftop nodes running DSDV (so there is a
  redundant path between any two corners),
* node 0 doubling as the **gateway**, bridged into a small ESS (one AP
  and a wired-side client on another channel) through the distribution
  system portal,
* CBR traffic from the far corner of the mesh to the ESS client —
  every packet crosses four wireless mesh hops, the gateway bridge,
  the DS, and the AP's downlink,
* a mid-run **relay failure**: the busiest relay drops off, DSDV
  poisons and repairs the routes, and the flow recovers on its own.

Run:  python examples/mesh_backhaul.py
"""

from repro import Simulator, scenarios
from repro.analysis.mesh import (
    aggregate_mesh_counters,
    connectivity_graph,
    path_stretch,
    per_link_load,
    shortest_hop_count,
)
from repro.core.topology import Position
from repro.net.ap import AccessPoint
from repro.net.ds import DistributionSystem
from repro.net.station import Station
from repro.phy.channel import Medium
from repro.phy.propagation import RangePropagation
from repro.phy.standards import DOT11B
from repro.routing import DsdvRouting, MeshGateway
from repro.traffic.generators import CbrSource
from repro.traffic.sink import TrafficSink

SPACING = 30.0
RANGE = 40.0


def main() -> None:
    sim = Simulator(seed=1907)
    medium = Medium(sim, RangePropagation(RANGE, in_range_loss_db=60.0))

    # The rooftop mesh: 2 rows x 4 columns, gateway at (0, 0).
    positions = scenarios.grid_topology(2, 4, SPACING)
    mesh = scenarios.build_mesh_network(sim, positions, DsdvRouting,
                                        medium=medium, channel_id=1)
    gateway_node, far_corner = mesh.nodes[0], mesh.nodes[7]

    # The wired island: AP + client on channel 6, next to the gateway.
    ds = DistributionSystem(sim)
    ap = AccessPoint(sim, medium, DOT11B, Position(0, -10, 0), name="ap",
                     ssid="uplink", ds=ds, channel_id=6)
    ap.start_beaconing()
    client = Station(sim, medium, DOT11B, Position(0, -20, 0),
                     name="client", channel_id=6)
    client.associate("uplink")
    scenarios.associate_all(sim, [client], timeout=5.0)

    MeshGateway(gateway_node, ds)
    for node in mesh.nodes[1:]:
        node.default_gateway = gateway_node.address

    mesh.start_routing()
    sim.run(until=sim.now + 1.0)
    converged = sum(
        1 for node in mesh.nodes
        if len(node.protocol.reachable_destinations()) == len(mesh.nodes) - 1)
    print(f"DSDV converged: {converged}/{len(mesh.nodes)} nodes know "
          f"every other node\n")

    # Far corner uploads through the mesh, the gateway, and the AP.
    sink = TrafficSink(sim)
    client.on_receive(sink)
    source = CbrSource(sim, far_corner.sender(client.address),
                       packet_bytes=200, interval=0.02)
    start = sim.now
    sim.run(until=start + 2.0)
    received_before = sink.total_received
    print(f"phase 1 — steady state ({received_before}/{source.generated} "
          f"packets delivered to the wired client)")

    graph = connectivity_graph(positions, RANGE)
    shortest = shortest_hop_count(graph, 7, 0)
    # The mesh journey ends at the gateway bridge, which records hops.
    mesh_hops = gateway_node.hop_counts.mean
    print(f"  mesh hops to the gateway: mean {mesh_hops:.2f} (shortest "
          f"possible {shortest}, "
          f"stretch {path_stretch(mesh_hops, shortest):.2f})")
    for flow in sink.flows.values():
        print(f"  one-way delay: mean {flow.delay.mean * 1e3:.2f} ms, "
              f"p99 {flow.delay.percentile(0.99) * 1e3:.2f} ms")

    busiest = max(per_link_load(mesh.nodes).items(),
                  key=lambda item: item[1].get("frames"))
    print(f"  busiest link: {busiest[0][0]} -> ...{busiest[0][1][-5:]} "
          f"({busiest[1].get('frames')} frames)")

    # The hardest-working relay fails mid-run.
    victim = max(mesh.nodes[1:7],
                 key=lambda node: node.counters.get("forwarded"))
    victim.station.position = Position(10_000.0, 10_000.0, 0.0)
    print(f"\n*** {victim.name} fails (moved off-grid) ***\n")
    sim.run(until=sim.now + 3.0)
    recovered = sink.total_received - received_before
    print(f"phase 2 — after the failure ({recovered} more packets "
          f"delivered; flow recovered via the redundant row)")
    totals = aggregate_mesh_counters(mesh.nodes)
    print(f"  link failures detected: {totals.get('link_failures')}, "
          f"routes poisoned: {totals.get('routes_broken')}, "
          f"re-learned: {totals.get('routes_gained')}")
    print(f"  packets re-queued across the repair: "
          f"{totals.get('requeued_after_failure')}, "
          f"loss end-to-end: {source.generated - sink.total_received}")


if __name__ == "__main__":
    main()
