#!/usr/bin/env python3
"""A security audit of the §5.2 generations — attacks included.

1. Cracks a real WEP key live with the FMS weak-IV attack.
2. Forges a WEP frame via CRC linearity (no key needed).
3. Shows TKIP's defences: per-packet keys, replay rejection, and the
   Michael countermeasures shutting the link after forgery attempts.
4. Runs the WPA2 4-way handshake and CCMP, then the WPS PIN attack
   that bypasses it all when WPS is left on.
5. Prints the full best-to-worst ranking table.

Run:  python examples/security_audit.py   (~5 s; runs real attacks)
"""

from repro.analysis.tables import render_table
from repro.security.audit import ranking_reports, verify_text_ranking
from repro.security.handshake import (
    FourWayHandshake,
    WpsRegistrar,
    derive_psk,
    make_wps_pin,
    wps_pin_attack,
)
from repro.security.suites import SUITE_OVERHEAD, SecuritySuite
from repro.security.tkip import TkipCipher
from repro.security.wep import WepCipher, crack_wep, forge_bitflip


def wep_section() -> None:
    print("== WEP ==")
    key = b"\x1a\x2b\x3c\x4d\x5e"
    cipher = WepCipher(key)
    recovered, frames = crack_wep(WepCipher(key))
    print(f"  FMS attack recovered key {recovered.hex()} after observing "
          f"{frames:,} frames (the real key was {key.hex()})")
    frame = cipher.encrypt(b"PAY 0010 EUR")
    forged = forge_bitflip(
        frame, bytes(4) + bytes(a ^ b for a, b in zip(b"0010", b"9999")))
    print(f"  CRC bit-flip forgery decrypts to: {cipher.decrypt(forged)!r} "
          "(ICV still valid!)")


def tkip_section() -> None:
    print("== WPA / TKIP ==")
    tk, mic = bytes(range(16)), bytes(range(8))
    ta = b"\x02\x00\x00\x00\x00\x01"
    tx = TkipCipher(tk, mic, ta)
    rx = TkipCipher(tk, mic, ta)
    first = tx.encrypt(b"frame one")
    second = tx.encrypt(b"frame one")
    print(f"  identical plaintexts, different ciphertexts "
          f"(per-packet keys): {first[6:16].hex()} vs {second[6:16].hex()}")
    rx.decrypt(first, now=0.0)
    try:
        rx.decrypt(first, now=0.1)
    except Exception as error:
        print(f"  replay rejected: {type(error).__name__}")
    evil = TkipCipher(tk, bytes(8), ta)
    for now in (1.0, 2.0):
        try:
            rx.decrypt(evil.encrypt(b"forgery"), now=now)
        except Exception:
            pass
    print(f"  two Michael failures -> countermeasures active, link "
          f"usable again at t=62s: {rx.countermeasures.usable(62.0)}")


def wpa2_section() -> None:
    print("== WPA2 / CCMP ==")
    pmk = derive_psk("correct horse battery staple", "home-net")
    handshake = FourWayHandshake(b"\x02" + bytes(5),
                                 b"\x02" + bytes(4) + b"\x01",
                                 pmk, pmk)
    result = handshake.run()
    print(f"  4-way handshake: {' | '.join(handshake.transcript)}")
    print(f"  derived TK: {result.keys.tk.hex()}")
    registrar = WpsRegistrar(make_wps_pin(8_305_114))
    pin, attempts = wps_pin_attack(registrar)
    print(f"  ...but WPS finds PIN {pin} in {attempts:,} online attempts "
          "(disable WPS!)")


def ranking_section() -> None:
    print("== The §5.2 ranking, measured ==")
    reports = ranking_reports(fast=False)
    rows = [[rank, report.suite.value,
             f"{report.seconds:.3g}",
             "yes" if report.breakable_in_practice else "no",
             SUITE_OVERHEAD[report.suite]]
            for rank, report in enumerate(reports, start=1)]
    print(render_table("best to worst",
                       ["rank", "suite", "attack seconds", "breakable?",
                        "overhead B"], rows))
    print(f"ranking consistent with the text: "
          f"{verify_text_ranking(reports)}")


def main() -> None:
    wep_section()
    tkip_section()
    wpa2_section()
    ranking_section()


if __name__ == "__main__":
    main()
