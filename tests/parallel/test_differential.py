"""Differential gate: sharded execution vs the single-process oracle.

Two regimes, matching the partitioner's coupling classification:

* **Decoupled** (every cross-shard pair orthogonal or below the energy
  floor): sharding is a pure reordering of independent event streams,
  so per-BSS seeded stats must be *byte-identical* to the
  single-process run.  Any drift is a determinism bug, not noise.

* **Weakly coupled** (cross-shard energy above the floor but far below
  decode/CCA thresholds): boundary arrivals ride as energy-only ghosts
  whose timestamps are exact but whose modelling differs from the
  single-process run only in bookkeeping order.  Stats must agree
  within the declared tolerances below, and the sharded run itself
  must still be bit-reproducible (same seed => same arrival log).
"""

import pytest

from repro.parallel import run_sharded, run_single
from repro.parallel.partition import CellSpec, partition_cells
from repro.core.topology import Position
from repro.phy.propagation import LogDistance
from repro.scenarios import build_city_cells, city_propagation, saturated_cell

#: Declared tolerances for the weakly-coupled regime: the ghost energy
#: sits ~20 dB below the CCA threshold, so the runs may diverge by at
#: most a frame boundary per cell over the test horizon.
FRAMES_ABS_TOL = 2
BYTES_ABS_TOL = 2 * 200  # two payloads


def free_space():
    return LogDistance(2.4e9, exponent=2.0)


def _far_pair():
    """Two same-channel saturated cells 10 km apart under free space.

    At the closest approach (9980 m) the received power is about
    -100 dBm: above the -110 dBm partitioner floor (so the pair is
    *coupled* and exchanges boundary ghosts) but ~20 dB under the CCA
    energy-detect threshold (so the ghosts are protocol-inert).  The
    10 km gap also buys a ~33 us conservative lookahead, keeping the
    round count civilised at a millisecond horizon.
    """
    build = saturated_cell(2, payload_size=200)
    return [
        CellSpec("west", 1, Position(0.0, 0.0, 0.0), 10.0, build),
        CellSpec("east", 1, Position(10_000.0, 0.0, 0.0), 10.0, build),
    ]


class TestDecoupledByteEqual:
    def test_city_grid_per_bss_stats_match_exactly(self):
        cells = build_city_cells(bss_count=4, stations_per_bss=2,
                                 payload_size=200)
        single = run_single(cells, seed=17, horizon=0.02,
                            propagation_factory=city_propagation)
        sharded = run_sharded(cells, seed=17, horizon=0.02, workers=2,
                              propagation_factory=city_propagation)
        # Byte-equal per-BSS stats AND identical global event count:
        # the exact-equality branch of the differential gate.
        assert sharded["cells"] == single["cells"]
        assert sharded["events"] == single["events"]
        assert sharded["boundary_records"] == 0
        assert sharded["rounds"] == 1
        # Sanity: the workload actually did something.
        assert any(stats["rx_frames"] > 0
                   for stats in single["cells"].values())


#: The automatic partitioner keeps coupled cells on one shard, so the
#: weakly-coupled regime is entered deliberately via a manual split —
#: the operator declaring "I accept tolerance-level divergence".
MANUAL_SPLIT = {"west": 0, "east": 1}


class TestWeaklyCoupledTolerances:
    def test_pair_is_classified_as_coupled_when_split(self):
        plan = partition_cells(_far_pair(), free_space(), workers=2,
                               manual=MANUAL_SPLIT)
        assert plan.coupled
        # ~33 us of physical lookahead from the 10 km separation.
        assert 3.0e-5 < plan.min_lookahead < 3.4e-5

    def test_automatic_partition_refuses_to_split_the_pair(self):
        plan = partition_cells(_far_pair(), free_space(), workers=2)
        assert plan.shard_of["west"] == plan.shard_of["east"]
        assert not plan.coupled

    def test_sharded_matches_oracle_within_declared_tolerances(self):
        cells = _far_pair()
        single = run_single(cells, seed=23, horizon=0.004,
                            propagation_factory=free_space)
        sharded = run_sharded(cells, seed=23, horizon=0.004, workers=2,
                              propagation_factory=free_space,
                              manual=MANUAL_SPLIT)
        assert sharded["boundary_records"] > 0
        assert sharded["rounds"] > 1
        for name in ("west", "east"):
            mine = sharded["cells"][name]
            oracle = single["cells"][name]
            assert oracle["rx_frames"] > 0
            assert abs(mine["rx_frames"] - oracle["rx_frames"]) \
                <= FRAMES_ABS_TOL
            assert abs(mine["rx_bytes"] - oracle["rx_bytes"]) \
                <= BYTES_ABS_TOL

    def test_coupled_sharded_run_is_bit_reproducible(self):
        cells = _far_pair()
        first = run_sharded(cells, seed=23, horizon=0.002, workers=2,
                            propagation_factory=free_space,
                            manual=MANUAL_SPLIT)
        second = run_sharded(cells, seed=23, horizon=0.002, workers=2,
                             propagation_factory=free_space,
                             manual=MANUAL_SPLIT)
        assert first["boundary_records"] > 0
        assert first["arrival_log"] == second["arrival_log"]
        assert first["arrival_log_sha1"] == second["arrival_log_sha1"]
        assert first["cells"] == second["cells"]


class TestKernelVariants:
    """The differential gate must hold when the forked shard workers
    run the compiled kernel: kernel choice is an implementation detail
    that may never show up in any byte of the results."""

    @pytest.fixture(autouse=True)
    def _needs_compiled_kernel(self):
        from repro.core.engine import ckernel_available
        if not ckernel_available():
            pytest.skip("compiled kernel not built "
                        "(run: python tools/build_kernel.py)")

    def test_c_workers_byte_equal_python_oracle(self, monkeypatch):
        cells = build_city_cells(bss_count=4, stations_per_bss=2,
                                 payload_size=200)
        monkeypatch.setenv("REPRO_KERNEL", "python")
        single = run_single(cells, seed=17, horizon=0.02,
                            propagation_factory=city_propagation)
        # Workers inherit the env across fork, so this flips every
        # shard's run loop to the compiled kernel.
        monkeypatch.setenv("REPRO_KERNEL", "c")
        sharded = run_sharded(cells, seed=17, horizon=0.02, workers=2,
                              propagation_factory=city_propagation)
        assert sharded["cells"] == single["cells"]
        assert sharded["events"] == single["events"]

    def test_coupled_c_run_matches_python_run_bit_for_bit(self, monkeypatch):
        cells = _far_pair()
        results = {}
        for kernel in ("python", "c"):
            monkeypatch.setenv("REPRO_KERNEL", kernel)
            results[kernel] = run_sharded(cells, seed=23, horizon=0.002,
                                          workers=2,
                                          propagation_factory=free_space,
                                          manual=MANUAL_SPLIT)
        python_run, c_run = results["python"], results["c"]
        assert python_run["boundary_records"] > 0
        assert python_run["arrival_log"] == c_run["arrival_log"]
        assert python_run["arrival_log_sha1"] == c_run["arrival_log_sha1"]
        assert python_run["cells"] == c_run["cells"]
