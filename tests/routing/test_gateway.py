"""The mesh↔ESS portal bridge."""

from repro import scenarios
from repro.core.topology import Position
from repro.mac.addresses import MacAddress
from repro.net.ap import AccessPoint
from repro.net.ds import DistributionSystem
from repro.net.station import Station
from repro.phy.channel import Medium
from repro.phy.propagation import RangePropagation
from repro.phy.standards import DOT11B
from repro.routing import DsdvRouting, MeshGateway, StaticRouting


def build_bridged_world(sim, protocol_factory, mesh_nodes=3):
    """A mesh chain (channel 1) and a one-AP ESS (channel 6) sharing
    one medium, bridged at mesh node 0."""
    medium = Medium(sim, RangePropagation(45.0, in_range_loss_db=60.0))
    mesh = scenarios.build_mesh_network(
        sim, scenarios.chain_topology(mesh_nodes, 30.0), protocol_factory,
        medium=medium, channel_id=1)
    ds = DistributionSystem(sim)
    ap = AccessPoint(sim, medium, DOT11B, Position(0, 10, 0), name="ap",
                     ssid="uplink", ds=ds, channel_id=6)
    ap.start_beaconing()
    client = Station(sim, medium, DOT11B, Position(0, 20, 0), name="client",
                     channel_id=6)
    client.associate("uplink")
    scenarios.associate_all(sim, [client], timeout=5.0)
    gateway = MeshGateway(mesh.nodes[0], ds)
    for node in mesh.nodes[1:]:
        node.default_gateway = mesh.nodes[0].address
    return mesh, gateway, ap, client


class TestMeshToEss:
    def test_far_mesh_node_reaches_an_ess_station(self, sim):
        mesh, gateway, ap, client = build_bridged_world(sim, DsdvRouting)
        mesh.start_routing()
        sim.run(until=sim.now + 1.0)  # DSDV convergence
        inbox = []
        client.on_receive(lambda s, p, m: inbox.append((s, p)))
        mesh.nodes[2].send(client.address, b"uplink payload")
        sim.run(until=sim.now + 0.5)
        assert inbox == [(mesh.nodes[2].address, b"uplink payload")]
        assert gateway.counters.get("mesh_to_ds") == 1
        # Interior relays used the default-gateway fallback.
        assert mesh.nodes[1].counters.get("forwarded") == 1

    def test_unknown_destination_without_ess_station_is_undeliverable(
            self, sim):
        mesh, gateway, ap, client = build_bridged_world(sim, DsdvRouting)
        mesh.start_routing()
        sim.run(until=sim.now + 1.0)
        nowhere = MacAddress.from_string("02:00:00:00:00:99")
        mesh.nodes[2].send(nowhere, b"to nobody")
        sim.run(until=sim.now + 0.5)
        assert gateway.counters.get("mesh_to_ds") == 1
        assert gateway.ds.counters.get("undeliverable") == 1


class TestEssToMesh:
    def test_ess_station_reaches_a_far_mesh_node(self, sim):
        mesh, gateway, ap, client = build_bridged_world(sim, DsdvRouting)
        mesh.start_routing()
        sim.run(until=sim.now + 1.0)
        inbox = []
        mesh.nodes[2].on_receive(
            lambda s, p, m: inbox.append((s, p, m["mesh_hops"])))
        client.send(mesh.nodes[2].address, b"downlink payload")
        sim.run(until=sim.now + 0.5)
        # Origin is the true wired-side source, hops count the mesh legs.
        assert inbox == [(client.address, b"downlink payload", 2)]
        assert gateway.counters.get("ds_to_mesh") == 1

    def test_pre_convergence_ds_traffic_queues_instead_of_bouncing(
            self, sim):
        """A DS-injected packet with no mesh route yet must wait at the
        gateway (FLAG_FROM_DS), not ping-pong back into the portal."""
        mesh, gateway, ap, client = build_bridged_world(sim, DsdvRouting)
        inbox = []
        mesh.nodes[2].on_receive(lambda s, p, m: inbox.append(p))
        # Routing has not started: the gateway knows no mesh routes.
        client.send(mesh.nodes[2].address, b"early bird")
        sim.run(until=sim.now + 0.3)
        assert inbox == []
        assert mesh.nodes[0].pending_count() == 1
        assert gateway.counters.get("ds_to_mesh") == 1
        assert gateway.ds.counters.get("undeliverable") == 0
        mesh.start_routing()
        sim.run(until=sim.now + 2.0)
        assert inbox == [b"early bird"]


class TestGroupAddressedFrames:
    def test_ds_broadcasts_are_dropped_not_wedged(self, sim):
        """A DS broadcast can never acquire a mesh route; it must be
        dropped with a counter, not parked in the pending queue
        forever."""
        from repro.mac.addresses import BROADCAST
        mesh, gateway, ap, client = build_bridged_world(sim, DsdvRouting)
        mesh.start_routing()
        sim.run(until=sim.now + 1.0)
        client.send(BROADCAST, b"to everyone on the wire")
        sim.run(until=sim.now + 0.5)
        assert gateway.counters.get("ds_group_dropped") == 1
        assert gateway.counters.get("ds_to_mesh") == 0
        assert mesh.nodes[0].pending_count() == 0


class TestStaticGateway:
    def test_bridge_works_with_static_routes_too(self, sim):
        mesh, gateway, ap, client = build_bridged_world(sim, StaticRouting)
        scenarios.install_chain_routes(mesh.nodes)
        inbox = []
        client.on_receive(lambda s, p, m: inbox.append(p))
        mesh.nodes[2].send(client.address, b"static uplink")
        sim.run(until=sim.now + 0.5)
        assert inbox == [b"static uplink"]
