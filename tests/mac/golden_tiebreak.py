"""Shared scenario for the backoff tie-break golden-trace test.

Four saturated stations sit at exactly equal distances from one
receiver, so every station sees every CCA edge at the same instant and
their backoff slot grids stay perfectly aligned.  Whenever two stations
draw the same residual backoff, their countdowns expire in the *same
slot* and the kernel's schedule-time/sequence ordering alone decides
who transmits first (and that both transmit — the classic same-slot
collision).  The golden fixture captured from the slot-by-slot
countdown pins that ordering; the batched countdown must reproduce it
event for event.

This module is imported both by the regression test and by
``tools/capture_golden.py`` (which regenerated the fixture from the
pre-refactor core); keep the topology and seeds byte-stable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.core import Position, Simulator
from repro.core.trace import TraceLog
from repro.mac.addresses import allocate_address, reset_allocator
from repro.mac.dcf import DcfConfig, DcfMac, MacListener
from repro.mac.rate_adapt import fixed_rate_factory
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio

#: Bump only when the scenario itself changes (forces fixture regen).
SCENARIO_VERSION = 1

SEED = 3
HORIZON = 0.25
#: Exactly equidistant station positions: identical propagation delay,
#: hence identical CCA-edge timestamps and aligned slot grids.
POSITIONS = (
    Position(12.0, 0.0, 0.0),
    Position(-12.0, 0.0, 0.0),
    Position(0.0, 12.0, 0.0),
    Position(0.0, -12.0, 0.0),
)


class _Refill(MacListener):
    """Keeps the MAC queue non-empty so every station always contends."""

    def __init__(self, mac: DcfMac, destination: Any, payload: bytes):
        self.mac = mac
        self.destination = destination
        self.payload = payload

    def prime(self, depth: int = 4) -> None:
        for _ in range(depth):
            self.mac.send(self.destination, self.payload)

    def mac_tx_complete(self, msdu: Any, success: bool) -> None:
        self.mac.send(self.destination, self.payload)


def run_tiebreak_scenario() -> Tuple[List[str], Dict[str, Any]]:
    """Run the scenario; return (trace lines, outcome stats).

    Each trace line carries ``repr()``-exact timestamps, so comparing
    the line list is a byte-identical comparison of the protocol event
    sequence (who transmitted when, what decoded, in which order).
    """
    reset_allocator()
    trace = TraceLog(capacity=None, enabled=True)
    sim = Simulator(seed=SEED, trace=trace)
    medium = Medium(sim, FixedLoss(50.0))
    config = DcfConfig()
    factory = fixed_rate_factory("CCK-11")
    receiver_radio = Radio("rx", medium, DOT11B, Position(0.0, 0.0, 0.0))
    receiver = DcfMac(sim, receiver_radio, allocate_address(), config=config,
                      rate_factory=factory)
    rx_stats = {"frames": 0, "bytes": 0}

    class _Count(MacListener):
        def mac_receive(self, source: Any, destination: Any, payload: bytes,
                        meta: Dict[str, Any]) -> None:
            rx_stats["frames"] += 1
            rx_stats["bytes"] += len(payload)

    receiver.listener = _Count()
    payload = bytes(600)
    macs = []
    for index, position in enumerate(POSITIONS):
        radio = Radio(f"tx{index}", medium, DOT11B, position)
        mac = DcfMac(sim, radio, allocate_address(), config=config,
                     rate_factory=factory)
        refill = _Refill(mac, receiver.address, payload)
        mac.listener = refill
        refill.prime()
        macs.append(mac)
    sim.run(until=HORIZON)
    lines = [
        f"{record.time!r} {record.source} {record.event} "
        + " ".join(f"{key}={value!r}"
                   for key, value in sorted(record.detail.items()))
        for record in trace
    ]
    stats = {
        "rx_frames": rx_stats["frames"],
        "rx_bytes": rx_stats["bytes"],
        "tx_data": sum(mac.counters.get("tx_data") for mac in macs),
        "ack_timeouts": sum(mac.counters.get("ack_timeouts")
                            for mac in macs),
    }
    return lines, stats


def same_slot_transmissions(lines: List[str]) -> int:
    """Count instants where two+ different stations start transmitting
    at the identical timestamp — the same-slot ties the fixture exists
    to pin down."""
    starts: Dict[str, set] = {}
    for line in lines:
        time_repr, source, event = line.split(" ", 3)[:3]
        if event == "phy-tx-start" and source != "rx":
            starts.setdefault(time_repr, set()).add(source)
    return sum(1 for sources in starts.values() if len(sources) > 1)
