"""Tests for roaming policy, beacon tracking, and the full roam."""

import pytest

from repro.core import Position, Simulator
from repro.mac.addresses import MacAddress
from repro.mobility.models import LinearMobility
from repro.net.roaming import BeaconTracker, RoamingPolicy
from repro.net.station import Station
from repro.scenarios import build_ess

BSSID_A = MacAddress.from_string("02:00:00:00:00:0a")
BSSID_B = MacAddress.from_string("02:00:00:00:00:0b")


class TestBeaconTracker:
    def test_observation_created_and_smoothed(self):
        tracker = BeaconTracker(alpha=0.5)
        tracker.observe(BSSID_A, "net", 1, 0, 100, snr_db=20.0, now=0.0)
        entry = tracker.observe(BSSID_A, "net", 1, 0, 100, snr_db=10.0,
                                now=0.1)
        assert entry.snr_db == pytest.approx(15.0)
        assert entry.beacons == 2

    def test_candidates_sorted_by_snr(self):
        tracker = BeaconTracker()
        tracker.observe(BSSID_A, "net", 1, 0, 100, snr_db=10.0, now=0.0)
        tracker.observe(BSSID_B, "net", 1, 0, 100, snr_db=30.0, now=0.0)
        candidates = tracker.candidates("net")
        assert [c.bssid for c in candidates] == [BSSID_B, BSSID_A]
        assert tracker.best("net").bssid == BSSID_B

    def test_ssid_filtering_and_exclude(self):
        tracker = BeaconTracker()
        tracker.observe(BSSID_A, "net", 1, 0, 100, snr_db=10.0, now=0.0)
        tracker.observe(BSSID_B, "other", 1, 0, 100, snr_db=30.0, now=0.0)
        assert tracker.best("net").bssid == BSSID_A
        assert tracker.candidates("net", exclude=BSSID_A) == []

    def test_forget(self):
        tracker = BeaconTracker()
        tracker.observe(BSSID_A, "net", 1, 0, 100, snr_db=10.0, now=0.0)
        tracker.forget(BSSID_A)
        assert tracker.get(BSSID_A) is None


class TestRoamingPolicy:
    def test_roams_when_weak_and_better_candidate(self):
        policy = RoamingPolicy(low_snr_threshold_db=15.0, hysteresis_db=5.0,
                               min_dwell=1.0)
        assert policy.should_roam(serving_snr_db=10.0,
                                  candidate_snr_db=20.0,
                                  time_since_last_roam=10.0)

    def test_no_roam_when_serving_is_strong(self):
        policy = RoamingPolicy(low_snr_threshold_db=15.0)
        assert not policy.should_roam(20.0, 40.0, 10.0)

    def test_hysteresis_blocks_marginal_candidates(self):
        policy = RoamingPolicy(hysteresis_db=5.0)
        assert not policy.should_roam(10.0, 14.0, 10.0)

    def test_dwell_rate_limits(self):
        policy = RoamingPolicy(min_dwell=5.0)
        assert not policy.should_roam(5.0, 30.0, 1.0)

    def test_disabled_policy_never_roams(self):
        policy = RoamingPolicy(enabled=False)
        assert not policy.should_roam(-10.0, 50.0, 100.0)


class TestFullRoam:
    def test_station_roams_along_the_corridor(self, sim):
        """A station walking from AP0 toward AP1 must hand off and keep
        its connectivity through the DS."""
        scenario = build_ess(sim, ap_count=2, spacing_m=80.0)
        ap0, ap1 = scenario.aps
        sta = Station(sim, scenario.medium, ap0.radio.standard,
                      Position(5, 0, 0), name="walker",
                      roaming_policy=RoamingPolicy(
                          low_snr_threshold_db=28.0, hysteresis_db=3.0,
                          min_dwell=0.5))
        sta.associate("repro-ess")
        sim.run(until=2.0)
        assert sta.serving_ap == ap0.bssid
        # Walk past AP1.
        mobility = LinearMobility(sim, sta, Position(80, 0, 0),
                                  speed_mps=8.0, tick=0.1)
        mobility.start()
        sim.run(until=14.0)
        assert sta.serving_ap == ap1.bssid
        assert sta.sta_counters.get("roams") >= 1
        # The DS location table follows the station.
        assert scenario.ess.locate(sta.address) is ap1
        assert not ap0.is_associated(sta.address)
        assert ap1.is_associated(sta.address)
