"""Energy accounting for battery-powered nodes.

The WPAN/WLAN trade-off the source text keeps returning to — "low
power demands and a low bit rate" (§2.1), the Power Management bit
(§4.2) — only becomes measurable with an energy model.
:class:`EnergyMeter` integrates power over the time a radio spends in
each state (TX / RX / idle listen / doze), using a configurable
consumption profile.

The default profile is a typical 802.11 client radio at 3.3 V:
transmit 280 mA, receive/listen 180 mA, doze 2 mA.  What matters for
the experiments is the *ratio* — listening costs two orders of
magnitude more than dozing, which is the entire argument for
power-save mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .engine import Simulator
from .errors import ConfigurationError


@dataclass(frozen=True)
class PowerProfile:
    """Per-state power draw in watts."""

    tx_watts: float = 0.280 * 3.3
    rx_watts: float = 0.180 * 3.3
    idle_watts: float = 0.180 * 3.3  # listening costs like receiving
    sleep_watts: float = 0.002 * 3.3

    def watts_for(self, state_name: str) -> float:
        table = {"tx": self.tx_watts, "rx": self.rx_watts,
                 "idle": self.idle_watts, "sleep": self.sleep_watts}
        try:
            return table[state_name]
        except KeyError:
            raise ConfigurationError(f"unknown radio state {state_name!r}")


class EnergyMeter:
    """Integrates a radio's energy use across state changes.

    Wire it to a radio with ``radio.on_state_change = meter.state_changed``
    (done automatically by ``attach``).
    """

    def __init__(self, sim: Simulator, profile: PowerProfile = PowerProfile(),
                 initial_state: str = "idle"):
        self.sim = sim
        self.profile = profile
        self._state = initial_state
        self._since = sim.now
        self._joules = 0.0
        self._state_time: Dict[str, float] = {}

    def attach(self, radio) -> None:
        """Bind to a radio's state-change hook and adopt its state."""
        self._state = radio.state.value
        self._since = self.sim.now
        radio.on_state_change = self.state_changed

    def state_changed(self, new_state: str) -> None:
        now = self.sim.now
        elapsed = now - self._since
        self._joules += self.profile.watts_for(self._state) * elapsed
        self._state_time[self._state] = \
            self._state_time.get(self._state, 0.0) + elapsed
        self._state = new_state
        self._since = now

    def finish(self) -> None:
        """Close the open interval at the current simulation time."""
        self.state_changed(self._state)

    @property
    def joules(self) -> float:
        open_interval = self.profile.watts_for(self._state) * \
            (self.sim.now - self._since)
        return self._joules + open_interval

    def seconds_in(self, state_name: str) -> float:
        base = self._state_time.get(state_name, 0.0)
        if state_name == self._state:
            base += self.sim.now - self._since
        return base

    def mean_power_watts(self, since_start: float = 0.0) -> float:
        elapsed = self.sim.now - since_start
        if elapsed <= 0:
            return 0.0
        return self.joules / elapsed
