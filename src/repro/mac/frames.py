"""IEEE 802.11 MAC frames, byte-exact per the standard frame format.

The frame comprises (source text §4.2): a MAC header — frame control,
duration/ID, up to four addresses, sequence control — the frame body,
and a CRC-32 frame check sequence.  The frame-control subfields
(protocol version, type/subtype, To DS / From DS, More Fragments,
Retry, Power Management, More Data, WEP/Protected, Order) are all
modelled and serialized to their exact bit positions.

Control frames use their special short formats: RTS is 20 bytes
(FC, duration, RA, TA, FCS), CTS and ACK are 14 bytes (FC, duration,
RA, FCS).  PS-Poll carries the association ID in the duration field.

For simulation-speed the hot path uses :meth:`Dot11Frame.wire_size_bytes`
(arithmetic) rather than serializing every frame; serialization and
parsing exist for tests, the security layer, and trace dumps, and are
exact inverses of each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import IntEnum
from typing import Optional

from ..core.errors import FrameError
from .addresses import BROADCAST, MacAddress
from .fcs import fcs_bytes, verify_fcs


class FrameType(IntEnum):
    """The three 802.11 frame types."""

    MANAGEMENT = 0
    CONTROL = 1
    DATA = 2


class ManagementSubtype(IntEnum):
    ASSOC_REQUEST = 0
    ASSOC_RESPONSE = 1
    REASSOC_REQUEST = 2
    REASSOC_RESPONSE = 3
    PROBE_REQUEST = 4
    PROBE_RESPONSE = 5
    BEACON = 8
    DISASSOCIATION = 10
    AUTHENTICATION = 11
    DEAUTHENTICATION = 12


class ControlSubtype(IntEnum):
    PS_POLL = 10
    RTS = 11
    CTS = 12
    ACK = 13


class DataSubtype(IntEnum):
    DATA = 0
    NULL = 4


#: Sequence numbers wrap at 4096 (12-bit field).
SEQUENCE_MODULO = 4096
#: Fragment numbers use a 4-bit field.
MAX_FRAGMENTS = 16

_HEADER_3ADDR = 2 + 2 + 6 + 6 + 6 + 2
_HEADER_4ADDR = _HEADER_3ADDR + 6
_FCS_LEN = 4
#: RTS: FC(2) dur(2) RA(6) TA(6) FCS(4).
RTS_SIZE_BYTES = 20
#: CTS and ACK: FC(2) dur(2) RA(6) FCS(4).
CTS_SIZE_BYTES = 14
ACK_SIZE_BYTES = 14


@dataclass(frozen=True)
class FrameControl:
    """The 16-bit frame control field, one attribute per subfield."""

    protocol_version: int = 0
    type: FrameType = FrameType.DATA
    subtype: int = 0
    to_ds: bool = False
    from_ds: bool = False
    more_fragments: bool = False
    retry: bool = False
    power_management: bool = False
    more_data: bool = False
    protected: bool = False  # the WEP bit
    order: bool = False

    def __post_init__(self) -> None:
        if not 0 <= self.protocol_version <= 3:
            raise FrameError(f"bad protocol version {self.protocol_version}")
        if not 0 <= self.subtype <= 15:
            raise FrameError(f"bad subtype {self.subtype}")

    def to_int(self) -> int:
        value = self.protocol_version
        value |= int(self.type) << 2
        value |= self.subtype << 4
        value |= int(self.to_ds) << 8
        value |= int(self.from_ds) << 9
        value |= int(self.more_fragments) << 10
        value |= int(self.retry) << 11
        value |= int(self.power_management) << 12
        value |= int(self.more_data) << 13
        value |= int(self.protected) << 14
        value |= int(self.order) << 15
        return value

    @classmethod
    def from_int(cls, value: int) -> "FrameControl":
        if not 0 <= value <= 0xFFFF:
            raise FrameError(f"frame control out of range: {value:#x}")
        type_bits = (value >> 2) & 0x3
        if type_bits == 3:
            raise FrameError("reserved frame type 3")
        return cls(
            protocol_version=value & 0x3,
            type=FrameType(type_bits),
            subtype=(value >> 4) & 0xF,
            to_ds=bool(value & (1 << 8)),
            from_ds=bool(value & (1 << 9)),
            more_fragments=bool(value & (1 << 10)),
            retry=bool(value & (1 << 11)),
            power_management=bool(value & (1 << 12)),
            more_data=bool(value & (1 << 13)),
            protected=bool(value & (1 << 14)),
            order=bool(value & (1 << 15)),
        )


@dataclass(frozen=True)
class SequenceControl:
    """Sequence control: 12-bit sequence number + 4-bit fragment number."""

    sequence: int = 0
    fragment: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.sequence < SEQUENCE_MODULO:
            raise FrameError(f"sequence number out of range: {self.sequence}")
        if not 0 <= self.fragment < MAX_FRAGMENTS:
            raise FrameError(f"fragment number out of range: {self.fragment}")

    def to_int(self) -> int:
        return (self.sequence << 4) | self.fragment

    @classmethod
    def from_int(cls, value: int) -> "SequenceControl":
        return cls(sequence=(value >> 4) & 0xFFF, fragment=value & 0xF)


@dataclass(frozen=True)
class Dot11Frame:
    """A full 802.11 MAC frame.

    Address semantics follow the To DS / From DS matrix:

    * addr1 is always the receiver address (RA),
    * addr2 the transmitter address (TA),
    * addr3 carries BSSID / DA / SA depending on direction,
    * addr4 is present only on wireless-DS (To DS and From DS) frames.
    """

    fc: FrameControl
    duration_us: int = 0
    addr1: MacAddress = BROADCAST
    addr2: Optional[MacAddress] = None
    addr3: Optional[MacAddress] = None
    addr4: Optional[MacAddress] = None
    seq: SequenceControl = field(default_factory=SequenceControl)
    body: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.duration_us <= 0xFFFF:
            raise FrameError(f"duration out of range: {self.duration_us}")
        if self.fc.to_ds and self.fc.from_ds and self.addr4 is None:
            raise FrameError("wireless-DS data frames require addr4")

    # --- convenience predicates ------------------------------------------------

    @property
    def is_data(self) -> bool:
        return self.fc.type == FrameType.DATA

    @property
    def is_management(self) -> bool:
        return self.fc.type == FrameType.MANAGEMENT

    @property
    def is_control(self) -> bool:
        return self.fc.type == FrameType.CONTROL

    @property
    def is_rts(self) -> bool:
        return self.is_control and self.fc.subtype == ControlSubtype.RTS

    @property
    def is_cts(self) -> bool:
        return self.is_control and self.fc.subtype == ControlSubtype.CTS

    @property
    def is_ack(self) -> bool:
        return self.is_control and self.fc.subtype == ControlSubtype.ACK

    @property
    def is_beacon(self) -> bool:
        return self.is_management and \
            self.fc.subtype == ManagementSubtype.BEACON

    @property
    def receiver(self) -> MacAddress:
        return self.addr1

    @property
    def transmitter(self) -> Optional[MacAddress]:
        return self.addr2

    def with_retry(self) -> "Dot11Frame":
        """Copy with the Retry bit set (for retransmissions)."""
        return replace(self, fc=replace(self.fc, retry=True))

    # --- sizes -----------------------------------------------------------------

    def header_size_bytes(self) -> int:
        if self.is_control:
            if self.is_rts or self.fc.subtype == ControlSubtype.PS_POLL:
                # Both carry RA and TA: 20 bytes on the air.
                return RTS_SIZE_BYTES - _FCS_LEN
            if self.is_cts or self.is_ack:
                return CTS_SIZE_BYTES - _FCS_LEN
            raise FrameError(f"unknown control subtype {self.fc.subtype}")
        if self.addr4 is not None:
            return _HEADER_4ADDR
        return _HEADER_3ADDR

    def wire_size_bytes(self) -> int:
        """Total on-air size including FCS, without serializing."""
        return self.header_size_bytes() + len(self.body) + _FCS_LEN

    def wire_size_bits(self) -> int:
        return self.wire_size_bytes() * 8

    # --- serialization -----------------------------------------------------------

    def serialize(self) -> bytes:
        """Encode to wire bytes, FCS appended."""
        parts = [self.fc.to_int().to_bytes(2, "little"),
                 self.duration_us.to_bytes(2, "little"),
                 self.addr1.to_bytes()]
        if self.is_control:
            if self.is_rts:
                if self.addr2 is None:
                    raise FrameError("RTS requires a transmitter address")
                parts.append(self.addr2.to_bytes())
            elif self.fc.subtype == ControlSubtype.PS_POLL:
                if self.addr2 is None:
                    raise FrameError("PS-Poll requires a transmitter address")
                parts.append(self.addr2.to_bytes())
            # CTS/ACK carry RA only.
        else:
            if self.addr2 is None or self.addr3 is None:
                raise FrameError("data/management frames need addr2 and addr3")
            parts.append(self.addr2.to_bytes())
            parts.append(self.addr3.to_bytes())
            parts.append(self.seq.to_int().to_bytes(2, "little"))
            if self.addr4 is not None:
                parts.append(self.addr4.to_bytes())
            parts.append(self.body)
        raw = b"".join(parts)
        return raw + fcs_bytes(raw)

    @classmethod
    def parse(cls, raw: bytes) -> "Dot11Frame":
        """Decode wire bytes; raises :class:`FrameError` on a bad FCS."""
        if len(raw) < CTS_SIZE_BYTES:
            raise FrameError(f"frame too short: {len(raw)} bytes")
        if not verify_fcs(raw[:-4], raw[-4:]):
            raise FrameError("FCS mismatch")
        payload = raw[:-4]
        fc = FrameControl.from_int(int.from_bytes(payload[0:2], "little"))
        duration = int.from_bytes(payload[2:4], "little")
        addr1 = MacAddress.from_bytes(payload[4:10])
        if fc.type == FrameType.CONTROL:
            addr2 = None
            if fc.subtype in (ControlSubtype.RTS, ControlSubtype.PS_POLL):
                if len(payload) < 16:
                    raise FrameError("truncated RTS/PS-Poll")
                addr2 = MacAddress.from_bytes(payload[10:16])
            return cls(fc=fc, duration_us=duration, addr1=addr1, addr2=addr2)
        if len(payload) < _HEADER_3ADDR:
            raise FrameError("truncated header")
        addr2 = MacAddress.from_bytes(payload[10:16])
        addr3 = MacAddress.from_bytes(payload[16:22])
        seq = SequenceControl.from_int(int.from_bytes(payload[22:24], "little"))
        offset = 24
        addr4 = None
        if fc.to_ds and fc.from_ds:
            if len(payload) < _HEADER_4ADDR:
                raise FrameError("truncated 4-address header")
            addr4 = MacAddress.from_bytes(payload[24:30])
            offset = 30
        body = payload[offset:]
        return cls(fc=fc, duration_us=duration, addr1=addr1, addr2=addr2,
                   addr3=addr3, addr4=addr4, seq=seq, body=body)


# --- constructors for the common frames --------------------------------------

def make_rts(transmitter: MacAddress, receiver: MacAddress,
             duration_us: int) -> Dot11Frame:
    fc = FrameControl(type=FrameType.CONTROL, subtype=ControlSubtype.RTS)
    return Dot11Frame(fc=fc, duration_us=duration_us, addr1=receiver,
                      addr2=transmitter)


def make_cts(receiver: MacAddress, duration_us: int) -> Dot11Frame:
    fc = FrameControl(type=FrameType.CONTROL, subtype=ControlSubtype.CTS)
    return Dot11Frame(fc=fc, duration_us=duration_us, addr1=receiver)


def make_ack(receiver: MacAddress) -> Dot11Frame:
    fc = FrameControl(type=FrameType.CONTROL, subtype=ControlSubtype.ACK)
    return Dot11Frame(fc=fc, duration_us=0, addr1=receiver)


def make_data(transmitter: MacAddress, receiver: MacAddress,
              bssid: MacAddress, body: bytes, sequence: int,
              fragment: int = 0, more_fragments: bool = False,
              to_ds: bool = False, from_ds: bool = False,
              protected: bool = False, duration_us: int = 0) -> Dot11Frame:
    fc = FrameControl(type=FrameType.DATA, subtype=DataSubtype.DATA,
                      to_ds=to_ds, from_ds=from_ds,
                      more_fragments=more_fragments, protected=protected)
    return Dot11Frame(fc=fc, duration_us=duration_us, addr1=receiver,
                      addr2=transmitter, addr3=bssid,
                      seq=SequenceControl(sequence=sequence, fragment=fragment),
                      body=body)


def make_ps_poll(transmitter: MacAddress, bssid: MacAddress,
                 aid: int) -> Dot11Frame:
    """PS-Poll: the duration/ID field carries the association ID
    (source text §4.2, 'When the sub-type is PS Poll, the field contains
    the association identity (AID) of the transmitting STA')."""
    fc = FrameControl(type=FrameType.CONTROL, subtype=ControlSubtype.PS_POLL)
    return Dot11Frame(fc=fc, duration_us=aid, addr1=bssid,
                      addr2=transmitter)


def make_null(transmitter: MacAddress, receiver: MacAddress,
              bssid: MacAddress, sequence: int,
              power_management: bool, to_ds: bool = True) -> Dot11Frame:
    """A null data frame: no payload, just the Power Management bit —
    how a station announces entering/leaving power-save mode."""
    fc = FrameControl(type=FrameType.DATA, subtype=DataSubtype.NULL,
                      to_ds=to_ds, power_management=power_management)
    return Dot11Frame(fc=fc, addr1=receiver, addr2=transmitter,
                      addr3=bssid,
                      seq=SequenceControl(sequence=sequence), body=b"")


def make_management(subtype: ManagementSubtype, transmitter: MacAddress,
                    receiver: MacAddress, bssid: MacAddress, body: bytes,
                    sequence: int = 0, duration_us: int = 0) -> Dot11Frame:
    fc = FrameControl(type=FrameType.MANAGEMENT, subtype=subtype)
    return Dot11Frame(fc=fc, duration_us=duration_us, addr1=receiver,
                      addr2=transmitter, addr3=bssid,
                      seq=SequenceControl(sequence=sequence), body=body)
