"""Traffic generators.

Each generator produces timestamped payloads and pushes them into a
``send`` callable (typically ``station.send`` or ``mac.send`` bound to
a destination).  Payloads embed a sequence number and the send
timestamp so the matching :class:`~repro.traffic.sink.TrafficSink` can
compute delay, jitter, and loss without side channels.

* :class:`CbrSource` — constant bit rate (periodic fixed-size packets).
* :class:`PoissonSource` — exponential inter-arrivals.
* :class:`OnOffSource` — bursty: exponential ON periods of CBR traffic
  separated by exponential OFF periods.
* :class:`BulkTransferSource` — "send N bytes as fast as the MAC
  accepts them" (a saturating FTP-like source with window-limited
  outstanding packets).
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from ..core.engine import EventHandle, Simulator
from ..core.errors import ConfigurationError

#: Signature expected of the transmit hook: send(payload) -> accepted?
SendHook = Callable[[bytes], bool]

#: Header prepended to every generated payload: magic, flow id,
#: sequence number, send timestamp (float seconds).
_HEADER = struct.Struct("!IIId")
HEADER_SIZE = _HEADER.size
_MAGIC = 0x7E57F10A


def encode_packet(flow_id: int, sequence: int, timestamp: float,
                  size_bytes: int) -> bytes:
    """Build a measurement packet padded to ``size_bytes``."""
    if size_bytes < HEADER_SIZE:
        raise ConfigurationError(
            f"packet size must be >= {HEADER_SIZE} bytes, got {size_bytes}")
    header = _HEADER.pack(_MAGIC, flow_id, sequence, timestamp)
    return header + bytes(size_bytes - HEADER_SIZE)


def decode_packet(payload: bytes) -> Optional[tuple]:
    """Return (flow_id, sequence, timestamp) or None if not ours."""
    if len(payload) < HEADER_SIZE:
        return None
    magic, flow_id, sequence, timestamp = _HEADER.unpack_from(payload)
    if magic != _MAGIC:
        return None
    return flow_id, sequence, timestamp


class _SourceBase:
    """Common flow-id / sequence / accounting machinery."""

    _next_flow_id = 1

    def __init__(self, sim: Simulator, send: SendHook, packet_bytes: int):
        if packet_bytes < HEADER_SIZE:
            raise ConfigurationError(
                f"packet_bytes must be >= {HEADER_SIZE}")
        self.sim = sim
        self.send = send
        self.packet_bytes = packet_bytes
        self.flow_id = _SourceBase._next_flow_id
        _SourceBase._next_flow_id += 1
        self.sequence = 0
        self.generated = 0
        self.rejected = 0
        self._running = False

    def _emit(self) -> bool:
        payload = encode_packet(self.flow_id, self.sequence, self.sim.now,
                                self.packet_bytes)
        self.sequence += 1
        self.generated += 1
        accepted = self.send(payload)
        if not accepted:
            self.rejected += 1
        return accepted

    def stop(self) -> None:
        self._running = False

    @property
    def offered_bytes(self) -> int:
        return self.generated * self.packet_bytes


class CbrSource(_SourceBase):
    """Constant-bit-rate source: one packet every ``interval`` seconds."""

    def __init__(self, sim: Simulator, send: SendHook, packet_bytes: int,
                 interval: float, start: float = 0.0,
                 stop_after: Optional[int] = None):
        super().__init__(sim, send, packet_bytes)
        if interval <= 0:
            raise ConfigurationError(f"interval must be positive: {interval}")
        self.interval = interval
        self.stop_after = stop_after
        self._running = True
        sim.schedule(start, self._tick)

    @classmethod
    def at_rate(cls, sim: Simulator, send: SendHook, packet_bytes: int,
                rate_bps: float, **kwargs) -> "CbrSource":
        """Convenience: derive the interval from a target bit rate."""
        if rate_bps <= 0:
            raise ConfigurationError(f"rate must be positive: {rate_bps}")
        interval = packet_bytes * 8 / rate_bps
        return cls(sim, send, packet_bytes, interval, **kwargs)

    def _tick(self) -> None:
        if not self._running:
            return
        self._emit()
        if self.stop_after is not None and self.generated >= self.stop_after:
            self._running = False
            return
        self.sim.schedule(self.interval, self._tick)


class PoissonSource(_SourceBase):
    """Poisson arrivals at ``rate_pps`` packets per second."""

    def __init__(self, sim: Simulator, send: SendHook, packet_bytes: int,
                 rate_pps: float, start: float = 0.0):
        super().__init__(sim, send, packet_bytes)
        if rate_pps <= 0:
            raise ConfigurationError(f"rate must be positive: {rate_pps}")
        self.rate_pps = rate_pps
        self._rng = sim.rng.stream(f"poisson.{self.flow_id}")
        self._running = True
        sim.schedule(start + self._rng.expovariate(rate_pps), self._tick)

    def _tick(self) -> None:
        if not self._running:
            return
        self._emit()
        self.sim.schedule(self._rng.expovariate(self.rate_pps), self._tick)


class OnOffSource(_SourceBase):
    """Bursty on/off source: CBR while ON, silent while OFF.

    ON and OFF period lengths are exponentially distributed with the
    given means; during ON, packets are emitted every ``interval``.
    """

    def __init__(self, sim: Simulator, send: SendHook, packet_bytes: int,
                 interval: float, mean_on: float, mean_off: float,
                 start: float = 0.0):
        super().__init__(sim, send, packet_bytes)
        if min(interval, mean_on, mean_off) <= 0:
            raise ConfigurationError("interval/mean_on/mean_off must be > 0")
        self.interval = interval
        self.mean_on = mean_on
        self.mean_off = mean_off
        self._rng = sim.rng.stream(f"onoff.{self.flow_id}")
        self._running = True
        self._on = False
        self._phase_ends = 0.0
        sim.schedule(start, self._start_on_phase)

    def _start_on_phase(self) -> None:
        if not self._running:
            return
        self._on = True
        duration = self._rng.expovariate(1.0 / self.mean_on)
        self._phase_ends = self.sim.now + duration
        self.sim.schedule(duration, self._start_off_phase)
        self._tick()

    def _start_off_phase(self) -> None:
        if not self._running:
            return
        self._on = False
        self.sim.schedule(self._rng.expovariate(1.0 / self.mean_off),
                          self._start_on_phase)

    def _tick(self) -> None:
        if not self._running or not self._on:
            return
        if self.sim.now > self._phase_ends:
            return
        self._emit()
        self.sim.schedule(self.interval, self._tick)


class BulkTransferSource(_SourceBase):
    """Window-limited greedy transfer of ``total_bytes``.

    Keeps ``window`` packets outstanding; a completion callback (wired
    to the MAC's tx-complete hook by the caller) releases the next one.
    This saturates the link without overflowing the MAC queue.
    """

    def __init__(self, sim: Simulator, send: SendHook, packet_bytes: int,
                 total_bytes: int, window: int = 4, start: float = 0.0,
                 on_complete: Optional[Callable[[float], None]] = None):
        super().__init__(sim, send, packet_bytes)
        if total_bytes < packet_bytes:
            raise ConfigurationError("total_bytes smaller than one packet")
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self.total_packets = (total_bytes + packet_bytes - 1) // packet_bytes
        self.window = window
        self.completed = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self._on_complete = on_complete
        self._running = True
        sim.schedule(start, self._start)

    def _start(self) -> None:
        self.started_at = self.sim.now
        for _ in range(min(self.window, self.total_packets)):
            self._emit()

    def packet_done(self) -> None:
        """Call when one in-flight packet completes (ACKed or dropped)."""
        if not self._running:
            return
        self.completed += 1
        if self.completed >= self.total_packets:
            self._running = False
            self.finished_at = self.sim.now
            if self._on_complete is not None and self.started_at is not None:
                self._on_complete(self.finished_at - self.started_at)
            return
        if self.generated < self.total_packets:
            self._emit()

    @property
    def done(self) -> bool:
        return self.finished_at is not None

    def throughput_bps(self) -> float:
        """Goodput of the finished transfer (NaN while in flight)."""
        if self.started_at is None or self.finished_at is None:
            return float("nan")
        elapsed = self.finished_at - self.started_at
        if elapsed <= 0:
            return float("inf")
        return self.total_packets * self.packet_bytes * 8 / elapsed
