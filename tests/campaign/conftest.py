"""Fixtures for the declarative campaign runner suite."""

import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
SPECS_DIR = REPO_ROOT / "specs"
sys.path.insert(0, str(REPO_ROOT / "tools"))


def small_spec(name="unit", **overrides):
    """A cheap 4-job campaign (2 sweep points x 2 seeds) for executor
    tests: a 2-station saturated BSS over a 50 ms horizon."""
    spec = {
        "campaign": {"name": name},
        "scenario": {"builder": "infrastructure_bss", "horizon": 0.05,
                     "seed": 3, "params": {"stations": 2}},
        "traffic": {"kind": "saturate", "payload_bytes": 400, "depth": 2},
        "sweep": {"scenario.params.rts_threshold_bytes": [2347, 256]},
        "seeds": {"count": 2},
    }
    spec.update(overrides)
    return spec


@pytest.fixture
def specs_dir():
    return SPECS_DIR


@pytest.fixture
def repo_root():
    return REPO_ROOT
