"""Satellite links: GEO bent-pipe transponders.

For users "in remote areas or islands where no submarine cables are in
service" (source text §2.4), a geostationary satellite relays between
ground stations: the uplink signal is received by a transponder,
amplified, shifted to a different downlink frequency, and rebroadcast.

What matters behaviourally — and what experiment E8 measures — is the
**geometry**: GEO altitude is 35 786 km, so one ground-to-ground hop
costs roughly a quarter second of pure propagation delay, and any
window-limited protocol's throughput collapses to ``window / RTT``
long before the DVB-S2 channel rate (~60 Mb/s) is reached.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..core.engine import Simulator
from ..core.errors import ConfigurationError, LinkError
from ..core.stats import Counter
from ..core.topology import Position
from ..core.units import SPEED_OF_LIGHT, mbps

GEO_ALTITUDE_M = 35_786_000.0
#: DVB-S2 on a 36 MHz transponder, 8PSK 3/4-ish.
DVBS2_RATE_BPS = mbps(60.0)


@dataclass
class Transponder:
    """One bent-pipe channel: uplink band in, downlink band out."""

    transponder_id: int
    uplink_hz: float
    downlink_hz: float
    bandwidth_hz: float = 36e6
    rate_bps: float = DVBS2_RATE_BPS
    #: Electronics latency through the bent pipe.
    pipe_delay: float = 5e-6
    in_use: bool = False


class GeoSatellite:
    """A geostationary satellite parked over a longitude."""

    def __init__(self, name: str, longitude_deg: float,
                 transponder_count: int = 24):
        if transponder_count < 1:
            raise ConfigurationError("need at least one transponder")
        self.name = name
        self.longitude_deg = longitude_deg
        # Position in a simple equatorial-plane frame (x = longitude arc).
        arc = math.radians(longitude_deg) * 6_371_000.0
        self.position = Position(arc, 0.0, GEO_ALTITUDE_M)
        self.transponders = [
            Transponder(index, uplink_hz=14e9 + index * 40e6,
                        downlink_hz=11e9 + index * 40e6)
            for index in range(transponder_count)
        ]

    def lease_transponder(self) -> Transponder:
        for transponder in self.transponders:
            if not transponder.in_use:
                transponder.in_use = True
                return transponder
        raise LinkError(f"{self.name}: all transponders leased")

    def release_transponder(self, transponder: Transponder) -> None:
        transponder.in_use = False


@dataclass
class GroundStation:
    """A dish on the ground."""

    name: str
    position: Position


class SatelliteLink:
    """A ground-to-ground link through one leased transponder."""

    def __init__(self, sim: Simulator, satellite: GeoSatellite,
                 station_a: GroundStation, station_b: GroundStation):
        self.sim = sim
        self.satellite = satellite
        self.a = station_a
        self.b = station_b
        self.transponder = satellite.lease_transponder()
        self.counters = Counter()
        self._busy_until: Dict[str, float] = {station_a.name: 0.0,
                                              station_b.name: 0.0}

    def close(self) -> None:
        self.satellite.release_transponder(self.transponder)

    # --- delay geometry ------------------------------------------------------------

    def _hop_distance(self, station: GroundStation) -> float:
        return station.position.distance_to(self.satellite.position)

    def one_way_delay(self, source: GroundStation,
                      destination: GroundStation) -> float:
        """Propagation up + bent pipe + propagation down."""
        up = self._hop_distance(source) / SPEED_OF_LIGHT
        down = self._hop_distance(destination) / SPEED_OF_LIGHT
        return up + self.transponder.pipe_delay + down

    def rtt(self) -> float:
        return (self.one_way_delay(self.a, self.b)
                + self.one_way_delay(self.b, self.a))

    # --- transfer ------------------------------------------------------------------

    def send(self, source_name: str, size_bytes: int,
             on_delivered: Optional[Callable[[float], None]] = None
             ) -> float:
        """Send a message; returns its delivery time at the far end."""
        if source_name == self.a.name:
            source, destination = self.a, self.b
        elif source_name == self.b.name:
            source, destination = self.b, self.a
        else:
            raise LinkError(f"{source_name} is not an endpoint of this link")
        start = max(self.sim.now, self._busy_until[source_name])
        serialization = size_bytes * 8 / self.transponder.rate_bps
        self._busy_until[source_name] = start + serialization
        delivery = start + serialization + self.one_way_delay(source,
                                                              destination)
        self.counters.incr("messages")
        self.counters.incr("bytes", size_bytes)
        if on_delivered is not None:
            self.sim.schedule_at(delivery, on_delivered, delivery)
        return delivery

    def window_limited_throughput_bps(self, window_bytes: int) -> float:
        """Steady-state goodput of a stop-and-wait-style window protocol:
        min(channel rate, window / RTT) — the classic satellite pain."""
        if window_bytes <= 0:
            raise ConfigurationError("window must be positive")
        return min(self.transponder.rate_bps,
                   window_bytes * 8 / self.rtt())
