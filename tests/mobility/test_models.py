"""Tests for mobility models."""

import pytest

from repro.core import Position
from repro.core.errors import ConfigurationError
from repro.mobility.models import (
    LinearMobility,
    RandomWaypoint,
    StaticMobility,
)


class Dot:
    """A minimal positioned object."""

    def __init__(self, position=Position(0, 0, 0)):
        self.position = position


class TestStatic:
    def test_never_moves(self, sim):
        dot = Dot(Position(3, 4, 0))
        StaticMobility(sim, dot, tick=0.1).start()
        sim.run(until=5.0)
        assert dot.position == Position(3, 4, 0)


class TestLinear:
    def test_constant_speed_progress(self, sim):
        dot = Dot()
        LinearMobility(sim, dot, Position(100, 0, 0), speed_mps=10.0,
                       tick=0.1).start()
        sim.run(until=2.001)
        assert dot.position.x == pytest.approx(20.0, abs=1.0)

    def test_stops_at_destination(self, sim):
        dot = Dot()
        LinearMobility(sim, dot, Position(5, 0, 0), speed_mps=10.0,
                       tick=0.1).start()
        sim.run(until=10.0)
        assert dot.position == Position(5, 0, 0)

    def test_bounce_returns(self, sim):
        dot = Dot()
        LinearMobility(sim, dot, Position(10, 0, 0), speed_mps=10.0,
                       bounce=True, tick=0.1).start()
        # 1 s out, then it turns around; at t=2 s it is back at origin.
        sim.run(until=2.05)
        assert dot.position.x == pytest.approx(0.0, abs=1.5)

    def test_observer_notified(self, sim):
        dot = Dot()
        mobility = LinearMobility(sim, dot, Position(10, 0, 0),
                                  speed_mps=1.0, tick=0.5)
        positions = []
        mobility.on_move(positions.append)
        mobility.start()
        sim.run(until=2.1)
        assert len(positions) == 4

    def test_stop_freezes(self, sim):
        dot = Dot()
        mobility = LinearMobility(sim, dot, Position(100, 0, 0),
                                  speed_mps=10.0, tick=0.1)
        mobility.start()
        sim.run(until=1.0)
        mobility.stop()
        frozen = dot.position
        sim.run(until=5.0)
        assert dot.position == frozen

    def test_speed_validation(self, sim):
        with pytest.raises(ConfigurationError):
            LinearMobility(sim, Dot(), Position(1, 0, 0), speed_mps=0.0)


class TestRandomWaypoint:
    def test_stays_inside_the_area(self, sim):
        dot = Dot(Position(50, 50, 0))
        RandomWaypoint(sim, dot, width=100.0, height=100.0,
                       min_speed=5.0, max_speed=20.0, pause=0.1,
                       tick=0.1, rng_name="rwp-test").start()
        sim.run(until=60.0)
        # Sample along the way by re-running in chunks.
        assert 0.0 <= dot.position.x <= 100.0
        assert 0.0 <= dot.position.y <= 100.0

    def test_actually_moves(self, sim):
        dot = Dot(Position(50, 50, 0))
        RandomWaypoint(sim, dot, width=100.0, height=100.0,
                       tick=0.1, rng_name="rwp-test2").start()
        start = dot.position
        sim.run(until=30.0)
        assert dot.position.distance_to(start) > 1.0

    def test_deterministic_with_named_stream(self):
        from repro.core import Simulator

        def run():
            sim = Simulator(seed=5)
            dot = Dot(Position(10, 10, 0))
            RandomWaypoint(sim, dot, 100.0, 100.0, tick=0.1,
                           rng_name="fixed").start()
            sim.run(until=20.0)
            return dot.position

        assert run() == run()

    def test_validation(self, sim):
        with pytest.raises(ConfigurationError):
            RandomWaypoint(sim, Dot(), width=0.0, height=10.0)
        with pytest.raises(ConfigurationError):
            RandomWaypoint(sim, Dot(), 10.0, 10.0, min_speed=5.0,
                           max_speed=1.0)
