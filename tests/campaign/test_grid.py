"""Grid expansion: ordering contract and content-addressed identity."""

import pytest

from repro.campaign import (SpecError, expand_grid, grid_sha1, spec_sha1,
                            validate_spec)

from .conftest import small_spec


def test_expansion_order_axes_sorted_values_declared_seeds_innermost():
    spec = validate_spec(small_spec(
        sweep={"scenario.params.rts_threshold_bytes": [2347, 256],
               "scenario.params.stations": [2, 3]},
        seeds={"count": 2}))
    jobs = expand_grid(spec)
    # sorted paths: rts_threshold_bytes before stations; values in
    # declared order; seeds innermost.
    coords = [(job.axes["scenario.params.rts_threshold_bytes"],
               job.axes["scenario.params.stations"], job.seed)
              for job in jobs]
    assert coords == [
        (2347, 2, 3), (2347, 2, 4), (2347, 3, 3), (2347, 3, 4),
        (256, 2, 3), (256, 2, 4), (256, 3, 3), (256, 3, 4)]
    assert [job.index for job in jobs] == list(range(8))


def test_labels_are_leaf_coordinates():
    jobs = expand_grid(validate_spec(small_spec()))
    assert jobs[0].label == "rts_threshold_bytes=2347/seed=3"
    assert jobs[-1].label == "rts_threshold_bytes=256/seed=4"


def test_job_key_is_content_address():
    jobs = expand_grid(validate_spec(small_spec()))
    for job in jobs:
        assert job.key == spec_sha1(job.spec)
    assert len({job.key for job in jobs}) == len(jobs)


def test_expansion_is_deterministic():
    first = expand_grid(validate_spec(small_spec()))
    second = expand_grid(validate_spec(small_spec()))
    assert [job.key for job in first] == [job.key for job in second]
    assert grid_sha1(first) == grid_sha1(second)


def test_grid_sha1_tracks_membership_and_order():
    base = expand_grid(validate_spec(small_spec()))
    wider = expand_grid(validate_spec(small_spec(seeds={"count": 3})))
    reordered = expand_grid(validate_spec(small_spec(
        sweep={"scenario.params.rts_threshold_bytes": [256, 2347]})))
    assert grid_sha1(base) != grid_sha1(wider)
    assert grid_sha1(base) != grid_sha1(reordered)
    assert sorted(job.key for job in base) \
        == sorted(job.key for job in reordered)


def test_duplicate_content_address_is_an_error():
    # Sweeping an axis over the same value twice collapses two grid
    # points onto one content address — surfaced, not double-counted.
    spec = validate_spec(small_spec(
        sweep={"scenario.params.rts_threshold_bytes": [256, 256]}))
    with pytest.raises(SpecError, match="identical concrete spec"):
        expand_grid(spec)


def test_no_sweep_no_ensemble_is_one_job():
    jobs = expand_grid(validate_spec(small_spec(sweep={}, seeds={})))
    assert len(jobs) == 1
    assert jobs[0].label == "seed=3"
    assert jobs[0].axes == {}
