"""E13 — power-save mode ablation (design-choice bench from DESIGN.md).

The §4.2 Power Management machinery (PM bit, AP buffering, TIM,
PS-Poll, More Data) exists to trade **downlink latency for battery
life**.  This bench measures both sides of the trade on the same BSS:

* energy: mean radio power of an idle associated station, PS off vs on,
* latency: AP-to-station delivery delay for sporadic downlink traffic
  (PS adds up to a beacon interval of buffering delay),
* throughput sanity: the PS station still gets every frame.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core import Position, Simulator
from repro.core.energy import EnergyMeter
from repro.net.ap import AccessPoint, TU_SECONDS
from repro.net.station import Station
from repro.phy.channel import Medium
from repro.phy.propagation import LogDistance
from repro.phy.standards import DOT11G

MEASURE_WINDOW = 4.0
DOWNLINK_FRAMES = 12


def run_mode(power_save, seed=5):
    sim = Simulator(seed=seed)
    medium = Medium(sim, LogDistance(2.4e9, exponent=3.0))
    ap = AccessPoint(sim, medium, DOT11G, Position(0, 0, 0), name="ap",
                     ssid="psnet")
    sta = Station(sim, medium, DOT11G, Position(10, 0, 0), name="sta")
    ap.start_beaconing()
    sta.associate("psnet")
    sim.run(until=2.0)
    assert sta.associated
    if power_save:
        sta.enable_power_save()
        sim.run(until=2.5)

    meter = EnergyMeter(sim)
    meter.attach(sta.radio)
    start = sim.now
    # Sporadic downlink: one frame every ~330 ms.
    sent_at = {}
    delays = []

    def on_receive(source, payload, meta):
        delays.append(sim.now - sent_at[payload])

    sta.on_receive(on_receive)
    for index in range(DOWNLINK_FRAMES):
        payload = bytes([index]) * 50

        def send(p=payload):
            sent_at[p] = sim.now
            ap.send_to_station(sta.address, p)

        sim.schedule(0.1 + index * 0.33, send)
    sim.run(until=start + MEASURE_WINDOW)
    return {
        "mean_power_w": meter.mean_power_watts(since_start=start),
        "sleep_fraction": meter.seconds_in("sleep") / MEASURE_WINDOW,
        "delivered": len(delays),
        "mean_delay_ms": sum(delays) / max(len(delays), 1) * 1e3,
        "max_delay_ms": max(delays, default=0.0) * 1e3,
    }


def run_both():
    return {"PS off": run_mode(False), "PS on": run_mode(True)}


def test_power_save_tradeoff(benchmark, record_result):
    results = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [[name,
             result["mean_power_w"] * 1e3,
             result["sleep_fraction"],
             result["delivered"],
             result["mean_delay_ms"],
             result["max_delay_ms"]]
            for name, result in results.items()]
    text = render_table(
        "E13: power-save ablation (idle-ish station, sporadic downlink)",
        ["mode", "mean power mW", "sleep fraction", "delivered",
         "mean delay ms", "max delay ms"],
        rows, formats=[None, ".1f", ".2f", None, ".2f", ".2f"])
    beacon_ms = 100 * TU_SECONDS * 1e3
    text += (f"\n\nBeacon interval: {beacon_ms:.1f} ms — the PS latency "
             "ceiling (frames wait for the next TIM at worst).")
    record_result("E13_power_save", text)

    off, on = results["PS off"], results["PS on"]
    # Both modes deliver everything.
    assert off["delivered"] == on["delivered"] == DOWNLINK_FRAMES
    # PS slashes mean power by at least 3x...
    assert on["mean_power_w"] < off["mean_power_w"] / 3
    assert on["sleep_fraction"] > 0.7
    # ...and pays with delivery latency, bounded by the beacon interval.
    assert on["mean_delay_ms"] > off["mean_delay_ms"] * 5
    assert on["max_delay_ms"] < beacon_ms * 1.5
