"""Tests for passive/active scanning and multi-channel discovery."""

import pytest

from repro.core import Position, Simulator
from repro.net.ap import AccessPoint
from repro.net.station import Station, StationState
from repro.phy.channel import Medium
from repro.phy.propagation import LogDistance
from repro.phy.standards import DOT11G


def build_two_channel_world(sim):
    medium = Medium(sim, LogDistance(2.4e9, exponent=3.0))
    ap1 = AccessPoint(sim, medium, DOT11G, Position(0, 0, 0), name="ap1",
                      ssid="net-one", channel_id=1)
    ap6 = AccessPoint(sim, medium, DOT11G, Position(5, 0, 0), name="ap6",
                      ssid="net-six", channel_id=6)
    ap1.start_beaconing()
    ap6.start_beaconing(offset=0.03)
    sta = Station(sim, medium, DOT11G, Position(10, 0, 0), name="sta",
                  channel_id=1)
    return medium, ap1, ap6, sta


class TestMultiChannelScan:
    def test_passive_scan_finds_ap_on_other_channel(self, sim):
        _, ap1, ap6, sta = build_two_channel_world(sim)
        sta.start_scan("net-six", channels=[1, 6], dwell=0.15)
        sim.run(until=3.0)
        assert sta.state == StationState.ASSOCIATED
        assert sta.serving_ap == ap6.bssid
        assert sta.radio.channel_id == 6

    def test_scan_retries_until_network_appears(self, sim):
        medium = Medium(sim, LogDistance(2.4e9, exponent=3.0))
        sta = Station(sim, medium, DOT11G, Position(10, 0, 0), name="sta")
        sta.start_scan("late-net", dwell=0.1)
        sim.run(until=1.0)
        assert not sta.associated
        assert sta.sta_counters.get("scan_empty") >= 1
        # The network powers on later; the retrying scan must catch it.
        ap = AccessPoint(sim, medium, DOT11G, Position(0, 0, 0),
                         ssid="late-net")
        ap.start_beaconing()
        sim.run(until=4.0)
        assert sta.associated

    def test_channel_isolation_prevents_cross_channel_hearing(self, sim):
        _, ap1, ap6, sta = build_two_channel_world(sim)
        sim.run(until=1.0)  # station parked on channel 1
        assert sta.tracker.get(ap1.bssid) is not None
        assert sta.tracker.get(ap6.bssid) is None


class TestActiveScan:
    def test_probe_request_elicits_probe_response(self, sim):
        _, ap1, ap6, sta = build_two_channel_world(sim)
        # Short dwell (well under a beacon interval): only active probing
        # can discover the AP this fast.
        sta.start_scan("net-six", channels=[6], dwell=0.03, active=True)
        sim.run(until=2.0)
        assert sta.sta_counters.get("probe_requests") >= 1
        assert ap6.ap_counters.get("probe_responses") >= 1
        assert sta.associated

    def test_probe_for_foreign_ssid_ignored(self, sim):
        _, ap1, ap6, sta = build_two_channel_world(sim)
        sta.start_scan("no-such-net", channels=[1], dwell=0.03,
                       active=True)
        sim.run(until=0.5)
        assert ap1.ap_counters.get("probe_responses") == 0
