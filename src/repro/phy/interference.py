"""SINR accounting and the capture model.

During a frame reception, other overlapping transmissions contribute
interference.  :class:`SinrTracker` integrates interference *energy*
over the reception so the final SINR reflects partial overlaps — a
collision that clips only the last 5% of a frame is far less damaging
than a full overlap, and the integration captures that.

:class:`CaptureModel` decides whether a receiver already locked onto a
frame may abandon it for a sufficiently stronger late arrival
(physical-layer capture), or whether overlap always corrupts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.units import linear_to_db

_INF = math.inf
_log10 = math.log10

#: Memoized ratio -> dB conversions (pure function; see sinr_db).
_db_cache: dict = {}


class SinrTracker:
    """Integrates interference energy across one frame reception."""

    __slots__ = ("signal_watts", "noise_watts", "_start", "_last_time",
                 "_current_interference", "_energy")

    def __init__(self, signal_watts: float, noise_watts: float, start: float,
                 interference_watts: float = 0.0):
        if signal_watts < 0 or noise_watts < 0:
            raise ValueError("powers must be non-negative")
        self.signal_watts = signal_watts
        self.noise_watts = noise_watts
        self._start = start
        self._last_time = start
        # Passing the initial interference here is equivalent to an
        # immediate set_interference(start, x) — zero elapsed time, so
        # no energy accrues — but saves a call on the lock fast path.
        self._current_interference = interference_watts
        self._energy = 0.0  # watt-seconds of interference so far

    def reset(self, signal_watts: float, noise_watts: float, start: float,
              interference_watts: float = 0.0) -> "SinrTracker":
        """Re-initialize in place (no validation — hot-path reuse).

        A radio locks onto at most one frame at a time, so it can keep a
        single pre-allocated tracker and ``reset`` it per lock instead
        of constructing a new one (the per-lock allocation showed up in
        saturation profiles).  The field assignments are the same as
        ``__init__``'s, so a reset tracker is bit-identical to a fresh
        one; callers guarantee non-negative powers.
        """
        self.signal_watts = signal_watts
        self.noise_watts = noise_watts
        self._start = start
        self._last_time = start
        self._current_interference = interference_watts
        self._energy = 0.0
        return self

    def set_interference(self, now: float, power_watts: float) -> None:
        """Record that aggregate interference changed to ``power_watts``."""
        if now < self._last_time:
            raise ValueError("time went backwards in SinrTracker")
        self._energy += self._current_interference * (now - self._last_time)
        self._current_interference = power_watts
        self._last_time = now

    def sinr_db(self, end: float) -> float:
        """Final SINR over the whole reception ending at ``end``."""
        if end < self._last_time:
            raise ValueError("reception cannot end before last update")
        total_energy = self._energy + self._current_interference * (end - self._last_time)
        duration = end - self._start
        mean_interference = total_energy / duration if duration > 0 else \
            self._current_interference
        denominator = self.noise_watts + mean_interference
        if denominator <= 0.0:
            return linear_to_db(float("inf"))
        # linear_to_db inlined (one call per decoded frame per receiver),
        # and memoized on the exact ratio: an interference-free
        # reception over a static link reproduces the same handful of
        # ratios run-long, so most decodes skip the log10 entirely.
        # The cached value is the output of the identical computation —
        # bit-identical results either way.
        ratio = self.signal_watts / denominator
        if ratio <= 0.0:
            return -_INF
        try:
            return _db_cache[ratio]
        except KeyError:
            if len(_db_cache) >= 4096:
                _db_cache.clear()
            db = _db_cache[ratio] = 10.0 * _log10(ratio)
            return db


@dataclass(frozen=True)
class CaptureModel:
    """Physical-layer capture configuration.

    When ``enabled``, a receiver locked onto frame A will switch to a
    later-arriving frame B if B is at least ``threshold_db`` stronger
    than A (A is then counted as interference for B).  When disabled,
    the receiver stays locked and B only contributes interference —
    the classic "collision = both lost" model.
    """

    enabled: bool = True
    threshold_db: float = 10.0

    def should_capture(self, locked_power_watts: float,
                       new_power_watts: float) -> bool:
        if not self.enabled:
            return False
        if locked_power_watts <= 0.0:
            return True
        ratio_db = linear_to_db(new_power_watts / locked_power_watts)
        return ratio_db >= self.threshold_db

    def threshold_ratio(self) -> float:
        """The capture threshold as a linear power ratio.

        Used by the relaxed-math fast mode: ``new >= locked * ratio`` is
        one multiply and a compare instead of a division and a ``log10``.
        Within a few ulp of the dB-space decision, so exact mode must
        keep calling :meth:`should_capture`.  Disabled capture maps to
        ``inf`` (the comparison can never pass for finite powers).
        """
        if not self.enabled:
            return _INF
        return 10.0 ** (self.threshold_db / 10.0)
