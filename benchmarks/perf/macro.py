"""Macro-scenario definitions for the performance harness.

Each scenario is a function ``(scale: float) -> dict`` that builds a
representative workload, runs it, and returns::

    {
        "work": <int>,          # events executed (or frames audited)
        "work_unit": "events",  # what `work` counts
        "sim_seconds": <float>, # simulated horizon (0 for non-DES work)
        "stats": {...},         # seed-deterministic outcome fingerprint
    }

``scale`` stretches the workload (1.0 = the reference size); the
``--check`` mode runs at a reduced scale so CI stays fast.  ``stats``
must be a pure function of the seed and the scenario — the harness (and
``pytest -m perf``) assert that repeated runs and cached-vs-uncached
runs produce identical values, which is the determinism contract of the
fast-path core.

Timing happens in :mod:`tools.run_bench`, around the ``run`` phase only
(topology construction is excluded).  Tracing is explicitly disabled —
the zero-overhead path — because a perf benchmark measures the
simulator's production posture; the trace-cost delta is covered by unit
benchmarks, not here.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.adversary.emitters import PeriodicJammer
from repro.core import Position, Simulator
from repro.core.trace import TraceLog
from repro.faults import (ChaosMonkey, FaultLog, FaultSchedule,
                          InvariantChecker, LinkFader)
from repro.mac.addresses import BROADCAST, allocate_address, reset_allocator
from repro.mac.dcf import DcfConfig, DcfMac, MacListener
from repro.mac.rate_adapt import fixed_rate_factory
from repro.mobility.models import LinearMobility
from repro.net.roaming import RoamingPolicy
from repro.parallel import run_sharded, run_single
from repro.net.station import Station
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio
from repro.routing import DsdvRouting, StaticRouting
from repro.security.wep import WepCipher, crack_wep
from repro import scenarios
from repro.traffic.generators import CbrSource
from repro.traffic.sink import TrafficSink


class _Refill(MacListener):
    """Keeps a MAC's queue non-empty: the saturation workload."""

    def __init__(self, mac: DcfMac, destination: Any, payload: bytes):
        self.mac = mac
        self.destination = destination
        self.payload = payload

    def prime(self, depth: int = 4) -> None:
        for _ in range(depth):
            self.mac.send(self.destination, self.payload)

    def mac_tx_complete(self, msdu: Any, success: bool) -> None:
        self.mac.send(self.destination, self.payload)


class _Count(MacListener):
    def __init__(self) -> None:
        self.bytes = 0
        self.frames = 0

    def mac_receive(self, source: Any, destination: Any, payload: bytes,
                    meta: Dict[str, Any]) -> None:
        self.bytes += len(payload)
        self.frames += 1


def _perf_simulator(seed: int) -> Simulator:
    """A simulator in benchmark posture: tracing fully disabled."""
    return Simulator(seed=seed, trace=TraceLog(enabled=False))


def _install_checker(sim: Simulator, medium: Medium,
                     meshes: Tuple = ()) -> InvariantChecker:
    """Strict-mode invariant sweeps for a macro run (opt-in).

    Every DES macro takes ``check_invariants=True`` to run under the
    checker; the default stays off so BENCH numbers measure the
    production posture (the checker's periodic events would perturb
    ``events`` counts).  The macro-invariants test sweeps all of them.
    """
    checker = InvariantChecker(sim, interval=0.05, strict=True)
    checker.watch_medium(medium)
    for nodes in meshes:
        checker.watch_mesh(nodes)
    return checker.install()


def _install_telemetry(sim: Simulator, medium: Medium, *, enabled: bool,
                       macs: Tuple = (), fault_log: Any = None,
                       interval: float = 0.05) -> Any:
    """Build + arm a :class:`repro.telemetry.Telemetry` hub (opt-in).

    Mirrors ``_install_checker``: every DES macro takes
    ``telemetry=True``; the default stays off so BENCH numbers measure
    the production posture (the sampler's events would perturb the
    ``events`` count, never the protocol outcomes).  A disabled hub is
    a null object — every ``instrument_*`` call short-circuits.
    """
    from repro.telemetry import Telemetry
    hub = Telemetry(sim, enabled=enabled, sample_interval=interval)
    hub.instrument_kernel()
    hub.instrument_medium(medium)
    if enabled:
        hub.instrument_macs(macs)
        hub.instrument_radios(medium._radios)
        if fault_log is not None:
            hub.instrument_faults(fault_log)
    return hub.install()


def _telemetry_extras(hubs: List[Any]) -> Dict[str, Any]:
    """Finish the hubs and assemble the extra (non-BENCH) result keys.

    ``time_scenario`` ignores keys outside the BENCH schema, so these
    never land in committed BENCH records; the telemetry determinism
    tests byte-compare ``telemetry_jsonl`` across seeded runs.
    Multi-kernel macros concatenate per-part streams behind ``part``
    marker lines, in part order — still canonical, still byte-stable.
    """
    for hub in hubs:
        hub.finish()
    if len(hubs) == 1:
        sim_jsonl = hubs[0].sim_jsonl()
        wall_jsonl = hubs[0].wall_jsonl()
        summary = hubs[0].summary()
    else:
        def _mark(index: int) -> str:
            return json.dumps({"part": index, "type": "part"},
                              sort_keys=True, separators=(",", ":"))
        sim_jsonl = "\n".join(
            line for index, hub in enumerate(hubs)
            for line in (_mark(index), hub.sim_jsonl().rstrip("\n"))) + "\n"
        wall_jsonl = "\n".join(
            line for index, hub in enumerate(hubs)
            for line in (_mark(index), hub.wall_jsonl().rstrip("\n"))) + "\n"
        summary = [hub.summary() for hub in hubs]
    return {"telemetry_jsonl": sim_jsonl,
            "telemetry_wall_jsonl": wall_jsonl,
            "telemetry_summary": summary}


def dcf_saturation(scale: float = 1.0, *, seed: int = 5,
                   stations: int = 20,
                   cache_links: bool = True,
                   exact: bool = True,
                   check_invariants: bool = False,
                   telemetry: bool = False) -> Dict[str, Any]:
    """20 saturated stations sending 800-byte MSDUs to one receiver.

    The headline macro-benchmark: dominated by arrival fan-out, CCA
    edges, slot-by-slot backoff, and frame delivery decisions.

    ``exact=False`` runs the medium's relaxed-ulp fast mode (the
    ``*_fast`` macro variants); its stats are seed-deterministic but
    deliberately NOT comparable to exact-mode stats — see
    PERFORMANCE.md, "Exact vs fast mode".
    """
    reset_allocator()
    sim = _perf_simulator(seed)
    medium = Medium(sim, FixedLoss(50.0), cache_links=cache_links,
                    exact=exact)
    config = DcfConfig()
    factory = fixed_rate_factory("CCK-11")
    receiver_radio = Radio("rx", medium, DOT11B, Position(0, 0, 0))
    receiver = DcfMac(sim, receiver_radio, allocate_address(), config=config,
                      rate_factory=factory)
    counter = _Count()
    receiver.listener = counter
    payload = bytes(800)
    macs = [receiver]
    for index in range(stations):
        radio = Radio(f"tx{index}", medium, DOT11B,
                      Position(1.0 + index * 0.1, 0, 0))
        mac = DcfMac(sim, radio, allocate_address(), config=config,
                     rate_factory=factory)
        refill = _Refill(mac, receiver.address, payload)
        mac.listener = refill
        refill.prime()
        macs.append(mac)
    if check_invariants:
        _install_checker(sim, medium)
    hub = _install_telemetry(sim, medium, enabled=telemetry, macs=macs)
    horizon = 0.4 + 1.0 * scale
    sim.run(until=horizon)
    result = {
        "work": sim.events_executed,
        "work_unit": "events",
        "sim_seconds": horizon,
        "stats": {
            "rx_bytes": counter.bytes,
            "rx_frames": counter.frames,
            "events": sim.events_executed,
            "link_cache_hits": medium.links.hits,
            "link_cache_misses": medium.links.misses,
            "fanout_plan_hits": medium.plan_hits,
            "fanout_plan_misses": medium.plan_misses,
        },
    }
    if telemetry:
        result.update(_telemetry_extras([hub]))
    return result


def dcf_saturation_fast(scale: float = 1.0, *, seed: int = 5,
                        check_invariants: bool = False,
                        telemetry: bool = False) -> Dict[str, Any]:
    """`dcf_saturation` in the relaxed-ulp fast mode (exact=False).

    Committed side-by-side with the exact macro so every PR's BENCH
    trajectory shows both figures.  The stats fingerprint is still a
    pure function of the seed (the determinism gates apply), but it is
    bit-INcompatible with exact mode by design.
    """
    return dcf_saturation(scale, seed=seed, exact=False,
                          check_invariants=check_invariants,
                          telemetry=telemetry)


def dcf_saturation_100_fast(scale: float = 1.0, *, seed: int = 17,
                            check_invariants: bool = False,
                            telemetry: bool = False) -> Dict[str, Any]:
    """`dcf_saturation_100` in the relaxed-ulp fast mode (exact=False)."""
    return dcf_saturation(scale, seed=seed, stations=100, exact=False,
                          check_invariants=check_invariants,
                          telemetry=telemetry)


def dcf_saturation_100(scale: float = 1.0, *, seed: int = 17,
                       check_invariants: bool = False,
                       telemetry: bool = False) -> Dict[str, Any]:
    """100 saturated stations to one receiver: the dense-contention macro.

    Everything that grows with N concentrates here — arrival fan-out
    (101 radios hear every frame), CCA-edge storms, and simultaneous
    batched-countdown re-anchoring across the whole cell.  Cache and
    batching wins grow with N, so this macro is the trajectory's
    scaling check: its speedup relative to the seed core should be at
    least the 20-station macro's.
    """
    return dcf_saturation(scale, seed=seed, stations=100,
                          check_invariants=check_invariants,
                          telemetry=telemetry)


def multi_bss(scale: float = 1.0, *, seed: int = 23,
              bss_count: int = 4, stations_per_bss: int = 6,
              check_invariants: bool = False,
              telemetry: bool = False) -> Dict[str, Any]:
    """Several co-located BSSes on orthogonal channels, all saturated.

    Exercises per-channel medium isolation: the fan-out must touch only
    co-channel radios, so with the per-channel receiver lists the event
    cost per frame is O(cell size), not O(all radios).
    """
    channels = (1, 6, 11, 14)
    if bss_count > len(channels):
        raise ValueError(f"at most {len(channels)} orthogonal BSSes")
    reset_allocator()
    sim = _perf_simulator(seed)
    medium = Medium(sim, FixedLoss(50.0))
    config = DcfConfig()
    factory = fixed_rate_factory("CCK-11")
    payload = bytes(800)
    counters = []
    macs = []
    for bss in range(bss_count):
        channel = channels[bss]
        receiver_radio = Radio(f"bss{bss}-rx", medium, DOT11B,
                               Position(0, 100.0 * bss, 0),
                               channel_id=channel)
        receiver = DcfMac(sim, receiver_radio, allocate_address(),
                          config=config, rate_factory=factory)
        counter = _Count()
        receiver.listener = counter
        counters.append(counter)
        macs.append(receiver)
        for index in range(stations_per_bss):
            radio = Radio(f"bss{bss}-tx{index}", medium, DOT11B,
                          Position(1.0 + index * 0.1, 100.0 * bss, 0),
                          channel_id=channel)
            mac = DcfMac(sim, radio, allocate_address(), config=config,
                         rate_factory=factory)
            refill = _Refill(mac, receiver.address, payload)
            mac.listener = refill
            refill.prime()
            macs.append(mac)
    if check_invariants:
        _install_checker(sim, medium)
    hub = _install_telemetry(sim, medium, enabled=telemetry, macs=macs)
    horizon = 0.4 + 1.0 * scale
    sim.run(until=horizon)
    result = {
        "work": sim.events_executed,
        "work_unit": "events",
        "sim_seconds": horizon,
        "stats": {
            "rx_bytes": sum(counter.bytes for counter in counters),
            "rx_frames": sum(counter.frames for counter in counters),
            "per_bss_frames": [counter.frames for counter in counters],
            "events": sim.events_executed,
        },
    }
    if telemetry:
        result.update(_telemetry_extras([hub]))
    return result


def interference_field(scale: float = 1.0, *, seed: int = 29,
                       exact: bool = True,
                       check_invariants: bool = False,
                       telemetry: bool = False) -> Dict[str, Any]:
    """A saturated BSS drowning in 26 overlapping energy emitters.

    The dense interference-field macro the ROADMAP called for: 20
    saturated stations (the `dcf_saturation` cell) plus a field of
    duty-cycled energy emitters whose pulse phases are staggered so
    many bursts genuinely overlap at every receiver:

    * 20 *weak* emitters (below the preamble floor, above the
      reception floor) — pure arrival-table depth: at any instant ~7
      of them are on the air, so every exact-mode CCA edge re-sums an
      8-deep table while fast mode's O(1) accumulator does one add.
      This is the regime where the PR-4 fast mode was predicted to
      win, and the first committed macro that measures it.
    * 4 *strong* emitters (above the CCA threshold) — airtime thieves:
      the DCF freezes during their bursts, so contention re-anchoring
      churns on top of the deep table.
    * 2 *corruptors* (strong enough to matter in SINR) — their bursts
      overlap in-flight receptions and corrupt frames, exercising the
      interference-refresh path under depth.

    Delivery is therefore well below `dcf_saturation`'s — by design;
    the seeded stats pin the exact degradation.
    """
    reset_allocator()
    sim = _perf_simulator(seed)
    medium = Medium(sim, FixedLoss(50.0), exact=exact)
    config = DcfConfig()
    factory = fixed_rate_factory("CCK-11")
    receiver_radio = Radio("rx", medium, DOT11B, Position(0, 0, 0))
    receiver = DcfMac(sim, receiver_radio, allocate_address(), config=config,
                      rate_factory=factory)
    counter = _Count()
    receiver.listener = counter
    payload = bytes(800)
    macs = []
    for index in range(20):
        radio = Radio(f"tx{index}", medium, DOT11B,
                      Position(1.0 + index * 0.1, 0, 0))
        mac = DcfMac(sim, radio, allocate_address(), config=config,
                     rate_factory=factory)
        refill = _Refill(mac, receiver.address, payload)
        mac.listener = refill
        refill.prime()
        macs.append(mac)
    # With FixedLoss(50) every emitter arrives at power_dbm - 50 at
    # every victim.  DOT11B's noise floor is ~-93.6 dBm, CCA -82 dBm,
    # reception floor -110 dBm; the three emitter tiers sit at
    # -96 dBm (energy only), -75 dBm (CCA busy) and -40 dBm (SINR).
    emitters = []
    for index in range(20):
        emitters.append(PeriodicJammer(
            sim, medium, Position(30.0 + index, 30.0, 0),
            power_dbm=-46.0, on_time=500e-6, period=1500e-6,
            offset=1500e-6 * index / 20.0, name=f"weak{index}"))
    for index in range(4):
        emitters.append(PeriodicJammer(
            sim, medium, Position(-30.0 - index, 30.0, 0),
            power_dbm=-25.0, on_time=500e-6, period=8e-3,
            offset=8e-3 * index / 4.0, name=f"strong{index}"))
    for index in range(2):
        emitters.append(PeriodicJammer(
            sim, medium, Position(-30.0 - index, -30.0, 0),
            power_dbm=10.0, on_time=200e-6, period=5e-3,
            offset=5e-3 * (0.5 + index) / 2.0, name=f"corrupt{index}"))
    for emitter in emitters:
        emitter.start()
    if check_invariants:
        _install_checker(sim, medium)
    hub = _install_telemetry(sim, medium, enabled=telemetry,
                             macs=[receiver] + macs)
    horizon = 0.4 + 1.0 * scale
    sim.run(until=horizon)
    result = {
        "work": sim.events_executed,
        "work_unit": "events",
        "sim_seconds": horizon,
        "stats": {
            "rx_bytes": counter.bytes,
            "rx_frames": counter.frames,
            "events": sim.events_executed,
            "bursts": sum(emitter.counters.get("bursts")
                          for emitter in emitters),
            "rx_corrupt": receiver.counters.get("rx_corrupt"),
            "ack_timeouts": sum(mac.counters.get("ack_timeouts")
                                for mac in macs),
            "fanout_plan_hits": medium.plan_hits,
            "fanout_plan_misses": medium.plan_misses,
        },
    }
    if telemetry:
        result.update(_telemetry_extras([hub]))
    return result


def interference_field_fast(scale: float = 1.0, *, seed: int = 29,
                            check_invariants: bool = False,
                            telemetry: bool = False) -> Dict[str, Any]:
    """`interference_field` in the relaxed-ulp fast mode (exact=False).

    The workload fast mode exists for: with an ~8-deep arrival table at
    every radio, the exact path's provably-exact short-circuits never
    apply and every energy edge pays an O(depth) re-sum that the
    accumulator replaces with O(1).  Committed side-by-side so the
    BENCH trajectory shows the exact-vs-fast gap in its winning regime
    (stats seed-deterministic, bit-incompatible with exact — see
    PERFORMANCE.md).
    """
    return interference_field(scale, seed=seed, exact=False,
                              check_invariants=check_invariants,
                              telemetry=telemetry)


def hidden_terminal(scale: float = 1.0, *, seed: int = 11,
                    check_invariants: bool = False,
                    telemetry: bool = False) -> Dict[str, Any]:
    """Two mutually hidden saturated senders with RTS/CTS enabled.

    Exercises the collision/RTS reservation machinery and the disc
    propagation model's zero-gain fast path.
    """
    reset_allocator()
    sim = _perf_simulator(seed)
    config = DcfConfig(rts_threshold_bytes=400)
    scenario = scenarios.build_hidden_terminal(sim, mac_config=config)
    counter = _Count()

    def _count(source: Any, payload: bytes, meta: Dict[str, Any]) -> None:
        counter.bytes += len(payload)
        counter.frames += 1

    scenario.receiver.on_receive(_count)
    payload = bytes(1000)
    destination = scenario.receiver.address
    for sender in (scenario.sender_a, scenario.sender_b):
        mac = sender.mac
        # Stations route tx-complete through the device listener; hook
        # the refill at the device layer to keep the queue saturated.
        sender.on_tx_complete(
            lambda msdu, ok, _m=mac: _m.send(destination, payload))
        for _ in range(4):
            mac.send(destination, payload)
    if check_invariants:
        _install_checker(sim, scenario.medium)
    hub = _install_telemetry(
        sim, scenario.medium, enabled=telemetry,
        macs=[scenario.sender_a.mac, scenario.sender_b.mac,
              scenario.receiver.mac])
    horizon = 2.0 * scale
    sim.run(until=horizon)
    result = {
        "work": sim.events_executed,
        "work_unit": "events",
        "sim_seconds": horizon,
        "stats": {
            "rx_bytes": counter.bytes,
            "rx_frames": counter.frames,
            "events": sim.events_executed,
        },
    }
    if telemetry:
        result.update(_telemetry_extras([hub]))
    return result


def roaming_ess(scale: float = 1.0, *, seed: int = 7,
                check_invariants: bool = False,
                telemetry: bool = False) -> Dict[str, Any]:
    """A station walks a 3-AP corridor with a downlink CBR flow.

    Exercises scanning/association, the DS location table, mobility
    ticks and — critically — LinkCache invalidation on every move.
    """
    reset_allocator()
    sim = _perf_simulator(seed)
    corridor = scenarios.build_ess(sim, ap_count=3, spacing_m=80.0)
    walker = Station(sim, corridor.medium, corridor.aps[0].radio.standard,
                     Position(2, 0, 0), name="walker",
                     roaming_policy=RoamingPolicy(
                         low_snr_threshold_db=28.0, hysteresis_db=3.0,
                         min_dwell=0.5))
    walker.associate("repro-ess")
    scenarios.associate_all(sim, [walker], timeout=5.0)
    sink = TrafficSink(sim)
    walker.on_receive(sink)
    from repro.mac.addresses import MacAddress
    server = MacAddress.from_string("00:10:20:30:40:50")
    CbrSource(
        sim,
        lambda p: (corridor.ess.ds.inject_from_portal(server, walker.address,
                                                      p), True)[1],
        packet_bytes=800, interval=0.02)
    LinearMobility(sim, walker, Position(170, 0, 0), speed_mps=8.0,
                   tick=0.1).start()
    if check_invariants:
        _install_checker(sim, corridor.medium)
    hub = _install_telemetry(
        sim, corridor.medium, enabled=telemetry,
        macs=[walker.mac] + [ap.mac for ap in corridor.aps])
    horizon = sim.now + 20.0 * scale
    sim.run(until=horizon)
    result = {
        "work": sim.events_executed,
        "work_unit": "events",
        "sim_seconds": horizon,
        "stats": {
            "rx_packets": sink.total_received,
            "roams": walker.sta_counters.get("roams"),
            "events": sim.events_executed,
        },
    }
    if telemetry:
        result.update(_telemetry_extras([hub]))
    return result


def mesh_backhaul(scale: float = 1.0, *, seed: int = 31,
                  check_invariants: bool = False,
                  telemetry: bool = False) -> Dict[str, Any]:
    """Multi-hop mesh relaying: the routing-layer macro.

    Three sub-scenarios, events summed:

    * an 8-node **static** relay chain carrying CBR end-to-end over 7
      wireless hops (forwarding-engine throughput),
    * the same chain under **DSDV** — traffic starts before
      convergence, queues on route miss, and flows once the
      distance-vector tables settle,
    * a 3x3 **DSDV grid** whose active first-hop relay is knocked out
      mid-run: the break must be detected (MAC retry exhaustion),
      poisoned (odd sequence), and repaired through the redundant path
      with traffic resuming — the route-repair workload.

    All outcome stats are pure functions of the seed; the hop counts in
    particular pin the paths taken, so any routing behavior change
    trips the determinism gate.
    """
    reset_allocator()
    sim = _perf_simulator(seed)
    chain = scenarios.build_mesh_network(
        sim, scenarios.chain_topology(8, 30.0), StaticRouting,
        range_m=40.0)
    scenarios.install_chain_routes(chain.nodes)
    static_sink = TrafficSink(sim)
    chain.nodes[7].on_receive(static_sink)
    static_source = CbrSource(
        sim, chain.nodes[0].sender(chain.nodes[7].address),
        packet_bytes=200, interval=0.01)
    if check_invariants:
        _install_checker(sim, chain.medium, meshes=(chain.nodes,))
    static_hub = _install_telemetry(
        sim, chain.medium, enabled=telemetry,
        macs=[node.station.mac for node in chain.nodes])
    static_horizon = 0.4 + 1.0 * scale
    sim.run(until=static_horizon)
    static_events = sim.events_executed
    static_flow = static_sink.flow(static_source.flow_id)

    reset_allocator()
    sim = _perf_simulator(seed + 1)
    dsdv_chain = scenarios.build_mesh_network(
        sim, scenarios.chain_topology(8, 30.0), DsdvRouting, range_m=40.0)
    dsdv_chain.start_routing()
    dsdv_sink = TrafficSink(sim)
    dsdv_chain.nodes[7].on_receive(dsdv_sink)
    dsdv_source = CbrSource(
        sim, dsdv_chain.nodes[0].sender(dsdv_chain.nodes[7].address),
        packet_bytes=200, interval=0.02)
    if check_invariants:
        _install_checker(sim, dsdv_chain.medium, meshes=(dsdv_chain.nodes,))
    dsdv_hub = _install_telemetry(
        sim, dsdv_chain.medium, enabled=telemetry,
        macs=[node.station.mac for node in dsdv_chain.nodes])
    dsdv_horizon = 1.0 + 1.0 * scale
    sim.run(until=dsdv_horizon)
    dsdv_events = sim.events_executed
    dsdv_flow = dsdv_sink.flow(dsdv_source.flow_id)

    reset_allocator()
    sim = _perf_simulator(seed + 2)
    grid = scenarios.build_mesh_network(
        sim, scenarios.grid_topology(3, 3, 30.0), DsdvRouting, range_m=40.0)
    grid.start_routing()
    grid_sink = TrafficSink(sim)
    corner = grid.nodes[8]
    grid.nodes[8].on_receive(grid_sink)
    CbrSource(sim, grid.nodes[0].sender(corner.address),
              packet_bytes=200, interval=0.02, start=0.3)
    break_at = 0.8
    pre_break = []

    def _break_active_relay() -> None:
        entry = grid.nodes[0].protocol.routes().get(corner.address)
        assert entry is not None, "grid did not converge before the break"
        relay = next(node for node in grid.nodes
                     if node.address == entry.next_hop)
        relay.station.position = Position(10_000.0, 10_000.0, 0.0)
        pre_break.append(grid_sink.total_received)

    sim.schedule_at(break_at, _break_active_relay)
    if check_invariants:
        _install_checker(sim, grid.medium, meshes=(grid.nodes,))
    grid_hub = _install_telemetry(
        sim, grid.medium, enabled=telemetry,
        macs=[node.station.mac for node in grid.nodes])
    grid_horizon = break_at + 0.8 + 1.2 * scale
    sim.run(until=grid_horizon)
    grid_events = sim.events_executed
    broken = sum(node.counters.get("routes_broken") for node in grid.nodes)

    result = {
        "work": static_events + dsdv_events + grid_events,
        "work_unit": "events",
        "sim_seconds": static_horizon + dsdv_horizon + grid_horizon,
        "stats": {
            "static_delivered": static_flow.received,
            "static_generated": static_source.generated,
            "static_hops": [static_flow.hops.minimum,
                            static_flow.hops.maximum],
            "dsdv_delivered": dsdv_flow.received,
            "dsdv_generated": dsdv_source.generated,
            "dsdv_hops": [dsdv_flow.hops.minimum, dsdv_flow.hops.maximum],
            "dsdv_route_misses":
                dsdv_chain.nodes[0].counters.get("route_misses"),
            "grid_pre_break": pre_break[0] if pre_break else -1,
            "grid_post_break": grid_sink.total_received
                - (pre_break[0] if pre_break else 0),
            "grid_routes_broken": broken,
            "events": static_events + dsdv_events + grid_events,
        },
    }
    if telemetry:
        result.update(_telemetry_extras([static_hub, dsdv_hub, grid_hub]))
    return result


def fault_storm(scale: float = 1.0, *, seed: int = 37,
                check_invariants: bool = False,
                telemetry: bool = False) -> Dict[str, Any]:
    """Crash/restart + fade storm over a BSS and a DSDV mesh.

    The resilience macro: both halves take a seeded beating mid-run and
    must *recover* — post-storm delivery rate is compared against the
    pre-fault steady state and committed as the ``pdr_recovery`` stat
    (the acceptance bar is >= 0.9).  Two sub-scenarios, events summed:

    * an infrastructure **BSS** with six uplink CBR stations: one
      station crashes and reboots (exercising AP-side stale-station
      reaping), then the AP itself crashes for 300 ms — every station
      rides beacon loss into rescans with backoff, then reassociates
      when the AP reboots,
    * a 3x3 **DSDV grid** under a :class:`~repro.faults.ChaosMonkey`
      crash/restart storm across all seven relays, plus a 120 dB fade
      dropped on the center relay and a queue-pressure flood at the
      source — the mesh must reconverge and traffic resume once the
      storm lifts.

    Every fault fires through the :mod:`repro.faults` machinery into a
    shared :class:`~repro.faults.FaultLog`; its canonical JSONL trace
    is returned (``fault_trace``, not part of the BENCH record) and its
    SHA-1 is committed in the stats, so the determinism gates pin the
    *entire* fault timeline, not just the outcome counts.
    """
    # --- BSS half: station + AP crash/restart under uplink CBR -------------
    reset_allocator()
    sim = _perf_simulator(seed)
    bss = scenarios.build_infrastructure_bss(sim, station_count=6)
    log = FaultLog()
    sink = TrafficSink(sim)
    bss.ap.on_receive(sink)
    bss.ap.start_reaping(idle_timeout=0.25, interval=0.1)
    ap_address = bss.ap.address
    for station in bss.stations:
        def _uplink(payload: bytes, _station: Station = station) -> bool:
            # Guarded sender: an unassociated station (crashed, or its
            # AP is down) rejects the offer instead of raising.
            if not _station.associated:
                return False
            return _station.send(ap_address, payload)
        CbrSource(sim, _uplink, packet_bytes=200, interval=0.02, start=0.2)
    schedule = FaultSchedule(sim, log=log)
    schedule.crash(bss.stations[0], at=0.6, down_for=0.5)
    schedule.crash(bss.ap, at=1.0, down_for=0.3)
    schedule.install()
    marks: Dict[str, int] = {}

    def _mark_bss(key: str) -> None:
        marks[key] = sink.total_received

    sim.schedule_at(0.3, _mark_bss, "bss_pre_lo")
    sim.schedule_at(0.6, _mark_bss, "bss_pre_hi")
    sim.schedule_at(2.0, _mark_bss, "bss_post_lo")
    if check_invariants:
        _install_checker(sim, bss.medium)
    bss_hub = _install_telemetry(
        sim, bss.medium, enabled=telemetry,
        macs=[bss.ap.mac] + [station.mac for station in bss.stations])
    bss_horizon = 2.0 + 1.0 * scale
    sim.run(until=bss_horizon)
    bss_events = sim.events_executed
    bss_pre_rate = (marks["bss_pre_hi"] - marks["bss_pre_lo"]) / 0.3
    bss_post_rate = (sink.total_received - marks["bss_post_lo"]) \
        / (1.0 * scale)
    reassociations = sum(s.sta_counters.get("associations")
                         for s in bss.stations)

    # --- mesh half: chaos-monkey storm + fade over a DSDV grid -------------
    reset_allocator()
    sim = _perf_simulator(seed + 1)
    grid = scenarios.build_mesh_network(
        sim, scenarios.grid_topology(3, 3, 30.0), DsdvRouting, range_m=40.0)
    grid.start_routing()
    mesh_sink = TrafficSink(sim)
    grid.nodes[8].on_receive(mesh_sink)
    mesh_source = CbrSource(
        sim, grid.nodes[0].sender(grid.nodes[8].address),
        packet_bytes=200, interval=0.02, start=0.3)
    fader = LinkFader(grid.medium)
    monkey = ChaosMonkey(sim, targets=grid.nodes[1:8],
                         mean_interval=0.12, mean_downtime=0.2,
                         name="grid", log=log)
    schedule = FaultSchedule(sim, name="mesh-faults", log=log)
    schedule.fade(fader, grid.nodes[4].station.position, 120.0,
                  at=0.9, duration=0.4, target=grid.nodes[4].station.name)
    # Broadcast junk: drains at one (unacknowledged) transmission per
    # frame, so the flood's damage is contention + drops, not a queue
    # wedged for seconds behind retry-limited unicasts to a dead peer.
    schedule.queue_pressure(grid.nodes[0].station.mac, at=1.0, fill=1.0,
                            destination=BROADCAST)
    schedule.install()
    sim.schedule_at(0.8, monkey.start)

    def _end_storm() -> None:
        monkey.stop()
        monkey.restore_all()

    sim.schedule_at(1.6, _end_storm)

    def _mark_mesh(key: str) -> None:
        marks[key] = mesh_sink.total_received

    sim.schedule_at(0.5, _mark_mesh, "mesh_pre_lo")
    sim.schedule_at(0.8, _mark_mesh, "mesh_pre_hi")
    sim.schedule_at(2.2, _mark_mesh, "mesh_post_lo")
    if check_invariants:
        _install_checker(sim, grid.medium, meshes=(grid.nodes,))
    # The shared fault log rides the mesh hub (complete by the time it
    # finishes), folding the whole storm into ``downtime`` spans.
    mesh_hub = _install_telemetry(
        sim, grid.medium, enabled=telemetry,
        macs=[node.station.mac for node in grid.nodes], fault_log=log)
    mesh_horizon = 2.2 + 1.0 * scale
    sim.run(until=mesh_horizon)
    mesh_events = sim.events_executed
    mesh_pre_rate = (marks["mesh_pre_hi"] - marks["mesh_pre_lo"]) / 0.3
    mesh_post_rate = (mesh_sink.total_received - marks["mesh_post_lo"]) \
        / (1.0 * scale)

    trace = log.to_jsonl()
    result = {
        "work": bss_events + mesh_events,
        "work_unit": "events",
        "sim_seconds": bss_horizon + mesh_horizon,
        "stats": {
            "bss_pre_rate": bss_pre_rate,
            "bss_post_rate": bss_post_rate,
            "bss_reassociations": reassociations,
            "ap_reaped": bss.ap.ap_counters.get("removed_stale"),
            "mesh_pre_rate": mesh_pre_rate,
            "mesh_post_rate": mesh_post_rate,
            "mesh_strikes": monkey.counters.get("strikes"),
            "mesh_restores": monkey.counters.get("restores"),
            "mesh_routes_broken": sum(node.counters.get("routes_broken")
                                      for node in grid.nodes),
            "pdr_recovery": min(
                bss_post_rate / bss_pre_rate if bss_pre_rate else 0.0,
                mesh_post_rate / mesh_pre_rate if mesh_pre_rate else 0.0),
            "faults_injected": len(log),
            "trace_sha1": hashlib.sha1(trace.encode()).hexdigest(),
            "events": bss_events + mesh_events,
        },
        # Full canonical fault timeline; time_scenario ignores extra
        # keys, so this never lands in BENCH records — the determinism
        # tests byte-compare it across seeded runs.
        "fault_trace": trace,
    }
    if telemetry:
        result.update(_telemetry_extras([bss_hub, mesh_hub]))
    return result


def wep_audit(scale: float = 1.0, *, seed: int = 0,
              telemetry: bool = False) -> Dict[str, Any]:
    """FMS key recovery against a live WEP cipher.

    The security-suite macro-benchmark: KSA/PRGA block crypt and the
    arithmetic weak-IV traffic oracle.  ``scale`` bounds the sniffing
    budget; the 40-bit key falls out within the reference budget.
    """
    budget = int((1 << 23) * max(scale, 0.25))
    key = b"\x13\x37\xbe\xef\x42"
    recovered, frames = crack_wep(WepCipher(key), max_frames=budget,
                                  check_every=1 << 21)
    result = {
        "work": frames,
        "work_unit": "frames",
        "sim_seconds": 0.0,
        "stats": {
            "recovered": recovered == key,
            "frames_needed": frames,
        },
    }
    if telemetry:
        # Non-DES macro: no kernel to sample, but the telemetry keys
        # keep the macro surface uniform — a counter-only sim stream.
        from repro.telemetry.export import summary_table, to_jsonl
        from repro.telemetry.metrics import MetricsRegistry
        registry = MetricsRegistry()
        registry.counter("wep", "frames_sniffed").inc(frames)
        registry.counter("wep", "key_recovered").inc(
            1 if recovered == key else 0)
        result["telemetry_jsonl"] = to_jsonl(registry, stream="sim")
        result["telemetry_wall_jsonl"] = to_jsonl(registry, stream="wall")
        result["telemetry_summary"] = summary_table(registry)
    return result


#: name -> scenario callable; the harness and the perf tests iterate this.
def city_scale(scale: float = 1.0, *, seed: int = 41,
               bss_count: int = 24, stations_per_bss: int = 8,
               workers: int = 4,
               check_invariants: bool = False,
               telemetry: bool = False) -> Dict[str, Any]:
    """Tens of saturated BSSes on a city grid, run sharded.

    The sharded-executor headline macro: 24 cells (parameterizable to
    hundreds via ``bss_count``) with 2x2 channel reuse, partitioned
    automatically — the grid geometry puts every co-channel pair below
    the reception floor, so the partitioner proves full decoupling and
    the shards run to the horizon in a single synchronization round.
    Stats include the sharding fingerprint (shard count, rounds,
    boundary records, arrival-log SHA-1); the full canonical arrival
    log rides the result as an extra key for the determinism tests,
    outside the BENCH record.  ``city_scale_1p`` is the identical
    scenario single-process: the differential reference and the
    speedup denominator for PERFORMANCE.md's scaling table.
    """
    cells = scenarios.build_city_cells(bss_count=bss_count,
                                       stations_per_bss=stations_per_bss)
    horizon = 0.1 + 0.4 * scale
    result = run_sharded(cells, seed=seed, horizon=horizon,
                         workers=workers,
                         propagation_factory=scenarios.city_propagation,
                         check_invariants=check_invariants,
                         telemetry=telemetry)
    per_cell = result["cells"]
    out = {
        "work": result["events"],
        "work_unit": "events",
        "sim_seconds": horizon,
        "stats": {
            "rx_bytes": sum(c["rx_bytes"] for c in per_cell.values()),
            "rx_frames": sum(c["rx_frames"] for c in per_cell.values()),
            "per_bss_frames": [per_cell[name]["rx_frames"]
                               for name in sorted(per_cell)],
            "events": result["events"],
            "shards": result["shards"],
            "rounds": result["rounds"],
            "boundary_records": result["boundary_records"],
            "arrival_log_sha1": result["arrival_log_sha1"],
        },
        "arrival_log": result["arrival_log"],
    }
    if telemetry:
        out["telemetry_jsonl"] = result["telemetry_jsonl"]
        out["telemetry_wall_jsonl"] = result["telemetry_wall_jsonl"]
        out["telemetry_summary"] = {
            "merged": True, "shards": result["shards"],
            "lines": result["telemetry_jsonl"].count("\n"),
        }
    return out


def city_scale_1p(scale: float = 1.0, *, seed: int = 41,
                  bss_count: int = 24, stations_per_bss: int = 8,
                  check_invariants: bool = False,
                  telemetry: bool = False) -> Dict[str, Any]:
    """The `city_scale` scenario on one kernel (differential reference)."""
    cells = scenarios.build_city_cells(bss_count=bss_count,
                                       stations_per_bss=stations_per_bss)
    horizon = 0.1 + 0.4 * scale
    result = run_single(cells, seed=seed, horizon=horizon,
                        propagation_factory=scenarios.city_propagation,
                        check_invariants=check_invariants,
                        telemetry=telemetry)
    per_cell = result["cells"]
    out = {
        "work": result["events"],
        "work_unit": "events",
        "sim_seconds": horizon,
        "stats": {
            "rx_bytes": sum(c["rx_bytes"] for c in per_cell.values()),
            "rx_frames": sum(c["rx_frames"] for c in per_cell.values()),
            "per_bss_frames": [per_cell[name]["rx_frames"]
                               for name in sorted(per_cell)],
            "events": result["events"],
        },
    }
    if telemetry:
        out["telemetry_jsonl"] = result["telemetry_jsonl"]
        out["telemetry_wall_jsonl"] = result["telemetry_wall_jsonl"]
        out["telemetry_summary"] = {
            "merged": False,
            "lines": result["telemetry_jsonl"].count("\n"),
        }
    return out


MACROS: Dict[str, Callable[..., Dict[str, Any]]] = {
    "dcf_saturation": dcf_saturation,
    "dcf_saturation_fast": dcf_saturation_fast,
    "dcf_saturation_100": dcf_saturation_100,
    "dcf_saturation_100_fast": dcf_saturation_100_fast,
    "multi_bss": multi_bss,
    "hidden_terminal": hidden_terminal,
    "interference_field": interference_field,
    "interference_field_fast": interference_field_fast,
    "mesh_backhaul": mesh_backhaul,
    "roaming_ess": roaming_ess,
    "fault_storm": fault_storm,
    "wep_audit": wep_audit,
    "city_scale": city_scale,
    "city_scale_1p": city_scale_1p,
}
