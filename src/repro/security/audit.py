"""The security audit harness: attack effort per suite (experiment E9).

The source text ranks Wi-Fi security methods "from best to worst":

    1. WPA2 + AES   2. WPA + AES   3. WPA + TKIP/AES
    4. WPA + TKIP   5. WEP         6. Open network

This module turns that ranking into *measured or modelled numbers*:

* **Open** — zero effort by definition.
* **WEP** — measured live: the FMS attack from :mod:`.wep` runs against
  a real WEP cipher and reports how many frames a sniffer needed.
* **WPA/TKIP** — modelled: keys are not recoverable, but Michael's
  ~2^29 strength enables chopchop-style per-packet decryption, rate
  limited to one MIC probe per countermeasure blackout; we compute the
  expected wall-clock to decrypt one short packet.  Suites keeping
  TKIP only as a fallback inherit this exposure when the fallback is
  negotiable.
* **WPA2 (and WPA+AES)** — modelled: best known generic attack on the
  CCMP key is brute force, 2^127 expected AES operations.
* **WPS** (orthogonal misfeature) — measured live: the split-PIN
  search against :class:`~.handshake.WpsRegistrar`.

Effort is normalized to seconds under explicit assumptions so the
benchmark can print one comparable column.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from .handshake import WpsRegistrar, make_wps_pin, wps_pin_attack
from .michael import MichaelCountermeasures
from .suites import SecuritySuite
from .wep import WepCipher, crack_wep

#: Assumed sniffable traffic rate for converting frames -> wall clock.
#: WEP cracking in practice uses active ARP-replay stimulation (this is
#: how the 2005 FBI demonstration cracked keys "in minutes"), which
#: yields tens of thousands of data frames per second, not the passive
#: rate of an idle network.
DEFAULT_FRAMES_PER_SECOND = 15_000.0
#: Assumed offline AES evaluation rate for the brute-force bound.
DEFAULT_AES_PER_SECOND = 1e12
#: Assumed time per online WPS attempt (M4/M6 exchange + AP delay).
DEFAULT_WPS_ATTEMPT_SECONDS = 1.3


@dataclass(frozen=True)
class AttackReport:
    """Outcome of attacking one suite."""

    suite: SecuritySuite
    method: str
    #: What the attack yields: "key", "single packet", "network access"...
    prize: str
    #: Effort in the attack's natural unit.
    effort_amount: float
    effort_unit: str
    #: Effort converted to seconds under the stated assumptions.
    seconds: float
    measured: bool  # measured live vs. analytic model

    @property
    def breakable_in_practice(self) -> bool:
        """'Breakable' = under a month of sustained effort."""
        return self.seconds < 30 * 24 * 3600


def audit_open() -> AttackReport:
    return AttackReport(
        suite=SecuritySuite.OPEN, method="none needed",
        prize="all traffic readable", effort_amount=0.0,
        effort_unit="frames", seconds=0.0, measured=True)


def audit_wep(key: bytes = b"\x13\x37\xbe\xef\x42",
              frames_per_second: float = DEFAULT_FRAMES_PER_SECOND,
              max_frames: int = 1 << 26) -> AttackReport:
    """Run the FMS key-recovery attack live and report the cost."""
    recovered, frames = crack_wep(WepCipher(key), max_frames=max_frames)
    if recovered != key:
        # Should not happen within the default budget for 40-bit keys;
        # report the budget as a lower bound if it does.
        frames = max_frames
    return AttackReport(
        suite=SecuritySuite.WEP, method="FMS weak-IV key recovery",
        prize="full key (then all traffic)", effort_amount=float(frames),
        effort_unit="frames sniffed", seconds=frames / frames_per_second,
        measured=recovered == key)


def audit_tkip(packet_bytes: int = 40,
               countermeasures: Optional[MichaelCountermeasures] = None
               ) -> AttackReport:
    """Model chopchop-style single-packet decryption against TKIP.

    Each unknown plaintext byte is guessed via MIC-failure oracles; a
    wrong guess costs a countermeasure blackout.  Expected guesses per
    byte = 128; the last 12 bytes (MIC+ICV) come free once the body is
    known.  This reproduces the well-known "12-15 minutes per short
    packet" order of magnitude.
    """
    cm = countermeasures if countermeasures is not None \
        else MichaelCountermeasures()
    unknown_bytes = min(packet_bytes, 12)  # attacker guesses tail bytes
    expected_guesses = unknown_bytes * 128
    # One guess per blackout window (the countermeasure rate limit).
    seconds = expected_guesses * cm.blackout / 60.0
    return AttackReport(
        suite=SecuritySuite.WPA_TKIP,
        method="chopchop via Michael MIC oracle (rate-limited)",
        prize="one short packet decrypted + MIC key",
        effort_amount=float(expected_guesses), effort_unit="MIC probes",
        seconds=seconds, measured=False)


def audit_ccmp(suite: SecuritySuite = SecuritySuite.WPA2_AES,
               aes_per_second: float = DEFAULT_AES_PER_SECOND
               ) -> AttackReport:
    """Brute-force bound for AES-CCMP key recovery."""
    expected_ops = 2.0 ** 127
    return AttackReport(
        suite=suite, method="exhaustive AES-128 key search (best generic)",
        prize="full key", effort_amount=expected_ops,
        effort_unit="AES operations", seconds=expected_ops / aes_per_second,
        measured=False)


def audit_wps(pin_seed: int = 1_234_567,
              attempt_seconds: float = DEFAULT_WPS_ATTEMPT_SECONDS
              ) -> AttackReport:
    """Run the split-PIN search live against a WPS registrar."""
    registrar = WpsRegistrar(make_wps_pin(pin_seed))
    _pin, attempts = wps_pin_attack(registrar)
    return AttackReport(
        suite=SecuritySuite.WPA2_AES,  # WPS undermines even WPA2 networks
        method="WPS split-PIN online search",
        prize="network credentials despite WPA2",
        effort_amount=float(attempts), effort_unit="online attempts",
        seconds=attempts * attempt_seconds, measured=True)


def ranking_reports(wep_key: bytes = b"\x13\x37\xbe\xef\x42",
                    fast: bool = False) -> List[AttackReport]:
    """One report per suite, in the text's best-to-worst order.

    ``fast`` skips the live WEP crack (useful inside unit tests) and
    substitutes the known ~4.2M-frame figure as a modelled value.
    """
    if fast:
        wep = AttackReport(
            suite=SecuritySuite.WEP, method="FMS weak-IV key recovery",
            prize="full key (then all traffic)", effort_amount=4.2e6,
            effort_unit="frames sniffed",
            seconds=4.2e6 / DEFAULT_FRAMES_PER_SECOND, measured=False)
    else:
        wep = audit_wep(wep_key)
    tkip = audit_tkip()
    return [
        audit_ccmp(SecuritySuite.WPA2_AES),
        audit_ccmp(SecuritySuite.WPA_AES),
        AttackReport(suite=SecuritySuite.WPA_TKIP_AES, method=tkip.method,
                     prize=tkip.prize + " (TKIP fallback negotiable)",
                     effort_amount=tkip.effort_amount,
                     effort_unit=tkip.effort_unit, seconds=tkip.seconds,
                     measured=tkip.measured),
        tkip,
        wep,
        audit_open(),
    ]


def verify_text_ranking(reports: List[AttackReport]) -> bool:
    """Check the measured/modelled efforts respect the §5.2 ordering.

    Suites listed earlier (better) must cost the attacker at least as
    much as every suite listed after them.
    """
    seconds = [report.seconds for report in reports]
    return all(earlier >= later for earlier, later
               in zip(seconds, seconds[1:]))
