"""Tests for MAC addresses."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import FrameError
from repro.mac.addresses import (
    BROADCAST,
    MacAddress,
    allocate_address,
    reset_allocator,
)


class TestParsing:
    def test_string_round_trip(self):
        address = MacAddress.from_string("aa:bb:cc:dd:ee:ff")
        assert str(address) == "aa:bb:cc:dd:ee:ff"

    def test_dash_separator_accepted(self):
        assert MacAddress.from_string("aa-bb-cc-dd-ee-ff").value == \
            0xAABBCCDDEEFF

    def test_bytes_round_trip(self):
        raw = bytes.fromhex("0123456789ab")
        assert MacAddress.from_bytes(raw).to_bytes() == raw

    @pytest.mark.parametrize("bad", [
        "aa:bb:cc:dd:ee", "aa:bb:cc:dd:ee:ff:00", "zz:bb:cc:dd:ee:ff",
        "", "aabbccddeeff",
    ])
    def test_malformed_strings_rejected(self, bad):
        with pytest.raises(FrameError):
            MacAddress.from_string(bad)

    def test_wrong_byte_count_rejected(self):
        with pytest.raises(FrameError):
            MacAddress.from_bytes(b"\x00" * 5)

    def test_out_of_range_value_rejected(self):
        with pytest.raises(FrameError):
            MacAddress(1 << 48)

    @given(st.integers(min_value=0, max_value=(1 << 48) - 1))
    def test_value_round_trip(self, value):
        address = MacAddress(value)
        assert MacAddress.from_bytes(address.to_bytes()) == address
        assert MacAddress.from_string(str(address)) == address


class TestPredicates:
    def test_broadcast(self):
        assert BROADCAST.is_broadcast
        assert BROADCAST.is_multicast  # broadcast is a multicast address

    def test_multicast_group_bit(self):
        assert MacAddress.from_string("01:00:5e:00:00:01").is_multicast
        assert not MacAddress.from_string("00:00:5e:00:00:01").is_multicast

    def test_locally_administered(self):
        assert MacAddress.from_string("02:00:00:00:00:01")\
            .is_locally_administered
        assert not MacAddress.from_string("00:11:22:33:44:55")\
            .is_locally_administered


class TestAllocator:
    def test_unique_addresses(self):
        reset_allocator()
        addresses = {allocate_address() for _ in range(100)}
        assert len(addresses) == 100

    def test_allocated_are_locally_administered_unicast(self):
        reset_allocator()
        address = allocate_address()
        assert address.is_locally_administered
        assert not address.is_multicast

    def test_reset_restarts(self):
        reset_allocator()
        first = allocate_address()
        reset_allocator()
        assert allocate_address() == first
