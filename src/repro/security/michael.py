"""The Michael message integrity code (WPA/TKIP).

Michael is the lightweight keyed MIC the Wi-Fi Alliance shipped with
WPA because it had to run on existing WEP hardware (source text §5.2:
"message integrity checks ... TKIP").  This is the real algorithm —
two 32-bit words, the b() block function of rotates, XSWAPs and adds —
not a stand-in, because its known weakness (roughly 2^29 security,
hence the countermeasures) is part of experiment E9.

Countermeasure rule (from 802.11i): on two MIC failures within 60
seconds, the receiver must disable TKIP reception for 60 seconds;
:class:`MichaelCountermeasures` tracks that state.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.errors import SecurityError

MIC_LEN = 8
_M32 = 0xFFFFFFFF


def _rol32(value: int, bits: int) -> int:
    return ((value << bits) | (value >> (32 - bits))) & _M32


def _ror32(value: int, bits: int) -> int:
    return ((value >> bits) | (value << (32 - bits))) & _M32


def _xswap(value: int) -> int:
    """Swap the bytes within each 16-bit half."""
    return (((value & 0x00FF00FF) << 8) | ((value & 0xFF00FF00) >> 8)) & _M32


def _block(left: int, right: int) -> tuple:
    right ^= _rol32(left, 17)
    left = (left + right) & _M32
    right ^= _xswap(left)
    left = (left + right) & _M32
    right ^= _rol32(left, 3)
    left = (left + right) & _M32
    right ^= _ror32(left, 2)
    left = (left + right) & _M32
    return left, right


def michael(key: bytes, data: bytes) -> bytes:
    """Compute the 8-byte Michael MIC of ``data`` under an 8-byte key."""
    if len(key) != 8:
        raise SecurityError(f"Michael key must be 8 bytes, got {len(key)}")
    left = int.from_bytes(key[0:4], "little")
    right = int.from_bytes(key[4:8], "little")
    # Pad: 0x5a then zeros to a multiple of 4 (always at least 4 bytes).
    padded = data + b"\x5a" + bytes((4 - (len(data) + 1) % 4) % 4 + 4)
    padded = padded[:len(padded) - (len(padded) % 4)]
    for offset in range(0, len(padded), 4):
        word = int.from_bytes(padded[offset:offset + 4], "little")
        left ^= word
        left, right = _block(left, right)
    return left.to_bytes(4, "little") + right.to_bytes(4, "little")


class MichaelCountermeasures:
    """802.11i TKIP countermeasure state machine.

    Two MIC failures within ``window`` seconds shut the link down for
    ``blackout`` seconds.  This is what rate-limits active attacks on
    Michael (and what the E9 effort model for WPA quantifies).
    """

    def __init__(self, window: float = 60.0, blackout: float = 60.0):
        self.window = window
        self.blackout = blackout
        self._failures: List[float] = []
        self._disabled_until: Optional[float] = None
        self.invocations = 0

    def mic_failure(self, now: float) -> bool:
        """Record a failure; returns True if countermeasures triggered."""
        self._failures = [t for t in self._failures
                          if now - t <= self.window]
        self._failures.append(now)
        if len(self._failures) >= 2:
            self._disabled_until = now + self.blackout
            self._failures.clear()
            self.invocations += 1
            return True
        return False

    def usable(self, now: float) -> bool:
        return self._disabled_until is None or now >= self._disabled_until
