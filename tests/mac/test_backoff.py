"""Tests for binary-exponential backoff."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import ConfigurationError
from repro.mac.backoff import BackoffWindow


def window(cw_min=15, cw_max=1023, seed=1):
    return BackoffWindow(cw_min, cw_max, random.Random(seed))


class TestWindowEvolution:
    def test_starts_at_cw_min(self):
        assert window().cw == 15

    def test_doubles_on_failure(self):
        w = window()
        expected = [31, 63, 127, 255, 511, 1023, 1023]
        observed = []
        for _ in expected:
            w.on_failure()
            observed.append(w.cw)
        assert observed == expected

    def test_capped_at_cw_max(self):
        w = window(cw_min=15, cw_max=63)
        for _ in range(10):
            w.on_failure()
        assert w.cw == 63

    def test_success_resets(self):
        w = window()
        w.on_failure()
        w.on_failure()
        w.on_success()
        assert w.cw == 15
        assert w.stage == 0

    def test_reset_after_drop(self):
        w = window()
        for _ in range(5):
            w.on_failure()
        w.reset()
        assert w.cw == 15

    def test_stage_counts_failures(self):
        w = window()
        w.on_failure()
        w.on_failure()
        assert w.stage == 2


class TestDraws:
    @given(st.integers(min_value=0, max_value=20))
    def test_draw_within_bounds(self, failures):
        w = window(seed=7)
        for _ in range(failures):
            w.on_failure()
        for _ in range(50):
            value = w.draw()
            assert 0 <= value <= w.cw

    def test_draws_cover_the_range(self):
        w = window(cw_min=7, seed=3)
        draws = {w.draw() for _ in range(500)}
        assert draws == set(range(8))

    def test_deterministic_given_seed(self):
        a = [window(seed=9).draw() for _ in range(5)]
        b = [window(seed=9).draw() for _ in range(5)]
        assert a == b


class TestClampAtMaximum:
    """The window must saturate at ``cw_max`` no matter how long a
    failure streak runs, keep drawing within the clamped bound, and
    fully recover on the next success."""

    @given(st.integers(min_value=7, max_value=200))
    def test_clamps_at_cw_max_under_repeated_failures(self, failures):
        w = window(cw_min=15, cw_max=255)
        for _ in range(failures):
            w.on_failure()
        assert w.cw == 255
        assert w.stage == failures  # the stage keeps counting past clamp

    def test_draws_respect_the_clamp(self):
        w = window(cw_min=15, cw_max=63, seed=11)
        for _ in range(20):
            w.on_failure()
        draws = [w.draw() for _ in range(300)]
        assert max(draws) <= 63
        # The full clamped range stays reachable (not stuck at cw_min).
        assert max(draws) > 15

    def test_success_resets_from_the_clamp(self):
        w = window(cw_min=15, cw_max=63)
        for _ in range(20):
            w.on_failure()
        assert w.cw == 63
        w.on_success()
        assert w.cw == 15
        assert w.stage == 0
        # The doubling ladder restarts from scratch after the reset.
        w.on_failure()
        assert w.cw == 31

    def test_drop_reset_also_clears_the_clamp(self):
        w = window(cw_min=15, cw_max=63)
        for _ in range(20):
            w.on_failure()
        w.reset()
        assert w.cw == 15
        assert w.stage == 0

    def test_degenerate_equal_bounds_stay_fixed(self):
        w = window(cw_min=31, cw_max=31)
        for _ in range(5):
            w.on_failure()
        assert w.cw == 31
        for _ in range(50):
            assert 0 <= w.draw() <= 31


class TestValidation:
    def test_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            BackoffWindow(0, 1023, random.Random(1))
        with pytest.raises(ConfigurationError):
            BackoffWindow(31, 15, random.Random(1))
