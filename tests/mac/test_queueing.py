"""Tests for the MAC interface queue."""

import pytest

from repro.core.errors import ConfigurationError
from repro.mac.addresses import MacAddress
from repro.mac.queueing import DropTailQueue, Msdu

DEST = MacAddress.from_string("02:00:00:00:00:02")


def msdu(payload=b"x"):
    return Msdu(destination=DEST, payload=payload)


class TestDropTailQueue:
    def test_fifo_order(self, sim):
        queue = DropTailQueue(sim, capacity=10)
        for index in range(3):
            queue.offer(msdu(bytes([index])))
        polled = [queue.poll().payload for _ in range(3)]
        assert polled == [b"\x00", b"\x01", b"\x02"]

    def test_poll_empty_returns_none(self, sim):
        assert DropTailQueue(sim).poll() is None

    def test_front_offer_jumps_the_backlog(self, sim):
        queue = DropTailQueue(sim, capacity=10)
        queue.offer(msdu(b"data1"))
        queue.offer(msdu(b"data2"))
        assert queue.offer(msdu(b"urgent"), front=True)
        polled = [queue.poll().payload for _ in range(3)]
        assert polled == [b"urgent", b"data1", b"data2"]

    def test_front_offer_still_respects_capacity(self, sim):
        queue = DropTailQueue(sim, capacity=1)
        assert queue.offer(msdu(b"only"))
        assert not queue.offer(msdu(b"urgent"), front=True)
        assert queue.dropped == 1

    def test_drop_tail_on_overflow(self, sim):
        queue = DropTailQueue(sim, capacity=2)
        assert queue.offer(msdu())
        assert queue.offer(msdu())
        assert not queue.offer(msdu())
        assert queue.dropped == 1
        assert queue.enqueued == 2

    def test_peek_does_not_remove(self, sim):
        queue = DropTailQueue(sim)
        queue.offer(msdu(b"head"))
        assert queue.peek().payload == b"head"
        assert len(queue) == 1

    def test_enqueue_timestamps(self, sim):
        queue = DropTailQueue(sim)
        sim.schedule(1.5, lambda: queue.offer(msdu()))
        sim.run()
        assert queue.poll().enqueued_at == 1.5

    def test_mean_occupancy_time_weighted(self, sim):
        queue = DropTailQueue(sim)
        sim.schedule(0.0, lambda: queue.offer(msdu()))
        sim.schedule(1.0, lambda: queue.offer(msdu()))
        sim.schedule(2.0, queue.poll)
        sim.schedule(2.0, queue.poll)
        sim.run()
        sim.schedule(2.0, lambda: None)
        sim.run(until=4.0)
        # occupancy: 1 for [0,1), 2 for [1,2), 0 for [2,4) -> mean 3/4.
        assert queue.mean_occupancy() == pytest.approx(0.75)

    def test_clear(self, sim):
        queue = DropTailQueue(sim)
        queue.offer(msdu())
        queue.clear()
        assert queue.empty

    def test_bad_capacity_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            DropTailQueue(sim, capacity=0)
