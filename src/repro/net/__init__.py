"""802.11 network architecture: devices, APs, stations, BSS/ESS, DS."""

from .ap import AccessPoint, AssociationRecord, DEFAULT_BEACON_INTERVAL_TU, TU_SECONDS
from .bss import (
    BasicServiceSet,
    ExtendedServiceSet,
    IndependentBss,
    generate_ibss_bssid,
)
from .device import WirelessDevice
from .ds import DistributionSystem
from .elements import (
    AssocRequestBody,
    AssocResponseBody,
    AuthBody,
    AUTH_OPEN_SYSTEM,
    AUTH_SHARED_KEY,
    BeaconBody,
    CAP_ESS,
    CAP_IBSS,
    CAP_PRIVACY,
    STATUS_REFUSED,
    STATUS_SUCCESS,
    decode_ies,
    encode_ie,
    find_ie,
)
from .roaming import BeaconObservation, BeaconTracker, RoamingPolicy
from .station import Station, StationState

__all__ = [
    "AUTH_OPEN_SYSTEM",
    "AUTH_SHARED_KEY",
    "AccessPoint",
    "AssocRequestBody",
    "AssocResponseBody",
    "AssociationRecord",
    "AuthBody",
    "BasicServiceSet",
    "BeaconBody",
    "BeaconObservation",
    "BeaconTracker",
    "CAP_ESS",
    "CAP_IBSS",
    "CAP_PRIVACY",
    "DEFAULT_BEACON_INTERVAL_TU",
    "DistributionSystem",
    "ExtendedServiceSet",
    "IndependentBss",
    "RoamingPolicy",
    "STATUS_REFUSED",
    "STATUS_SUCCESS",
    "Station",
    "StationState",
    "TU_SECONDS",
    "WirelessDevice",
    "decode_ies",
    "encode_ie",
    "find_ie",
    "generate_ibss_bssid",
]
