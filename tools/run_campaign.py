#!/usr/bin/env python3
"""Campaign executor CLI: run declarative simulation campaigns.

Usage::

    # Run one or more campaign specs (TOML or JSON):
    PYTHONPATH=src python tools/run_campaign.py specs/hidden_terminal.toml

    # Fan out across forked workers with a per-job wall-clock cap:
    PYTHONPATH=src python tools/run_campaign.py specs/*.toml \\
        --jobs 2 --timeout 120

    # Resume after an interruption: already-done jobs are reused from
    # the manifest, the result store comes out byte-identical to an
    # uninterrupted run.  --fresh discards the manifest instead.
    PYTHONPATH=src python tools/run_campaign.py specs/jamming_duty.toml

    # Inspect without running:
    PYTHONPATH=src python tools/run_campaign.py specs/*.toml --list
    PYTHONPATH=src python tools/run_campaign.py --schema

    # Simulation-as-a-service: tail a submission directory.  Spec
    # files dropped into QUEUE_DIR are picked up, executed, and moved
    # to QUEUE_DIR/done (or QUEUE_DIR/failed with an .error sidecar).
    PYTHONPATH=src python tools/run_campaign.py --queue /tmp/submit \\
        --out-dir results --poll 2
    # --drain processes what is queued now, then exits (used by CI).

Outputs, per campaign ``<name>`` under ``--out-dir``:

* ``<name>.manifest.json`` — crash-safe resumable job ledger,
* ``<name>.results.jsonl`` — canonical row-per-job result store,
* ``<name>.results.csv`` — flattened columnar view of the same rows.

Exit status: 0 when every executed job succeeded, 1 when any job
failed or timed out, 2 for spec/usage errors.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import List, Optional

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.campaign import (SCHEMA_DOC, SpecError, expand_grid,  # noqa: E402
                            load_spec, run_campaign)

#: Spec file suffixes the queue watcher picks up.
QUEUE_SUFFIXES = (".toml", ".json")


def _print_summary(result, out) -> None:
    counts = (f"{result.ran} ran, {result.reused} reused, "
              f"{len(result.failed)} failed, "
              f"{sum(1 for row in result.rows if row['status'] == 'pending')}"
              " pending")
    print(f"campaign {result.name}: {len(result.jobs)} jobs ({counts})",
          file=out)
    print(f"  manifest: {result.manifest_path}", file=out)
    print(f"  store:    {result.store_path}", file=out)
    print(f"  csv:      {result.csv_path}", file=out)
    for label in result.failed:
        print(f"  FAILED: {label}", file=out)


def _run_one(spec_path: pathlib.Path, args,
             out_dir: Optional[pathlib.Path] = None) -> bool:
    """Load and execute one spec file; return True when all jobs passed."""
    spec = load_spec(spec_path)
    result = run_campaign(
        spec, out_dir if out_dir is not None else args.out_dir,
        jobs=args.jobs, timeout=args.timeout, fresh=args.fresh,
        only=args.only, max_jobs=args.max_jobs,
        progress=None if args.quiet else
        (lambda message: print(f"  {message}", flush=True)))
    if not args.quiet:
        _print_summary(result, sys.stdout)
    return result.ok


def _list_specs(paths: List[pathlib.Path]) -> int:
    for spec_path in paths:
        spec = load_spec(spec_path)
        jobs = expand_grid(spec)
        print(f"{spec_path}: campaign {spec['campaign']['name']}, "
              f"{len(jobs)} jobs")
        for job in jobs:
            print(f"  [{job.index:3d}] {job.key[:12]}  {job.label}")
    return 0


def _queue_candidates(queue_dir: pathlib.Path) -> List[pathlib.Path]:
    """Spec files currently submitted, oldest first (mtime, then name)."""
    entries = [path for path in queue_dir.iterdir()
               if path.is_file() and path.suffix in QUEUE_SUFFIXES]
    return sorted(entries, key=lambda p: (p.stat().st_mtime, p.name))


def _serve_queue(args, parser) -> int:
    """Tail a submission directory; every spec file becomes a campaign.

    Processed files move to ``done/`` or ``failed/`` (with an
    ``.error`` sidecar holding the reason), so a submission is consumed
    exactly once and the outcome is inspectable without grepping logs.
    """
    queue_dir = pathlib.Path(args.queue)
    if not queue_dir.is_dir():
        parser.error(f"--queue directory does not exist: {queue_dir}")
    done_dir = queue_dir / "done"
    failed_dir = queue_dir / "failed"
    done_dir.mkdir(exist_ok=True)
    failed_dir.mkdir(exist_ok=True)
    exit_code = 0
    while True:
        batch = _queue_candidates(queue_dir)
        for spec_path in batch:
            print(f"queue: picked up {spec_path.name}", flush=True)
            try:
                ok = _run_one(spec_path, args)
                error = None if ok else "one or more jobs failed"
            except (SpecError, OSError, ValueError) as exc:
                ok, error = False, str(exc)
                print(f"queue: {spec_path.name}: {error}", file=sys.stderr)
            target_dir = done_dir if ok else failed_dir
            target = target_dir / spec_path.name
            spec_path.replace(target)
            if error is not None:
                exit_code = 1
                target.with_suffix(target.suffix + ".error") \
                    .write_text(error + "\n", encoding="utf-8")
            print(f"queue: {spec_path.name} -> "
                  f"{'done' if ok else 'failed'}", flush=True)
        if args.drain and not _queue_candidates(queue_dir):
            return exit_code
        if not batch:
            time.sleep(args.poll)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Run declarative simulation campaigns "
                    "(sweeps + seed ensembles) from spec files.")
    parser.add_argument("specs", nargs="*", type=pathlib.Path,
                        help="campaign spec files (.toml or .json)")
    parser.add_argument("--out-dir", type=pathlib.Path,
                        default=pathlib.Path("campaign_results"),
                        help="directory for manifests and result stores "
                             "(default: campaign_results)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="forked workers per campaign (default 1)")
    parser.add_argument("--timeout", type=float, default=0.0,
                        help="per-job wall-clock cap in seconds "
                             "(0 = unlimited, in-process)")
    parser.add_argument("--fresh", action="store_true",
                        help="discard any existing manifest instead of "
                             "resuming")
    parser.add_argument("--only", action="append", default=None,
                        metavar="PATTERN",
                        help="run only jobs whose label matches this "
                             "exact name or glob (repeatable); others "
                             "stay pending")
    parser.add_argument("--max-jobs", type=int, default=None,
                        help="cap pending jobs executed this invocation "
                             "(the rest stays pending for a resume)")
    parser.add_argument("--list", action="store_true",
                        help="expand the grid and list jobs, run nothing")
    parser.add_argument("--schema", action="store_true",
                        help="print the spec schema reference and exit")
    parser.add_argument("--queue", metavar="DIR", default=None,
                        help="serve mode: tail DIR for submitted spec "
                             "files instead of taking them positionally")
    parser.add_argument("--poll", type=float, default=2.0,
                        help="queue poll interval in seconds (default 2)")
    parser.add_argument("--drain", action="store_true",
                        help="with --queue: process current submissions, "
                             "then exit instead of tailing forever")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-job progress lines")
    args = parser.parse_args(argv)

    if args.schema:
        print(SCHEMA_DOC)
        return 0
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    if args.max_jobs is not None and args.max_jobs < 0:
        parser.error(f"--max-jobs must be >= 0, got {args.max_jobs}")
    if args.queue is not None:
        if args.specs:
            parser.error("--queue and positional spec files are "
                         "mutually exclusive")
        return _serve_queue(args, parser)
    if not args.specs:
        parser.error("no spec files given (or use --queue DIR / --schema)")

    try:
        if args.list:
            return _list_specs(args.specs)
        all_ok = True
        for spec_path in args.specs:
            if not args.quiet:
                print(f"== {spec_path} ==", flush=True)
            all_ok = _run_one(spec_path, args) and all_ok
        return 0 if all_ok else 1
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:  # bad --only pattern from select_names
        parser.error(str(exc))
        return 2  # unreachable; parser.error exits


if __name__ == "__main__":
    sys.exit(main())
