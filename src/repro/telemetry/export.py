"""Deterministic telemetry exporters.

Three renderings of one registry:

* :func:`to_jsonl` — the canonical stream.  Same recipe as
  :class:`~repro.parallel.executor.ArrivalLog` and
  :class:`~repro.faults.schedule.FaultRecord`: every float serialized
  through ``repr`` (shortest round-trip form), every object with sorted
  keys and compact separators.  Two seeded runs therefore produce
  byte-identical ``stream="sim"`` exports — the CI determinism gate
  compares exactly this text.  ``stream="wall"`` renders only
  wall-clock-flagged metrics and is *never* byte-compared.
* :func:`to_prometheus` — Prometheus text exposition for the future
  ``--serve`` mode (and for eyeballing a dump with standard tooling).
* :func:`summary_table` / :func:`render_table` — a columnar summary
  (one row per metric plus span rollups) and its aligned-ASCII form.

Record types in the JSONL, in emission order: one ``header``, every
``metric`` (final values, registry creation order), every ``sample``
row (series creation order, rows in time order), then ``span`` records
(ring-buffer order).  Each ordering is deterministic by construction,
so no sort over heterogeneous keys is ever needed.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from .metrics import MetricKey, MetricsRegistry, format_key
from .spans import SpanLog

__all__ = ["to_jsonl", "to_prometheus", "summary_table", "render_table",
           "parse_jsonl"]

TELEMETRY_FORMAT_VERSION = 1


def _canon(value: Any) -> Any:
    """Floats become repr strings (the byte-comparable convention)."""
    if isinstance(value, float):
        return repr(value)
    return value


def _dump(record: Dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _key_fields(key: MetricKey) -> Dict[str, Any]:
    subsystem, name, labels = key
    return {"subsystem": subsystem, "name": name,
            "labels": {k: v for k, v in labels}}


def to_jsonl(registry: MetricsRegistry, spans: Optional[SpanLog] = None,
             stream: str = "sim") -> str:
    """Serialize one stream of the registry (plus spans) to JSONL."""
    wall = stream == "wall"
    lines = [_dump({"type": "header", "stream": stream,
                    "version": TELEMETRY_FORMAT_VERSION})]
    for metric in registry.metrics(wall=wall):
        record = {"type": "metric", "kind": metric.kind,
                  **_key_fields(metric.key)}
        if metric.kind == "histogram":
            record["bounds"] = [repr(bound) for bound in metric.bounds]
            record["counts"] = list(metric.counts)
            record["total"] = metric.total
            record["sum"] = repr(metric.sum)
        else:
            record["value"] = _canon(metric.value)
        lines.append(_dump(record))
    for key in registry.series_keys(wall=wall):
        fields = _key_fields(key)
        for time, value in registry.series(key):
            lines.append(_dump({"type": "sample", **fields,
                                "t": repr(time), "v": _canon(value)}))
    if spans is not None and not wall:
        for span in spans:
            lines.append(_dump({
                "type": "span", "span": span.span_type,
                "subject": span.subject, "start": repr(span.start),
                "end": None if span.end is None else repr(span.end),
                "outcome": span.outcome,
                "attrs": {k: _canon(v) for k, v in span.attrs.items()}}))
    return "\n".join(lines) + "\n"


def parse_jsonl(text: str) -> List[Dict[str, Any]]:
    """Parse an exported stream back into records (floats stay repr
    strings — byte-faithful round-trips matter more than types here;
    consumers like teleview convert on use)."""
    return [json.loads(line) for line in text.splitlines() if line]


# --- Prometheus text exposition ------------------------------------------


def _prom_name(key: MetricKey) -> str:
    subsystem, name, _labels = key
    raw = f"repro_{subsystem}_{name}"
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in raw)


def _prom_labels(key: MetricKey) -> str:
    labels = key[2]
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


def to_prometheus(registry: MetricsRegistry,
                  include_wall: bool = False) -> str:
    """Prometheus-style text exposition of the final metric values."""
    lines: List[str] = []
    typed: set = set()
    for metric in registry.metrics():
        if metric.wall and not include_wall:
            continue
        name = _prom_name(metric.key)
        labels = _prom_labels(metric.key)
        if metric.kind == "histogram":
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} histogram")
            cumulative = 0
            bases = [f'{k}="{v}"' for k, v in metric.key[2]]
            for bound, count in zip(metric.bounds, metric.counts):
                cumulative += count
                parts = bases + [f'le="{bound!r}"']
                lines.append(f"{name}_bucket{{{','.join(parts)}}} "
                             f"{cumulative}")
            parts = bases + ['le="+Inf"']
            lines.append(f"{name}_bucket{{{','.join(parts)}}} "
                         f"{metric.total}")
            lines.append(f"{name}_sum{labels} {metric.sum!r}")
            lines.append(f"{name}_count{labels} {metric.total}")
        else:
            if name not in typed:
                typed.add(name)
                lines.append(f"# TYPE {name} {metric.kind}")
            value = metric.value
            rendered = repr(value) if isinstance(value, float) else value
            lines.append(f"{name}{labels} {rendered}")
    return "\n".join(lines) + "\n"


# --- columnar summary ------------------------------------------------------


def summary_table(registry: MetricsRegistry,
                  spans: Optional[SpanLog] = None) -> Dict[str, Any]:
    """Columnar rollup: one row per metric, plus per-type span totals."""
    columns = ["metric", "kind", "stream", "value"]
    rows: List[List[Any]] = []
    for metric in registry.metrics():
        stream = "wall" if metric.wall else "sim"
        if metric.kind == "histogram":
            value = (f"n={metric.total} mean={metric.mean:.6g}"
                     if metric.total else "n=0")
        else:
            value = metric.value
        rows.append([format_key(metric.key), metric.kind, stream, value])
    span_rows: List[List[Any]] = []
    if spans is not None:
        rollup: Dict[tuple, List[float]] = {}
        order: List[tuple] = []
        for span in spans:
            bucket = (span.span_type, span.outcome)
            stats = rollup.get(bucket)
            if stats is None:
                stats = rollup[bucket] = [0, 0.0]
                order.append(bucket)
            stats[0] += 1
            if span.end is not None:
                stats[1] += span.end - span.start
        for span_type, outcome in order:
            count, total = rollup[(span_type, outcome)]
            span_rows.append([span_type, outcome, count, total])
    return {"columns": columns, "rows": rows,
            "span_columns": ["span", "outcome", "count", "total_duration"],
            "span_rows": span_rows}


def render_table(columns: List[str], rows: List[List[Any]]) -> str:
    """Aligned-ASCII rendering of a columnar table."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(col) for col in columns]
    for row in rendered:
        for index, cell in enumerate(row):
            if len(cell) > widths[index]:
                widths[index] = len(cell)
    def _line(cells: List[str]) -> str:
        return "  ".join(cell.ljust(widths[index])
                         for index, cell in enumerate(cells)).rstrip()
    out = [_line(columns), _line(["-" * width for width in widths])]
    out.extend(_line(row) for row in rendered)
    return "\n".join(out)
