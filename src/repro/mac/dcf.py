"""The IEEE 802.11 Distributed Coordination Function.

:class:`DcfMac` is a complete CSMA/CA MAC on top of a
:class:`~repro.phy.transceiver.Radio`:

* physical + virtual carrier sense (CCA + NAV),
* DIFS/EIFS waits and binary-exponential backoff that freezes while
  the medium is busy — counted down as a *single batched event* at
  ``remaining_slots x slot_time`` (re-anchored on every CCA edge) with
  slot-boundary float arithmetic and tie-break ordering identical to a
  slot-by-slot countdown, so idle backoff costs O(1) events instead of
  O(slots),
* ACK-protected unicast with short/long retry limits and contention
  window doubling,
* optional RTS/CTS reservation above the RTS threshold,
* MSDU fragmentation into SIFS-separated, individually-ACKed bursts,
* per-destination sequence numbering, receiver-side duplicate
  rejection and fragment reassembly,
* per-destination rate adaptation (ARF/AARF/fixed/ideal) for data
  frames, control responses at the basic rate,
* management-frame transmission (beacons broadcast un-ACKed; unicast
  management ACKed like data) for the association layer above.

The implementation is callback-driven on the simulation kernel; all
timing uses the PHY standard's slot/SIFS/DIFS constants, so the MAC's
behaviour under contention matches the analytic (Bianchi) saturation
model — which is exactly what benchmark E10 checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace as _dc_replace
from heapq import heappush as _heappush
from typing import Any, Callable, Dict, List, Optional

from ..core.engine import Simulator, Timer
from ..core.errors import ConfigurationError
from ..core.stats import Counter
from ..phy.standards import PhyMode
from ..phy.transceiver import Radio, RadioState
from .addresses import BROADCAST, MacAddress

#: Broadcast address as a raw integer for the per-frame receive path.
_BROADCAST_VALUE = BROADCAST.value
from .backoff import BackoffWindow
from .dedup import DuplicateCache
from .fragmentation import Fragment, Reassembler, fragment_payload
from .frames import (
    ACK_SIZE_BYTES,
    CTS_SIZE_BYTES,
    ControlSubtype,
    DataSubtype,
    Dot11Frame,
    FrameType,
    ManagementSubtype,
    SEQUENCE_MODULO,
    make_ack,
    make_cts,
    make_data,
    make_management,
    make_null,
    make_ps_poll,
    make_rts,
)
from .nav import Nav
from .queueing import DropTailQueue, Msdu
from .rate_adapt import Arf, RateController, RateControllerFactory


@dataclass
class DcfConfig:
    """MAC-level knobs (defaults follow the standard's usual values)."""

    #: Frames whose on-air size exceeds this many bytes use RTS/CTS.
    rts_threshold_bytes: int = 2347  # default: RTS off
    #: MSDU payloads longer than this are fragmented.
    fragmentation_threshold_bytes: int = 2346  # default: fragmentation off
    short_retry_limit: int = 7
    long_retry_limit: int = 4
    queue_capacity: int = 128
    #: Extra slack added to response timeouts (processing delay).
    timeout_margin: float = 10e-6

    def __post_init__(self) -> None:
        if self.rts_threshold_bytes < 0:
            raise ConfigurationError("rts_threshold_bytes must be >= 0")
        if self.fragmentation_threshold_bytes < 256:
            raise ConfigurationError(
                "fragmentation_threshold_bytes must be >= 256")
        if self.short_retry_limit < 1 or self.long_retry_limit < 1:
            raise ConfigurationError("retry limits must be >= 1")


class MacListener:
    """Upcall interface for the layer above the MAC.  No-op defaults."""

    def mac_receive(self, source: MacAddress, destination: MacAddress,
                    payload: bytes, meta: Dict[str, Any]) -> None:
        """A (reassembled, deduplicated) data MSDU arrived."""

    def mac_management(self, frame: Dot11Frame, snr_db: float) -> None:
        """A management frame addressed to us (or broadcast) arrived."""

    def mac_tx_complete(self, msdu: Msdu, success: bool) -> None:
        """A queued MSDU finished (delivered+ACKed, or dropped)."""

    def mac_ps_poll(self, station: MacAddress, aid: int) -> None:
        """A PS-Poll arrived (APs release one buffered frame)."""

    def mac_power_state(self, station: MacAddress,
                        power_save: bool) -> None:
        """A data/null frame announced the sender's PM bit state."""


class _TxContext:
    """State of the MSDU currently being transmitted."""

    __slots__ = ("msdu", "mgmt_subtype", "fragments", "frag_index",
                 "sequence", "use_rts", "attempts", "rts_attempts",
                 "cts_received", "is_broadcast", "controller")

    def __init__(self, msdu: Msdu, mgmt_subtype: Optional[ManagementSubtype],
                 fragments: List[Fragment], sequence: int, use_rts: bool,
                 controller: RateController):
        self.msdu = msdu
        self.mgmt_subtype = mgmt_subtype
        self.fragments = fragments
        self.frag_index = 0
        self.sequence = sequence
        self.use_rts = use_rts
        self.attempts = 0
        self.rts_attempts = 0
        self.cts_received = False
        self.is_broadcast = msdu.destination.is_broadcast or \
            msdu.destination.is_multicast
        self.controller = controller

    @property
    def current_fragment(self) -> Fragment:
        return self.fragments[self.frag_index]

    @property
    def has_more_fragments(self) -> bool:
        return self.frag_index < len(self.fragments) - 1


class DcfMac:
    """One station's DCF MAC entity.

    Contention timing rides on three reusable kernel
    :class:`~repro.core.engine.Timer` objects (DIFS/EIFS wait, batched
    backoff countdown, response timeout): they re-anchor on every CCA
    edge without allocating an event handle per arm.  The countdown is
    one event at the last slot boundary; freezing replays the elapsed
    slot boundaries arithmetically (same floats the slot-by-slot
    version produced) instead of having lived through them as events.
    """

    __slots__ = ("sim", "radio", "address", "config", "_rate_factory",
                 "listener", "sniffer", "bssid", "power_management",
                 "queue", "backoff", "nav", "dedup", "reassembler",
                 "counters", "_controllers", "_sequence", "_current",
                 "_backoff_remaining", "_ifs", "_countdown",
                 "_countdown_anchor", "_countdown_remaining", "_response",
                 "_pending_send", "_tx_continuation", "_awaiting",
                 "_use_eifs", "_basic_mode", "_standard", "_slot_time",
                 "_address_value", "_frame_probe")

    def __init__(self, sim: Simulator, radio: Radio, address: MacAddress,
                 config: Optional[DcfConfig] = None,
                 rate_factory: Optional[RateControllerFactory] = None):
        self.sim = sim
        self.radio = radio
        self.address = address
        self.config = config if config is not None else DcfConfig()
        self._rate_factory = rate_factory if rate_factory is not None else Arf
        radio.listener = self
        self.listener: MacListener = MacListener()
        #: Promiscuous tap: called with every successfully decoded frame.
        self.sniffer: Optional[Callable[[Dot11Frame, float], None]] = None
        #: Frame-lifecycle telemetry hook (see repro.telemetry.spans):
        #: called with (event, msdu) at enqueue/tx/retry/delivered/
        #: dropped edges, and (event, frame) at rx.  One `is not None`
        #: test per edge when unset — the zero-overhead contract.
        self._frame_probe: Optional[Callable[[str, Any], None]] = None
        #: BSSID this MAC stamps into data/management frames (set by the
        #: association layer; defaults to our own address, i.e. IBSS-style).
        self.bssid: MacAddress = address
        #: When True, outgoing data frames carry the Power Management bit.
        self.power_management = False

        # CCA edges bypass the phy_cca_* wrappers entirely: busy freezes
        # the contention timers, idle (re-)arms the IFS wait.  The
        # wrapper methods remain for listener-API compatibility.
        radio.on_cca_busy = self._cancel_access_timers
        radio.on_cca_idle = self._maybe_start_ifs
        standard = radio.standard
        rng = sim.rng.stream(f"mac.{address}")
        self.queue = DropTailQueue(sim, self.config.queue_capacity)
        self.backoff = BackoffWindow(standard.cw_min, standard.cw_max, rng)
        self.nav = Nav(sim, on_expire=self._maybe_start_ifs)
        self.dedup = DuplicateCache()
        self.reassembler = Reassembler()
        self.counters = Counter()
        self._controllers: Dict[MacAddress, RateController] = {}
        self._sequence = 0
        self._current: Optional[_TxContext] = None
        self._backoff_remaining: Optional[int] = None
        self._ifs = Timer(sim, self._ifs_expired)
        self._countdown = Timer(sim, self._access_won)
        self._countdown_anchor = 0.0
        self._countdown_remaining = 0
        self._response = Timer(sim, self._response_timeout)
        self._pending_send = Timer(sim, self._sifs_send_data)
        self._tx_continuation: Optional[Callable[[], None]] = None
        self._awaiting: Optional[str] = None  # "cts" | "ack" | None
        self._use_eifs = False
        self._basic_mode = standard.mode_for_rate(standard.basic_rate_bps)
        # Hot-path bindings: the contention machinery runs on every CCA
        # edge and received frame, so avoid repeated attribute chains.
        self._standard = standard
        self._slot_time = standard.slot_time
        self._address_value = address.value

    # ------------------------------------------------------------------ API

    def send(self, destination: MacAddress, payload: bytes,
             protected: bool = False, context: Any = None,
             meta: Optional[Dict[str, Any]] = None,
             priority: bool = False) -> bool:
        """Queue a data MSDU for transmission.  Returns False on overflow.

        ``priority`` enqueues at the head of the interface queue (behind
        nothing but the MSDU already in flight) — used by the routing
        layer so control updates survive saturated relays.
        """
        msdu = Msdu(destination=destination, payload=payload,
                    protected=protected, context=context,
                    meta=dict(meta) if meta else {})
        return self._enqueue(msdu, front=priority)

    def send_management(self, subtype: ManagementSubtype,
                        destination: MacAddress, body: bytes,
                        context: Any = None) -> bool:
        """Queue a management frame (beacon, auth, assoc, ...)."""
        msdu = Msdu(destination=destination, payload=body, context=context,
                    meta={"mgmt": subtype})
        return self._enqueue(msdu)

    def send_null(self, destination: MacAddress,
                  power_management: bool) -> bool:
        """Queue a null data frame announcing a PM state change."""
        msdu = Msdu(destination=destination, payload=b"",
                    meta={"null": True, "pm": power_management})
        return self._enqueue(msdu)

    def send_ps_poll(self, aid: int) -> bool:
        """Queue a PS-Poll toward our BSSID to retrieve a buffered frame."""
        msdu = Msdu(destination=self.bssid, payload=b"",
                    meta={"ps_poll": True, "aid": aid})
        return self._enqueue(msdu)

    def rate_controller_for(self, peer: MacAddress) -> RateController:
        """The (lazily created) rate controller for a destination."""
        controller = self._controllers.get(peer)
        if controller is None:
            controller = self._rate_factory(self.radio.standard)
            self._controllers[peer] = controller
        return controller

    @property
    def idle(self) -> bool:
        """No MSDU in flight and nothing queued."""
        return self._current is None and self.queue.empty

    def crash(self) -> None:
        """Fault injection: drop all MAC state as a power loss would.

        Cancels every contention/response timer, clears the NAV, and
        discards the in-flight MSDU and the interface queue *silently*
        — a crashed node notifies nobody, so no ``mac_tx_complete``
        upcalls fire for the discarded frames.  The radio is left
        untouched; callers power it off separately (see
        :mod:`repro.faults.injectors`).
        """
        self._ifs.cancel()
        self._countdown.cancel()
        self._response.cancel()
        self._pending_send.cancel()
        self.nav.clear()
        self._awaiting = None
        self._tx_continuation = None
        self._current = None
        self._backoff_remaining = None
        self._use_eifs = False
        self.backoff.reset()
        self.queue.clear()
        self.counters.incr("crashes")

    # --------------------------------------------------------------- queueing

    def _enqueue(self, msdu: Msdu, front: bool = False) -> bool:
        accepted = self.queue.offer(msdu, front=front)
        if not accepted:
            self.counters.incr("queue_drops")
            return False
        probe = self._frame_probe
        if probe is not None:
            probe("enqueue", msdu)
        if self._current is None:
            self._begin_contention(draw_backoff=False)
        return True

    def _begin_contention(self, draw_backoff: bool) -> None:
        """Pull the next MSDU (if any) and enter channel access."""
        if self._current is None:
            msdu = self.queue.poll()
            if msdu is None:
                return
            self._current = self._prepare_context(msdu)
        if draw_backoff or self._backoff_remaining is None:
            if draw_backoff:
                self._backoff_remaining = self.backoff.draw()
            else:
                # Fresh arrival: immediate access after DIFS if the medium
                # is idle right now, otherwise contend with a full draw.
                self._backoff_remaining = 0 if self._medium_idle() \
                    else self.backoff.draw()
        self._maybe_start_ifs()

    def _prepare_context(self, msdu: Msdu) -> _TxContext:
        mgmt = msdu.meta.get("mgmt")
        if mgmt is not None:
            fragments = [Fragment(0, False, msdu.payload)]
        else:
            fragments = fragment_payload(
                msdu.payload, self.config.fragmentation_threshold_bytes)
        sequence = self._sequence
        self._sequence = (self._sequence + 1) % SEQUENCE_MODULO
        controller = self.rate_controller_for(msdu.destination)
        first = self._frame_for(msdu, mgmt, fragments, 0, sequence,
                                retry=False)
        use_rts = (mgmt is None
                   and not msdu.destination.is_broadcast
                   and not msdu.destination.is_multicast
                   and first.wire_size_bytes() > self.config.rts_threshold_bytes)
        return _TxContext(msdu, mgmt, fragments, sequence, use_rts, controller)

    # ----------------------------------------------------------- carrier sense

    def _medium_idle(self) -> bool:
        # Equivalent to ``not radio.cca_busy() and not nav.busy`` with
        # the call layers flattened — this predicate runs on every CCA
        # edge and decoded frame in a saturated cell.
        # KEEP IN SYNC with Radio.cca_busy / Radio._update_cca and the
        # inlined copy in _maybe_start_ifs.
        # A sleeping radio senses nothing but also cannot transmit, so
        # for *contention* purposes it is never "idle" — the wake-up
        # CCA kick (Radio.wake) resumes channel access.
        radio = self.radio
        state = radio._state
        if state is not RadioState.IDLE:
            return False
        # Exact mode re-sums the arrival table (sum([]) == 0.0, so the
        # empty fast path is bit-identical); fast mode reads the
        # radio's incident-power accumulator — the same figure its CCA
        # edges used, so the two can never disagree across a threshold.
        arrivals = radio._arrivals
        if radio._exact:
            incident = sum(arrivals.values()) if arrivals else 0.0
        else:
            incident = radio._incident_watts
        if incident >= radio._cca_threshold_watts:
            return False
        return self.sim._now >= self.nav._until

    def _maybe_start_ifs(self) -> None:
        """Arm the DIFS/EIFS wait if we are contending and all is quiet.

        Runs on every CCA-idle edge, TX completion and decoded frame;
        the ``_medium_idle`` predicate is inlined (KEEP IN SYNC).
        """
        if self._ifs._armed or self._countdown._armed:
            return  # already contending (most common reject: checked first)
        if self._current is None or self._awaiting is not None:
            return
        if self._tx_continuation is not None or self._pending_send._armed:
            return  # mid-exchange (about to transmit / SIFS response)
        if self.sim._now < self.nav._until:
            return  # NAV reservation: rejects every overheard-frame call
        radio = self.radio
        if radio._state is not RadioState.IDLE:
            return  # TX/RX: busy; SLEEP: cannot contend until woken
        arrivals = radio._arrivals
        if radio._exact:
            incident = sum(arrivals.values()) if arrivals else 0.0
        else:
            incident = radio._incident_watts
        if incident >= radio._cca_threshold_watts:
            return
        standard = self._standard
        # Timer.schedule inlined (KEEP IN SYNC with engine.Timer): the
        # DIFS/EIFS constants are positive finite floats, so the bounds
        # check cannot fire; this arm runs on every idle edge at every
        # contending station.
        ifs = self._ifs
        sim = self.sim
        if ifs._armed:
            sim._cancelled_events += 1
        else:
            ifs._armed = True
        ifs._version += 1
        time = sim._now + (standard.eifs if self._use_eifs
                           else standard.difs)
        ifs._time = time
        sim._scheduled += 1
        _heappush(sim._heap, (time, sim._next_seq(), ifs, ifs._version))

    def _cancel_access_timers(self) -> None:
        # Timer.cancel inlined x2 (KEEP IN SYNC with engine.Timer);
        # runs on every CCA-busy edge at every station.
        ifs = self._ifs
        if ifs._armed:
            ifs._armed = False
            self.sim._cancelled_events += 1
        countdown = self._countdown
        if countdown._armed:
            countdown._armed = False
            self.sim._cancelled_events += 1
            # Freeze: replay the slot boundaries that elapsed since the
            # anchor with the exact float fold the slot-by-slot
            # countdown performed (anchor + slot + slot + ...), so the
            # residual count and every future slot-grid timestamp are
            # bit-identical to the per-slot implementation.  A boundary
            # landing exactly on `now` has already been counted down:
            # its tick event carried an earlier sequence number than
            # the CCA-busy arrival that triggered this freeze (for
            # sub-slot propagation delays, i.e. any 802.11 geometry).
            slot = self._slot_time
            boundary = self._countdown_anchor + slot
            remaining = self._countdown_remaining
            now = self.sim._now
            while boundary <= now and remaining > 0:
                remaining -= 1
                boundary += slot
            self._backoff_remaining = remaining

    def _ifs_expired(self) -> None:
        self._use_eifs = False
        remaining = self._backoff_remaining
        if remaining is None:
            remaining = self._backoff_remaining = self.backoff.draw()
        if remaining <= 0:
            self._access_won()
            return
        # Batched countdown: one event at the final slot boundary
        # instead of one per slot.  The expiry instant is computed with
        # the same left-fold float additions the per-slot chain used,
        # and the timer's sequence number is drawn here — at the
        # anchor — which preserves the per-slot winner ordering when
        # several stations (re-)anchor on the same CCA edge and expire
        # in the same slot.
        anchor = self.sim._now
        self._countdown_anchor = anchor
        self._countdown_remaining = remaining
        slot = self._slot_time
        expiry = anchor
        for _ in range(remaining):
            expiry += slot
        self._countdown.schedule_at(expiry)

    def _access_won(self) -> None:
        self._backoff_remaining = None
        ctx = self._current
        if ctx is None:
            return
        if ctx.use_rts and not ctx.cts_received and ctx.frag_index == 0:
            self._send_rts()
        else:
            self._send_data_fragment()

    # --------------------------------------------------------------- timings

    def _airtime(self, size_bytes: int, mode: PhyMode) -> float:
        return self.radio.standard.frame_airtime(size_bytes * 8, mode)

    def _ack_time(self) -> float:
        return self._airtime(ACK_SIZE_BYTES, self._basic_mode)

    def _cts_time(self) -> float:
        return self._airtime(CTS_SIZE_BYTES, self._basic_mode)

    @staticmethod
    def _us(seconds: float) -> int:
        return min(int(math.ceil(seconds * 1e6)), 0xFFFF)

    # --------------------------------------------------------------- transmit

    def _frame_for(self, msdu: Msdu, mgmt: Optional[ManagementSubtype],
                   fragments: List[Fragment], index: int, sequence: int,
                   retry: bool) -> Dot11Frame:
        fragment = fragments[index]
        if msdu.meta.get("ps_poll"):
            frame = make_ps_poll(self.address, self.bssid,
                                 aid=msdu.meta.get("aid", 0))
            return frame.with_retry() if retry else frame
        if msdu.meta.get("null"):
            frame = make_null(self.address, msdu.destination, self.bssid,
                              sequence,
                              power_management=bool(msdu.meta.get("pm")),
                              to_ds=msdu.destination == self.bssid)
            return frame.with_retry() if retry else frame
        if mgmt is not None:
            frame = make_management(mgmt, self.address, msdu.destination,
                                    self.bssid, fragment.payload,
                                    sequence=sequence)
        else:
            to_ds = bool(msdu.meta.get("to_ds"))
            from_ds = bool(msdu.meta.get("from_ds"))
            if to_ds:
                receiver, addr3 = self.bssid, msdu.destination
            elif from_ds:
                receiver = msdu.destination
                addr3 = msdu.meta.get("source", self.address)
            else:
                receiver, addr3 = msdu.destination, self.bssid
            frame = make_data(self.address, receiver, addr3,
                              fragment.payload, sequence,
                              fragment=fragment.index,
                              more_fragments=fragment.more_fragments,
                              to_ds=to_ds, from_ds=from_ds,
                              protected=msdu.protected)
        if self.power_management or msdu.meta.get("more_data"):
            frame = _dc_replace(frame, fc=_dc_replace(
                frame.fc,
                power_management=self.power_management,
                more_data=bool(msdu.meta.get("more_data"))))
        return frame.with_retry() if retry else frame

    def _data_duration(self, ctx: _TxContext, mode: PhyMode) -> int:
        """Duration field of a data fragment: protect the ACK, and the
        next fragment + its ACK when the burst continues."""
        if ctx.is_broadcast:
            return 0
        sifs = self.radio.standard.sifs
        total = sifs + self._ack_time()
        if ctx.has_more_fragments:
            next_frame = self._frame_for(ctx.msdu, ctx.mgmt_subtype,
                                         ctx.fragments, ctx.frag_index + 1,
                                         ctx.sequence, retry=False)
            total += 2 * sifs + \
                self._airtime(next_frame.wire_size_bytes(), mode) + \
                self._ack_time()
        return self._us(total)

    def _send_rts(self) -> None:
        ctx = self._current
        assert ctx is not None
        mode = ctx.controller.current_mode()
        data_frame = self._frame_for(ctx.msdu, ctx.mgmt_subtype,
                                     ctx.fragments, ctx.frag_index,
                                     ctx.sequence, retry=ctx.attempts > 0)
        sifs = self.radio.standard.sifs
        duration = 3 * sifs + self._cts_time() + \
            self._airtime(data_frame.wire_size_bytes(), mode) + \
            self._ack_time()
        rts = make_rts(self.address, ctx.msdu.destination, self._us(duration))
        self.counters.incr("tx_rts")
        self._transmit_frame(rts, self._basic_mode,
                             continuation=self._after_rts_tx)

    def _after_rts_tx(self) -> None:
        timeout = self.radio.standard.sifs + self._cts_time() + \
            self.radio.standard.slot_time + self.config.timeout_margin
        self._awaiting = "cts"
        self._response.schedule(timeout)

    def _send_data_fragment(self) -> None:
        ctx = self._current
        assert ctx is not None
        mode = ctx.controller.current_mode() if not ctx.is_broadcast \
            else self._basic_mode
        if ctx.mgmt_subtype is not None:
            mode = self._basic_mode
        frame = self._frame_for(ctx.msdu, ctx.mgmt_subtype, ctx.fragments,
                                ctx.frag_index, ctx.sequence,
                                retry=ctx.attempts > 0)
        if not ctx.msdu.meta.get("ps_poll"):
            # PS-Poll's duration field carries the AID, not a reservation.
            frame = self._with_duration(frame,
                                        self._data_duration(ctx, mode))
        ctx.attempts += 1
        self.counters.incr("tx_data")
        self.counters.incr("tx_data_bytes", frame.wire_size_bytes())
        probe = self._frame_probe
        if probe is not None:
            probe("tx", ctx.msdu)
        if ctx.is_broadcast:
            self._transmit_frame(frame, mode,
                                 continuation=self._after_broadcast_tx)
        else:
            self._transmit_frame(frame, mode,
                                 continuation=self._after_data_tx)

    @staticmethod
    def _with_duration(frame: Dot11Frame, duration_us: int) -> Dot11Frame:
        return _dc_replace(frame, duration_us=duration_us)

    def _after_data_tx(self) -> None:
        timeout = self.radio.standard.sifs + self._ack_time() + \
            self.radio.standard.slot_time + self.config.timeout_margin
        self._awaiting = "ack"
        self._response.schedule(timeout)

    def _after_broadcast_tx(self) -> None:
        self._complete_current(success=True)

    def _transmit_frame(self, frame: Dot11Frame, mode: PhyMode,
                        continuation: Callable[[], None]) -> None:
        self._cancel_access_timers()
        self._tx_continuation = continuation
        self.radio.transmit(frame, frame.wire_size_bits(), mode)

    # ------------------------------------------------------- PHY upcalls

    def phy_tx_end(self) -> None:
        continuation = self._tx_continuation
        self._tx_continuation = None
        if continuation is not None:
            continuation()
        # Responses (ACK/CTS we sent) have no continuation state change;
        # resume contention if we were in the middle of it.
        self._maybe_start_ifs()

    def phy_cca_busy(self) -> None:
        self._cancel_access_timers()

    def phy_cca_idle(self) -> None:
        self._maybe_start_ifs()

    def phy_rx_end(self, payload: Any, success: bool, snr_db: float,
                   mode: PhyMode) -> None:
        if not isinstance(payload, Dot11Frame):
            return  # foreign-MAC traffic sharing the band: energy only
        if not success:
            # Undecodable frame: defer with EIFS next time.
            self._use_eifs = True
            self.counters.incr("rx_corrupt")
            self._maybe_start_ifs()
            return
        frame = payload
        if self.sniffer is not None:
            self.sniffer(frame, snr_db)
        addr1 = frame.addr1
        addr1_value = addr1.value
        addressed_to_us = addr1_value == self._address_value
        # is_broadcast / is_multicast predicates inlined (per-frame path).
        broadcast = addr1_value == _BROADCAST_VALUE or \
            bool((addr1_value >> 40) & 0x01)
        transmitter = frame.addr2  # .transmitter property inlined
        if transmitter is not None:
            controller = self._controllers.get(transmitter)
            if controller is None:
                controller = self._rate_factory(self.radio.standard)
                self._controllers[transmitter] = controller
            controller.on_snr_measurement(snr_db)
        if not addressed_to_us and not broadcast:
            # Overheard frame: set the NAV from its duration field.
            # This branch runs at every third-party station for every
            # decoded frame, so it is fully inlined — cheapest test
            # first: update the NAV iff the duration is positive and
            # the frame is not a PS-Poll (whose duration field carries
            # an AID, not time).
            fc = frame.fc
            duration_us = frame.duration_us
            if duration_us > 0 and not (
                    fc.type == FrameType.CONTROL
                    and fc.subtype == ControlSubtype.PS_POLL):
                # nav.set_duration inlined: same now + (us * 1e-6) float.
                self.nav.set_until(self.sim._now + duration_us * 1e-6)
                self.counters.incr("nav_updates")
            # While the NAV reservation we (may have) just set is in the
            # future, _maybe_start_ifs is a guaranteed no-op (its NAV
            # check rejects, and no earlier check has side effects), so
            # the call is skipped outright.
            if self.sim._now >= self.nav._until:
                self._maybe_start_ifs()
            return
        if frame.is_control:
            self._receive_control(frame, snr_db)
        elif frame.is_data:
            self._receive_data(frame, snr_db, broadcast)
        else:
            self._receive_management(frame, snr_db, broadcast)
        self._maybe_start_ifs()

    # ------------------------------------------------------------- control rx

    def _receive_control(self, frame: Dot11Frame, snr_db: float) -> None:
        # ACK/CTS carry no transmitter address, but while we await one we
        # know who it is from: feed its SNR to the link's rate controller
        # (the "ACK RSSI" estimate real drivers use).
        if (frame.is_ack or frame.is_cts) and self._current is not None:
            self._current.controller.on_snr_measurement(snr_db)
        if frame.fc.subtype == ControlSubtype.PS_POLL:
            self.counters.incr("rx_ps_poll")
            if frame.transmitter is not None:
                self._schedule_response(make_ack(frame.transmitter))
                self.listener.mac_ps_poll(frame.transmitter,
                                          frame.duration_us)
        elif frame.is_rts:
            self.counters.incr("rx_rts")
            # Respond with CTS only if our NAV is clear (standard rule).
            if not self.nav.busy:
                duration = max(
                    frame.duration_us
                    - self._us(self.radio.standard.sifs + self._cts_time()),
                    0)
                cts = make_cts(frame.transmitter, duration)
                self._schedule_response(cts)
        elif frame.is_cts:
            if self._awaiting == "cts":
                self._cancel_response_timer()
                self._awaiting = None
                ctx = self._current
                assert ctx is not None
                ctx.cts_received = True
                ctx.rts_attempts = 0
                self.counters.incr("rx_cts")
                self._pending_send.schedule(self.radio.standard.sifs)
        elif frame.is_ack:
            if self._awaiting == "ack":
                self._cancel_response_timer()
                self._awaiting = None
                self.counters.incr("rx_ack")
                self._fragment_acked()

    def _sifs_send_data(self) -> None:
        self._send_data_fragment()

    def _schedule_response(self, frame: Dot11Frame) -> None:
        """Send a control response exactly one SIFS after reception.

        Fire-and-forget (responses are never cancelled), so the raw
        no-handle fast path applies.
        """
        self.sim.schedule_fast(self.radio.standard.sifs,
                               self._transmit_response, frame)

    def _transmit_response(self, frame: Dot11Frame) -> None:
        if self.radio.state.value in ("tx", "sleep"):
            return  # mid-transmission or dozed off: drop the response
        self._cancel_access_timers()
        self._tx_continuation = None
        self.radio.transmit(frame, frame.wire_size_bits(), self._basic_mode)

    # ---------------------------------------------------------------- data rx

    def _receive_data(self, frame: Dot11Frame, snr_db: float,
                      broadcast: bool) -> None:
        self.counters.incr("rx_data")
        probe = self._frame_probe
        if probe is not None:
            probe("rx", frame)
        if not broadcast:
            self._schedule_response(make_ack(frame.transmitter))
        if frame.transmitter is None:
            return
        # Every data frame announces its sender's power-management state.
        self.listener.mac_power_state(frame.transmitter,
                                      frame.fc.power_management)
        if self.dedup.is_duplicate(frame.transmitter, frame.seq.sequence,
                                   frame.seq.fragment, frame.fc.retry):
            self.counters.incr("rx_duplicates")
            return
        if frame.fc.subtype == DataSubtype.NULL:
            self.counters.incr("rx_null")
            return  # PM signalling only; nothing to deliver
        msdu = self.reassembler.add_fragment(
            self.sim.now, frame.transmitter, frame.seq.sequence,
            frame.seq.fragment, frame.fc.more_fragments, frame.body)
        if msdu is None:
            return  # waiting for more fragments
        if frame.fc.to_ds:
            source, destination = frame.addr2, frame.addr3
        elif frame.fc.from_ds:
            source, destination = frame.addr3, frame.addr1
        else:
            source, destination = frame.addr2, frame.addr1
        meta = {"snr_db": snr_db, "protected": frame.fc.protected,
                "to_ds": frame.fc.to_ds, "from_ds": frame.fc.from_ds,
                "transmitter": frame.transmitter, "rx_time": self.sim.now,
                "more_data": frame.fc.more_data}
        if source is None or destination is None:
            return
        self.listener.mac_receive(source, destination, msdu, meta)

    def _receive_management(self, frame: Dot11Frame, snr_db: float,
                            broadcast: bool) -> None:
        self.counters.incr("rx_mgmt")
        if not broadcast and frame.transmitter is not None:
            self._schedule_response(make_ack(frame.transmitter))
            if self.dedup.is_duplicate(frame.transmitter, frame.seq.sequence,
                                       frame.seq.fragment, frame.fc.retry):
                self.counters.incr("rx_duplicates")
                return
        self.listener.mac_management(frame, snr_db)

    # ----------------------------------------------------------- completion

    def _cancel_response_timer(self) -> None:
        self._response.cancel()

    def _fragment_acked(self) -> None:
        ctx = self._current
        assert ctx is not None
        ctx.controller.on_success()
        ctx.attempts = 0
        self.backoff.on_success()
        if ctx.has_more_fragments:
            ctx.frag_index += 1
            self.counters.incr("fragments_sent")
            self._pending_send.schedule(self.radio.standard.sifs)
        else:
            self._complete_current(success=True)

    def _response_timeout(self) -> None:
        awaited = self._awaiting
        self._awaiting = None
        ctx = self._current
        if ctx is None:
            return
        ctx.controller.on_failure()
        self.backoff.on_failure()
        if awaited == "cts":
            ctx.rts_attempts += 1
            self.counters.incr("cts_timeouts")
            if ctx.rts_attempts >= self.config.short_retry_limit:
                self._complete_current(success=False)
                return
        else:
            self.counters.incr("ack_timeouts")
            limit = (self.config.short_retry_limit if not ctx.use_rts
                     else self.config.long_retry_limit)
            if ctx.attempts >= limit:
                self._complete_current(success=False)
                return
            # A retransmitted fragment burst re-arms RTS protection.
            ctx.cts_received = False
        probe = self._frame_probe
        if probe is not None:
            probe("retry", ctx.msdu)
        self._backoff_remaining = self.backoff.draw()
        self._maybe_start_ifs()

    def _complete_current(self, success: bool) -> None:
        ctx = self._current
        self._current = None
        self._backoff_remaining = None
        self.backoff.on_success() if success else self.backoff.reset()
        if ctx is not None:
            self.counters.incr("msdu_delivered" if success else "msdu_dropped")
            probe = self._frame_probe
            if probe is not None:
                probe("delivered" if success else "dropped", ctx.msdu)
            self.listener.mac_tx_complete(ctx.msdu, success)
        # Post-transmission backoff before the next queued MSDU.
        self._begin_contention(draw_backoff=True)
