"""The fault_storm benchmark macro: byte-determinism and recovery.

CI runs ``-k SeededDeterminism`` as the dedicated determinism gate:
two same-seed runs must agree to the byte, fault trace included.
"""

import json
import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from perf.macro import MACROS, fault_storm  # noqa: E402


def _run(scale=0.25, **kwargs):
    result = fault_storm(scale=scale, **kwargs)
    canonical = json.dumps(result["stats"], sort_keys=True)
    return canonical, result["fault_trace"], result


class TestSeededDeterminism:
    def test_two_runs_are_byte_identical(self):
        stats_a, trace_a, _ = _run()
        stats_b, trace_b, _ = _run()
        assert stats_a == stats_b
        assert trace_a == trace_b

    def test_different_seed_differs(self):
        _, trace_a, _ = _run()
        _, trace_b, _ = _run(seed=38)
        assert trace_a != trace_b

    def test_trace_matches_committed_sha(self):
        _, trace, result = _run()
        import hashlib
        assert result["stats"]["trace_sha1"] == \
            hashlib.sha1(trace.encode()).hexdigest()


class TestRecovery:
    def test_post_fault_pdr_recovers(self):
        _, _, result = _run(scale=0.5)
        stats = result["stats"]
        # The acceptance bar: post-fault delivery within 90% of the
        # pre-fault steady state, on both halves (stat is the min).
        assert stats["pdr_recovery"] >= 0.9
        assert stats["bss_reassociations"] >= 6
        assert stats["mesh_strikes"] == stats["mesh_restores"]
        assert stats["faults_injected"] > 0

    def test_registered_as_macro(self):
        assert "fault_storm" in MACROS


class TestStrictInvariants:
    def test_fault_storm_clean_under_checker(self):
        fault_storm(scale=0.25, check_invariants=True)

    @pytest.mark.parametrize("name", ["dcf_saturation", "hidden_terminal",
                                      "mesh_backhaul"])
    def test_des_macros_clean_under_checker(self, name):
        # The full sweep runs in the perf gate; here a representative
        # subset (pure DCF, NAV-heavy, and routing) at a small scale.
        MACROS[name](scale=0.05, check_invariants=True)
