"""Uniform link-security suites over the generation-specific ciphers.

The net layer (and the benchmarks) want one interface: *protect this
MSDU payload / unprotect that received body*, regardless of whether the
link runs open, WEP, WPA/TKIP, or WPA2/CCMP.  :class:`LinkSecurity`
provides it, :func:`build_link_security` constructs the matched
transmit/receive pair for both ends of a link from a passphrase (WPA
generations derive keys through the real PSK → 4-way-handshake path).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

from ..core.errors import ConfigurationError
from .ccmp import CCMP_OVERHEAD, CcmpCipher
from .handshake import FourWayHandshake, derive_psk
from .tkip import TKIP_OVERHEAD, TkipCipher
from .wep import WEP_OVERHEAD, WepCipher


class SecuritySuite(Enum):
    """The security generations, in the source text's §5.2 ranking order."""

    WPA2_AES = "WPA2 + AES"
    WPA_AES = "WPA + AES"
    WPA_TKIP_AES = "WPA + TKIP/AES"
    WPA_TKIP = "WPA + TKIP"
    WEP = "WEP"
    OPEN = "Open network"


#: Per-frame byte overhead each suite adds to an MSDU.
SUITE_OVERHEAD = {
    SecuritySuite.OPEN: 0,
    SecuritySuite.WEP: WEP_OVERHEAD,
    SecuritySuite.WPA_TKIP: TKIP_OVERHEAD,
    SecuritySuite.WPA_TKIP_AES: TKIP_OVERHEAD,
    SecuritySuite.WPA_AES: CCMP_OVERHEAD,
    SecuritySuite.WPA2_AES: CCMP_OVERHEAD,
}


class LinkSecurity:
    """One direction of a protected link."""

    def __init__(self, suite: SecuritySuite, tx_cipher=None, rx_cipher=None):
        self.suite = suite
        self._tx = tx_cipher
        self._rx = rx_cipher

    @property
    def overhead_bytes(self) -> int:
        return SUITE_OVERHEAD[self.suite]

    def protect(self, plaintext: bytes) -> bytes:
        if self._tx is None:
            return plaintext
        return self._tx.encrypt(plaintext)

    def unprotect(self, body: bytes, now: float = 0.0) -> bytes:
        if self._rx is None:
            return body
        if isinstance(self._rx, TkipCipher):
            return self._rx.decrypt(body, now=now)
        return self._rx.decrypt(body)


def build_link_security(suite: SecuritySuite, passphrase: str = "",
                        ssid: str = "", wep_key: Optional[bytes] = None,
                        addr_a: bytes = b"\x02\x00\x00\x00\x00\x01",
                        addr_b: bytes = b"\x02\x00\x00\x00\x00\x02",
                        ) -> Tuple[LinkSecurity, LinkSecurity]:
    """Build the two endpoints (A-side, B-side) of a protected link.

    WPA generations run the real key derivation: PBKDF2 PSK from the
    passphrase/SSID, then a 4-way handshake to expand per-link keys.
    """
    if suite == SecuritySuite.OPEN:
        return LinkSecurity(suite), LinkSecurity(suite)
    if suite == SecuritySuite.WEP:
        if wep_key is None:
            raise ConfigurationError("WEP needs an explicit key")
        # One static key shared by everyone — the WEP design flaw itself.
        a_tx, b_tx = WepCipher(wep_key), WepCipher(wep_key)
        a_rx, b_rx = WepCipher(wep_key), WepCipher(wep_key)
        return (LinkSecurity(suite, a_tx, a_rx),
                LinkSecurity(suite, b_tx, b_rx))
    if not passphrase or not ssid:
        raise ConfigurationError(f"{suite.value} needs passphrase and ssid")
    pmk = derive_psk(passphrase, ssid)
    keys = FourWayHandshake(addr_a, addr_b, pmk, pmk).run().keys
    if suite in (SecuritySuite.WPA_TKIP, SecuritySuite.WPA_TKIP_AES):
        a_tx = TkipCipher(keys.tk, keys.mic_tx, addr_a)
        b_rx = TkipCipher(keys.tk, keys.mic_tx, addr_a)
        b_tx = TkipCipher(keys.tk, keys.mic_rx, addr_b)
        a_rx = TkipCipher(keys.tk, keys.mic_rx, addr_b)
        return (LinkSecurity(suite, a_tx, a_rx),
                LinkSecurity(suite, b_tx, b_rx))
    if suite in (SecuritySuite.WPA_AES, SecuritySuite.WPA2_AES):
        a_tx = CcmpCipher(keys.tk, addr_a)
        b_rx = CcmpCipher(keys.tk, addr_a)
        b_tx = CcmpCipher(keys.tk, addr_b)
        a_rx = CcmpCipher(keys.tk, addr_b)
        return (LinkSecurity(suite, a_tx, a_rx),
                LinkSecurity(suite, b_tx, b_rx))
    raise ConfigurationError(f"unhandled suite {suite}")
