"""E7 — Fig 1.7: a WiMAX base station serving a metropolitan area.

Reproduced claims from §2.3:

* "can transfer around 70 Mbps ... from a single base station" — the
  aggregate across subscribers approaches the channel peak,
* "over a distance of 50 km" — coverage extends to tens of km,
* "to thousands of users" — capacity is *divided* (scheduled), not
  fought over: per-subscriber throughput scales as 1/N with no loss,
* the two bands: 2-11 GHz works non-line-of-sight; 10-66 GHz requires
  line of sight but serves km-scale tower links.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core import Position, Simulator
from repro.wman.wimax import (
    SubscriberStation,
    WimaxBand,
    WimaxBaseStation,
)

HORIZON = 2.0


def run_cell(subscriber_count, max_distance_m=20_000.0, seed=1):
    sim = Simulator(seed=seed)
    bs = WimaxBaseStation(sim, Position(0, 0, 0))
    subscribers = []
    for index in range(subscriber_count):
        distance = max_distance_m * (index + 1) / subscriber_count
        ss = SubscriberStation(f"ss{index}", Position(distance, 0, 0))
        bs.attach(ss)
        ss.offer_downlink(1_000_000_000)
        subscribers.append(ss)
    bs.start()
    sim.run(until=HORIZON)
    rates = [ss.delivered_bytes * 8 / HORIZON for ss in subscribers]
    return sum(rates), min(rates), max(rates)


def run_sweep():
    rows = []
    for count in (1, 2, 5, 10, 20, 50):
        aggregate, low, high = run_cell(count)
        rows.append([count, aggregate / 1e6, low / 1e6, high / 1e6])
    return rows


def test_fig_wimax_subscriber_sweep(benchmark, record_result):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    text = render_table(
        "E7: WiMAX point-to-multipoint cell (Fig 1.7), saturated downlink",
        ["subscribers", "aggregate Mb/s", "min SS Mb/s", "max SS Mb/s"],
        rows, formats=[None, ".1f", ".2f", ".2f"])
    record_result("E7_wimax", text)

    aggregates = [row[1] for row in rows]
    # The single near subscriber sees most of the DL share of ~70 Mb/s...
    assert aggregates[0] > 25.0
    # ...and the aggregate never exceeds the channel peak.
    sim = Simulator(seed=9)
    peak = WimaxBaseStation(sim, Position(0, 0, 0)).peak_rate_bps() / 1e6
    assert all(aggregate <= peak for aggregate in aggregates)
    # Scheduled MAC: adding subscribers must NOT collapse the aggregate
    # (contrast with CSMA contention collapse in E10).
    assert min(aggregates) > 0.5 * max(aggregates)
    # Per-subscriber share shrinks roughly as 1/N.
    assert rows[-1][3] < rows[0][3] / 10


def test_fig_wimax_bands(benchmark, record_result):
    """LOS vs NLOS band behaviour (§2.3)."""

    def run():
        sim = Simulator(seed=3)
        nlos_bs = WimaxBaseStation(sim, Position(0, 0, 0),
                                   band=WimaxBand.NLOS)
        los_bs = WimaxBaseStation(sim, Position(0, 0, 0),
                                  band=WimaxBand.LOS)
        rows = []
        for distance in (1_000.0, 5_000.0, 20_000.0, 40_000.0):
            nlos_probe = SubscriberStation("p", Position(distance, 0, 0))
            los_probe = SubscriberStation("p", Position(distance, 0, 0),
                                          line_of_sight=True)
            nlos_profile = nlos_bs.link_profile(nlos_probe)
            los_profile = los_bs.link_profile(los_probe)
            rows.append([distance / 1e3,
                         nlos_profile[0] if nlos_profile else "no link",
                         los_profile[0] if los_profile else "no link"])
        return rows, nlos_bs.max_range_m(), los_bs.max_range_m()

    rows, nlos_range, los_range = benchmark.pedantic(run, rounds=1,
                                                     iterations=1)
    text = render_table(
        "E7b: WiMAX bands: 2-11 GHz NLOS vs 10-66 GHz LOS (text §2.3)",
        ["distance km", "NLOS profile", "LOS profile"], rows)
    text += (f"\n\nNLOS coverage: {nlos_range / 1e3:.0f} km; "
             f"LOS coverage: {los_range / 1e3:.0f} km")
    record_result("E7b_wimax_bands", text)
    # Both bands close their link budget at km scale.
    assert nlos_range > 20_000
    assert los_range > 2_000
