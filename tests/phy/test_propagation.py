"""Tests for propagation models."""

import math
import random

import pytest

from repro.core.errors import ConfigurationError
from repro.core.topology import Position
from repro.phy.propagation import (
    FixedLoss,
    FreeSpace,
    LogDistance,
    RangePropagation,
    Shadowing,
    TwoRayGround,
    max_range_for_budget,
)

A = Position(0, 0, 0)


def at(distance):
    return Position(distance, 0, 0)


class TestFreeSpace:
    def test_friis_known_value(self):
        # Free-space loss at 2.4 GHz over 100 m is about 80 dB.
        model = FreeSpace(2.4e9)
        assert model.path_loss_db(A, at(100.0)) == pytest.approx(80.0, abs=0.5)

    def test_20db_per_decade(self):
        model = FreeSpace(2.4e9)
        near = model.path_loss_db(A, at(10.0))
        far = model.path_loss_db(A, at(100.0))
        assert far - near == pytest.approx(20.0)

    def test_min_distance_clamps(self):
        model = FreeSpace(2.4e9, min_distance=1.0)
        assert model.path_loss_db(A, A) == \
            model.path_loss_db(A, at(0.5)) == model.path_loss_db(A, at(1.0))

    def test_received_power_decreases_with_distance(self):
        model = FreeSpace(5.0e9)
        powers = [model.received_power_watts(0.1, A, at(d))
                  for d in (1, 10, 100, 1000)]
        assert powers == sorted(powers, reverse=True)

    def test_bad_frequency_rejected(self):
        with pytest.raises(ConfigurationError):
            FreeSpace(0.0)


class TestLogDistance:
    def test_matches_free_space_at_reference(self):
        model = LogDistance(2.4e9, exponent=3.5, reference_distance=1.0)
        free = FreeSpace(2.4e9, min_distance=1.0)
        assert model.path_loss_db(A, at(1.0)) == \
            pytest.approx(free.path_loss_db(A, at(1.0)))

    def test_exponent_decades(self):
        model = LogDistance(2.4e9, exponent=3.0)
        loss_10 = model.path_loss_db(A, at(10.0))
        loss_100 = model.path_loss_db(A, at(100.0))
        assert loss_100 - loss_10 == pytest.approx(30.0)

    def test_implausible_exponent_rejected(self):
        with pytest.raises(ConfigurationError):
            LogDistance(2.4e9, exponent=0.5)


class TestTwoRayGround:
    def test_free_space_below_crossover(self):
        model = TwoRayGround(2.4e9, tx_height=2.0, rx_height=2.0)
        free = FreeSpace(2.4e9)
        close = model.crossover / 2.0
        assert model.path_loss_db(A, at(close)) == \
            pytest.approx(free.path_loss_db(A, at(close)))

    def test_40db_per_decade_beyond_crossover(self):
        model = TwoRayGround(2.4e9, tx_height=2.0, rx_height=2.0)
        d = model.crossover * 2.0
        near = model.path_loss_db(A, at(d))
        far = model.path_loss_db(A, at(d * 10.0))
        assert far - near == pytest.approx(40.0)

    def test_bad_heights_rejected(self):
        with pytest.raises(ConfigurationError):
            TwoRayGround(2.4e9, tx_height=0.0)


class TestShadowing:
    def test_offset_frozen_per_link(self):
        model = Shadowing(FreeSpace(2.4e9), sigma_db=8.0,
                          rng=random.Random(1))
        first = model.path_loss_db(A, at(50.0))
        second = model.path_loss_db(A, at(50.0))
        assert first == second

    def test_offset_symmetric(self):
        model = Shadowing(FreeSpace(2.4e9), sigma_db=8.0,
                          rng=random.Random(1))
        forward = model.path_loss_db(A, at(50.0))
        backward = model.path_loss_db(at(50.0), A)
        assert forward == backward

    def test_different_links_get_different_offsets(self):
        model = Shadowing(FreeSpace(2.4e9), sigma_db=8.0,
                          rng=random.Random(1))
        base = FreeSpace(2.4e9)
        offsets = {round(model.path_loss_db(A, at(d))
                         - base.path_loss_db(A, at(d)), 6)
                   for d in (10, 20, 30, 40, 50)}
        assert len(offsets) > 1

    def test_zero_sigma_equals_base(self):
        model = Shadowing(FreeSpace(2.4e9), sigma_db=0.0,
                          rng=random.Random(1))
        assert model.path_loss_db(A, at(25.0)) == \
            pytest.approx(FreeSpace(2.4e9).path_loss_db(A, at(25.0)))


class TestRangePropagation:
    def test_disc_edge(self):
        model = RangePropagation(100.0)
        assert model.path_loss_db(A, at(100.0)) < math.inf
        assert model.path_loss_db(A, at(100.1)) == math.inf


class TestFixedLoss:
    def test_constant(self):
        model = FixedLoss(42.0)
        assert model.path_loss_db(A, at(1.0)) == 42.0
        assert model.path_loss_db(A, at(1e6)) == 42.0


class TestLinkGain:
    """The linear-domain fast path must agree with the dB curve for
    every model (to float tolerance — it avoids the log10 round-trip
    by design, so exact equality is not promised)."""

    @pytest.mark.parametrize("model", [
        FreeSpace(2.4e9),
        LogDistance(2.4e9, exponent=3.2),
        TwoRayGround(3.5e9),
        FixedLoss(42.0),
        RangePropagation(100.0),
    ], ids=lambda m: type(m).__name__)
    @pytest.mark.parametrize("distance", [0.5, 1.0, 10.0, 99.0, 500.0])
    def test_matches_db_curve(self, model, distance):
        loss_db = model.path_loss_db(A, at(distance))
        gain = model.link_gain(A, at(distance))
        if math.isinf(loss_db):
            assert gain == 0.0
        else:
            assert gain == pytest.approx(10.0 ** (-loss_db / 10.0),
                                         rel=1e-12)

    def test_shadowing_gain_includes_frozen_offset(self):
        model = Shadowing(FreeSpace(2.4e9), sigma_db=8.0,
                          rng=random.Random(1))
        loss_db = model.path_loss_db(A, at(50.0))
        gain = model.link_gain(A, at(50.0))
        assert gain == pytest.approx(10.0 ** (-loss_db / 10.0), rel=1e-12)
        # The linear factor is frozen alongside the dB offset.
        assert model.link_gain(A, at(50.0)) == gain
        assert model.link_gain(at(50.0), A) == gain

    def test_received_power_uses_db_pipeline(self):
        # The cached/uncached contract: received_power_watts stays in
        # dB space (bit-identical with historical runs), so it is the
        # dB round-trip of path_loss_db, not tx_power * link_gain.
        model = LogDistance(2.4e9)
        tx_power = 0.1
        expected = 10.0 ** ((10.0 * math.log10(tx_power * 1000.0)
                             - model.path_loss_db(A, at(30.0))) / 10.0) / 1000.0
        assert model.received_power_watts(tx_power, A, at(30.0)) == expected


class TestMaxRange:
    def test_budget_inversion(self):
        model = FreeSpace(2.4e9)
        range_m = max_range_for_budget(model, tx_power_dbm=20.0,
                                       sensitivity_dbm=-90.0)
        # Loss at the found range should equal the 110 dB budget.
        assert model.path_loss_db(A, at(range_m)) == \
            pytest.approx(110.0, abs=0.01)

    def test_higher_power_reaches_farther(self):
        model = LogDistance(2.4e9, exponent=3.0)
        near = max_range_for_budget(model, 10.0, -85.0)
        far = max_range_for_budget(model, 20.0, -85.0)
        assert far > near
