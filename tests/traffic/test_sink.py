"""Tests for the traffic sink."""

import math

import pytest

from repro.traffic.generators import encode_packet
from repro.traffic.sink import TrafficSink


class TestTrafficSink:
    def test_counts_and_goodput(self, sim):
        sink = TrafficSink(sim)
        for sequence in range(10):
            sim.schedule(0.1 * sequence, sink.consume,
                         encode_packet(1, sequence, 0.1 * sequence - 0.01,
                                       200))
        sim.run()
        flow = sink.flow(1)
        assert flow.received == 10
        assert flow.bytes_received == 2000
        assert flow.lost == 0
        # 2000 bytes over 0.9 s of reception span.
        assert flow.goodput_bps() == pytest.approx(2000 * 8 / 0.9)

    def test_delay_measurement(self, sim):
        sink = TrafficSink(sim)
        sim.schedule(1.0, sink.consume, encode_packet(1, 0, 0.75, 100))
        sim.run()
        assert sink.flow(1).delay.mean == pytest.approx(0.25)

    def test_loss_inferred_from_gaps(self, sim):
        sink = TrafficSink(sim)
        for sequence in (0, 1, 4, 5):  # 2 and 3 lost
            sim.schedule(0.1 * sequence, sink.consume,
                         encode_packet(1, sequence, 0.0, 100))
        sim.run()
        flow = sink.flow(1)
        assert flow.expected == 6
        assert flow.lost == 2
        assert flow.loss_ratio == pytest.approx(2 / 6)

    def test_out_of_order_detected(self, sim):
        sink = TrafficSink(sim)
        for at, sequence in ((0.1, 0), (0.2, 2), (0.3, 1)):
            sim.schedule(at, sink.consume, encode_packet(1, sequence, 0.0, 100))
        sim.run()
        assert sink.flow(1).out_of_order == 1

    def test_jitter_zero_for_constant_delay(self, sim):
        sink = TrafficSink(sim)
        for sequence in range(5):
            sim.schedule(0.1 * sequence + 0.05, sink.consume,
                         encode_packet(1, sequence, 0.1 * sequence, 100))
        sim.run()
        assert sink.flow(1).jitter == pytest.approx(0.0, abs=1e-12)

    def test_jitter_positive_for_variable_delay(self, sim):
        sink = TrafficSink(sim)
        delays = [0.01, 0.05, 0.02, 0.08]
        for sequence, delay in enumerate(delays):
            sim.schedule(0.1 * sequence + delay, sink.consume,
                         encode_packet(1, sequence, 0.1 * sequence, 100))
        sim.run()
        assert sink.flow(1).jitter > 0.0

    def test_flows_separated(self, sim):
        sink = TrafficSink(sim)
        sim.schedule(0.1, sink.consume, encode_packet(1, 0, 0.0, 100))
        sim.schedule(0.2, sink.consume, encode_packet(2, 0, 0.0, 300))
        sim.run()
        assert sink.flow(1).bytes_received == 100
        assert sink.flow(2).bytes_received == 300
        assert sink.total_bytes == 400

    def test_foreign_payloads_counted_not_crashed(self, sim):
        sink = TrafficSink(sim)
        assert not sink.consume(b"random junk that is long enough")
        assert sink.foreign_packets == 1

    def test_receive_hook_adapter(self, sim):
        sink = TrafficSink(sim)
        sink("source", encode_packet(1, 0, 0.0, 100), {"snr": 20})
        assert sink.total_received == 1

    def test_empty_flow_statistics(self, sim):
        sink = TrafficSink(sim)
        assert sink.total_received == 0
        assert math.isnan(sink.mean_delay())
        assert sink.flow(99) is None
