"""E8 — Fig 1.8 / §2.4: cellular generations, frequency reuse, handoff,
and the satellite alternative.

Reproduced claims:

* the generation ladder 1G (2.4 kb/s) ... 4G (1 Gb/s),
* "low-power transmitters to allow frequency reuse at much smaller
  distances": total session capacity grows with tighter reuse,
* a mobile crossing cells keeps its session through handoff,
* satellite: global coverage bought with a quarter-second of one-way
  latency — window-limited protocols collapse long before the channel
  rate (DVB-S2, ~60 Mb/s).
"""

import pytest

from repro.analysis.tables import render_table
from repro.core import Position, Simulator
from repro.mobility.models import LinearMobility
from repro.wwan.cellular import CellularNetwork, GENERATIONS, MobileDevice
from repro.wwan.satellite import (
    DVBS2_RATE_BPS,
    GeoSatellite,
    GroundStation,
    SatelliteLink,
)


def run_generation_ladder():
    rows = []
    for name in ("1G", "2G", "2.5G", "3G", "3.5G", "4G"):
        sim = Simulator(seed=1)
        network = CellularNetwork(sim, name, rings=1)
        mobile = MobileDevice(sim, network, "phone", Position(0, 0, 0))
        mobile.start_session()
        generation = GENERATIONS[name]
        rows.append([name, generation.year, generation.description,
                     mobile.current_rate_bps() / 1e3])
    return rows


def run_reuse_comparison():
    rows = []
    for reuse in (1, 3, 7):
        sim = Simulator(seed=2)
        network = CellularNetwork(sim, "3G", rings=2, total_channels=84,
                                  reuse_factor=reuse)
        rows.append([reuse, network.channels_per_cell,
                     network.total_capacity_sessions()])
    return rows


def run_drive_test(seed=3):
    """Drive across three cells; the session must survive via handoffs."""
    sim = Simulator(seed=seed)
    network = CellularNetwork(sim, "4G", rings=2, cell_radius_m=1000.0)
    mobile = MobileDevice(sim, network, "car", Position(-3000, 0, 0),
                          reevaluate_every=0.5)
    assert mobile.start_session()
    mobility = LinearMobility(sim, mobile, Position(3000, 0, 0),
                              speed_mps=30.0, tick=0.25)
    mobility.start()
    sim.run(until=220.0)
    return mobile


def run_satellite_profile():
    sim = Simulator(seed=4)
    satellite = GeoSatellite("bird", 0.0)
    link = SatelliteLink(
        sim, satellite,
        GroundStation("hq", Position(0, 0, 0)),
        GroundStation("island", Position(2_000_000, 0, 0)))
    rows = []
    for window_kib in (16, 64, 256, 1024, 8192):
        throughput = link.window_limited_throughput_bps(window_kib * 1024)
        rows.append([window_kib, throughput / 1e6])
    return link.rtt(), rows


def test_fig_wwan_generations(benchmark, record_result):
    rows = benchmark.pedantic(run_generation_ladder, rounds=1, iterations=1)
    text = render_table(
        "E8: Cellular generations (text §2.4)",
        ["generation", "year", "description", "measured kb/s"],
        rows, formats=[None, None, None, ".1f"])
    record_result("E8_generations", text)
    rates = [row[3] for row in rows]
    assert rates == sorted(rates)
    assert rates[0] == pytest.approx(2.4)
    assert rates[-1] == pytest.approx(1e6)  # 1 Gb/s in kb/s


def test_fig_wwan_reuse_and_handoff(benchmark, record_result):
    def run():
        return run_reuse_comparison(), run_drive_test()

    reuse_rows, mobile = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        "E8b: Frequency reuse capacity (19 cells, 84 channels)",
        ["reuse factor", "channels/cell", "total sessions"],
        reuse_rows)
    text += ("\n\nDrive test (6 km at 30 m/s across 1 km cells): "
             f"handoffs={mobile.counters.get('handoffs')}, "
             f"dropped={mobile.counters.get('dropped')}, "
             f"still in session={mobile.in_session}")
    record_result("E8b_reuse_handoff", text)
    capacities = [row[2] for row in reuse_rows]
    assert capacities == sorted(capacities, reverse=True)
    assert capacities[0] == 7 * capacities[2]
    assert mobile.in_session
    assert mobile.counters.get("handoffs") >= 2
    assert mobile.counters.get("dropped") == 0


def test_fig_wwan_satellite(benchmark, record_result):
    rtt, rows = benchmark.pedantic(run_satellite_profile, rounds=1,
                                   iterations=1)
    text = render_table(
        "E8c: GEO satellite link: window-limited throughput vs RTT "
        f"(RTT = {rtt * 1e3:.0f} ms, channel = "
        f"{DVBS2_RATE_BPS / 1e6:.0f} Mb/s)",
        ["window KiB", "throughput Mb/s"], rows,
        formats=[None, ".2f"])
    record_result("E8c_satellite", text)
    assert 0.45 < rtt < 0.55
    throughputs = [row[1] for row in rows]
    assert throughputs == sorted(throughputs)
    assert throughputs[0] < 1.0          # 16 KiB window: under 1 Mb/s
    assert throughputs[-1] == pytest.approx(DVBS2_RATE_BPS / 1e6)
