"""Tests for the GEO satellite substrate."""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import ConfigurationError, LinkError
from repro.wwan.satellite import (
    DVBS2_RATE_BPS,
    GEO_ALTITUDE_M,
    GeoSatellite,
    GroundStation,
    SatelliteLink,
)


def simple_link(sim, separation=1_000_000.0, transponders=24):
    satellite = GeoSatellite("bird", longitude_deg=0.0,
                             transponder_count=transponders)
    a = GroundStation("alpha", Position(0, 0, 0))
    b = GroundStation("beta", Position(separation, 0, 0))
    return SatelliteLink(sim, satellite, a, b), satellite


class TestGeometry:
    def test_one_way_delay_about_a_quarter_second(self, sim):
        link, _ = simple_link(sim)
        delay = link.one_way_delay(link.a, link.b)
        # Two ~36,000 km hops at light speed: 0.24 s give or take geometry.
        assert 0.23 < delay < 0.27

    def test_rtt_double_one_way(self, sim):
        link, _ = simple_link(sim)
        assert link.rtt() == pytest.approx(
            2 * link.one_way_delay(link.a, link.b), rel=0.01)

    def test_geo_altitude_constant(self):
        assert GEO_ALTITUDE_M == pytest.approx(35_786e3)


class TestTransponders:
    def test_leasing_and_exhaustion(self, sim):
        satellite = GeoSatellite("bird", 0.0, transponder_count=2)
        a = GroundStation("a", Position(0, 0, 0))
        b = GroundStation("b", Position(1, 0, 0))
        SatelliteLink(sim, satellite, a, b)
        SatelliteLink(sim, satellite, a, b)
        with pytest.raises(LinkError):
            SatelliteLink(sim, satellite, a, b)

    def test_close_releases_the_transponder(self, sim):
        satellite = GeoSatellite("bird", 0.0, transponder_count=1)
        a = GroundStation("a", Position(0, 0, 0))
        b = GroundStation("b", Position(1, 0, 0))
        link = SatelliteLink(sim, satellite, a, b)
        link.close()
        SatelliteLink(sim, satellite, a, b)  # should not raise

    def test_at_least_one_transponder(self):
        with pytest.raises(ConfigurationError):
            GeoSatellite("bird", 0.0, transponder_count=0)


class TestTransfers:
    def test_message_delivery_time(self, sim):
        link, _ = simple_link(sim)
        deliveries = []
        link.send("alpha", 1_000_000, on_delivered=deliveries.append)
        sim.run(until=2.0)
        assert len(deliveries) == 1
        serialization = 1_000_000 * 8 / DVBS2_RATE_BPS
        expected = serialization + link.one_way_delay(link.a, link.b)
        assert deliveries[0] == pytest.approx(expected, rel=0.01)

    def test_unknown_endpoint_rejected(self, sim):
        link, _ = simple_link(sim)
        with pytest.raises(LinkError):
            link.send("gamma", 100)

    def test_messages_serialize_per_sender(self, sim):
        link, _ = simple_link(sim)
        first = link.send("alpha", 1_000_000)
        second = link.send("alpha", 1_000_000)
        assert second > first


class TestWindowLimitedThroughput:
    def test_small_window_collapses_throughput(self, sim):
        link, _ = simple_link(sim)
        # A 64 KB stop-and-wait window over a ~0.48 s RTT: ~1 Mb/s.
        throughput = link.window_limited_throughput_bps(65536)
        assert throughput < 2e6
        assert throughput < DVBS2_RATE_BPS / 10

    def test_huge_window_reaches_channel_rate(self, sim):
        link, _ = simple_link(sim)
        assert link.window_limited_throughput_bps(1 << 30) == \
            DVBS2_RATE_BPS

    def test_throughput_monotone_in_window(self, sim):
        link, _ = simple_link(sim)
        values = [link.window_limited_throughput_bps(w)
                  for w in (1 << 14, 1 << 16, 1 << 20, 1 << 24)]
        assert values == sorted(values)

    def test_bad_window_rejected(self, sim):
        link, _ = simple_link(sim)
        with pytest.raises(ConfigurationError):
            link.window_limited_throughput_bps(0)
