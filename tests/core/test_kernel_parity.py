"""Randomized two-kernel parity harness.

The compiled kernel (``repro.core._ckernel``) claims bit-identity with
the pure-Python reference loop: identical pop order, identical clock
and counter writes, identical exception/stop behaviour.  The golden
captures prove that on the 14 macros; this harness probes the corners
macros never hit — randomized interleavings of ``schedule`` /
``schedule_fast`` / ``Timer`` re-anchor / cancel, nested scheduling
from inside callbacks, mid-run ``stop()``, every run-loop branch
(until-only, budget-only, both, drain) — and requires the two kernels
to produce byte-equal fingerprints.

The whole module skips when the extension is not built (parity needs
both kernels); CI's compiled-kernel lane builds it first.
"""

import random

import pytest

from repro.core import Simulator
from repro.core.engine import Timer, ckernel_available
from repro.core.trace import TraceLog
from repro.faults import InvariantChecker

pytestmark = pytest.mark.skipif(
    not ckernel_available(),
    reason="compiled kernel not built (run: python tools/build_kernel.py)")


def _drive(kernel: str, seed: int):
    """Run one randomized mixed workload on ``kernel``; return its
    full observable fingerprint.

    Every callback logs the repr-exact clock AND the live executed
    counter — the latter pins the until-only fast branch's documented
    stale-counter semantics (the local is flushed at exit), which the
    compiled kernel must reproduce exactly for telemetry byte-identity.
    """
    rng = random.Random(seed)
    trace = TraceLog(capacity=None, enabled=True)
    sim = Simulator(seed=0, trace=trace, kernel=kernel)
    log = []
    handles = []
    timers = []

    def timer_cb(index):
        log.append(("timer", index, repr(sim.now), sim._events_executed))

    timers.extend(Timer(sim, lambda i=i: timer_cb(i)) for i in range(4))

    def cb(tag):
        log.append((tag, repr(sim.now), sim._events_executed))
        trace.record(sim.now, "harness", "cb", tag=tag)
        roll = rng.random()
        if roll < 0.25:
            sim.schedule_fast(rng.random() * 0.1, cb, tag + 1000)
        elif roll < 0.45:
            handles.append(sim.schedule(rng.random() * 0.1, cb, tag + 2000))
        elif roll < 0.55 and handles:
            handles[rng.randrange(len(handles))].cancel()
        elif roll < 0.70:
            timers[rng.randrange(4)].schedule(rng.random() * 0.05)
        elif roll < 0.75:
            timers[rng.randrange(4)].cancel()
        elif roll < 0.78:
            sim.stop()
        # else: leaf event, schedule nothing

    for tag in range(40):
        roll = rng.random()
        if roll < 0.4:
            sim.schedule_fast(rng.random() * 0.6, cb, tag)
        elif roll < 0.8:
            handles.append(sim.schedule(rng.random() * 0.6, cb, tag))
        else:
            timers[rng.randrange(4)].schedule(rng.random() * 0.6)
    for victim in rng.sample(handles, len(handles) // 5):
        victim.cancel()

    # One segment per run-loop branch: until-only (the stale-counter
    # fast path), budget-only, both, then drain.
    marks = [sim.run(until=0.15),
             sim.run(max_events=25),
             sim.run(until=0.45, max_events=10_000),
             sim.run()]
    InvariantChecker(sim, strict=True).check_counter_parity()
    return {
        "log": log,
        "marks": [repr(m) for m in marks],
        "trace": [record.format() for record in trace],
        "now": repr(sim.now),
        "scheduled": sim._scheduled,
        "executed": sim._events_executed,
        "cancelled": sim._cancelled_events,
        "pending": sim.pending_events,
        "heap_len": len(sim._heap),
        "kernel": None,   # overwritten below; keep keys identical
    }


@pytest.mark.parametrize("seed", range(8))
def test_randomized_workload_parity(seed):
    reference = _drive("python", seed)
    compiled = _drive("c", seed)
    for result in (reference, compiled):
        result.pop("kernel")
    assert reference == compiled
    assert reference["executed"] > 20   # the workload actually ran


def test_randomized_workloads_are_not_degenerate():
    # Across the parametrized seeds the harness must exercise every
    # ingredient at least once: timer fires and cancels would silently
    # vanish from the parity claim if the distribution drifted.
    saw_timer = saw_cancel = False
    for seed in range(8):
        result = _drive("python", seed)
        if any(entry[0] == "timer" for entry in result["log"]):
            saw_timer = True
        if result["cancelled"] > 0:
            saw_cancel = True
    assert saw_timer and saw_cancel


def test_same_time_ties_pop_in_seq_order_on_both_kernels():
    def run(kernel):
        sim = Simulator(kernel=kernel)
        log = []
        timer = Timer(sim, lambda: log.append("timer"))
        sim.schedule_fast(0.5, log.append, "fast-0")
        sim.schedule(0.5, log.append, "handle-1")
        timer.schedule_at(0.5)
        sim.schedule_fast(0.5, log.append, "fast-3")
        sim.run()
        return log

    expected = ["fast-0", "handle-1", "timer", "fast-3"]
    assert run("python") == expected
    assert run("c") == expected


def test_midrun_exception_leaves_identical_state():
    def run(kernel):
        sim = Simulator(kernel=kernel)
        log = []

        def boom():
            raise ValueError("boom")

        sim.schedule(0.1, log.append, "a")
        sim.schedule_fast(0.2, boom)
        sim.schedule(0.3, log.append, "c")
        with pytest.raises(ValueError, match="boom"):
            sim.run(until=1.0)   # the executed-in-a-local fast branch
        # The finally block must flush counters and clear _running even
        # on the exception path; the survivor event is still live.
        assert not sim._running
        InvariantChecker(sim, strict=True).check_counter_parity()
        return log, repr(sim.now), sim._events_executed, sim.pending_events

    assert run("python") == run("c")
    log, now, executed, pending = run("c")
    assert log == ["a"] and executed == 2 and pending == 1


def test_stop_from_callback_parity():
    def run(kernel):
        sim = Simulator(kernel=kernel)
        log = []
        sim.schedule(0.1, log.append, "a")
        sim.schedule(0.2, sim.stop)
        sim.schedule(0.3, log.append, "never")
        first = sim.run(until=1.0)
        second = sim.run(until=1.0)   # resumes past the stop
        return log, repr(first), repr(second), sim._events_executed

    assert run("python") == run("c")
    log, first, second, executed = run("c")
    assert log == ["a", "never"]
    assert (first, second) == ("0.2", "1.0")


def test_exotic_until_comparison_parity():
    # Non-float horizons (ints, Fractions) must take the rich-compare
    # fallback on both kernels and stop at the same instant.
    from fractions import Fraction

    def run(kernel, until):
        sim = Simulator(kernel=kernel)
        log = []
        for i in range(6):
            sim.schedule_fast(float(i), log.append, i)
        sim.run(until=until)
        return log, repr(sim.now)

    for until in (3, Fraction(7, 2)):
        assert run("python", until) == run("c", until)
