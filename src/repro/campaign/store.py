"""The columnar campaign result store: canonical JSONL + CSV.

One row per job, in grid expansion order, serialized with the repo's
byte-comparable conventions (sorted keys, compact separators, floats
rendered via ``repr`` — the :mod:`repro.telemetry.export` recipe).  Two
runs of the same campaign on any machine with any ``--jobs`` produce
byte-identical stores; that is the CI gate.

The JSONL stream is written *incrementally in row order*: a row is
flushed the moment every earlier row is known (exactly the buffering
discipline ``run_bench --jobs`` uses for its console table), so a
long-running sweep can be tailed while it runs.  The CSV twin is a
projection of the same rows with a flat, deterministic column order —
the spreadsheet-facing view — written when the run finishes.
"""

from __future__ import annotations

import csv
import io
import json
import pathlib
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["StoreWriter", "flatten_row", "row_line", "read_store",
           "csv_text"]


def _canon(value: Any) -> Any:
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, dict):
        return {str(key): _canon(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    return value


def row_line(row: Dict[str, Any]) -> str:
    """One canonical JSONL line for a result row."""
    return json.dumps(_canon(row), sort_keys=True, separators=(",", ":"))


def read_store(path: pathlib.Path) -> List[Dict[str, Any]]:
    """Parse a JSONL store back into row dicts (floats stay repr
    strings — byte-compare callers never want them re-rounded; the
    :mod:`repro.analysis.campaign` aggregators revive them)."""
    return [json.loads(line)
            for line in pathlib.Path(path).read_text().splitlines() if line]


def flatten_row(row: Dict[str, Any]) -> Dict[str, Any]:
    """Flatten the nested ``axes``/``stats`` maps into dotted columns."""
    flat: Dict[str, Any] = {}
    for key, value in row.items():
        if isinstance(value, dict):
            for inner, item in value.items():
                flat[f"{key}.{inner}"] = item
        else:
            flat[key] = value
    return flat


#: Identity/bookkeeping columns, in the order they lead every CSV row.
_LEAD_COLUMNS = ("campaign", "index", "key", "label", "seed", "status",
                 "error")


def csv_text(rows: Iterable[Dict[str, Any]]) -> str:
    """The CSV projection: lead columns, then sorted dotted columns."""
    flat_rows = [flatten_row(_canon(row)) for row in rows]
    tail = sorted({column for row in flat_rows for column in row}
                  - set(_LEAD_COLUMNS))
    columns = [c for c in _LEAD_COLUMNS
               if any(c in row for row in flat_rows)] + tail
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(columns)
    for row in flat_rows:
        writer.writerow(["" if row.get(column) is None else row[column]
                         for column in columns])
    return buffer.getvalue()


class StoreWriter:
    """In-order streaming writer for one campaign's result store.

    ``add(index, row)`` may arrive in any completion order; rows are
    buffered and the JSONL file only ever grows by the next contiguous
    prefix.  ``close()`` writes the CSV twin and returns the rows.
    """

    def __init__(self, jsonl_path: pathlib.Path,
                 csv_path: Optional[pathlib.Path] = None):
        self.jsonl_path = pathlib.Path(jsonl_path)
        self.csv_path = pathlib.Path(csv_path) if csv_path else None
        self._pending: Dict[int, Dict[str, Any]] = {}
        self._rows: List[Dict[str, Any]] = []
        self._next = 0
        # "w": the store is a projection of the manifest, rebuilt from
        # row 0 on every run — a resumed run re-emits the already-done
        # prefix first, so the final file never depends on whether the
        # previous run got as far as writing it.
        self._handle = open(self.jsonl_path, "w")

    def add(self, index: int, row: Dict[str, Any]) -> None:
        self._pending[index] = row
        while self._next in self._pending:
            row = self._pending.pop(self._next)
            self._rows.append(row)
            self._handle.write(row_line(row) + "\n")
            self._next += 1
        self._handle.flush()

    def close(self) -> List[Dict[str, Any]]:
        if self._pending:
            dangling = sorted(self._pending)
            raise AssertionError(
                f"store closed with non-contiguous rows pending: indices "
                f"{dangling} arrived but {self._next} never did")
        self._handle.close()
        if self.csv_path is not None:
            self.csv_path.write_text(csv_text(self._rows))
        return list(self._rows)

    def abort(self) -> None:
        """Close the file handle without the completeness check (used
        when the run itself failed and partial output is expected)."""
        self._handle.close()
