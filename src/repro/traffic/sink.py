"""The traffic sink: per-flow delivery statistics.

Feed every received measurement payload into a :class:`TrafficSink`
(typically from a device's receive hook).  The sink decodes the header
written by the generators and tracks, per flow and in aggregate:

* received packet and byte counts, goodput over the observation window,
* one-way delay (mean / percentiles, via :class:`SampleStat`),
* RFC3550-style smoothed jitter,
* loss, inferred from sequence-number gaps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..core.engine import Simulator
from ..core.stats import SampleStat
from .generators import decode_packet


@dataclass
class FlowStats:
    """Per-flow accounting."""

    flow_id: int
    received: int = 0
    bytes_received: int = 0
    first_rx: Optional[float] = None
    last_rx: Optional[float] = None
    highest_sequence: int = -1
    out_of_order: int = 0
    delay: SampleStat = field(default_factory=SampleStat)
    jitter: float = 0.0  # RFC3550 smoothed interarrival jitter
    #: Wireless hop counts, when the flow crossed a mesh (empty otherwise).
    hops: SampleStat = field(default_factory=SampleStat)
    _last_transit: Optional[float] = None

    def record(self, now: float, sequence: int, sent_at: float,
               size: int, hops: Optional[int] = None) -> None:
        self.received += 1
        self.bytes_received += size
        if self.first_rx is None:
            self.first_rx = now
        self.last_rx = now
        if sequence > self.highest_sequence:
            self.highest_sequence = sequence
        else:
            self.out_of_order += 1
        if hops is not None:
            self.hops.add(hops)
        transit = now - sent_at
        self.delay.add(transit)
        if self._last_transit is not None:
            deviation = abs(transit - self._last_transit)
            self.jitter += (deviation - self.jitter) / 16.0
        self._last_transit = transit

    @property
    def expected(self) -> int:
        """Packets the sender emitted up to the highest sequence seen."""
        return self.highest_sequence + 1

    @property
    def lost(self) -> int:
        return max(self.expected - self.received, 0)

    @property
    def loss_ratio(self) -> float:
        if self.expected == 0:
            return math.nan
        return self.lost / self.expected

    def goodput_bps(self, window: Optional[float] = None) -> float:
        """Delivered payload bits per second.

        ``window`` overrides the measurement interval; by default the
        span between first and last reception is used.
        """
        if self.first_rx is None or self.last_rx is None:
            return 0.0
        span = window if window is not None else self.last_rx - self.first_rx
        if span <= 0:
            return 0.0
        return self.bytes_received * 8 / span


class TrafficSink:
    """Aggregates measurement packets across flows."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.flows: Dict[int, FlowStats] = {}
        self.foreign_packets = 0

    def __call__(self, source, payload: bytes, meta=None) -> None:
        """Receive-hook adapter (matches ``device.on_receive`` and
        ``MeshNode.on_receive`` signatures).  Mesh deliveries annotate
        ``meta["mesh_hops"]``, which feeds the per-flow hop statistic."""
        hops = meta.get("mesh_hops") if meta else None
        self.consume(payload, hops=hops)

    def consume(self, payload: bytes, hops: Optional[int] = None) -> bool:
        """Feed one received payload; returns False for foreign bytes."""
        decoded = decode_packet(payload)
        if decoded is None:
            self.foreign_packets += 1
            return False
        flow_id, sequence, timestamp = decoded
        flow = self.flows.get(flow_id)
        if flow is None:
            flow = FlowStats(flow_id=flow_id)
            self.flows[flow_id] = flow
        flow.record(self.sim.now, sequence, timestamp, len(payload),
                    hops=hops)
        return True

    # --- aggregates ------------------------------------------------------------

    @property
    def total_received(self) -> int:
        return sum(flow.received for flow in self.flows.values())

    @property
    def total_bytes(self) -> int:
        return sum(flow.bytes_received for flow in self.flows.values())

    def total_goodput_bps(self, window: float) -> float:
        if window <= 0:
            return 0.0
        return self.total_bytes * 8 / window

    def mean_delay(self) -> float:
        stat = SampleStat()
        for flow in self.flows.values():
            if flow.delay.count:
                stat.add(flow.delay.mean)
        return stat.mean

    def flow(self, flow_id: int) -> Optional[FlowStats]:
        return self.flows.get(flow_id)
