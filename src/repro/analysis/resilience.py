"""Resilience metrics: how fast a network recovers from injected faults.

Post-processing for fault-injection experiments
(:mod:`repro.faults`).  Everything operates on plain event timestamps
(offer times, delivery times, association state changes), so the
functions are simulator-agnostic and trivially unit-testable:

* :func:`pdr_timeline` — binned packet-delivery-ratio curve over the
  run, the raw material for every dip/recovery plot,
* :func:`steady_state_pdr` / :func:`recovery_time` — "the network
  delivered X before the fault; how long after the fault until it is
  back to 90 % of X?",
* :func:`route_repair_time` — first successful end-to-end delivery
  after a routing fault,
* :class:`ReassociationProbe` — hooks a station's association and
  disassociation callbacks to time reassociation and enumerate outage
  windows.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from ..core.errors import ConfigurationError


def pdr_timeline(offered_times: Sequence[float],
                 delivered_times: Sequence[float],
                 bin_width: float,
                 horizon: Optional[float] = None
                 ) -> List[Tuple[float, float]]:
    """Binned packet delivery ratio over time.

    Returns ``[(bin_start, pdr), ...]`` where each bin's PDR is
    deliveries / offers *in that bin* (delivery counts in the bin its
    packet arrived, not the bin it was offered — a recovering network
    can therefore briefly show PDR > 1.0 as the backlog drains, which
    is exactly the flush signature worth seeing on a plot).  Bins with
    no offered traffic get ``nan``.
    """
    if bin_width <= 0:
        raise ConfigurationError(f"bin_width must be > 0: {bin_width}")
    if horizon is None:
        horizon = max(max(offered_times, default=0.0),
                      max(delivered_times, default=0.0))
    bins = max(1, math.ceil(horizon / bin_width))
    offered = [0] * bins
    delivered = [0] * bins
    for t in offered_times:
        index = min(int(t / bin_width), bins - 1)
        offered[index] += 1
    for t in delivered_times:
        index = min(int(t / bin_width), bins - 1)
        delivered[index] += 1
    return [(i * bin_width,
             delivered[i] / offered[i] if offered[i] else math.nan)
            for i in range(bins)]


def steady_state_pdr(timeline: Sequence[Tuple[float, float]],
                     start: float, end: float) -> float:
    """Mean PDR across the bins whose start falls in ``[start, end)``,
    ignoring empty (nan) bins.  Returns nan if the window is empty."""
    values = [pdr for bin_start, pdr in timeline
              if start <= bin_start < end and not math.isnan(pdr)]
    return sum(values) / len(values) if values else math.nan


def recovery_time(timeline: Sequence[Tuple[float, float]],
                  fault_at: float, baseline_pdr: float,
                  fraction: float = 0.9) -> Optional[float]:
    """Time from ``fault_at`` until PDR first climbs back to
    ``fraction`` of ``baseline_pdr`` — and *stays* there for the rest
    of the timeline's non-empty bins.  None if it never recovers.

    The sustain requirement matters: a single lucky bin during a
    crash/restart storm is not recovery.
    """
    if math.isnan(baseline_pdr) or baseline_pdr <= 0:
        return None
    threshold = baseline_pdr * fraction
    candidate: Optional[float] = None
    for bin_start, pdr in timeline:
        if bin_start < fault_at or math.isnan(pdr):
            continue
        if pdr >= threshold:
            if candidate is None:
                candidate = bin_start - fault_at
        else:
            candidate = None
    return candidate


def route_repair_time(delivered_times: Sequence[float],
                      fault_at: float) -> Optional[float]:
    """Delay from the fault to the first end-to-end delivery after it
    (the routing layer's time-to-repair).  None if traffic never
    resumes."""
    after = [t for t in delivered_times if t >= fault_at]
    return min(after) - fault_at if after else None


def downtime_windows(fault_log, horizon: float
                     ) -> List[Tuple[str, float, float]]:
    """Closed per-target downtime windows from a fault log.

    Thin bridge from :meth:`repro.faults.schedule.FaultLog.downtime_spans`
    (or a telemetry JSONL's ``downtime`` span records — anything
    yielding ``(target, start, end_or_None)``) to the closed
    ``(target, start, end)`` windows the recovery metrics consume:
    still-open windows are clamped to ``horizon``, so summing
    ``end - start`` per target gives total downtime and the windows
    align with :func:`pdr_timeline` bins for dip attribution.
    """
    if horizon < 0:
        raise ConfigurationError(f"horizon must be >= 0: {horizon}")
    spans = fault_log.downtime_spans() if hasattr(fault_log,
                                                  "downtime_spans") \
        else list(fault_log)
    return [(target, start, horizon if end is None else end)
            for target, start, end in spans]


def total_downtime(fault_log, horizon: float) -> dict:
    """Summed downtime seconds per target over the run."""
    totals: dict = {}
    for target, start, end in downtime_windows(fault_log, horizon):
        totals[target] = totals.get(target, 0.0) + (end - start)
    return totals


class ReassociationProbe:
    """Record one station's association/disassociation edge times.

    Hooks the station's existing callback lists, so attaching a probe
    never changes simulation behaviour.  Events accumulate as
    ``(time, "assoc" | "disassoc")`` tuples in :attr:`events`.
    """

    def __init__(self, sim, station):
        self.sim = sim
        self.station = station
        self.events: List[Tuple[float, str]] = []
        station.on_associated(self._on_assoc)
        station.on_disassociated(self._on_disassoc)

    def _on_assoc(self, bssid) -> None:
        self.events.append((self.sim.now, "assoc"))

    def _on_disassoc(self) -> None:
        self.events.append((self.sim.now, "disassoc"))

    def time_to_reassociate(self, after: float) -> Optional[float]:
        """Delay from ``after`` (e.g. the crash instant) to the first
        association edge at or past it.  None if never reassociated."""
        for time, kind in self.events:
            if kind == "assoc" and time >= after:
                return time - after
        return None

    def outage_spans(self, until: Optional[float] = None
                     ) -> List[Tuple[float, Optional[float]]]:
        """``(start, end)`` for every disassociated window; ``end`` is
        None (or ``until``) for an outage still open at the end."""
        spans: List[Tuple[float, Optional[float]]] = []
        open_at: Optional[float] = None
        for time, kind in self.events:
            if kind == "disassoc" and open_at is None:
                open_at = time
            elif kind == "assoc" and open_at is not None:
                spans.append((open_at, time))
                open_at = None
        if open_at is not None:
            spans.append((open_at, until))
        return spans

    @property
    def reassociations(self) -> int:
        return sum(1 for _, kind in self.events if kind == "assoc")
