"""Slot-level timing verification of the DCF, from the event trace.

These tests pin the MAC to the standard's interframe spacing: DIFS
before a fresh transmission on an idle medium, exactly SIFS between a
data frame and its ACK, and NAV-honouring deferral around an overheard
RTS/CTS reservation.
"""

import pytest

from repro.core import Position, Simulator
from repro.core.units import SPEED_OF_LIGHT
from repro.mac.addresses import allocate_address
from repro.mac.dcf import DcfConfig, DcfMac
from repro.mac.rate_adapt import fixed_rate_factory
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio


def build(sim, count=2, config=None, distance=3.0):
    medium = Medium(sim, FixedLoss(50.0))
    macs = []
    for index in range(count):
        radio = Radio(f"n{index}", medium, DOT11B,
                      Position(index * distance, 0, 0))
        macs.append(DcfMac(sim, radio, allocate_address(), config=config,
                           rate_factory=fixed_rate_factory("DSSS-1")))
    return medium, macs


def tx_starts(sim, source):
    return [record.time for record in
            sim.trace.select(source=source, event="phy-tx-start")]


class TestInterframeSpacing:
    def test_fresh_access_waits_exactly_difs(self, sim):
        _, (tx, rx) = build(sim)
        enqueue_at = 0.010
        sim.schedule(enqueue_at, lambda: tx.send(rx.address, b"x" * 50))
        sim.run(until=0.5)
        first_tx = tx_starts(sim, "n0")[0]
        assert first_tx == pytest.approx(enqueue_at + DOT11B.difs,
                                         abs=1e-9)

    def test_ack_comes_exactly_sifs_after_data(self, sim):
        _, (tx, rx) = build(sim, distance=3.0)
        tx.send(rx.address, b"x" * 50)
        sim.run(until=0.5)
        data_start = tx_starts(sim, "n0")[0]
        mode = DOT11B.modes[0]
        frame_bits = (24 + 50 + 4) * 8
        data_end = data_start + DOT11B.frame_airtime(frame_bits, mode)
        ack_start = tx_starts(sim, "n1")[0]
        propagation = 3.0 / SPEED_OF_LIGHT
        assert ack_start == pytest.approx(
            data_end + propagation + DOT11B.sifs, abs=1e-9)

    def test_back_to_back_frames_separated_by_backoff(self, sim):
        """After a success the sender must run a post-transmission
        backoff: the second frame cannot start before DIFS after the
        first exchange completes."""
        _, (tx, rx) = build(sim)
        tx.send(rx.address, b"a" * 50)
        tx.send(rx.address, b"b" * 50)
        sim.run(until=0.5)
        starts = tx_starts(sim, "n0")
        assert len(starts) == 2
        mode = DOT11B.modes[0]
        first_airtime = DOT11B.frame_airtime((24 + 50 + 4) * 8, mode)
        ack_airtime = DOT11B.frame_airtime(14 * 8, mode)
        exchange_end = starts[0] + first_airtime + DOT11B.sifs + ack_airtime
        assert starts[1] >= exchange_end + DOT11B.difs - 1e-9


class TestNavDeferral:
    def test_bystander_defers_for_the_cts_reservation(self, sim):
        """A station that hears only the CTS must stay silent for the
        whole reserved exchange (the hidden-terminal protection)."""
        config = DcfConfig(rts_threshold_bytes=100)
        _, (tx, rx, bystander) = build(sim, count=3, config=config)
        tx.send(rx.address, bytes(800))
        # The bystander queues its own frame mid-reservation.
        sim.schedule(0.002, lambda: bystander.send(tx.address, b"y" * 50))
        sim.run(until=0.5)
        # It must not have transmitted inside tx's protected exchange:
        # every bystander transmission starts after tx received its ACK.
        ack_done = tx_starts(sim, "n1")[-1]  # rx's last tx = final ACK
        for start in tx_starts(sim, "n2"):
            assert start > ack_done

    def test_nav_updates_recorded_for_overheard_rts(self, sim):
        config = DcfConfig(rts_threshold_bytes=100)
        _, (tx, rx, bystander) = build(sim, count=3, config=config)
        tx.send(rx.address, bytes(800))
        sim.run(until=0.5)
        assert bystander.counters.get("nav_updates") >= 1


class TestEifs:
    def test_corrupted_reception_counted_and_recovered(self, sim):
        """A station that cannot decode a frame applies EIFS; traffic
        still flows afterwards."""
        from repro.phy.error_models import FixedPerErrorModel
        medium = Medium(sim, FixedLoss(50.0))
        tx_radio = Radio("t", medium, DOT11B, Position(0, 0, 0))
        rx_radio = Radio("r", medium, DOT11B, Position(3, 0, 0),
                         error_model=FixedPerErrorModel(per=0.5))
        tx = DcfMac(sim, tx_radio, allocate_address(),
                    rate_factory=fixed_rate_factory("DSSS-1"))
        rx = DcfMac(sim, rx_radio, allocate_address(),
                    rate_factory=fixed_rate_factory("DSSS-1"))
        received = []
        from repro.mac.dcf import MacListener

        class Sink(MacListener):
            def mac_receive(self, s, d, p, m):
                received.append(p)

        rx.listener = Sink()
        for index in range(20):
            tx.send(rx.address, bytes([index]))
        sim.run(until=5.0)
        assert rx.counters.get("rx_corrupt") > 0
        assert len(received) == 20  # retries recovered everything
