"""Modulation schemes and bit-error-rate curves.

Each :class:`Modulation` maps a post-despreading signal-to-noise ratio
to a bit error probability.  The formulas are the textbook AWGN
expressions (Q-function based), with two wireless-specific twists:

* DSSS schemes get their processing gain applied to the SNR before the
  BER formula (an 11-chip Barker spread buys ~10.4 dB).
* Coded OFDM rates approximate convolutional coding by an *effective
  coding gain* subtracted from the required Eb/N0 — crude, but it
  reproduces the canonical monotone SNR ladder of 802.11a/g rates,
  which is what the rate-adaptation experiments need.

``snr`` here means SNR over the *occupied bandwidth*; conversion from
Eb/N0 uses the spectral efficiency of the mode.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.units import db_to_linear


#: sqrt(2), hoisted so the hot BER path does not recompute it per frame
#: (math.sqrt is correctly rounded, so the constant is bit-identical).
_SQRT2 = math.sqrt(2.0)


def q_function(x: float) -> float:
    """Gaussian tail probability Q(x) = P(N(0,1) > x)."""
    return 0.5 * math.erfc(x / _SQRT2)


@dataclass(frozen=True)
class Modulation:
    """A named modulation with an AWGN BER curve.

    Attributes
    ----------
    name:
        Human-readable name ("BPSK", "64-QAM", "CCK-11", ...).
    bits_per_symbol:
        log2 of constellation size (after spreading, for DSSS).
    processing_gain_db:
        Spreading gain added to the received SNR before demodulation.
    coding_gain_db:
        Effective gain of forward error correction, subtracted from the
        required Eb/N0 (0 for uncoded schemes).
    code_rate:
        FEC code rate (1.0 = uncoded); scales net throughput.
    """

    name: str
    bits_per_symbol: float
    processing_gain_db: float = 0.0
    coding_gain_db: float = 0.0
    code_rate: float = 1.0

    def __hash__(self) -> int:
        # The dataclass-generated hash rebuilds and hashes the full
        # field tuple on every call, and modulations are hashed once
        # per delivered frame (the PER memo key).  Hash the same tuple
        # once and cache it — equal modulations still hash equal, so
        # dict semantics are unchanged.
        return self._hash_cache

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash_cache", hash(
            (self.name, self.bits_per_symbol, self.processing_gain_db,
             self.coding_gain_db, self.code_rate)))

    def ber(self, snr_db: float) -> float:
        """Bit error probability at the given SNR (dB over signal bandwidth).

        This is the innermost loop of every frame delivery decision, so
        the Eb/N0 conversion and the Q-function are fused inline (same
        float operations in the same order as the reference formulas in
        :meth:`_ber_from_ebno` / :func:`q_function`).
        """
        effective_snr_db = snr_db + self.processing_gain_db + self.coding_gain_db
        snr = 10.0 ** (effective_snr_db / 10.0)
        # Convert bandwidth SNR to per-bit Eb/N0 via spectral efficiency.
        efficiency = self.bits_per_symbol * self.code_rate
        if efficiency <= 0:
            raise ValueError(f"non-positive spectral efficiency for {self.name}")
        ebno = snr / efficiency
        bits = self.bits_per_symbol
        if bits <= 2.0:
            # BPSK/DBPSK (and QPSK, same per-bit rate): Q(sqrt(2 Eb/N0)).
            return 0.5 * math.erfc(
                math.sqrt(max(2.0 * ebno, 0.0)) / _SQRT2)
        # Square M-QAM with Gray mapping (approximate):
        # BER ~= (4/k)(1 - 1/sqrt(M)) Q( sqrt(3 k Eb/N0 / (M - 1)) ).
        m = 2.0 ** bits
        coefficient = (4.0 / bits) * (1.0 - 1.0 / math.sqrt(m))
        argument = math.sqrt(max(3.0 * bits * ebno / (m - 1.0), 0.0))
        return min(coefficient * (0.5 * math.erfc(argument / _SQRT2)), 0.5)

    def _ber_from_ebno(self, ebno: float) -> float:
        """Reference BER-from-Eb/N0 curve (kept for tests/documentation;
        :meth:`ber` inlines the same arithmetic)."""
        bits = self.bits_per_symbol
        if bits <= 1.0:
            # BPSK (and DBPSK, within a dB): Q(sqrt(2 Eb/N0)).
            return q_function(math.sqrt(max(2.0 * ebno, 0.0)))
        if bits <= 2.0:
            # QPSK has the same per-bit error rate as BPSK.
            return q_function(math.sqrt(max(2.0 * ebno, 0.0)))
        # Square M-QAM with Gray mapping (approximate):
        # BER ~= (4/k)(1 - 1/sqrt(M)) Q( sqrt(3 k Eb/N0 / (M - 1)) ).
        m = 2.0 ** bits
        coefficient = (4.0 / bits) * (1.0 - 1.0 / math.sqrt(m))
        argument = math.sqrt(max(3.0 * bits * ebno / (m - 1.0), 0.0))
        return min(coefficient * q_function(argument), 0.5)


# --- the modulations used by the standards catalogue ------------------------

#: 11-chip Barker spreading, as in original 802.11 DSSS 1/2 Mb/s.
BARKER_GAIN_DB = 10.0 * math.log10(11.0)

DBPSK_DSSS = Modulation("DBPSK/DSSS", bits_per_symbol=1.0,
                        processing_gain_db=BARKER_GAIN_DB)
DQPSK_DSSS = Modulation("DQPSK/DSSS", bits_per_symbol=2.0,
                        processing_gain_db=BARKER_GAIN_DB)

#: CCK: 8-chip complementary codes; modest spreading gain.
CCK_55 = Modulation("CCK-5.5", bits_per_symbol=4.0,
                    processing_gain_db=10.0 * math.log10(8.0) - 3.0)
CCK_11 = Modulation("CCK-11", bits_per_symbol=8.0,
                    processing_gain_db=10.0 * math.log10(8.0) - 3.0)

#: FHSS GFSK for the original 802.11 FH PHY and Bluetooth.
GFSK = Modulation("GFSK", bits_per_symbol=1.0, coding_gain_db=-1.0)

#: Coded OFDM modes (802.11a/g). Coding gains tuned so the resulting
#: SNR ladder matches the usual receiver-sensitivity spacing.
OFDM_BPSK_12 = Modulation("BPSK r1/2", 1.0, coding_gain_db=4.5, code_rate=0.5)
OFDM_BPSK_34 = Modulation("BPSK r3/4", 1.0, coding_gain_db=3.5, code_rate=0.75)
OFDM_QPSK_12 = Modulation("QPSK r1/2", 2.0, coding_gain_db=4.5, code_rate=0.5)
OFDM_QPSK_34 = Modulation("QPSK r3/4", 2.0, coding_gain_db=3.5, code_rate=0.75)
OFDM_16QAM_12 = Modulation("16QAM r1/2", 4.0, coding_gain_db=4.5, code_rate=0.5)
OFDM_16QAM_34 = Modulation("16QAM r3/4", 4.0, coding_gain_db=3.5, code_rate=0.75)
OFDM_64QAM_23 = Modulation("64QAM r2/3", 6.0, coding_gain_db=4.0, code_rate=2.0 / 3.0)
OFDM_64QAM_34 = Modulation("64QAM r3/4", 6.0, coding_gain_db=3.5, code_rate=0.75)
OFDM_64QAM_56 = Modulation("64QAM r5/6", 6.0, coding_gain_db=3.0, code_rate=5.0 / 6.0)
OFDM_256QAM_34 = Modulation("256QAM r3/4", 8.0, coding_gain_db=3.5, code_rate=0.75)
OFDM_256QAM_56 = Modulation("256QAM r5/6", 8.0, coding_gain_db=3.0, code_rate=5.0 / 6.0)

#: O-QPSK with 32-chip DSSS (802.15.4 / ZigBee 2.4 GHz).
OQPSK_154 = Modulation("O-QPSK/DSSS-15.4", bits_per_symbol=2.0,
                       processing_gain_db=10.0 * math.log10(8.0))

#: UWB pulse-position modulation; wide bandwidth gives processing gain.
PPM_UWB = Modulation("PPM/UWB", bits_per_symbol=1.0, processing_gain_db=6.0)
