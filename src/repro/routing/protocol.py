"""The routing-protocol interface and the static table implementation.

A :class:`RoutingProtocol` answers exactly one question for the
forwarding engine — *which neighbor is the next hop toward this
destination?* — and reacts to two signals: control payloads received
from peers and link failures reported by the MAC's retry-limit path.
Everything else (TTL, duplicate suppression, queue-on-miss, stats) is
the :class:`~repro.routing.node.MeshNode`'s job, so protocols stay
small and interchangeable.

:class:`StaticRouting` is the deterministic baseline: next hops are
installed explicitly by the scenario (or by
:func:`~repro.scenarios.install_chain_routes`), never expire, and never
generate control traffic — ideal for tests that must isolate the
forwarding engine from convergence dynamics.  The DSDV implementation
lives in :mod:`repro.routing.dsdv`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, TYPE_CHECKING

from ..mac.addresses import MacAddress

if TYPE_CHECKING:  # pragma: no cover
    from .node import MeshNode


@dataclass
class RouteEntry:
    """One routing-table row."""

    destination: MacAddress
    next_hop: MacAddress
    metric: int
    sequence: int = 0
    updated_at: float = 0.0


class RoutingProtocol:
    """Strategy interface the forwarding engine drives.  Subclass and
    override; every default is a safe no-op."""

    name = "null"

    def __init__(self) -> None:
        self.node: Optional["MeshNode"] = None

    def attach(self, node: "MeshNode") -> None:
        """Bind to the node whose forwarding this protocol steers."""
        self.node = node

    def start(self) -> None:
        """Begin protocol operation (timers, hello floods, ...)."""

    def stop(self) -> None:
        """Halt protocol timers."""

    def restart(self) -> None:
        """Resume after a node crash (fault injection).

        The default just re-runs :meth:`start`: a protocol whose tables
        are scenario-installed configuration (static routes live in
        "flash", not RAM) keeps them across a crash.  Protocols with
        learned state override this to clear it and rejoin — see
        :meth:`repro.routing.dsdv.DsdvRouting.restart`.
        """
        self.start()

    def next_hop(self, destination: MacAddress) -> Optional[MacAddress]:
        """The neighbor to hand a packet for ``destination`` to, or None."""
        return None

    def on_control(self, transmitter: MacAddress, payload: bytes) -> None:
        """A mesh control payload arrived from a direct neighbor."""

    def on_link_failure(self, neighbor: MacAddress) -> None:
        """The MAC exhausted its retries toward ``neighbor``."""

    def routes(self) -> Dict[MacAddress, RouteEntry]:
        """A copy of the live routing table (diagnostics/tests)."""
        return {}


class StaticRouting(RoutingProtocol):
    """Explicit next-hop tables, installed by the experimenter."""

    name = "static"

    def __init__(self) -> None:
        super().__init__()
        self._table: Dict[MacAddress, RouteEntry] = {}

    def set_route(self, destination: MacAddress, next_hop: MacAddress,
                  metric: int = 1) -> None:
        """Install (or replace) the route toward ``destination``."""
        now = self.node.sim.now if self.node is not None else 0.0
        self._table[destination] = RouteEntry(destination, next_hop,
                                              metric, updated_at=now)
        if self.node is not None:
            self.node.flush_pending()

    def remove_route(self, destination: MacAddress) -> None:
        self._table.pop(destination, None)

    def next_hop(self, destination: MacAddress) -> Optional[MacAddress]:
        entry = self._table.get(destination)
        return entry.next_hop if entry is not None else None

    def routes(self) -> Dict[MacAddress, RouteEntry]:
        return dict(self._table)
