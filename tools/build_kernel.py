#!/usr/bin/env python
"""Build the optional compiled event-kernel in place.

Compiles ``src/repro/core/_ckernel.c`` into
``src/repro/core/_ckernel.*.so`` next to its source, so ``PYTHONPATH=src``
runs pick it up with no install step.  The extension is a pure
accelerator: when this script fails (no compiler, no headers) the
simulator keeps running on the pure-Python reference kernel with
byte-identical results.

Usage:
    python tools/build_kernel.py            # build (no-op if fresh)
    python tools/build_kernel.py --force    # rebuild even if fresh
    python tools/build_kernel.py --check    # report kernel availability
    python tools/build_kernel.py --clean    # remove built artifacts

Exit status: 0 on success (or --clean), 1 when the build fails or
--check finds no usable extension.
"""

import argparse
import glob
import os
import shutil
import subprocess
import sys
import sysconfig

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO, "src")
C_SOURCE = os.path.join(SRC, "repro", "core", "_ckernel.c")
EXT_GLOB = os.path.join(SRC, "repro", "core", "_ckernel.*.so")


def _built_paths():
    return sorted(glob.glob(EXT_GLOB))


def _ext_path():
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return os.path.join(SRC, "repro", "core", "_ckernel" + suffix)


def clean():
    removed = []
    for path in _built_paths():
        os.remove(path)
        removed.append(path)
    build_dir = os.path.join(REPO, "build")
    if os.path.isdir(build_dir):
        shutil.rmtree(build_dir)
        removed.append(build_dir)
    for path in removed:
        print("removed", os.path.relpath(path, REPO))
    if not removed:
        print("nothing to clean")


def check():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    probe = (
        "from repro.core.engine import ckernel_available, resolve_kernel\n"
        "ok = ckernel_available()\n"
        "print('kernel:', resolve_kernel('auto'),"
        " '(extension %s)' % ('available' if ok else 'not built'))\n"
        "raise SystemExit(0 if ok else 1)\n"
    )
    return subprocess.call([sys.executable, "-c", probe], env=env)


def build(force=False):
    target = _ext_path()
    if (not force and os.path.exists(target)
            and os.path.getmtime(target) >= os.path.getmtime(C_SOURCE)):
        print("fresh:", os.path.relpath(target, REPO))
        return 0

    cc = sysconfig.get_config_var("CC") or "cc"
    include = sysconfig.get_path("include")
    cflags = ["-O2", "-fPIC", "-shared", "-fno-strict-aliasing"]
    cmd = cc.split() + cflags + ["-I", include, C_SOURCE, "-o", target]
    print(" ".join(cmd))
    try:
        subprocess.check_call(cmd)
    except (OSError, subprocess.CalledProcessError) as exc:
        print("build failed (%s); the pure-Python kernel remains in use."
              % exc, file=sys.stderr)
        if os.path.exists(target):
            os.remove(target)
        return 1
    print("built:", os.path.relpath(target, REPO))
    # Import-smoke the fresh extension in a clean interpreter.
    rc = check()
    if rc != 0:
        print("built extension failed its import probe; removing it.",
              file=sys.stderr)
        os.remove(target)
    return rc


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--force", action="store_true",
                        help="rebuild even when the .so is newer than the .c")
    parser.add_argument("--check", action="store_true",
                        help="report whether the compiled kernel is usable")
    parser.add_argument("--clean", action="store_true",
                        help="remove built artifacts")
    args = parser.parse_args(argv)

    if args.clean:
        clean()
        return 0
    if args.check:
        return check()
    return build(force=args.force)


if __name__ == "__main__":
    sys.exit(main())
