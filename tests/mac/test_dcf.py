"""Behavioural tests for the DCF MAC: the protocol exchanges themselves."""

import pytest

from repro.core import Position, Simulator
from repro.mac.addresses import BROADCAST, allocate_address
from repro.mac.dcf import DcfConfig, DcfMac, MacListener
from repro.mac.rate_adapt import fixed_rate_factory
from repro.phy.channel import Medium
from repro.phy.error_models import FixedPerErrorModel
from repro.phy.propagation import FixedLoss, RangePropagation
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio


class Upper(MacListener):
    """Records everything the MAC hands up."""

    def __init__(self):
        self.received = []
        self.mgmt = []
        self.completions = []

    def mac_receive(self, source, destination, payload, meta):
        self.received.append((source, destination, payload, meta))

    def mac_management(self, frame, snr_db):
        self.mgmt.append(frame)

    def mac_tx_complete(self, msdu, success):
        self.completions.append((msdu, success))


def build_network(sim, count=2, loss_db=50.0, config=None,
                  error_model=None, propagation=None):
    """``count`` MACs all in mutual range on a flat medium."""
    medium = Medium(sim, propagation or FixedLoss(loss_db))
    nodes = []
    for index in range(count):
        radio = Radio(f"r{index}", medium, DOT11B,
                      Position(float(index), 0, 0),
                      error_model=error_model)
        address = allocate_address()
        mac = DcfMac(sim, radio, address, config=config,
                     rate_factory=fixed_rate_factory("DSSS-1"))
        upper = Upper()
        mac.listener = upper
        nodes.append((mac, upper))
    return medium, nodes


class TestBasicExchange:
    def test_unicast_delivery_and_ack(self, sim):
        _, nodes = build_network(sim)
        (tx, tx_up), (rx, rx_up) = nodes
        assert tx.send(rx.address, b"hello")
        sim.run(until=0.5)
        assert [entry[2] for entry in rx_up.received] == [b"hello"]
        assert tx_up.completions[0][1] is True
        assert tx.counters.get("rx_ack") == 1
        assert rx.counters.get("rx_data") == 1

    def test_many_frames_in_order(self, sim):
        _, nodes = build_network(sim)
        (tx, _), (rx, rx_up) = nodes
        for index in range(20):
            tx.send(rx.address, bytes([index]))
        sim.run(until=2.0)
        assert [entry[2][0] for entry in rx_up.received] == list(range(20))

    def test_broadcast_no_ack_no_retry(self, sim):
        _, nodes = build_network(sim, count=3)
        (tx, tx_up) = nodes[0]
        tx.send(BROADCAST, b"to everyone")
        sim.run(until=0.5)
        for _mac, upper in nodes[1:]:
            assert [entry[2] for entry in upper.received] == [b"to everyone"]
        assert tx.counters.get("rx_ack") == 0
        assert tx_up.completions[0][1] is True

    def test_bidirectional_traffic(self, sim):
        _, nodes = build_network(sim)
        (a, a_up), (b, b_up) = nodes
        for _ in range(5):
            a.send(b.address, b"ping")
            b.send(a.address, b"pong")
        sim.run(until=2.0)
        assert len(a_up.received) == 5
        assert len(b_up.received) == 5


class TestRetries:
    def test_loss_triggers_retry_and_eventual_delivery(self, sim):
        _, nodes = build_network(sim,
                                 error_model=FixedPerErrorModel(per=0.4))
        (tx, tx_up), (rx, rx_up) = nodes
        for _ in range(10):
            tx.send(rx.address, b"lossy")
        sim.run(until=5.0)
        delivered = sum(1 for _m, ok in tx_up.completions if ok)
        assert delivered >= 8  # retries recover most frames
        assert tx.counters.get("ack_timeouts") > 0

    def test_retry_bit_set_on_retransmission(self, sim):
        _, nodes = build_network(sim,
                                 error_model=FixedPerErrorModel(per=0.5))
        (tx, _), (rx, _) = nodes
        # Sniff at the receiver MAC level.
        rx_mac_sniff = []
        rx.sniffer = lambda frame, snr: rx_mac_sniff.append(frame)
        for _ in range(10):
            tx.send(rx.address, b"x")
        sim.run(until=5.0)
        assert any(frame.is_data and frame.fc.retry
                   for frame in rx_mac_sniff)

    def test_total_loss_drops_at_retry_limit(self, sim):
        config = DcfConfig(short_retry_limit=3)
        _, nodes = build_network(sim, config=config,
                                 error_model=FixedPerErrorModel(per=1.0))
        (tx, tx_up), (rx, rx_up) = nodes
        tx.send(rx.address, b"doomed")
        sim.run(until=5.0)
        assert tx_up.completions == [(tx_up.completions[0][0], False)]
        assert tx.counters.get("msdu_dropped") == 1
        assert rx_up.received == []

    def test_queue_continues_after_drop(self, sim):
        config = DcfConfig(short_retry_limit=2)
        _, nodes = build_network(sim, config=config,
                                 error_model=FixedPerErrorModel(per=1.0))
        (tx, tx_up), (rx, _) = nodes
        tx.send(rx.address, b"first")
        tx.send(rx.address, b"second")
        sim.run(until=5.0)
        assert len(tx_up.completions) == 2
        assert all(not ok for _m, ok in tx_up.completions)


class TestRtsCts:
    def test_rts_used_above_threshold(self, sim):
        config = DcfConfig(rts_threshold_bytes=100)
        _, nodes = build_network(sim, config=config)
        (tx, tx_up), (rx, rx_up) = nodes
        tx.send(rx.address, bytes(500))
        sim.run(until=0.5)
        assert tx.counters.get("tx_rts") == 1
        assert tx.counters.get("rx_cts") == 1
        assert [len(entry[2]) for entry in rx_up.received] == [500]

    def test_rts_skipped_below_threshold(self, sim):
        config = DcfConfig(rts_threshold_bytes=100)
        _, nodes = build_network(sim, config=config)
        (tx, _), (rx, rx_up) = nodes
        tx.send(rx.address, bytes(20))
        sim.run(until=0.5)
        assert tx.counters.get("tx_rts") == 0
        assert len(rx_up.received) == 1

    def test_rts_never_for_broadcast(self, sim):
        config = DcfConfig(rts_threshold_bytes=10)
        _, nodes = build_network(sim, count=3, config=config)
        (tx, _) = nodes[0]
        tx.send(BROADCAST, bytes(500))
        sim.run(until=0.5)
        assert tx.counters.get("tx_rts") == 0

    def test_third_station_defers_via_nav(self, sim):
        """A bystander overhearing RTS must raise its NAV."""
        config = DcfConfig(rts_threshold_bytes=50)
        _, nodes = build_network(sim, count=3, config=config)
        (tx, _), (rx, _), (bystander, _) = nodes
        tx.send(rx.address, bytes(400))
        sim.run(until=0.5)
        assert bystander.counters.get("nav_updates", ) > 0


class TestFragmentation:
    def test_large_msdu_fragmented_and_reassembled(self, sim):
        config = DcfConfig(fragmentation_threshold_bytes=256)
        _, nodes = build_network(sim, config=config)
        (tx, tx_up), (rx, rx_up) = nodes
        payload = bytes(range(256)) * 3  # 768 bytes -> 3 fragments
        tx.send(rx.address, payload)
        sim.run(until=1.0)
        assert [entry[2] for entry in rx_up.received] == [payload]
        assert tx.counters.get("fragments_sent") == 2  # continuations
        assert tx_up.completions[0][1] is True

    def test_fragment_burst_is_acked_per_fragment(self, sim):
        config = DcfConfig(fragmentation_threshold_bytes=300)
        _, nodes = build_network(sim, config=config)
        (tx, _), (rx, _) = nodes
        tx.send(rx.address, bytes(900))
        sim.run(until=1.0)
        assert tx.counters.get("rx_ack") == 3

    def test_small_payload_not_fragmented(self, sim):
        config = DcfConfig(fragmentation_threshold_bytes=256)
        _, nodes = build_network(sim, config=config)
        (tx, _), (rx, rx_up) = nodes
        tx.send(rx.address, bytes(100))
        sim.run(until=0.5)
        assert tx.counters.get("fragments_sent") == 0
        assert len(rx_up.received) == 1


class TestDeduplication:
    def test_duplicate_data_delivered_once(self, sim):
        """Force an ACK-lost retransmission by making the reverse
        direction lossy is hard with a symmetric error model, so verify
        the dedup path at the MAC level instead: the retry of a frame
        whose ACK was lost is ACKed again but not delivered twice."""
        _, nodes = build_network(sim,
                                 error_model=FixedPerErrorModel(per=0.3))
        (tx, tx_up), (rx, rx_up) = nodes
        for index in range(30):
            tx.send(rx.address, bytes([index]))
        sim.run(until=10.0)
        payloads = [entry[2] for entry in rx_up.received]
        assert len(payloads) == len(set(payloads))  # no duplicates up


class TestContention:
    def test_two_saturated_senders_share_the_medium(self, sim):
        _, nodes = build_network(sim, count=3)
        (a, a_up), (b, b_up), (rx, rx_up) = nodes
        for _ in range(30):
            a.send(rx.address, b"A" * 100)
            b.send(rx.address, b"B" * 100)
        sim.run(until=10.0)
        from_a = sum(1 for entry in rx_up.received if entry[2][0:1] == b"A")
        from_b = sum(1 for entry in rx_up.received if entry[2][0:1] == b"B")
        assert from_a == 30
        assert from_b == 30

    def test_contention_produces_backoff_stages(self, sim):
        """With many saturated senders, collisions must occur and the
        contention machinery must engage (ack timeouts observed)."""
        _, nodes = build_network(sim, count=6)
        rx, rx_up = nodes[-1]
        for mac, _upper in nodes[:-1]:
            for _ in range(20):
                mac.send(rx.address, bytes(400))
        sim.run(until=20.0)
        timeouts = sum(mac.counters.get("ack_timeouts")
                       for mac, _ in nodes[:-1])
        assert timeouts > 0
        # Everything is eventually delivered despite collisions.
        assert len(rx_up.received) == 100


class TestManagement:
    def test_unicast_management_is_acked(self, sim):
        from repro.mac.frames import ManagementSubtype
        _, nodes = build_network(sim)
        (tx, _), (rx, rx_up) = nodes
        tx.send_management(ManagementSubtype.AUTHENTICATION, rx.address,
                           b"auth body")
        sim.run(until=0.5)
        assert len(rx_up.mgmt) == 1
        assert rx_up.mgmt[0].body == b"auth body"
        assert tx.counters.get("rx_ack") == 1

    def test_broadcast_management_not_acked(self, sim):
        from repro.mac.frames import ManagementSubtype
        _, nodes = build_network(sim, count=3)
        (tx, _) = nodes[0]
        tx.send_management(ManagementSubtype.BEACON, BROADCAST, b"beacon")
        sim.run(until=0.5)
        assert tx.counters.get("rx_ack") == 0
        for _mac, upper in nodes[1:]:
            assert len(upper.mgmt) == 1


class TestQueueBehaviour:
    def test_queue_overflow_reported(self, sim):
        config = DcfConfig(queue_capacity=4)
        _, nodes = build_network(sim, config=config)
        (tx, _), (rx, _) = nodes
        results = [tx.send(rx.address, b"x") for _ in range(10)]
        assert results.count(False) > 0
        assert tx.counters.get("queue_drops") > 0

    def test_idle_property(self, sim):
        _, nodes = build_network(sim)
        (tx, _), (rx, _) = nodes
        assert tx.idle
        tx.send(rx.address, b"x")
        assert not tx.idle
        sim.run(until=0.5)
        assert tx.idle


class TestSleepingRadio:
    def test_queued_frame_waits_for_wake(self, sim):
        """A MAC whose radio sleeps must not contend (and certainly not
        crash in transmit); the frame goes out after wake()."""
        _, nodes = build_network(sim)
        (tx, tx_up), (rx, rx_up) = nodes
        tx.radio.sleep()
        assert tx.send(rx.address, b"patience")
        sim.run(until=0.2)
        assert rx_up.received == []  # still asleep: nothing sent
        assert tx.radio.state.value == "sleep"
        tx.radio.wake()
        sim.run(until=0.7)
        assert [entry[2] for entry in rx_up.received] == [b"patience"]
        assert tx_up.completions[0][1] is True
