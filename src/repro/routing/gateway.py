"""The mesh↔ESS gateway: a portal bridge into the distribution system.

A community mesh rarely exists in isolation — its whole point is to
backhaul traffic toward a wired network (the source paper's networks
relay toward a handful of internet uplinks).  :class:`MeshGateway`
makes one mesh edge node that uplink:

* **mesh → DS**: packets arriving at the gateway whose final
  destination the mesh routing table does not know leave through the
  ESS portal (:meth:`~repro.net.ds.DistributionSystem
  .inject_from_portal`), decapsulated back to plain MSDUs, and are
  delivered by whichever AP currently serves the destination station —
  roaming inside the ESS stays invisible to the mesh,
* **DS → mesh**: frames the ESS cannot deliver locally fall out of its
  portal hook and are re-originated into the mesh with the true wired
  source as the mesh origin.  Such packets carry
  :data:`~repro.routing.packet.FLAG_FROM_DS`, so a route miss queues
  them for convergence instead of bouncing them straight back into the
  DS.

Interior mesh nodes reach the wired world by pointing
:attr:`MeshNode.default_gateway` at the gateway's address — the
forwarding engine falls back to the gateway route whenever the protocol
has no entry for a destination.
"""

from __future__ import annotations

from ..core.stats import Counter
from ..mac.addresses import MacAddress
from ..net.ds import DistributionSystem
from .node import MeshNode
from .packet import FLAG_FROM_DS


class MeshGateway:
    """Bridges one mesh edge node and one distribution system."""

    def __init__(self, node: MeshNode, ds: DistributionSystem):
        self.node = node
        self.ds = ds
        self.counters = Counter()
        node.bridge = self._mesh_to_ds
        ds.set_portal(self._ds_to_mesh)

    def _mesh_to_ds(self, origin: MacAddress, destination: MacAddress,
                    payload: bytes) -> None:
        self.counters.incr("mesh_to_ds")
        self.ds.inject_from_portal(origin, destination, payload)

    def _ds_to_mesh(self, source: MacAddress, destination: MacAddress,
                    payload: bytes) -> None:
        if destination.is_broadcast or destination.is_multicast:
            # No mesh-wide flooding (yet): a group route can never be
            # installed, so queueing would wedge the packet forever.
            self.counters.incr("ds_group_dropped")
            return
        self.counters.incr("ds_to_mesh")
        accepted = self.node.send(destination, payload, origin=source,
                                  flags=FLAG_FROM_DS)
        if not accepted:
            self.counters.incr("ds_to_mesh_drops")
