"""E2 — Fig 1.13 / §4.3: the PHY rate ladders and automatic rate
step-down ("it will automatically back down from 54 Mbps when the radio
signal is weak").

For every 802.11 family member, sweep the link distance and report the
fastest usable mode at each point (ideal SNR-driven selection over a
log-distance indoor channel).  The series must step down through
exactly the rate ladder the text lists, monotonically.
"""

import pytest

from repro.analysis.tables import render_series, render_table
from repro.core.topology import Position
from repro.core.units import to_mbps
from repro.phy.propagation import LogDistance
from repro.phy.standards import STANDARDS

DISTANCES_M = [1, 5, 10, 20, 30, 50, 75, 100, 150, 200, 300]
FAMILY = ["802.11", "802.11b", "802.11a", "802.11g", "802.11n", "802.11ac"]


def rate_at(standard, model, distance):
    loss = model.path_loss_db(Position(0, 0, 0), Position(distance, 0, 0))
    rx_dbm = standard.default_tx_power_dbm - loss
    snr_db = rx_dbm - standard.noise_floor_dbm
    mode = standard.best_mode_for_snr(snr_db)
    return mode.data_rate_bps if mode is not None else 0.0


def sweep_all():
    series = {}
    for name in FAMILY:
        standard = STANDARDS[name]
        model = LogDistance(standard.band_hz, exponent=3.0)
        series[name] = [rate_at(standard, model, d) for d in DISTANCES_M]
    return series


def test_fig_phy_rates(benchmark, record_result):
    series = benchmark.pedantic(sweep_all, rounds=1, iterations=1)
    points = []
    for index, distance in enumerate(DISTANCES_M):
        points.append([distance] + [to_mbps(series[name][index])
                                    for name in FAMILY])
    text = render_series(
        "E2: PHY rate vs distance (Fig 1.13 rate ladders, ideal selection)",
        "distance_m", FAMILY, points,
        formats=[None] + [".1f"] * len(FAMILY))
    record_result("E2_phy_rates", text)

    for name in FAMILY:
        standard = STANDARDS[name]
        rates = series[name]
        # Monotone step-down with distance.
        assert rates == sorted(rates, reverse=True), name
        # Close in, the top of the ladder; every used rate is a ladder rate.
        assert rates[0] == standard.max_rate_bps, name
        ladder = {mode.data_rate_bps for mode in standard.modes} | {0.0}
        assert all(rate in ladder for rate in rates), name
    # The text's §4.3 relationships hold in the sweep:
    # 802.11b tops at 11, a/g at 54 on their ladder.
    assert to_mbps(max(series["802.11b"])) == 11.0
    assert to_mbps(max(series["802.11a"])) == 54.0
    assert to_mbps(max(series["802.11g"])) == 54.0
    # 5 GHz decays faster than 2.4 GHz: at mid distances g >= a ladder-wise.
    mid = DISTANCES_M.index(75)
    assert series["802.11g"][mid] >= series["802.11a"][mid]
