"""E4 — Fig 1.4: ZigBee star vs mesh vs cluster-tree.

A ring of six routers around a coordinator (ring chord 20 m, range
25 m, so ring neighbours hear each other and everyone hears the
coordinator) is driven with two workloads:

* **adjacent** — each router sends to its ring neighbour,
* **cross** — each router sends to the router across the ring.

The topology defines the forwarding rule:

* star: every frame relays through the coordinator — always 2 hops,
* mesh: shortest path on the true connectivity graph — 1 hop to a
  neighbour, 2 across (via the hub),
* cluster tree: the routers join as a chain of parent/child clusters,
  so cross-ring traffic must climb the branch — 3 hops.

That is the quantitative content of the text's Fig 1.4.
"""

import math

import pytest

from repro.analysis.tables import render_table
from repro.core import Position, Simulator
from repro.wpan.zigbee import DeviceType, Topology, ZigbeeNode, ZigbeePan

RING_RADIUS = 20.0
ROUTERS = 6


def build_pan(sim, topology):
    pan = ZigbeePan(sim, topology, range_m=25.0)
    coordinator = pan.add_node(
        ZigbeeNode("c", Position(0, 0, 0), DeviceType.COORDINATOR))
    routers = []
    for index in range(ROUTERS):
        angle = 2 * math.pi * index / ROUTERS
        position = Position(RING_RADIUS * math.cos(angle),
                            RING_RADIUS * math.sin(angle))
        if topology == Topology.CLUSTER_TREE and index > 0:
            parent = routers[index - 1]  # a chain of clusters
        else:
            parent = coordinator
        router = pan.add_node(
            ZigbeeNode(f"r{index}", position, DeviceType.ROUTER),
            parent=parent)
        routers.append(router)
    return pan, coordinator, routers


def run_workload(topology, kind, rounds=15, seed=7):
    sim = Simulator(seed=seed)
    pan, _coordinator, routers = build_pan(sim, topology)
    step = 1 if kind == "adjacent" else 3
    for round_index in range(rounds):
        for index, router in enumerate(routers):
            peer = routers[(index + step) % ROUTERS]
            sim.schedule(round_index * 0.1 + index * 0.008,
                         lambda s=router.name, d=peer.name:
                         pan.send(s, d, b"sensor reading"))
    sim.run(until=rounds * 0.1 + 5.0)
    return {
        "delivery": pan.delivery_ratio,
        "latency_ms": pan.latency.mean * 1e3,
        "hops": pan.hop_counts.mean,
    }


def run_all():
    results = {}
    for topology in (Topology.STAR, Topology.MESH, Topology.CLUSTER_TREE):
        for kind in ("adjacent", "cross"):
            results[(topology, kind)] = run_workload(topology, kind)
    return results


def test_fig_zigbee_topologies(benchmark, record_result):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    for (topology, kind), result in results.items():
        rows.append([topology.value, kind, result["delivery"],
                     result["latency_ms"], result["hops"]])
    text = render_table(
        "E4: ZigBee topologies under identical workloads (Fig 1.4)",
        ["topology", "workload", "delivery", "latency ms", "mean hops"],
        rows, formats=[None, None, ".3f", ".2f", ".2f"])
    record_result("E4_zigbee_topologies", text)

    star_adj = results[(Topology.STAR, "adjacent")]
    star_cross = results[(Topology.STAR, "cross")]
    mesh_adj = results[(Topology.MESH, "adjacent")]
    mesh_cross = results[(Topology.MESH, "cross")]
    tree_cross = results[(Topology.CLUSTER_TREE, "cross")]
    # Star: the hub makes every device-to-device path exactly 2 hops.
    assert star_adj["hops"] == pytest.approx(2.0, abs=0.01)
    assert star_cross["hops"] == pytest.approx(2.0, abs=0.01)
    # Mesh exploits direct neighbour links.
    assert mesh_adj["hops"] == pytest.approx(1.0, abs=0.01)
    assert mesh_adj["latency_ms"] < star_adj["latency_ms"]
    # The cluster-tree detour costs extra hops on cross traffic.
    assert tree_cross["hops"] > star_cross["hops"]
    assert tree_cross["latency_ms"] > mesh_cross["latency_ms"]
    # Light load: everything is delivered everywhere.
    for result in results.values():
        assert result["delivery"] > 0.9


def test_rfd_leaf_constraint(benchmark):
    """The text: 'a RFD may connect to a cluster-tree network as a leaf
    node at the end of a branch' — RFDs never relay."""

    def run():
        sim = Simulator(seed=9)
        pan, _c, routers = build_pan(sim, Topology.MESH)
        leaves = []
        for index, router in enumerate(routers):
            angle = 2 * math.pi * index / ROUTERS
            leaf = pan.add_node(
                ZigbeeNode(f"leaf{index}",
                           Position(32 * math.cos(angle),
                                    32 * math.sin(angle)),
                           DeviceType.END_DEVICE), parent=router)
            leaves.append(leaf)
        for leaf in leaves:
            pan.send(leaf.name, "c", b"report")
        sim.run(until=5.0)
        return pan, leaves

    pan, leaves = benchmark.pedantic(run, rounds=1, iterations=1)
    assert all(leaf.counters.get("relayed") == 0 for leaf in leaves)
    assert pan.counters.get("received") == len(leaves)
