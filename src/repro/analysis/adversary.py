"""Impact analysis for the adversarial RF subsystem.

Quantifies what an attack *did* — the deltas between a baseline run and
a run under attack — in the three shapes jamming studies report:

* per-station packet-delivery-ratio / throughput deltas
  (:class:`AttackImpact`, :func:`per_station_impact`),
* jammer duty-cycle vs. goodput curves (:func:`duty_cycle_sweep`),
* spatial PDR grids (:func:`spatial_pdr_grid`) showing where in the
  cell an emitter bites.

Everything here is pure data-in/data-out; the runs themselves happen in
the caller (see ``examples/jamming_study.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, \
    Sequence, Tuple

from ..core.topology import Position
from .tables import render_series, render_table


@dataclass(frozen=True)
class AttackImpact:
    """Delivery before vs. under attack, for one station or aggregate."""

    baseline_offered: int
    baseline_delivered: int
    attacked_offered: int
    attacked_delivered: int

    @property
    def baseline_pdr(self) -> float:
        if self.baseline_offered == 0:
            return math.nan
        return self.baseline_delivered / self.baseline_offered

    @property
    def attacked_pdr(self) -> float:
        if self.attacked_offered == 0:
            return math.nan
        return self.attacked_delivered / self.attacked_offered

    @property
    def pdr_delta(self) -> float:
        """Absolute PDR loss (positive = the attack hurt)."""
        return self.baseline_pdr - self.attacked_pdr

    @property
    def degradation(self) -> float:
        """Fraction of baseline delivery destroyed by the attack."""
        if not self.baseline_pdr or math.isnan(self.baseline_pdr):
            return math.nan
        return 1.0 - self.attacked_pdr / self.baseline_pdr

    def throughput_ratio(self, baseline_bytes: int,
                         attacked_bytes: int) -> float:
        """Attacked/baseline goodput over identical horizons."""
        if baseline_bytes == 0:
            return math.nan
        return attacked_bytes / baseline_bytes


#: (offered, delivered) counts keyed by station name.
DeliveryCounts = Mapping[str, Tuple[int, int]]


def per_station_impact(baseline: DeliveryCounts,
                       attacked: DeliveryCounts) -> Dict[str, AttackImpact]:
    """Per-station impacts from two runs' (offered, delivered) maps.

    Stations missing from either run are skipped — a station the
    attack disassociated entirely shows up as ``attacked_offered == 0``
    only if the caller recorded it, which is the honest accounting.
    """
    impacts = {}
    for name, (base_offered, base_delivered) in baseline.items():
        attacked_counts = attacked.get(name)
        if attacked_counts is None:
            continue
        impacts[name] = AttackImpact(
            baseline_offered=base_offered,
            baseline_delivered=base_delivered,
            attacked_offered=attacked_counts[0],
            attacked_delivered=attacked_counts[1])
    return impacts


def aggregate_impact(impacts: Mapping[str, AttackImpact]) -> AttackImpact:
    """Sum per-station counts into one cell-wide impact figure."""
    return AttackImpact(
        baseline_offered=sum(i.baseline_offered for i in impacts.values()),
        baseline_delivered=sum(i.baseline_delivered
                               for i in impacts.values()),
        attacked_offered=sum(i.attacked_offered for i in impacts.values()),
        attacked_delivered=sum(i.attacked_delivered
                               for i in impacts.values()))


def render_impact_table(title: str,
                        impacts: Mapping[str, AttackImpact]) -> str:
    """Boxed per-station PDR table, worst-hit station first."""
    rows = [[name, impact.baseline_pdr, impact.attacked_pdr,
             impact.pdr_delta, impact.degradation]
            for name, impact in sorted(
                impacts.items(),
                key=lambda item: -(item[1].pdr_delta
                                   if not math.isnan(item[1].pdr_delta)
                                   else -math.inf))]
    return render_table(
        title, ["station", "PDR", "PDR (attack)", "delta", "degraded"],
        rows, formats=[None, ".3f", ".3f", "+.3f", ".1%"])


def duty_cycle_sweep(run: Callable[[float], float],
                     duties: Sequence[float]) -> List[Tuple[float, float]]:
    """Measure goodput at each jammer duty cycle.

    ``run`` executes one full experiment at the given duty cycle and
    returns its goodput (bps or delivered count — the caller's unit);
    the sweep simply collects the curve in order.
    """
    return [(duty, run(duty)) for duty in duties]


def render_duty_curve(points: Sequence[Tuple[float, float]],
                      unit: str = "bps") -> str:
    """The duty-cycle/goodput curve as a two-column series table."""
    return render_series("jammer duty cycle vs. goodput", "duty",
                         [f"goodput ({unit})"],
                         [[duty, goodput] for duty, goodput in points],
                         formats=[".2f", ".0f"])


def spatial_pdr_grid(samples: Iterable[Tuple[Position, float]],
                     cell_m: float,
                     ) -> Dict[Tuple[int, int], float]:
    """Bin per-station PDRs onto a square grid (mean per cell).

    Keys are ``(col, row)`` cell indices (``floor(x / cell_m)``,
    ``floor(y / cell_m)``) so adjacent cells tile the plane; values are
    the mean PDR of the stations inside.  Feed it per-station positions
    and PDRs from a run under attack to see the emitter's footprint.
    """
    if cell_m <= 0.0:
        raise ValueError("cell_m must be positive")
    sums: Dict[Tuple[int, int], Tuple[float, int]] = {}
    for position, pdr in samples:
        key = (math.floor(position.x / cell_m),
               math.floor(position.y / cell_m))
        total, count = sums.get(key, (0.0, 0))
        sums[key] = (total + pdr, count + 1)
    return {key: total / count for key, (total, count) in sums.items()}


def render_pdr_grid(grid: Mapping[Tuple[int, int], float],
                    empty: str = "  .  ") -> str:
    """ASCII heat-map of a :func:`spatial_pdr_grid` result.

    Rows are printed north-up (max row first); populated cells show
    the mean PDR to two decimals.
    """
    if not grid:
        return "(empty grid)"
    cols = [key[0] for key in grid]
    rows = [key[1] for key in grid]
    lines = []
    for row in range(max(rows), min(rows) - 1, -1):
        cells = []
        for col in range(min(cols), max(cols) + 1):
            value = grid.get((col, row))
            cells.append(f" {value:.2f}" if value is not None else empty)
        lines.append("".join(cells))
    return "\n".join(lines)
