"""Crash/restart fault injection and the graceful-degradation paths."""

import pytest

from repro import scenarios
from repro.core import Position, Simulator
from repro.core.errors import ConfigurationError
from repro.faults import ChaosMonkey, FaultLog, FaultSchedule
from repro.mac.addresses import reset_allocator
from repro.net.station import StationState
from repro.phy.transceiver import RadioState
from repro.routing import DsdvRouting
from repro.traffic.sink import TrafficSink


def _bss(sim, stations=2):
    return scenarios.build_infrastructure_bss(sim, station_count=stations)


class TestStationCrash:
    def test_crash_drops_association_and_powers_off(self, sim):
        bss = _bss(sim)
        station = bss.stations[0]
        assert station.associated
        station.crash()
        assert not station.associated
        assert station.state is StationState.IDLE
        assert station.radio.state is RadioState.SLEEP
        assert station.serving_ap is None
        assert len(station.mac.queue) == 0
        assert station.sta_counters.get("crashes") == 1

    def test_crash_fires_disassociation_hooks(self, sim):
        bss = _bss(sim)
        station = bss.stations[0]
        fired = []
        station.on_disassociated(lambda: fired.append(sim.now))
        station.crash()
        assert fired == [sim.now]

    def test_restart_reassociates(self, sim):
        bss = _bss(sim)
        station = bss.stations[0]
        station.crash()
        sim.run(until=sim.now + 0.2)
        station.restart()
        sim.run(until=sim.now + 2.0)
        assert station.associated
        assert station.sta_counters.get("restarts") == 1

    def test_crash_is_seed_deterministic(self):
        def run():
            reset_allocator()
            sim = Simulator(seed=9)
            bss = _bss(sim)
            station = bss.stations[0]
            sim.schedule_at(sim.now + 0.1, station.crash)
            sim.schedule_at(sim.now + 0.4, station.restart)
            sim.run(until=sim.now + 3.0)
            return (sim.events_executed,
                    dict(station.sta_counters.as_dict()))
        assert run() == run()


class TestScanResilience:
    def test_scan_against_dead_ap_does_not_hang(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=1,
                                                 associate=False)
        bss.ap.crash()
        station = bss.stations[0]
        station.associate(bss.ap.ssid)
        sim.run(until=10.0)
        # The station retries with backoff forever but the run advances
        # to the horizon: no livelock, no exception.
        assert sim.now == 10.0
        assert not station.associated
        assert station.sta_counters.get("scan_empty") > 1

    def test_rescan_backoff_spaces_out_attempts(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=1,
                                                 associate=False)
        bss.ap.crash()
        station = bss.stations[0]
        station.associate(bss.ap.ssid)
        sim.run(until=2.0)
        early = station.sta_counters.get("scan_empty")
        sim.run(until=20.0)
        late = station.sta_counters.get("scan_empty")
        # Exponential backoff (capped at RESCAN_CAP): the tail interval
        # is far longer than the first, so 9x the time gives far fewer
        # than 9x the scans.
        assert late - early < early * 9
        assert station.sta_counters.get("scan_empty") > 2

    def test_max_scan_failures_abandons(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=1,
                                                 associate=False)
        bss.ap.crash()
        station = bss.stations[0]
        station.max_scan_failures = 3
        station.associate(bss.ap.ssid)
        sim.run(until=30.0)
        assert station.state is StationState.IDLE
        assert station.sta_counters.get("scan_empty") == 3
        assert station.sta_counters.get("scan_abandoned") == 1

    def test_recovery_after_ap_restart(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=1,
                                                 associate=False)
        bss.ap.crash()
        station = bss.stations[0]
        station.associate(bss.ap.ssid)
        sim.run(until=1.0)
        assert not station.associated
        bss.ap.restart()
        sim.run(until=8.0)
        assert station.associated


class TestApCrash:
    def test_crash_clears_associations_and_stops_beacons(self, sim):
        bss = _bss(sim, stations=3)
        bss.ap.crash()
        assert bss.ap.station_count == 0
        assert bss.ap.radio.state is RadioState.SLEEP
        assert bss.ap.ap_counters.get("crashes") == 1

    def test_stations_reassociate_after_restart(self, sim):
        bss = _bss(sim, stations=3)
        sink = TrafficSink(sim)
        bss.ap.on_receive(sink)
        crash_at = sim.now + 0.2
        sim.schedule_at(crash_at, bss.ap.crash)
        sim.schedule_at(crash_at + 0.3, bss.ap.restart)
        # Stations keep offering uplink; the AP's class-3 deauth
        # answers teach them to rescan, and they rejoin post-restart.
        for station in bss.stations:
            def _uplink(payload, _s=station):
                if not _s.associated:
                    return False
                return _s.send(bss.ap.address, payload)
            from repro.traffic.generators import CbrSource
            CbrSource(sim, _uplink, packet_bytes=100, interval=0.05)
        sim.run(until=crash_at + 4.0)
        assert all(station.associated for station in bss.stations)
        assert bss.ap.ap_counters.get("unassociated_data") > 0

    def test_reap_config_survives_crash(self, sim):
        bss = _bss(sim)
        bss.ap.start_reaping(idle_timeout=0.5)
        bss.ap.crash()
        assert bss.ap._reap_task is None
        bss.ap.restart()
        assert bss.ap._reap_task is not None


class TestStaleStationReaping:
    def test_crashed_station_is_reaped(self, sim):
        bss = _bss(sim, stations=1)
        bss.ap.start_reaping(idle_timeout=0.3, interval=0.1)
        victim = bss.stations[0]
        victim.crash()
        assert victim.address in bss.ap.associations
        sim.run(until=sim.now + 1.0)
        assert victim.address not in bss.ap.associations
        assert bss.ap.ap_counters.get("removed_stale") == 1

    def test_live_station_is_not_reaped(self, sim):
        bss = _bss(sim, stations=1)
        station = bss.stations[0]
        bss.ap.start_reaping(idle_timeout=0.5, interval=0.1)
        from repro.traffic.generators import CbrSource
        CbrSource(sim, lambda p: station.send(bss.ap.address, p),
                  packet_bytes=100, interval=0.1)
        sim.run(until=sim.now + 2.0)
        assert station.address in bss.ap.associations
        assert bss.ap.ap_counters.get("removed_stale") == 0

    def test_stop_reaping(self, sim):
        bss = _bss(sim, stations=1)
        bss.ap.start_reaping(idle_timeout=0.1, interval=0.05)
        bss.ap.stop_reaping()
        bss.stations[0].crash()
        sim.run(until=sim.now + 1.0)
        assert bss.stations[0].address in bss.ap.associations


class TestDsdvRestart:
    def _grid(self, sim):
        mesh = scenarios.build_mesh_network(
            sim, scenarios.chain_topology(4, 30.0), DsdvRouting,
            range_m=40.0)
        mesh.start_routing()
        return mesh

    def test_restart_clears_table_and_rejoins(self, sim):
        mesh = self._grid(sim)
        sim.run(until=1.0)
        relay = mesh.nodes[1]
        assert relay.protocol.routes()
        sequence_before = relay.protocol._sequence
        relay.crash()
        relay.restart()
        # The table was RAM: the reboot comes up empty and must relearn.
        assert relay.protocol.routes() == {}
        # Fresh-but-higher even sequence: DSDV's stable-storage rule.
        assert relay.protocol._sequence == sequence_before + 2
        assert relay.protocol._sequence % 2 == 0
        sim.run(until=3.0)
        assert relay.protocol.next_hop(mesh.nodes[3].address) is not None

    def test_traffic_resumes_after_relay_crash(self, sim):
        mesh = self._grid(sim)
        sink = TrafficSink(sim)
        mesh.nodes[3].on_receive(sink)
        from repro.traffic.generators import CbrSource
        source = CbrSource(sim, mesh.nodes[0].sender(mesh.nodes[3].address),
                           packet_bytes=100, interval=0.05, start=0.5)
        relay = mesh.nodes[1]
        sim.schedule_at(1.0, relay.crash)
        sim.schedule_at(1.5, relay.restart)
        sim.run(until=1.0)
        before = sink.total_received
        assert before > 0
        sim.run(until=5.0)
        # The chain has no alternate path: delivery must resume through
        # the rebooted relay.
        assert sink.total_received > before


class TestFaultSchedule:
    def test_entries_fire_in_order_and_log(self, sim):
        fired = []
        log = FaultLog()
        schedule = FaultSchedule(sim, log=log)
        schedule.at(0.2, lambda: fired.append("b"), "custom", "b")
        schedule.at(0.1, lambda: fired.append("a"), "custom", "a")
        schedule.at(0.2, lambda: fired.append("c"), "custom", "c")
        schedule.install()
        sim.run(until=1.0)
        assert fired == ["a", "b", "c"]   # time order; ties by insertion
        assert [r.target for r in log] == ["a", "b", "c"]
        assert schedule.counters.get("custom") == 3

    def test_crash_verb_schedules_restart(self, sim):
        bss = _bss(sim)
        station = bss.stations[0]
        crash_at = sim.now + 0.1
        FaultSchedule(sim).crash(station, at=crash_at,
                                 down_for=0.2).install()
        sim.run(until=crash_at + 0.05)
        assert not station.associated
        sim.run(until=crash_at + 3.0)
        assert station.associated

    def test_double_install_rejected(self, sim):
        schedule = FaultSchedule(sim)
        schedule.install()
        with pytest.raises(ConfigurationError):
            schedule.install()

    def test_trace_is_byte_deterministic(self):
        def run():
            reset_allocator()
            sim = Simulator(seed=4)
            bss = _bss(sim)
            log = FaultLog()
            schedule = FaultSchedule(sim, log=log)
            schedule.crash(bss.stations[0], at=0.3, down_for=0.4)
            schedule.crash(bss.ap, at=0.8, down_for=0.2)
            schedule.install()
            sim.run(until=3.0)
            return log.to_jsonl()
        trace = run()
        assert trace == run()
        assert len(trace.splitlines()) == 4


class TestChaosMonkey:
    def test_strikes_and_restores_deterministically(self):
        def run():
            reset_allocator()
            sim = Simulator(seed=6)
            bss = _bss(sim, stations=3)
            log = FaultLog()
            monkey = ChaosMonkey(sim, targets=bss.stations,
                                 mean_interval=0.1, mean_downtime=0.15,
                                 log=log)
            monkey.start()
            sim.schedule_at(sim.now + 1.0, monkey.stop)
            sim.schedule_at(sim.now + 1.0, monkey.restore_all)
            sim.run(until=sim.now + 3.0)
            return log.to_jsonl(), dict(monkey.counters.as_dict())
        first = run()
        assert first == run()
        trace, counters = first
        assert counters["strikes"] >= 1
        assert counters["strikes"] == counters["restores"]

    def test_restore_all_brings_everything_back(self, sim):
        bss = _bss(sim, stations=3)
        monkey = ChaosMonkey(sim, targets=bss.stations,
                             mean_interval=0.02, mean_downtime=50.0)
        monkey.start()
        sim.run(until=sim.now + 1.0)
        assert monkey._down
        monkey.stop()
        monkey.restore_all()
        assert not monkey._down
        sim.run(until=sim.now + 5.0)
        assert all(station.associated for station in bss.stations)

    def test_max_faults_bounds_the_storm(self, sim):
        bss = _bss(sim, stations=2)
        monkey = ChaosMonkey(sim, targets=bss.stations,
                             mean_interval=0.01, mean_downtime=0.01,
                             max_faults=3)
        monkey.start()
        sim.run(until=sim.now + 5.0)
        assert monkey.counters.get("strikes") == 3

    def test_needs_targets(self, sim):
        with pytest.raises(ConfigurationError):
            ChaosMonkey(sim, targets=[])

    def test_chaos_stream_does_not_perturb_traffic(self):
        """Adding a monkey that never strikes must leave the rest of
        the simulation bit-identical: its randomness is stream-local."""
        def run(with_monkey):
            reset_allocator()
            from repro.traffic.generators import _SourceBase
            _SourceBase._next_flow_id = 1
            sim = Simulator(seed=12)
            bss = _bss(sim, stations=2)
            if with_monkey:
                monkey = ChaosMonkey(sim, targets=bss.stations,
                                     mean_interval=1e9)
                monkey.start()
            from repro.traffic.generators import CbrSource
            sink = TrafficSink(sim)
            bss.ap.on_receive(sink)
            CbrSource(sim,
                      lambda p: bss.stations[0].send(bss.ap.address, p),
                      packet_bytes=100, interval=0.02)
            sim.run(until=sim.now + 2.0)
            return sink.total_received
        assert run(False) == run(True)
