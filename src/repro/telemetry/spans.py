"""Frame-lifecycle span tracing.

Where :mod:`repro.telemetry.metrics` answers "how many / how deep",
spans answer "what happened to *this* frame": one :class:`Span` covers
an MSDU's whole life at its sender — enqueue, the contention wait,
every transmit attempt and retry, and the terminal delivered/dropped
edge — with repr-exact sim-time stamps, so a tail-latency outlier can
be traced to the exact retry chain that produced it.

The collection side follows the :class:`~repro.core.trace.TraceLog`
philosophy: a :class:`SpanLog` is a bounded ring buffer
(``deque(maxlen=...)``) with a per-span-type enable mask, and
:meth:`SpanLog.wants` lets hot call sites skip even building the
record.  The emission side rides the one-slot ``_frame_probe`` hook on
:class:`~repro.mac.dcf.DcfMac` — a single ``is not None`` test per
lifecycle edge, nothing when telemetry is off.
"""

from __future__ import annotations

from collections import deque
from typing import (Any, Callable, Deque, Dict, FrozenSet, Iterator, List,
                    Optional, Tuple)

__all__ = ["Span", "SpanLog", "FrameSpanTracker",
           "FRAME_ENQUEUE", "FRAME_TX", "FRAME_RETRY", "FRAME_DELIVERED",
           "FRAME_DROPPED", "FRAME_RX"]

#: Frame-lifecycle event names emitted by the DcfMac hook.
FRAME_ENQUEUE = "enqueue"
FRAME_TX = "tx"
FRAME_RETRY = "retry"
FRAME_DELIVERED = "delivered"
FRAME_DROPPED = "dropped"
FRAME_RX = "rx"


class Span:
    """One closed (or still-open) lifecycle span."""

    __slots__ = ("span_type", "subject", "start", "end", "outcome",
                 "attrs")

    def __init__(self, span_type: str, subject: str, start: float,
                 end: Optional[float] = None, outcome: str = "open",
                 attrs: Optional[Dict[str, Any]] = None):
        self.span_type = span_type
        self.subject = subject
        self.start = start
        self.end = end
        self.outcome = outcome
        self.attrs = attrs if attrs is not None else {}

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.span_type} {self.subject} "
                f"[{self.start!r}..{self.end!r}] {self.outcome}>")


class SpanLog:
    """Bounded ring buffer of spans with a per-span-type enable mask."""

    def __init__(self, capacity: Optional[int] = 65_536,
                 enabled: bool = True):
        self._spans: Deque[Span] = deque(maxlen=capacity)
        self.enabled = enabled
        self._type_mask: Optional[FrozenSet[str]] = None
        self._dropped = 0

    @property
    def capacity(self) -> Optional[int]:
        return self._spans.maxlen

    @property
    def dropped(self) -> int:
        """Spans discarded at the capacity bound."""
        return self._dropped

    # --- enable mask -------------------------------------------------------

    def enable_only(self, *span_types: str) -> None:
        """Record only the named span types."""
        self._type_mask = frozenset(span_types)

    def enable_all(self) -> None:
        self._type_mask = None

    def wants(self, span_type: str) -> bool:
        """Hot-path pre-check: would :meth:`record` keep this type?"""
        if not self.enabled:
            return False
        mask = self._type_mask
        return mask is None or span_type in mask

    # --- recording ---------------------------------------------------------

    def record(self, span: Span) -> None:
        """Append a span (callers should have checked :meth:`wants`)."""
        spans = self._spans
        if spans.maxlen is not None and len(spans) == spans.maxlen:
            self._dropped += 1
        spans.append(span)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def select(self, span_type: Optional[str] = None,
               outcome: Optional[str] = None) -> List[Span]:
        out = []
        for span in self._spans:
            if span_type is not None and span.span_type != span_type:
                continue
            if outcome is not None and span.outcome != outcome:
                continue
            out.append(span)
        return out

    def clear(self) -> None:
        self._spans.clear()


class FrameSpanTracker:
    """Builds frame-lifecycle spans from the DcfMac ``_frame_probe`` hook.

    One tracker serves any number of MACs: :meth:`attach` installs a
    bound dispatcher as the MAC's probe and remembers how to detach it.
    Open spans are keyed by MSDU identity (``id(msdu)`` — MSDUs are
    unhashable dataclasses, and an MSDU is in flight at exactly one
    MAC; a queued/in-flight MSDU is referenced by its MAC, so its id
    cannot be recycled while its span is open), so enqueue, the
    transmit attempts, retries and the terminal edge all land on the
    same span.

    Per-span attrs: ``first_tx`` (sim time of the first on-air
    attempt; None if the frame died queued), ``attempts`` (data
    transmissions), ``retries`` (response timeouts that led to a
    retry).  Receiver-side ``rx`` events don't open spans — delivery
    is the sender's span outcome — but are counted per MAC so the
    export still shows who actually received.
    """

    def __init__(self, spans: SpanLog):
        self.spans = spans
        self._open: Dict[int, Span] = {}
        self._detach: List[Callable[[], None]] = []
        self.rx_frames: Dict[str, int] = {}

    def attach(self, mac: Any, name: Optional[str] = None) -> None:
        """Install this tracker as ``mac``'s frame probe."""
        label = name if name is not None else str(mac.address)
        sim = mac.sim

        def _probe(event: str, msdu: Any, _label: str = label,
                   _sim: Any = sim) -> None:
            self._dispatch(event, msdu, _label, _sim._now)

        mac._frame_probe = _probe

        def _undo(_mac: Any = mac) -> None:
            _mac._frame_probe = None

        self._detach.append(_undo)

    def detach_all(self) -> None:
        for undo in self._detach:
            undo()
        self._detach.clear()

    # --- dispatch ----------------------------------------------------------

    def _dispatch(self, event: str, msdu: Any, label: str,
                  now: float) -> None:
        if event is FRAME_RX or event == FRAME_RX:
            self.rx_frames[label] = self.rx_frames.get(label, 0) + 1
            return
        if not self.spans.wants("frame"):
            return
        if event == FRAME_ENQUEUE:
            self._open[id(msdu)] = Span("frame", label, now, attrs={
                "first_tx": None, "attempts": 0, "retries": 0})
            return
        span = self._open.get(id(msdu))
        if span is None:
            return  # enqueued before the tracker attached, or masked
        if event == FRAME_TX:
            attrs = span.attrs
            if attrs["first_tx"] is None:
                attrs["first_tx"] = now
            attrs["attempts"] += 1
        elif event == FRAME_RETRY:
            span.attrs["retries"] += 1
        elif event == FRAME_DELIVERED or event == FRAME_DROPPED:
            del self._open[id(msdu)]
            span.end = now
            span.outcome = event
            self.spans.record(span)

    # --- wind-down ---------------------------------------------------------

    def finish(self, now: float) -> None:
        """Close still-open spans at the horizon (outcome ``open``).

        Open spans flush in their enqueue order — the dict preserves
        insertion order and enqueue times are monotone per MAC, so the
        flush order is deterministic.
        """
        if not self._open:
            return
        for msdu, span in self._open.items():
            span.end = now
            span.outcome = "open"
            self.spans.record(span)
        self._open.clear()

    def open_count(self) -> int:
        return len(self._open)
