"""Sharded parallel execution with conservative-lookahead synchronization.

The package splits a scenario into *cells* (:class:`CellSpec`), derives
which cells can possibly exchange energy (channel orthogonality + the
energy-floor reachability probe, :func:`partition_cells`), and runs the
resulting shards in worker processes that synchronize only through
boundary arrivals under a conservative lookahead equal to the minimum
cross-shard propagation delay (:func:`run_sharded`).
:func:`run_single` executes the identical cell list on one kernel — the
differential reference the equivalence tests compare against.

See README, "Sharded execution", for the determinism contract and the
partitioning rules.
"""

from .executor import ArrivalLog, CellBuild, run_sharded, run_single
from .partition import (CellSpec, Coupling, ShardPlan, find_couplings,
                        partition_cells)
from .shard import BoundaryRecord, ShardMedium

__all__ = [
    "ArrivalLog",
    "BoundaryRecord",
    "CellBuild",
    "CellSpec",
    "Coupling",
    "ShardMedium",
    "ShardPlan",
    "find_couplings",
    "partition_cells",
    "run_sharded",
    "run_single",
]
