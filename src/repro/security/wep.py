"""WEP — Wired Equivalent Privacy — and the attacks that killed it.

WEP encapsulation (source text §5.2, first security generation):

* a 24-bit IV is prepended to the shared key; RC4(iv || key) produces
  the keystream,
* integrity is a plain CRC-32 ("ICV") over the plaintext, encrypted
  along with it,
* the IV travels in the clear in front of the ciphertext.

Both design flaws the text alludes to are implemented as working
attacks:

* :func:`forge_bitflip` — CRC-32 is linear, so an attacker can flip
  arbitrary plaintext bits in a captured frame and fix the ICV without
  knowing the key ("An attacker could recalculate the ordinary FCS...").
* :class:`FmsAttack` — the Fluhrer–Mantin–Shamir weak-IV key recovery:
  IVs of the form (A+3, 255, X) leak key byte A through the first
  keystream byte, which is always known in 802.11 because every data
  frame starts with the 0xAA LLC/SNAP header byte.

:class:`WeakIvTrafficOracle` simulates a busy WEP network emitting
frames with an incrementing IV and hands the attacker exactly what a
sniffer would get, while counting total frames — so the benchmark can
report "frames observed until key recovery" without materializing
millions of uninteresting frames.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.errors import IntegrityError, SecurityError
from ..mac.fcs import crc32
from .rc4 import crypt as rc4_crypt
from .rc4 import ksa, prga

#: Identity permutation for the partial-KSA vote loop.
_IDENTITY = bytes(range(256))


def _xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings (big-int trick: one C-level op
    chain instead of a per-byte Python loop)."""
    length = len(a)
    return (int.from_bytes(a, "big") ^ int.from_bytes(b, "big")
            ).to_bytes(length, "big")

#: The first plaintext byte of every 802.11 data frame body (LLC DSAP).
SNAP_FIRST_BYTE = 0xAA

IV_LEN = 3
ICV_LEN = 4
#: Per-frame overhead WEP adds: IV (3) + key-id (1) + ICV (4).
WEP_OVERHEAD = IV_LEN + 1 + ICV_LEN

WEP40_KEY_LEN = 5    # "64-bit WEP"  = 40-bit key + 24-bit IV
WEP104_KEY_LEN = 13  # "128-bit WEP" = 104-bit key + 24-bit IV
WEP232_KEY_LEN = 29  # "256-bit WEP" = 232-bit key + 24-bit IV


def _icv(plaintext: bytes) -> bytes:
    return crc32(plaintext).to_bytes(4, "little")


class WepCipher:
    """Seal/open WEP frame bodies under a static shared key."""

    def __init__(self, key: bytes, key_id: int = 0):
        if len(key) not in (WEP40_KEY_LEN, WEP104_KEY_LEN, WEP232_KEY_LEN):
            raise SecurityError(
                f"WEP key must be 5, 13 or 29 bytes, got {len(key)}")
        if not 0 <= key_id <= 3:
            raise SecurityError(f"key id must be 0..3, got {key_id}")
        self.key = key
        self.key_id = key_id
        self._iv_counter = itertools.count()

    def next_iv(self) -> bytes:
        """Sequential IV generation, as most real implementations did."""
        value = next(self._iv_counter) % (1 << 24)
        return value.to_bytes(3, "big")

    def encrypt(self, plaintext: bytes, iv: Optional[bytes] = None) -> bytes:
        """Encapsulate: returns iv || key_id || RC4(plaintext || ICV)."""
        if iv is None:
            iv = self.next_iv()
        if len(iv) != IV_LEN:
            raise SecurityError(f"IV must be 3 bytes, got {len(iv)}")
        keystream_key = iv + self.key
        sealed = rc4_crypt(keystream_key, plaintext + _icv(plaintext))
        return iv + bytes([self.key_id << 6]) + sealed

    def decrypt(self, body: bytes) -> bytes:
        """Decapsulate; raises :class:`IntegrityError` on a bad ICV."""
        if len(body) < WEP_OVERHEAD:
            raise SecurityError(f"WEP body too short: {len(body)}")
        iv, ciphertext = body[:IV_LEN], body[IV_LEN + 1:]
        opened = rc4_crypt(iv + self.key, ciphertext)
        plaintext, icv = opened[:-ICV_LEN], opened[-ICV_LEN:]
        if _icv(plaintext) != icv:
            raise IntegrityError("WEP ICV check failed")
        return plaintext


# --- attack 1: CRC linearity bit-flip ----------------------------------------

def forge_bitflip(wep_body: bytes, delta: bytes) -> bytes:
    """Flip plaintext bits in a captured WEP frame without the key.

    ``delta`` is XORed into the plaintext (must not extend past it).
    Because CRC-32 is linear over GF(2),

        icv(p ^ d) = icv(p) ^ icv(d) ^ icv(0)

    so XORing ``d || (crc(d) ^ crc(0))`` into the ciphertext yields a
    frame that still passes the ICV check when decrypted.
    """
    payload_len = len(wep_body) - WEP_OVERHEAD
    if len(delta) > payload_len:
        raise SecurityError("delta longer than the encrypted payload")
    delta = delta + bytes(payload_len - len(delta))
    icv_delta = crc32(delta) ^ crc32(bytes(payload_len))
    patch = delta + icv_delta.to_bytes(4, "little")
    header = wep_body[:IV_LEN + 1]
    sealed = wep_body[IV_LEN + 1:]
    return header + _xor_bytes(sealed, patch)


# --- attack 2: FMS weak-IV key recovery ---------------------------------------

@dataclass(frozen=True)
class WeakIvSample:
    """One sniffed frame useful to FMS: its IV and first keystream byte."""

    iv: bytes
    first_keystream_byte: int


def first_keystream_byte(wep_body: bytes) -> int:
    """Recover keystream[0] from a sniffed frame (plaintext starts 0xAA)."""
    first_cipher_byte = wep_body[IV_LEN + 1]
    return first_cipher_byte ^ SNAP_FIRST_BYTE


def is_weak_iv(iv: bytes, key_byte_index: int) -> bool:
    """FMS-weak IV for key byte ``A``: (A+3, 255, X)."""
    return iv[0] == key_byte_index + 3 and iv[1] == 0xFF


class FmsAttack:
    """Fluhrer–Mantin–Shamir key recovery from weak-IV samples.

    Feed samples with :meth:`observe`; :meth:`recover_key` attempts the
    byte-by-byte recovery, returning the key when every byte gathers
    enough votes, else ``None``.
    """

    def __init__(self, key_len: int, min_votes: int = 60):
        if key_len not in (WEP40_KEY_LEN, WEP104_KEY_LEN, WEP232_KEY_LEN):
            raise SecurityError(f"unsupported key length {key_len}")
        self.key_len = key_len
        self.min_votes = min_votes
        self._samples: Dict[int, List[WeakIvSample]] = {
            index: [] for index in range(key_len)}

    def observe(self, sample: WeakIvSample) -> bool:
        """Store the sample if it is weak for some key byte."""
        for index in range(self.key_len):
            if is_weak_iv(sample.iv, index):
                self._samples[index].append(sample)
                return True
        return False

    def samples_for(self, index: int) -> int:
        return len(self._samples[index])

    def _vote(self, sample: WeakIvSample, known_prefix: bytes) -> Optional[int]:
        """One FMS vote for key byte ``len(known_prefix)``, or None if the
        KSA state is not 'resolved' for this sample."""
        a = len(known_prefix)
        steps = a + 3
        key = sample.iv + known_prefix
        key_len = len(key)
        state = bytearray(_IDENTITY)
        j = 0
        for i in range(steps):
            j = (j + state[i] + key[i % key_len]) & 0xFF
            state[i], state[j] = state[j], state[i]
        # Resolved condition: the first output depends on S[1]+S[S[1]].
        if state[1] >= steps or (state[1] + state[state[1]]) & 0xFF != steps:
            return None
        # The permutation is a bijection over 0..255, so the inverse
        # lookup is a C-level bytearray search instead of building a
        # full 256-entry inverse table per vote.
        position = state.index(sample.first_keystream_byte)
        return (position - j - state[steps]) & 0xFF

    def recover_key(self) -> Optional[bytes]:
        """Attempt full-key recovery; None when evidence is insufficient."""
        recovered = bytearray()
        for index in range(self.key_len):
            votes = [0] * 256
            counted = 0
            for sample in self._samples[index]:
                vote = self._vote(sample, bytes(recovered))
                if vote is not None:
                    votes[vote] += 1
                    counted += 1
            if counted < self.min_votes:
                return None
            recovered.append(max(range(256), key=votes.__getitem__))
        return bytes(recovered)


class WeakIvTrafficOracle:
    """Simulates sniffing a busy WEP network, cheaply.

    The network sends frames with a sequentially incrementing IV (the
    common implementation).  Materializing millions of frames in Python
    is pointless: only the weak-IV frames carry information for FMS, so
    the oracle steps the IV counter arithmetically and emits exactly the
    weak-IV samples a sniffer would have kept, while
    :attr:`frames_observed` counts every frame that went past.
    """

    def __init__(self, cipher: WepCipher):
        self.cipher = cipher
        self.frames_observed = 0
        self._iv_value = 0

    def sniff_weak_samples(self, frame_budget: int,
                           key_len: Optional[int] = None
                           ) -> Iterable[WeakIvSample]:
        """Observe ``frame_budget`` more frames, yielding the weak
        samples among them.

        The IV counter is stepped *arithmetically*: weak IVs of the form
        ``(A+3, 0xFF, X)`` occupy 256-frame runs at known offsets inside
        every 65536-frame block, so instead of iterating every IV this
        jumps from weak run to weak run and accounts for the skipped
        frames in bulk.  Sample order and values are identical to the
        frame-by-frame walk; only the Python work is proportional to the
        weak frames rather than all frames.

        Note the whole budget is charged to :attr:`frames_observed` when
        iteration starts (callers in this library always drain the
        generator).
        """
        key_len = key_len if key_len is not None else len(self.cipher.key)
        weak_firsts = {index + 3 for index in range(key_len)}
        start = self._iv_value
        end = start + frame_budget
        self._iv_value = end % (1 << 24)
        self.frames_observed += frame_budget
        plaintext = bytes([SNAP_FIRST_BYTE]) + b"data"
        for block in range(start >> 16, ((end - 1) >> 16) + 1):
            if (block & 0xFF) not in weak_firsts:
                continue
            run_base = (block << 16) | 0xFF00
            for value in range(max(start, run_base),
                               min(end, run_base + 256)):
                iv = (value % (1 << 24)).to_bytes(3, "big")
                body = self.cipher.encrypt(plaintext, iv=iv)
                yield WeakIvSample(iv, first_keystream_byte(body))


def crack_wep(cipher: WepCipher, max_frames: int = 40_000_000,
              check_every: int = 1 << 22, min_votes: int = 60
              ) -> Tuple[Optional[bytes], int]:
    """End-to-end FMS attack: sniff until the key falls out.

    Returns ``(recovered_key_or_None, frames_observed)``.
    """
    attack = FmsAttack(len(cipher.key), min_votes=min_votes)
    oracle = WeakIvTrafficOracle(cipher)
    while oracle.frames_observed < max_frames:
        budget = min(check_every, max_frames - oracle.frames_observed)
        for sample in oracle.sniff_weak_samples(budget):
            attack.observe(sample)
        key = attack.recover_key()
        if key is not None:
            return key, oracle.frames_observed
    return None, oracle.frames_observed
