/* Compiled event-kernel inner loop for repro.core.engine.
 *
 * This module is the C twin of ``Simulator.run``: the tuple-heap
 * pop/push, the three-shape dispatch (raw ``schedule_fast`` entries,
 * version-checked ``Timer`` entries, ``EventHandle`` entries), and the
 * O(1) scheduled/executed/cancelled counter bookkeeping — nothing
 * else.  All simulation state stays where the pure-Python kernel keeps
 * it (``sim._heap`` is the same Python list the schedulers push into,
 * the counters are the same Python ints telemetry samples), so the two
 * kernels are interchangeable mid-suite and the pure-Python loop
 * remains the reference implementation.
 *
 * Bit-identity contract (KEEP IN SYNC with engine.Simulator.run):
 *
 * - Heap ordering is the exact heapq algorithm over the exact tuple
 *   comparison semantics: entries compare ``(time, seq)`` and never
 *   past ``seq`` (it is unique).  The float fast path is used only when
 *   both times are exact floats; anything else falls back to Python
 *   rich comparison, so mixed int/float times order identically.
 * - The run-until branch (``max_events is None and until is not
 *   None``) keeps the executed-events counter in a local flushed at
 *   loop exit, so a mid-run callback reads the same (stale) figure the
 *   Python fast branch exposes — telemetry's sampled
 *   ``kernel/events_executed`` series byte-compares across kernels
 *   because of this, not despite it.  Every other branch flushes the
 *   counter per event, exactly like the Python generic branch.
 * - Lazy drops (cancelled handles, superseded timer versions) touch no
 *   counters; the clock is written before the callback fires; the
 *   clock snaps to ``until`` only on a clean non-stopped exit; the
 *   ``_running`` flag and counter flush survive a raising callback.
 *
 * NaN event times are unrepresentable (every scheduler rejects them),
 * so the double comparison fast path is exact.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

/* ma_version_tag (a process-global monotone stamp bumped on every dict
 * mutation) lets the loop skip re-reading ``_stopped`` when no callback
 * touched the simulator's dict since our own last write.  Deprecated
 * and slated for removal in 3.13+; the loop degrades to a per-event
 * lookup there. */
#if PY_VERSION_HEX < 0x030D0000
#define CK_HAVE_DICT_VERSION 1
#else
#define CK_HAVE_DICT_VERSION 0
#endif

/* --- module state (installed once from repro.core.engine) ------------- */

static PyTypeObject *timer_type = NULL;
static PyTypeObject *handle_type = NULL;
static PyObject *simulation_error = NULL;

/* Interned attribute keys for the Simulator instance dict. */
static PyObject *s_now, *s_stopped, *s_running, *s_events_executed, *s_heap;

/* Slot offsets for Timer / EventHandle (__slots__ storage). */
static Py_ssize_t off_t_version = -1, off_t_armed = -1, off_t_callback = -1;
static Py_ssize_t off_h_cancelled = -1, off_h_fired = -1;
static Py_ssize_t off_h_callback = -1, off_h_args = -1;

#define SLOT(obj, off) (*(PyObject **)((char *)(obj) + (off)))

static PyObject *
slot_get(PyObject *obj, Py_ssize_t off, const char *name)
{
    PyObject *value = SLOT(obj, off);
    if (value == NULL)
        PyErr_Format(PyExc_AttributeError, "%s", name);
    return value;  /* borrowed */
}

static void
slot_set(PyObject *obj, Py_ssize_t off, PyObject *value)
{
    PyObject *old = SLOT(obj, off);
    Py_INCREF(value);
    SLOT(obj, off) = value;
    Py_XDECREF(old);
}

/* Truthiness with a bool identity fast path (the engine only ever
 * stores the canonical True/False in these flags). */
static inline int
flag_is_true(PyObject *value)
{
    if (value == Py_True)
        return 1;
    if (value == Py_False)
        return 0;
    return PyObject_IsTrue(value);
}

/* Equality with a machine-int fast path (timer versions are exact
 * ints).  Returns 1/0/-1 like PyObject_RichCompareBool. */
static inline int
int_eq(PyObject *a, PyObject *b)
{
    if (a == b)
        return 1;
    if (PyLong_CheckExact(a) && PyLong_CheckExact(b)) {
        /* Exact ints are normalized: equal value <=> equal digits. */
        Py_ssize_t sa = Py_SIZE(a);
        if (sa != Py_SIZE(b))
            return 0;
        {
            const digit *da = ((PyLongObject *)a)->ob_digit;
            const digit *db = ((PyLongObject *)b)->ob_digit;
            Py_ssize_t i, n = sa < 0 ? -sa : sa;
            for (i = 0; i < n; i++)
                if (da[i] != db[i])
                    return 0;
            return 1;
        }
    }
    return PyObject_RichCompareBool(a, b, Py_EQ);
}

/* --- heap entry comparison -------------------------------------------- */

/* Pure-C comparison attempt: decides ``a < b`` without the possibility
 * of running Python code (no allocation, no refcounting, no
 * callbacks).  Returns 1 with *out set when decided — the caller may
 * then skip the mutation guards — or 0 when the operands need the
 * general path.  Covers the kernel's canonical entries: exact-float
 * times with machine-word exact-int seqs.
 */
static inline int
entry_lt_fast(PyObject *a, PyObject *b, int *out)
{
    PyObject *ta, *tb, *sa, *sb;

    if (!PyTuple_CheckExact(a) || !PyTuple_CheckExact(b)
            || PyTuple_GET_SIZE(a) < 2 || PyTuple_GET_SIZE(b) < 2)
        return 0;
    ta = PyTuple_GET_ITEM(a, 0);
    tb = PyTuple_GET_ITEM(b, 0);
    if (!PyFloat_CheckExact(ta) || !PyFloat_CheckExact(tb))
        return 0;
    {
        double da = PyFloat_AS_DOUBLE(ta), db = PyFloat_AS_DOUBLE(tb);
        if (da < db) {
            *out = 1;
            return 1;
        }
        if (db < da) {
            *out = 0;
            return 1;
        }
    }
    sa = PyTuple_GET_ITEM(a, 1);
    sb = PyTuple_GET_ITEM(b, 1);
    if (!PyLong_CheckExact(sa) || !PyLong_CheckExact(sb))
        return 0;
    {
        int oa = 0, ob = 0;
        /* Never raises for exact ints; overflow only sets the flag. */
        long long la = PyLong_AsLongLongAndOverflow(sa, &oa);
        long long lb = PyLong_AsLongLongAndOverflow(sb, &ob);
        if (oa || ob)
            return 0;
        *out = la < lb;
        return 1;
    }
}

/* Returns 1 if a < b, 0 if not, -1 on error.  Matches Python tuple
 * comparison for every entry shape the kernel produces: ``(time, seq,
 * ...)`` with unique integer seq, so comparison never inspects element
 * 2 and shapes of different arity never compare element 2. */
static int
entry_lt(PyObject *a, PyObject *b)
{
    if (PyTuple_CheckExact(a) && PyTuple_CheckExact(b)
            && PyTuple_GET_SIZE(a) >= 2 && PyTuple_GET_SIZE(b) >= 2) {
        PyObject *ta = PyTuple_GET_ITEM(a, 0);
        PyObject *tb = PyTuple_GET_ITEM(b, 0);
        if (PyFloat_CheckExact(ta) && PyFloat_CheckExact(tb)) {
            double da = PyFloat_AS_DOUBLE(ta), db = PyFloat_AS_DOUBLE(tb);
            if (da < db)
                return 1;
            if (db < da)
                return 0;
            /* equal: fall through to seq */
        }
        else {
            int r = PyObject_RichCompareBool(ta, tb, Py_LT);
            if (r != 0)
                return r;  /* 1 (less) or -1 (error) */
            r = PyObject_RichCompareBool(tb, ta, Py_LT);
            if (r < 0)
                return -1;
            if (r)
                return 0;
            /* equal: fall through to seq */
        }
        {
            PyObject *sa = PyTuple_GET_ITEM(a, 1);
            PyObject *sb = PyTuple_GET_ITEM(b, 1);
            if (PyLong_CheckExact(sa) && PyLong_CheckExact(sb)) {
                int oa = 0, ob = 0;
                long long la = PyLong_AsLongLongAndOverflow(sa, &oa);
                long long lb = PyLong_AsLongLongAndOverflow(sb, &ob);
                if (!oa && !ob && !PyErr_Occurred())
                    return la < lb;
                PyErr_Clear();
            }
            return PyObject_RichCompareBool(sa, sb, Py_LT);
        }
    }
    return PyObject_RichCompareBool(a, b, Py_LT);
}

/* --- heapq core (ported from CPython's _heapqmodule algorithm) -------- */

static int
ck_siftdown(PyListObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem, *parent, **arr;
    Py_ssize_t parentpos, size;

    size = PyList_GET_SIZE(heap);
    /* Follow the path to the root, swapping the new item up until it
     * fits.  The canonical-entry comparison is pure C; only the
     * general fallback can run arbitrary Python, so only it guards
     * against the list changing size underneath us. */
    while (pos > startpos) {
        int cmp;
        parentpos = (pos - 1) >> 1;
        arr = ((PyListObject *)heap)->ob_item;
        if (!entry_lt_fast(arr[pos], arr[parentpos], &cmp)) {
            newitem = arr[pos];
            parent = arr[parentpos];
            Py_INCREF(newitem);
            Py_INCREF(parent);
            cmp = entry_lt(newitem, parent);
            Py_DECREF(parent);
            Py_DECREF(newitem);
            if (cmp < 0)
                return -1;
            if (size != PyList_GET_SIZE(heap)) {
                PyErr_SetString(PyExc_RuntimeError,
                                "list changed size during iteration");
                return -1;
            }
        }
        if (cmp == 0)
            break;
        arr = ((PyListObject *)heap)->ob_item;
        parent = arr[parentpos];
        newitem = arr[pos];
        arr[parentpos] = newitem;
        arr[pos] = parent;
        pos = parentpos;
    }
    return 0;
}

static int
ck_siftup(PyListObject *heap, Py_ssize_t pos)
{
    Py_ssize_t startpos = pos, endpos, childpos, limit;
    PyObject *tmp1, *tmp2, **arr;

    endpos = PyList_GET_SIZE(heap);
    /* Bubble the smaller child up until hitting a leaf. */
    limit = endpos >> 1;
    while (pos < limit) {
        childpos = 2 * pos + 1;
        if (childpos + 1 < endpos) {
            int cmp;
            arr = ((PyListObject *)heap)->ob_item;
            if (!entry_lt_fast(arr[childpos], arr[childpos + 1], &cmp)) {
                PyObject *a = arr[childpos];
                PyObject *b = arr[childpos + 1];
                Py_INCREF(a);
                Py_INCREF(b);
                cmp = entry_lt(a, b);
                Py_DECREF(b);
                Py_DECREF(a);
                if (cmp < 0)
                    return -1;
                if (endpos != PyList_GET_SIZE(heap)) {
                    PyErr_SetString(PyExc_RuntimeError,
                                    "list changed size during iteration");
                    return -1;
                }
            }
            if (cmp == 0)
                childpos += 1;
        }
        arr = ((PyListObject *)heap)->ob_item;
        tmp1 = arr[childpos];
        tmp2 = arr[pos];
        arr[childpos] = tmp2;
        arr[pos] = tmp1;
        pos = childpos;
    }
    /* The leaf at pos may be out of place; move it up to its spot. */
    return ck_siftdown(heap, startpos, pos);
}

static int
ck_heappush_impl(PyObject *heap, PyObject *item)
{
    if (PyList_Append(heap, item) < 0)
        return -1;
    return ck_siftdown((PyListObject *)heap, 0, PyList_GET_SIZE(heap) - 1);
}

/* Pop the smallest entry; returns a new reference or NULL. */
static PyObject *
ck_heappop_impl(PyObject *heap)
{
    PyObject *lastelt, *returnitem;
    Py_ssize_t n = PyList_GET_SIZE(heap);

    if (n == 0) {
        PyErr_SetString(PyExc_IndexError, "index out of range");
        return NULL;
    }
    lastelt = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(lastelt);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(lastelt);
        return NULL;
    }
    n -= 1;
    if (n == 0)
        return lastelt;
    returnitem = PyList_GET_ITEM(heap, 0);
    PyList_SET_ITEM(heap, 0, lastelt);  /* we now own returnitem's ref */
    if (ck_siftup((PyListObject *)heap, 0) < 0) {
        Py_DECREF(returnitem);
        return NULL;
    }
    return returnitem;
}

/* --- the run loop ------------------------------------------------------ */

/* Fetch a required attribute from the simulator's instance dict.
 * Returns a borrowed reference or NULL with AttributeError set. */
static PyObject *
sim_get(PyObject **dictptr, PyObject *key)
{
    PyObject *value = PyDict_GetItemWithError(*dictptr, key);
    if (value == NULL && !PyErr_Occurred())
        PyErr_Format(PyExc_AttributeError,
                     "Simulator has no attribute %R", key);
    return value;
}

static PyObject *
ck_run(PyObject *module, PyObject *args)
{
    PyObject *sim, *until = Py_None, *max_events = Py_None;
    PyObject *heap = NULL, *result = NULL;
    PyObject **dictptr;
    double until_d = 0.0, budget = 0.0;
    int until_is_none, until_is_float, budget_is_inf, flush_per_event;
    long long executed = 0;
    int started = 0, failed = 0;

    if (timer_type == NULL) {
        PyErr_SetString(PyExc_RuntimeError,
                        "_ckernel.install() has not been called");
        return NULL;
    }
    if (!PyArg_ParseTuple(args, "O|OO:run", &sim, &until, &max_events))
        return NULL;

    dictptr = _PyObject_GetDictPtr(sim);
    if (dictptr == NULL || *dictptr == NULL) {
        PyErr_SetString(PyExc_TypeError,
                        "run() needs a Simulator with an instance dict");
        return NULL;
    }

    /* Re-entrancy guard, before touching any state. */
    {
        PyObject *running = sim_get(dictptr, s_running);
        if (running == NULL)
            return NULL;
        int r = PyObject_IsTrue(running);
        if (r < 0)
            return NULL;
        if (r) {
            PyErr_SetString(simulation_error, "run() called re-entrantly");
            return NULL;
        }
    }

    until_is_none = (until == Py_None);
    until_is_float = PyFloat_CheckExact(until);
    if (until_is_float)
        until_d = PyFloat_AS_DOUBLE(until);
    budget_is_inf = (max_events == Py_None);
    if (!budget_is_inf) {
        budget = PyFloat_AsDouble(max_events);
        if (budget == -1.0 && PyErr_Occurred())
            return NULL;
    }
    /* The Python fast branch (until-only) holds the executed counter in
     * a local flushed at exit; every other branch flushes per event. */
    flush_per_event = !(budget_is_inf && !until_is_none);

    {
        PyObject *exec_obj = sim_get(dictptr, s_events_executed);
        if (exec_obj == NULL)
            return NULL;
        executed = PyLong_AsLongLong(exec_obj);
        if (executed == -1 && PyErr_Occurred())
            return NULL;
    }
    heap = sim_get(dictptr, s_heap);
    if (heap == NULL)
        return NULL;
    if (!PyList_CheckExact(heap)) {
        PyErr_SetString(PyExc_TypeError, "Simulator._heap must be a list");
        return NULL;
    }
    Py_INCREF(heap);

    if (PyDict_SetItem(*dictptr, s_running, Py_True) < 0)
        goto error;
    started = 1;
    if (PyDict_SetItem(*dictptr, s_stopped, Py_False) < 0)
        goto error;

#if CK_HAVE_DICT_VERSION
    {
    uint64_t dict_ver = 0;
    int stopped_cache = -1;
#endif
    for (;;) {
        PyObject *entry, *time_obj, *ev, *callback, *cargs, *res;
        int owns_cargs;

        if (PyList_GET_SIZE(heap) == 0)
            break;
#if CK_HAVE_DICT_VERSION
        if (stopped_cache >= 0
                && ((PyDictObject *)*dictptr)->ma_version_tag == dict_ver) {
            if (stopped_cache)
                break;
        }
        else
#endif
        {
            PyObject *stopped = sim_get(dictptr, s_stopped);
            if (stopped == NULL)
                goto error;
            int st = flag_is_true(stopped);
            if (st < 0)
                goto error;
            if (st)
                break;
#if CK_HAVE_DICT_VERSION
            stopped_cache = 0;
#endif
        }
        if (!budget_is_inf && !(budget > 0.0))
            break;

        entry = ck_heappop_impl(heap);
        if (entry == NULL)
            goto error;
        if (!PyTuple_CheckExact(entry) || PyTuple_GET_SIZE(entry) < 3) {
            Py_DECREF(entry);
            PyErr_SetString(PyExc_TypeError,
                            "malformed kernel heap entry (expected a "
                            "(time, seq, ...) tuple)");
            goto error;
        }
        time_obj = PyTuple_GET_ITEM(entry, 0);
        if (!until_is_none) {
            int later;
            /* Exact-float fast path; otherwise defer to Python rich
             * comparison so mixed int/float horizons order exactly as
             * the pure-Python loop's ``time > until``. */
            if (until_is_float && PyFloat_CheckExact(time_obj))
                later = PyFloat_AS_DOUBLE(time_obj) > until_d;
            else {
                later = PyObject_RichCompareBool(time_obj, until, Py_GT);
                if (later < 0) {
                    Py_DECREF(entry);
                    goto error;
                }
            }
            if (later) {
                int pushed = ck_heappush_impl(heap, entry);
                Py_DECREF(entry);
                if (pushed < 0)
                    goto error;
                break;
            }
        }

        ev = PyTuple_GET_ITEM(entry, 2);
        if (ev == Py_None) {
            /* (time, seq, None, callback, args): fire-and-forget. */
            if (PyTuple_GET_SIZE(entry) < 5) {
                Py_DECREF(entry);
                PyErr_SetString(PyExc_IndexError,
                                "tuple index out of range");
                goto error;
            }
            callback = PyTuple_GET_ITEM(entry, 3);
            Py_INCREF(callback);
            cargs = PyTuple_GET_ITEM(entry, 4);
            Py_INCREF(cargs);
            owns_cargs = 1;
        }
        else if (Py_TYPE(ev) == timer_type) {
            /* (time, seq, timer, version): version-checked Timer. */
            PyObject *version, *live_version, *armed;
            if (PyTuple_GET_SIZE(entry) < 4) {
                Py_DECREF(entry);
                PyErr_SetString(PyExc_IndexError,
                                "tuple index out of range");
                goto error;
            }
            version = PyTuple_GET_ITEM(entry, 3);
            live_version = slot_get(ev, off_t_version, "_version");
            if (live_version == NULL) {
                Py_DECREF(entry);
                goto error;
            }
            int eq = int_eq(live_version, version);
            if (eq < 0) {
                Py_DECREF(entry);
                goto error;
            }
            armed = slot_get(ev, off_t_armed, "_armed");
            if (armed == NULL) {
                Py_DECREF(entry);
                goto error;
            }
            int is_armed = flag_is_true(armed);
            if (is_armed < 0) {
                Py_DECREF(entry);
                goto error;
            }
            if (!eq || !is_armed) {
                Py_DECREF(entry);
                continue;  /* superseded/cancelled: lazy drop */
            }
            slot_set(ev, off_t_armed, Py_False);
            callback = slot_get(ev, off_t_callback, "_callback");
            if (callback == NULL) {
                Py_DECREF(entry);
                goto error;
            }
            Py_INCREF(callback);
            cargs = NULL;  /* no-arg call */
            owns_cargs = 0;
        }
        else if (Py_TYPE(ev) == handle_type) {
            /* (time, seq, handle): cancellable EventHandle. */
            PyObject *cancelled = slot_get(ev, off_h_cancelled, "_cancelled");
            if (cancelled == NULL) {
                Py_DECREF(entry);
                goto error;
            }
            int is_cancelled = flag_is_true(cancelled);
            if (is_cancelled < 0) {
                Py_DECREF(entry);
                goto error;
            }
            if (is_cancelled) {
                Py_DECREF(entry);
                continue;  /* lazy drop */
            }
            slot_set(ev, off_h_fired, Py_True);
            callback = slot_get(ev, off_h_callback, "callback");
            if (callback == NULL) {
                Py_DECREF(entry);
                goto error;
            }
            Py_INCREF(callback);
            cargs = slot_get(ev, off_h_args, "args");
            if (cargs == NULL) {
                Py_DECREF(callback);
                Py_DECREF(entry);
                goto error;
            }
            Py_INCREF(cargs);
            owns_cargs = 1;
        }
        else {
            /* Exotic handle-like object: mirror the Python loop's
             * attribute protocol exactly (used by nothing in-tree, but
             * duck-typed handles must behave identically). */
            PyObject *cancelled = PyObject_GetAttrString(ev, "_cancelled");
            if (cancelled == NULL) {
                Py_DECREF(entry);
                goto error;
            }
            int is_cancelled = PyObject_IsTrue(cancelled);
            Py_DECREF(cancelled);
            if (is_cancelled < 0) {
                Py_DECREF(entry);
                goto error;
            }
            if (is_cancelled) {
                Py_DECREF(entry);
                continue;
            }
            if (PyObject_SetAttrString(ev, "_fired", Py_True) < 0) {
                Py_DECREF(entry);
                goto error;
            }
            callback = PyObject_GetAttrString(ev, "callback");
            if (callback == NULL) {
                Py_DECREF(entry);
                goto error;
            }
            cargs = PyObject_GetAttrString(ev, "args");
            if (cargs == NULL) {
                Py_DECREF(callback);
                Py_DECREF(entry);
                goto error;
            }
            owns_cargs = 1;
        }

        if (owns_cargs && !PyTuple_Check(cargs)) {
            /* callback(*args) accepts any iterable; normalize. */
            PyObject *as_tuple = PySequence_Tuple(cargs);
            Py_DECREF(cargs);
            if (as_tuple == NULL) {
                Py_DECREF(callback);
                Py_DECREF(entry);
                goto error;
            }
            cargs = as_tuple;
        }

        /* Advance the clock, count, fire. */
        if (PyDict_SetItem(*dictptr, s_now, time_obj) < 0) {
            Py_DECREF(callback);
            Py_XDECREF(cargs);
            Py_DECREF(entry);
            goto error;
        }
        executed += 1;
        if (flush_per_event) {
            PyObject *exec_obj = PyLong_FromLongLong(executed);
            if (exec_obj == NULL
                    || PyDict_SetItem(*dictptr, s_events_executed,
                                      exec_obj) < 0) {
                Py_XDECREF(exec_obj);
                Py_DECREF(callback);
                Py_XDECREF(cargs);
                Py_DECREF(entry);
                goto error;
            }
            Py_DECREF(exec_obj);
        }
        if (!budget_is_inf)
            budget -= 1.0;
#if CK_HAVE_DICT_VERSION
        /* Snapshot after our own writes, before the callback runs:
         * an unchanged tag at the next loop top proves no callback
         * touched the simulator dict, so _stopped is still False. */
        dict_ver = ((PyDictObject *)*dictptr)->ma_version_tag;
#endif

        if (cargs == NULL)
            res = PyObject_CallNoArgs(callback);
        else
            res = PyObject_Call(callback, cargs, NULL);
        Py_DECREF(callback);
        Py_XDECREF(cargs);
        Py_DECREF(entry);
        if (res == NULL)
            goto error;
        Py_DECREF(res);
    }
#if CK_HAVE_DICT_VERSION
    }
#endif

    /* Clean exit: snap the clock to the horizon. */
    if (!until_is_none) {
        PyObject *stopped = sim_get(dictptr, s_stopped);
        if (stopped == NULL)
            goto error;
        int st = PyObject_IsTrue(stopped);
        if (st < 0)
            goto error;
        if (!st) {
            PyObject *now = sim_get(dictptr, s_now);
            if (now == NULL)
                goto error;
            int lt = PyObject_RichCompareBool(now, until, Py_LT);
            if (lt < 0)
                goto error;
            if (lt && PyDict_SetItem(*dictptr, s_now, until) < 0)
                goto error;
        }
    }
    goto finish;

error:
    failed = 1;
finish:
    /* The Python loop's try/finally: flush the executed counter and
     * drop the running flag even when a callback raised. */
    if (started) {
        PyObject *exc_type, *exc_value, *exc_tb;
        PyErr_Fetch(&exc_type, &exc_value, &exc_tb);
        PyObject *exec_obj = PyLong_FromLongLong(executed);
        if (exec_obj != NULL) {
            if (PyDict_SetItem(*dictptr, s_events_executed, exec_obj) < 0)
                PyErr_Clear();
            Py_DECREF(exec_obj);
        }
        else
            PyErr_Clear();
        if (PyDict_SetItem(*dictptr, s_running, Py_False) < 0)
            PyErr_Clear();
        PyErr_Restore(exc_type, exc_value, exc_tb);
    }
    Py_XDECREF(heap);
    if (failed)
        return NULL;
    result = sim_get(dictptr, s_now);
    if (result == NULL)
        return NULL;
    Py_INCREF(result);
    return result;
}

/* --- exported heap helpers (parity tests exercise these directly) ----- */

static PyObject *
ck_heappush(PyObject *module, PyObject *args)
{
    PyObject *heap, *item;
    if (!PyArg_ParseTuple(args, "O!O:heappush", &PyList_Type, &heap, &item))
        return NULL;
    if (ck_heappush_impl(heap, item) < 0)
        return NULL;
    Py_RETURN_NONE;
}

static PyObject *
ck_heappop(PyObject *module, PyObject *heap)
{
    if (!PyList_Check(heap)) {
        PyErr_SetString(PyExc_TypeError, "heap argument must be a list");
        return NULL;
    }
    return ck_heappop_impl(heap);
}

/* --- installation ------------------------------------------------------ */

static Py_ssize_t
resolve_slot(PyObject *type, const char *name)
{
    PyObject *descr = PyObject_GetAttrString(type, name);
    Py_ssize_t offset;

    if (descr == NULL)
        return -1;
    if (Py_TYPE(descr) != &PyMemberDescr_Type) {
        PyErr_Format(PyExc_TypeError,
                     "%s is not a __slots__ member descriptor", name);
        Py_DECREF(descr);
        return -1;
    }
    {
        PyMemberDef *member = ((PyMemberDescrObject *)descr)->d_member;
        if (member->type != T_OBJECT_EX) {
            PyErr_Format(PyExc_TypeError,
                         "%s has unexpected member storage", name);
            Py_DECREF(descr);
            return -1;
        }
        offset = member->offset;
    }
    Py_DECREF(descr);
    return offset;
}

static PyObject *
ck_install(PyObject *module, PyObject *args)
{
    PyObject *timer, *handle, *error;

    if (!PyArg_ParseTuple(args, "OOO:install", &timer, &handle, &error))
        return NULL;
    if (!PyType_Check(timer) || !PyType_Check(handle)) {
        PyErr_SetString(PyExc_TypeError,
                        "install(Timer, EventHandle, SimulationError)");
        return NULL;
    }
    if ((off_t_version = resolve_slot(timer, "_version")) < 0)
        return NULL;
    if ((off_t_armed = resolve_slot(timer, "_armed")) < 0)
        return NULL;
    if ((off_t_callback = resolve_slot(timer, "_callback")) < 0)
        return NULL;
    if ((off_h_cancelled = resolve_slot(handle, "_cancelled")) < 0)
        return NULL;
    if ((off_h_fired = resolve_slot(handle, "_fired")) < 0)
        return NULL;
    if ((off_h_callback = resolve_slot(handle, "callback")) < 0)
        return NULL;
    if ((off_h_args = resolve_slot(handle, "args")) < 0)
        return NULL;

    Py_INCREF(timer);
    Py_XSETREF(timer_type, (PyTypeObject *)timer);
    Py_INCREF(handle);
    Py_XSETREF(handle_type, (PyTypeObject *)handle);
    Py_INCREF(error);
    Py_XSETREF(simulation_error, error);
    Py_RETURN_NONE;
}

/* --- module ------------------------------------------------------------ */

static PyMethodDef ck_methods[] = {
    {"install", ck_install, METH_VARARGS,
     "install(Timer, EventHandle, SimulationError): bind the engine's\n"
     "event classes (resolves their __slots__ offsets). Must be called\n"
     "before run()."},
    {"run", ck_run, METH_VARARGS,
     "run(sim, until=None, max_events=None) -> float\n"
     "Compiled twin of Simulator.run(); byte-identical event sequence."},
    {"heappush", ck_heappush, METH_VARARGS,
     "heappush(heap, entry): push with kernel-entry tuple ordering."},
    {"heappop", ck_heappop, METH_O,
     "heappop(heap) -> entry: pop with kernel-entry tuple ordering."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef ck_module = {
    PyModuleDef_HEAD_INIT,
    "repro.core._ckernel",
    "Compiled event-kernel inner loop (see repro.core.engine).",
    -1,
    ck_methods,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    PyObject *module;

    s_now = PyUnicode_InternFromString("_now");
    s_stopped = PyUnicode_InternFromString("_stopped");
    s_running = PyUnicode_InternFromString("_running");
    s_events_executed = PyUnicode_InternFromString("_events_executed");
    s_heap = PyUnicode_InternFromString("_heap");
    if (s_now == NULL || s_stopped == NULL || s_running == NULL
            || s_events_executed == NULL || s_heap == NULL)
        return NULL;

    module = PyModule_Create(&ck_module);
    if (module == NULL)
        return NULL;
    if (PyModule_AddStringConstant(module, "KERNEL_NAME", "c") < 0
            || PyModule_AddIntConstant(module, "KERNEL_ABI", 1) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
