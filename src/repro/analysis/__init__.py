"""Metrics, airtime accounting, and table rendering."""

from .airtime import AirtimeReport, SourceAirtime
from .metrics import (
    aggregate_throughput_bps,
    bianchi_saturation_throughput,
    bianchi_tau,
    delay_percentiles,
    jain_fairness,
)
from .tables import format_value, render_series, render_table

__all__ = [
    "AirtimeReport",
    "SourceAirtime",
    "aggregate_throughput_bps",
    "bianchi_saturation_throughput",
    "bianchi_tau",
    "delay_percentiles",
    "format_value",
    "jain_fairness",
    "render_series",
    "render_table",
]
