#!/usr/bin/env python3
"""Break a wireless cell on purpose — and measure how it heals.

Community networks run on rooftops: power flickers, APs reboot, and a
wet tree fades a link by 20 dB.  This example drives the fault
subsystem end-to-end on one infrastructure BSS:

* four stations uplink CBR traffic to the AP,
* a **FaultSchedule** crashes one station (it reboots and reassociates
  through the scan/backoff path) and then the **AP itself** for 400 ms
  (every station rides beacon loss into rescans and rejoins — helped
  by the AP's class-3 Deauthentication answer to its stale clients),
* a **LinkFader** soaks one station's rooftop link with a 25 dB fade
  for half a second,
* an **InvariantChecker** sweeps the whole run in strict mode: NAV
  bounds, backoff left-fold, kernel-heap monotonicity — any violation
  would crash the run at the instant the state went bad,
* a **ReassociationProbe** and the PDR timeline from
  ``analysis.resilience`` report the outage spans and the recovery.

Every fault draws from its own named RNG stream, so this run is
byte-reproducible: same seed, same storm, same recovery numbers.

Run:  python examples/fault_injection.py
"""

from repro import Simulator, scenarios
from repro.analysis.resilience import (
    ReassociationProbe,
    pdr_timeline,
    recovery_time,
    steady_state_pdr,
)
from repro.faults import FaultSchedule, InvariantChecker, LinkFader
from repro.traffic.generators import CbrSource
from repro.traffic.sink import TrafficSink

HORIZON = 4.0
AP_CRASH_AT = 1.5


def main() -> None:
    sim = Simulator(seed=2007)
    bss = scenarios.build_infrastructure_bss(sim, station_count=4)
    ap = bss.ap
    ap.start_reaping(idle_timeout=0.3, interval=0.1)

    offered, delivered = [], []
    sink = TrafficSink(sim)
    ap.on_receive(sink)

    def uplink(station):
        def send(payload):
            if not station.associated:
                return False
            offered.append(sim.now)
            ok = station.send(ap.address, payload)
            return ok
        return send

    for station in bss.stations:
        CbrSource(sim, uplink(station), packet_bytes=300, interval=0.02,
                  start=0.2)

    # Count deliveries by watching the sink's total grow.
    last_total = [0]

    def sample_deliveries():
        got = sink.total_received
        delivered.extend([sim.now] * (got - last_total[0]))
        last_total[0] = got
    from repro.core.engine import PeriodicTask
    PeriodicTask(sim, 0.01, sample_deliveries, offset=0.01)

    probe = ReassociationProbe(sim, bss.stations[0])

    fader = LinkFader(bss.medium)
    storm = FaultSchedule(sim, name="demo")
    storm.crash(bss.stations[0], at=0.7, down_for=0.3)
    storm.fade(fader, bss.stations[1].position, 25.0, at=1.0,
               duration=0.5, target=bss.stations[1].name)
    storm.crash(ap, at=AP_CRASH_AT, down_for=0.4)
    storm.install()

    checker = InvariantChecker(sim, interval=0.05, strict=True)
    checker.watch_medium(bss.medium).install()

    sim.run(until=HORIZON)

    timeline = pdr_timeline(offered, delivered, bin_width=0.1,
                            horizon=HORIZON)
    baseline = steady_state_pdr(timeline, 0.3, 0.7)
    recovery = recovery_time(timeline, fault_at=AP_CRASH_AT,
                             baseline_pdr=baseline)

    print("fault storm over one BSS")
    print(f"  faults injected        : {len(storm.log)}")
    for record in storm.log:
        print(f"    t={float(record.time):6.3f}  {record.action:12s} "
              f"{record.target}")
    print(f"  pre-fault steady PDR   : {baseline:.3f}")
    if recovery is None:
        print("  recovery               : not within horizon")
    else:
        print(f"  recovered (sustained)  : {recovery:.2f}s after AP crash")
    print(f"  station reassociations : {probe.reassociations}")
    for begin, end in probe.outage_spans(until=HORIZON):
        print(f"    outage {begin:6.3f} -> {end:6.3f} "
              f"({end - begin:.3f}s)")
    print(f"  AP reaped stale clients: "
          f"{ap.ap_counters.get('removed_stale')}")
    print(f"  invariant sweeps       : {checker.checks_run} "
          f"(violations: {len(checker.violations)})")
    assert not checker.violations


if __name__ == "__main__":
    main()
