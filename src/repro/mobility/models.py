"""Mobility models.

A mobility model owns a device's position over time, updating it at a
fixed tick.  Position updates are visible to the propagation layer
immediately (radios read ``position`` at transmit time), so mobility,
rate adaptation, and roaming interact the way they do in a real
deployment.

* :class:`StaticMobility` — placement only, no movement.
* :class:`LinearMobility` — constant velocity (the "walk down the
  corridor" scenario driving rate-adaptation benches).
* :class:`RandomWaypoint` — the classic ad-hoc evaluation model: pick a
  random waypoint, walk to it at a random speed, pause, repeat.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional, Protocol, Tuple

from ..core.engine import PeriodicTask, Simulator
from ..core.errors import ConfigurationError
from ..core.topology import Position


class Positioned(Protocol):
    """Anything with a mutable position (devices, radios)."""

    position: Position


class MobilityModel:
    """Base: updates the target's position every ``tick`` seconds."""

    def __init__(self, sim: Simulator, target: Positioned,
                 tick: float = 0.1):
        if tick <= 0:
            raise ConfigurationError(f"tick must be positive: {tick}")
        self.sim = sim
        self.target = target
        self.tick = tick
        self._task: Optional[PeriodicTask] = None
        self._observers: List[Callable[[Position], None]] = []

    def start(self) -> None:
        if self._task is None:
            self._task = PeriodicTask(self.sim, self.tick, self._step)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def on_move(self, observer: Callable[[Position], None]) -> None:
        self._observers.append(observer)

    def _step(self) -> None:
        new_position = self.advance(self.tick)
        # This assignment is the link-cache invalidation hook: devices
        # and radios expose ``position`` as a property whose setter
        # calls Medium.invalidate_links, so every mobility tick flushes
        # the moved node's cached link budgets (and the cache's
        # position-identity check backstops any target that bypasses
        # the property).
        self.target.position = new_position
        for observer in self._observers:
            observer(new_position)

    def advance(self, dt: float) -> Position:
        """Compute the position after ``dt`` seconds (subclass hook)."""
        raise NotImplementedError


class StaticMobility(MobilityModel):
    """No movement; exists so code can treat all nodes uniformly."""

    def advance(self, dt: float) -> Position:
        return self.target.position


class LinearMobility(MobilityModel):
    """Constant-velocity motion with optional bounce at segment ends.

    Moves from the target's starting position toward ``destination`` at
    ``speed_mps``; on arrival, either stops or (``bounce=True``) turns
    around and walks back, forever.
    """

    def __init__(self, sim: Simulator, target: Positioned,
                 destination: Position, speed_mps: float,
                 bounce: bool = False, tick: float = 0.1):
        super().__init__(sim, target, tick)
        if speed_mps <= 0:
            raise ConfigurationError(f"speed must be positive: {speed_mps}")
        self.speed_mps = speed_mps
        self.bounce = bounce
        self._origin = target.position
        self._destination = destination

    def advance(self, dt: float) -> Position:
        current = self.target.position
        remaining = current.distance_to(self._destination)
        step = self.speed_mps * dt
        if step < remaining:
            return current.toward(self._destination, step)
        if not self.bounce:
            return self._destination
        # Arrive and turn around, carrying over leftover distance.
        leftover = step - remaining
        self._origin, self._destination = self._destination, self._origin
        arrived = self.target.position = self._origin
        if leftover <= 0 or arrived.distance_to(self._destination) == 0:
            return arrived
        return arrived.toward(self._destination, leftover)


class RandomWaypoint(MobilityModel):
    """Random waypoint within a rectangle.

    Parameters follow the standard model: uniform waypoints in
    ``[0, width] x [0, height]``, speeds uniform in
    ``[min_speed, max_speed]``, exponential-free fixed ``pause``.
    """

    def __init__(self, sim: Simulator, target: Positioned, width: float,
                 height: float, min_speed: float = 0.5,
                 max_speed: float = 2.0, pause: float = 1.0,
                 tick: float = 0.1, rng_name: Optional[str] = None):
        super().__init__(sim, target, tick)
        if width <= 0 or height <= 0:
            raise ConfigurationError("area dimensions must be positive")
        if not 0 < min_speed <= max_speed:
            raise ConfigurationError("need 0 < min_speed <= max_speed")
        self.width = width
        self.height = height
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.pause = pause
        name = rng_name if rng_name is not None else f"rwp.{id(target):x}"
        self._rng = sim.rng.stream(name)
        self._waypoint = self._draw_waypoint()
        self._speed = self._draw_speed()
        self._paused_until = 0.0

    def _draw_waypoint(self) -> Position:
        return Position(self._rng.uniform(0, self.width),
                        self._rng.uniform(0, self.height))

    def _draw_speed(self) -> float:
        return self._rng.uniform(self.min_speed, self.max_speed)

    def advance(self, dt: float) -> Position:
        if self.sim.now < self._paused_until:
            return self.target.position
        current = self.target.position
        remaining = current.distance_to(self._waypoint)
        step = self._speed * dt
        if step < remaining:
            return current.toward(self._waypoint, step)
        # Arrived: pause, then pick the next leg.
        arrived = self._waypoint
        self._paused_until = self.sim.now + self.pause
        self._waypoint = self._draw_waypoint()
        self._speed = self._draw_speed()
        return arrived
