"""The mesh forwarding engine.

A :class:`MeshNode` wraps an ad-hoc :class:`~repro.net.station.Station`
with the L3 machinery that turns a set of single-hop radios into a
multi-hop network:

* **per-node routing** via a pluggable
  :class:`~repro.routing.protocol.RoutingProtocol` (static tables or
  DSDV), with an optional default-gateway fallback for destinations the
  protocol does not cover,
* **TTL / hop-limit** enforcement so routing loops shed packets instead
  of circulating them forever,
* **duplicate suppression** keyed on (origin, origin sequence) —
  reusing the MAC's :class:`~repro.mac.dedup.DuplicateCache`, but across
  *different transmitters*, which MAC-level dedup cannot see,
* **queue-on-route-miss**: packets for not-yet-known destinations wait
  in a bounded per-destination queue and are flushed the moment the
  protocol installs a route (DSDV convergence, static install),
* **link-break detection**: a unicast MSDU that dies at the MAC retry
  limit reports the next hop to the protocol and re-queues the packet
  for the (repaired) route,
* **per-hop stats**: counters, per-next-hop link load, delivered hop
  counts, and an optional per-hop trace for determinism tests.

The node transmits nothing itself — every packet is handed to the
station's DCF MAC as an ordinary direct data frame addressed to the
next hop, so mesh traffic contends, collides, retries and gets ACKed
exactly like any other 802.11 traffic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace as _dc_replace
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.stats import Counter, SampleStat
from ..mac.addresses import BROADCAST, MacAddress
from ..mac.dedup import DuplicateCache
from ..mac.queueing import Msdu
from ..net.device import subscription
from ..net.station import Station
from .packet import (FLAG_FROM_DS, FLAG_REROUTED, MESH_HEADER_SIZE,
                     MeshHeader, decode_mesh)
from .protocol import RoutingProtocol

#: Upper-layer receive callback: (origin, payload, meta) -> None.
MeshReceiveHook = Callable[[MacAddress, bytes, Dict[str, Any]], None]

#: Gateway bridge callback: (origin, destination, payload) -> None.
BridgeHook = Callable[[MacAddress, MacAddress, bytes], None]


@dataclass
class MeshConfig:
    """Forwarding-engine knobs."""

    #: Initial hop limit stamped on originated packets.
    ttl: int = 32
    #: Suppress re-forwarding of (origin, sequence) pairs already seen.
    dedup: bool = True
    #: Per-origin history depth of the duplicate cache.
    dedup_history: int = 128
    #: Bound of each per-destination route-miss queue.
    pending_limit: int = 32
    #: Record a per-hop (time, event, origin, seq, node) trace — the
    #: determinism fixture for seeded-run comparison tests.
    record_path: bool = False
    #: Send routing control frames ahead of queued data (priority MAC
    #: enqueue) so convergence survives saturated relays.
    control_priority: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.ttl <= 0xFF:
            raise ConfigurationError(f"ttl must be in [1, 255]: {self.ttl}")
        if self.pending_limit < 1:
            raise ConfigurationError("pending_limit must be >= 1")


class MeshNode:
    """L3 node: a station plus forwarding state."""

    def __init__(self, station: Station, protocol: RoutingProtocol,
                 config: Optional[MeshConfig] = None):
        if not station.adhoc:
            raise ConfigurationError(
                f"{station.name}: mesh nodes need an ad-hoc (IBSS) station")
        self.station = station
        self.sim = station.sim
        self.address = station.address
        self.name = station.name
        self.config = config if config is not None else MeshConfig()
        self.protocol = protocol
        self.counters = Counter()
        #: Per-next-hop link load/failure accounting.
        self.link_counters: Dict[MacAddress, Counter] = {}
        #: Hop counts of packets delivered *at this node*.
        self.hop_counts = SampleStat()
        #: Per-hop trace when ``config.record_path`` (determinism tests).
        self.hop_log: List[Tuple[float, str, int, int, str]] = []
        #: Fallback destination for routes the protocol does not know.
        self.default_gateway: Optional[MacAddress] = None
        #: Gateway bridge for destinations outside the mesh (portal side).
        self.bridge: Optional[BridgeHook] = None
        self._sequence = 0
        self._dedup = DuplicateCache(
            history_per_sender=self.config.dedup_history) \
            if self.config.dedup else None
        self._pending: Dict[MacAddress,
                            Deque[Tuple[MeshHeader, bytes]]] = {}
        self._receive_hooks: List[MeshReceiveHook] = []
        station.on_receive(self._mac_receive)
        station.on_tx_complete(self._mac_tx_complete)
        protocol.attach(self)

    # --- upper layer -------------------------------------------------------

    def on_receive(self, hook: MeshReceiveHook) -> Callable[[], None]:
        """Register a delivery hook; returns an unsubscribe callable."""
        return subscription(self._receive_hooks, hook)

    def sender(self, destination: MacAddress) -> Callable[[bytes], bool]:
        """A bound send hook for the traffic generators."""
        return lambda payload: self.send(destination, payload)

    def send(self, destination: MacAddress, payload: bytes,
             origin: Optional[MacAddress] = None, flags: int = 0) -> bool:
        """Originate (or re-inject, for gateways) a mesh packet.

        Returns False only when the packet was dropped immediately
        (pending-queue or MAC-queue overflow); queued-on-route-miss
        counts as accepted.
        """
        header = MeshHeader(origin if origin is not None else self.address,
                            destination, self._sequence,
                            ttl=self.config.ttl, hops=1, flags=flags)
        self._sequence = (self._sequence + 1) & 0xFFFFFFFF
        self.counters.incr("originated")
        if destination == self.address:
            # Loopback: deliver without touching the radio.
            self._deliver(header, payload, meta={"loopback": True})
            return True
        return self._route_or_queue(header, payload)

    # --- routing + forwarding ----------------------------------------------

    def _lookup(self, destination: MacAddress) -> Optional[MacAddress]:
        next_hop = self.protocol.next_hop(destination)
        if next_hop is None and self.default_gateway is not None \
                and destination != self.default_gateway:
            next_hop = self.protocol.next_hop(self.default_gateway)
        return next_hop

    def _route_or_queue(self, header: MeshHeader, payload: bytes,
                        count_miss: bool = True) -> bool:
        next_hop = self._lookup(header.destination)
        if next_hop is not None:
            return self._transmit(header, payload, next_hop)
        if self.bridge is not None and not header.flags & FLAG_FROM_DS:
            # Mesh edge: unknown destinations leave through the portal.
            self.counters.incr("bridged_out")
            self.bridge(header.origin, header.destination, payload)
            return True
        if count_miss:
            self.counters.incr("route_misses")
        return self._queue_pending(header, payload)

    def _queue_pending(self, header: MeshHeader, payload: bytes) -> bool:
        queue = self._pending.get(header.destination)
        if queue is None:
            queue = deque()
            self._pending[header.destination] = queue
        if len(queue) >= self.config.pending_limit:
            self.counters.incr("pending_drops")
            return False
        queue.append((header, payload))
        return True

    def flush_pending(self) -> None:
        """Retry queued packets; protocols call this on route changes."""
        for destination in list(self._pending):
            queue = self._pending[destination]
            next_hop = self._lookup(destination)
            while queue and next_hop is not None:
                header, payload = queue.popleft()
                self.counters.incr("pending_flushed")
                self._transmit(header, payload, next_hop)
                next_hop = self._lookup(destination)
            if not queue:
                del self._pending[destination]

    def pending_count(self) -> int:
        return sum(len(queue) for queue in self._pending.values())

    def _transmit(self, header: MeshHeader, payload: bytes,
                  next_hop: MacAddress) -> bool:
        packet = header.encode() + payload
        link = self._link_counter(next_hop)
        link.incr("frames")
        link.incr("bytes", len(packet))
        if self.config.record_path:
            self.hop_log.append((self.sim.now, "tx", header.origin.value,
                                 header.sequence, self.name))
        accepted = self.station.send(next_hop, packet,
                                     context=("mesh", header))
        if not accepted:
            self.counters.incr("mac_queue_drops")
        return accepted

    def _link_counter(self, next_hop: MacAddress) -> Counter:
        counter = self.link_counters.get(next_hop)
        if counter is None:
            counter = Counter()
            self.link_counters[next_hop] = counter
        return counter

    def send_control(self, payload: bytes) -> bool:
        """Broadcast a routing control payload one hop (for protocols)."""
        self.counters.incr("control_tx")
        return self.station.send(BROADCAST, payload,
                                 context=("mesh-ctrl",),
                                 priority=self.config.control_priority)

    # --- MAC upcalls -------------------------------------------------------

    def _mac_receive(self, source: MacAddress, payload: bytes,
                     meta: Dict[str, Any]) -> None:
        decoded = decode_mesh(payload)
        if decoded is None:
            # Plain ad-hoc bytes sharing the station: hand up untouched.
            self.counters.incr("non_mesh_rx")
            for hook in tuple(self._receive_hooks):
                hook(source, payload, meta)
            return
        kind, header, body = decoded
        transmitter = meta.get("transmitter", source)
        if kind == "control":
            self.counters.incr("control_rx")
            self.protocol.on_control(transmitter, body)
            return
        assert header is not None
        # FLAG_REROUTED exempts *relays* from duplicate suppression (a
        # repaired route may revisit them); the final destination always
        # checks, so an ACK-loss-induced requeue cannot deliver twice.
        for_us = header.destination == self.address
        if self._dedup is not None \
                and (for_us or not header.flags & FLAG_REROUTED) \
                and self._dedup.is_duplicate(
                    header.origin, header.sequence, 0, True):
            self.counters.incr("duplicate_drops")
            return
        if self.config.record_path:
            self.hop_log.append((self.sim.now, "rx", header.origin.value,
                                 header.sequence, self.name))
        if for_us:
            self._deliver(header, body, meta)
        else:
            self._forward(header, body)

    def _deliver(self, header: MeshHeader, body: bytes,
                 meta: Dict[str, Any]) -> None:
        self.counters.incr("delivered")
        self.hop_counts.add(header.hops)
        enriched = dict(meta)
        enriched["mesh_hops"] = header.hops
        enriched["mesh_origin"] = header.origin
        for hook in tuple(self._receive_hooks):
            hook(header.origin, body, enriched)

    def _forward(self, header: MeshHeader, body: bytes) -> None:
        if header.ttl <= 1:
            self.counters.incr("ttl_drops")
            return
        if self.bridge is not None and not header.flags & FLAG_FROM_DS \
                and self.protocol.next_hop(header.destination) is None:
            # Transit traffic leaving the mesh through this gateway; its
            # mesh journey ends here, so the hop count is final.
            self.counters.incr("bridged_out")
            self.hop_counts.add(header.hops)
            self.bridge(header.origin, header.destination, body)
            return
        self.counters.incr("forwarded")
        self._route_or_queue(header.forwarded(), body)

    def _mac_tx_complete(self, msdu: Msdu, success: bool) -> None:
        context = msdu.context
        if not (isinstance(context, tuple) and context
                and context[0] == "mesh"):
            return
        header: MeshHeader = context[1]
        next_hop = msdu.destination
        if success:
            self.counters.incr("hop_delivered")
            return
        # Retry limit exhausted: the link to the next hop is down.
        self.counters.incr("link_failures")
        self._link_counter(next_hop).incr("failures")
        self.protocol.on_link_failure(next_hop)
        # Give the packet another chance: retransmit immediately when a
        # route still stands (a transient collision burst under a
        # static table), otherwise wait in the pending queue for the
        # protocol to repair (DSDV poisons the route just above).  Each
        # failed attempt spends one TTL, so a permanently dead next hop
        # sheds the packet instead of retrying forever.  FLAG_REROUTED
        # exempts the retransmission from duplicate suppression at
        # relays the packet already crossed.
        if header.ttl <= 1:
            self.counters.incr("ttl_drops")
            return
        body = msdu.payload[MESH_HEADER_SIZE:]
        rerouted = _dc_replace(header, ttl=header.ttl - 1,
                               flags=header.flags | FLAG_REROUTED)
        self.counters.incr("requeued_after_failure")
        self._route_or_queue(rerouted, body, count_miss=False)

    # --- fault injection ---------------------------------------------------

    def crash(self) -> None:
        """Power loss: forwarding state gone, protocol stopped, radio off.

        Pending route-miss queues and the origin-level duplicate history
        are RAM and are dropped; counters and the hop log survive (they
        are the experimenter's measurements, not the node's state).  The
        underlying station crash tears down the MAC and radio.
        """
        self.counters.incr("crashes")
        self.protocol.stop()
        self._pending.clear()
        if self._dedup is not None:
            self._dedup = DuplicateCache(
                history_per_sender=self.config.dedup_history)
        self.station.crash()

    def restart(self) -> None:
        """Boot after :meth:`crash`: radio on, protocol rejoins (DSDV
        re-announces with a fresh even sequence; static tables persist)."""
        self.counters.incr("restarts")
        self.station.restart()
        self.protocol.restart()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<MeshNode {self.name} {self.address} "
                f"proto={self.protocol.name}>")
