"""Tests for the Bluetooth piconet/scatternet substrate."""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import ConfigurationError, ProtocolError
from repro.wpan.bluetooth import (
    BluetoothDevice,
    DH1,
    DH5,
    DeviceClass,
    MAX_ACTIVE_SLAVES,
    Piconet,
    ScatternetBridge,
    SLOT_TIME,
)


def piconet_with_slaves(sim, count, packet_type=DH5, spacing=1.0):
    master = BluetoothDevice("master", Position(0, 0, 0))
    piconet = Piconet(sim, master, packet_type=packet_type)
    slaves = []
    for index in range(count):
        slave = BluetoothDevice(f"slave{index}",
                                Position(spacing * (index + 1), 0, 0))
        piconet.add_slave(slave)
        slaves.append(slave)
    return master, piconet, slaves


class TestMembership:
    def test_at_most_seven_active_slaves(self, sim):
        _, piconet, _ = piconet_with_slaves(sim, MAX_ACTIVE_SLAVES)
        extra = BluetoothDevice("extra", Position(1, 1, 0))
        with pytest.raises(ConfigurationError):
            piconet.add_slave(extra)

    def test_master_not_slave_of_itself(self, sim):
        master, piconet, _ = piconet_with_slaves(sim, 1)
        with pytest.raises(ConfigurationError):
            piconet.add_slave(master)

    def test_slave_to_slave_requires_master_relay(self, sim):
        _, piconet, (s0, s1) = piconet_with_slaves(sim, 2)
        with pytest.raises(ProtocolError):
            piconet.send(s0, s1, b"direct is not allowed")

    def test_foreign_device_cannot_send(self, sim):
        _, piconet, _ = piconet_with_slaves(sim, 1)
        stranger = BluetoothDevice("stranger", Position(0, 1, 0))
        with pytest.raises(ProtocolError):
            piconet.send(stranger, piconet.master, b"x")


class TestCapacity:
    def test_dh5_peak_rate_matches_the_720kbps_figure(self, sim):
        _, piconet, _ = piconet_with_slaves(sim, 1)
        # DH5+POLL pair: 339 bytes / 6 slots of 625 us ~ 723 kb/s.
        assert piconet.max_asymmetric_rate_bps() == \
            pytest.approx(723_000, rel=0.01)

    def test_single_slave_throughput_near_peak(self, sim):
        _, piconet, (slave,) = piconet_with_slaves(sim, 1)
        piconet.start()
        # Queue more than the link can move in the horizon: stay saturated.
        piconet.queue_payload(slave, bytes(1_000_000))
        sim.run(until=6.0)
        rate = slave.counters.get("rx_bytes") * 8 / 6.0
        assert rate == pytest.approx(piconet.max_asymmetric_rate_bps(),
                                     rel=0.05)

    def test_capacity_shared_among_slaves(self, sim):
        _, piconet, slaves = piconet_with_slaves(sim, 7)
        piconet.start()
        for slave in slaves:
            piconet.queue_payload(slave, bytes(200_000))
        sim.run(until=4.0)
        received = [slave.counters.get("rx_bytes") for slave in slaves]
        # Round-robin polling: everyone gets a near-equal share.
        assert max(received) - min(received) <= DH5.payload_bytes * 2
        total_rate = sum(received) * 8 / 4.0
        assert total_rate == pytest.approx(
            piconet.max_asymmetric_rate_bps(), rel=0.05)

    def test_uplink_direction(self, sim):
        master, piconet, (slave,) = piconet_with_slaves(sim, 1)
        piconet.start()
        for _ in range(50):
            piconet.send(slave, master, bytes(DH5.payload_bytes))
        sim.run(until=2.0)
        assert master.counters.get("rx_bytes") == 50 * DH5.payload_bytes

    def test_dh1_is_slower_than_dh5(self, sim):
        _, piconet1, _ = piconet_with_slaves(sim, 1, packet_type=DH1)
        _, piconet5, _ = piconet_with_slaves(sim, 1, packet_type=DH5)
        assert piconet1.max_asymmetric_rate_bps() < \
            piconet5.max_asymmetric_rate_bps()


class TestRange:
    def test_out_of_range_slave_gets_nothing(self, sim):
        master, piconet, _ = piconet_with_slaves(sim, 1)
        far = BluetoothDevice("far", Position(50, 0, 0),
                              device_class=DeviceClass.CLASS2)  # 10 m range
        piconet.add_slave(far)
        piconet.start()
        piconet.queue_payload(far, bytes(10_000))
        sim.run(until=2.0)
        assert far.counters.get("rx_bytes") == 0
        assert piconet.counters.get("downlink_misses") > 0

    def test_class1_reaches_100m(self, sim):
        master = BluetoothDevice("m", Position(0, 0, 0),
                                 device_class=DeviceClass.CLASS1)
        piconet = Piconet(sim, master)
        far = BluetoothDevice("f", Position(90, 0, 0),
                              device_class=DeviceClass.CLASS1)
        piconet.add_slave(far)
        piconet.start()
        piconet.queue_payload(far, bytes(1000))
        sim.run(until=1.0)
        assert far.counters.get("rx_bytes") == 1000


class TestScatternet:
    def test_bridge_relays_between_piconets(self, sim):
        """Fig 1.2: the master of piconet A is a slave in piconet B."""
        # Piconet A: masterA + bridge (bridge is a slave of A).
        master_a = BluetoothDevice("masterA", Position(0, 0, 0))
        piconet_a = Piconet(sim, master_a)
        bridge = BluetoothDevice("bridge", Position(5, 0, 0))
        piconet_a.add_slave(bridge)
        # Piconet B: the bridge is the master, with one slave.
        piconet_b = Piconet(sim, bridge)
        slave_b = BluetoothDevice("slaveB", Position(10, 0, 0))
        piconet_b.add_slave(slave_b)

        relay = ScatternetBridge(sim, bridge, piconet_a, piconet_b)
        relay.add_route("masterA", via=piconet_b, destination=slave_b)

        piconet_a.start()
        piconet_b.start()
        chunks = 60
        piconet_a.queue_payload(bridge, bytes(chunks * DH5.payload_bytes))
        sim.run(until=10.0)
        assert relay.relayed > 0
        assert slave_b.counters.get("rx_bytes") == \
            chunks * DH5.payload_bytes

    def test_bridge_membership_enforced(self, sim):
        master_a = BluetoothDevice("mA", Position(0, 0, 0))
        piconet_a = Piconet(sim, master_a)
        master_b = BluetoothDevice("mB", Position(5, 0, 0))
        piconet_b = Piconet(sim, master_b)
        outsider = BluetoothDevice("outsider", Position(1, 0, 0))
        with pytest.raises(ConfigurationError):
            ScatternetBridge(sim, outsider, piconet_a, piconet_b)

    def test_scatternet_relay_slower_than_direct(self, sim):
        """The bridge halves its presence, so relayed throughput is below
        the single-piconet rate — the scatternet trade-off."""
        master_a = BluetoothDevice("masterA", Position(0, 0, 0))
        piconet_a = Piconet(sim, master_a)
        bridge = BluetoothDevice("bridge", Position(5, 0, 0))
        piconet_a.add_slave(bridge)
        piconet_b = Piconet(sim, bridge)
        slave_b = BluetoothDevice("slaveB", Position(10, 0, 0))
        piconet_b.add_slave(slave_b)
        ScatternetBridge(sim, bridge, piconet_a, piconet_b)\
            .add_route("masterA", via=piconet_b, destination=slave_b)
        piconet_a.start()
        piconet_b.start()
        piconet_a.queue_payload(bridge, bytes(500_000))
        horizon = 6.0
        sim.run(until=horizon)
        relayed_rate = slave_b.counters.get("rx_bytes") * 8 / horizon
        assert 0 < relayed_rate < piconet_a.max_asymmetric_rate_bps()
