"""Tests for Bluetooth SCO voice links (the headset use case)."""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import ConfigurationError, ProtocolError
from repro.wpan.bluetooth import (
    BluetoothDevice,
    HV3,
    Piconet,
)


def piconet_with_headset(sim):
    phone = BluetoothDevice("phone", Position(0, 0, 0))
    piconet = Piconet(sim, phone)
    headset = BluetoothDevice("headset", Position(0.5, 0, 0))
    piconet.add_slave(headset)
    return phone, piconet, headset


class TestScoLink:
    def test_voice_rate_is_64kbps(self, sim):
        _, piconet, _ = piconet_with_headset(sim)
        assert piconet.sco_rate_bps == pytest.approx(64_000.0)

    def test_voice_flows_both_ways(self, sim):
        phone, piconet, headset = piconet_with_headset(sim)
        piconet.add_sco_link(headset)
        piconet.start()
        horizon = 2.0
        sim.run(until=horizon)
        for device in (phone, headset):
            voice_rate = device.counters.get("voice_bytes") * 8 / horizon
            assert voice_rate == pytest.approx(64_000.0, rel=0.05)

    def test_sco_requires_membership(self, sim):
        _, piconet, _ = piconet_with_headset(sim)
        stranger = BluetoothDevice("stranger", Position(1, 0, 0))
        with pytest.raises(ProtocolError):
            piconet.add_sco_link(stranger)

    def test_one_sco_link_per_piconet(self, sim):
        _, piconet, headset = piconet_with_headset(sim)
        second = BluetoothDevice("second", Position(1, 0, 0))
        piconet.add_slave(second)
        piconet.add_sco_link(headset)
        with pytest.raises(ConfigurationError):
            piconet.add_sco_link(second)

    def test_voice_steals_a_third_of_data_capacity(self, sim):
        """An HV3 link reserves every third slot pair, so ACL data
        throughput drops to ~2/3 of the data-only rate."""
        phone, piconet, headset = piconet_with_headset(sim)
        laptop = BluetoothDevice("laptop", Position(1, 0, 0))
        piconet.add_slave(laptop)
        piconet.add_sco_link(headset)
        piconet.start()
        piconet.queue_payload(laptop, bytes(1_000_000))
        horizon = 4.0
        sim.run(until=horizon)
        data_rate = laptop.counters.get("rx_bytes") * 8 / horizon
        data_only = piconet.max_asymmetric_rate_bps()
        assert data_rate == pytest.approx(data_only * 2 / 3, rel=0.1)

    def test_remove_sco_restores_capacity(self, sim):
        phone, piconet, headset = piconet_with_headset(sim)
        piconet.add_sco_link(headset)
        piconet.remove_sco_link(headset)
        piconet.start()
        piconet.queue_payload(headset, bytes(1_000_000))
        horizon = 3.0
        sim.run(until=horizon)
        data_rate = headset.counters.get("rx_bytes") * 8 / horizon
        assert data_rate == pytest.approx(
            piconet.max_asymmetric_rate_bps(), rel=0.05)

    def test_voice_continues_without_data_traffic(self, sim):
        _, piconet, headset = piconet_with_headset(sim)
        piconet.add_sco_link(headset)
        piconet.start()
        sim.run(until=1.0)
        assert piconet.counters.get("sco_pairs") > 200  # ~267 per second
