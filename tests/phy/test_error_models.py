"""Tests for SNR -> frame delivery error models."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.phy.error_models import (
    BerErrorModel,
    FixedPerErrorModel,
    SnrThresholdErrorModel,
)
from repro.phy.modulation import OFDM_QPSK_12


class TestBerErrorModel:
    def test_per_bounds(self):
        model = BerErrorModel()
        for snr in (-20.0, 0.0, 10.0, 40.0):
            per = model.packet_error_rate(snr, 12000, OFDM_QPSK_12)
            assert 0.0 <= per <= 1.0

    def test_per_increases_with_size(self):
        model = BerErrorModel()
        small = model.packet_error_rate(8.0, 100 * 8, OFDM_QPSK_12)
        large = model.packet_error_rate(8.0, 1500 * 8, OFDM_QPSK_12)
        assert large >= small

    def test_per_decreases_with_snr(self):
        model = BerErrorModel()
        pers = [model.packet_error_rate(snr, 12000, OFDM_QPSK_12)
                for snr in range(-5, 30, 5)]
        for earlier, later in zip(pers, pers[1:]):
            assert later <= earlier + 1e-15

    def test_zero_size_never_fails(self):
        model = BerErrorModel()
        assert model.packet_error_rate(-50.0, 0, OFDM_QPSK_12) == 0.0

    def test_tiny_ber_does_not_underflow_to_zero(self):
        # At a moderate SNR the per-bit error is small but a long frame
        # should still have a measurable, nonzero PER.
        model = BerErrorModel()
        per = model.packet_error_rate(11.0, 1500 * 8, OFDM_QPSK_12)
        assert 0.0 < per < 1.0

    def test_frame_survival_sampling_matches_per(self):
        model = BerErrorModel()
        rng = random.Random(1)
        snr = 9.0
        per = model.packet_error_rate(snr, 12000, OFDM_QPSK_12)
        trials = 4000
        failures = sum(
            not model.frame_survives(snr, 12000, OFDM_QPSK_12, rng)
            for _ in range(trials))
        assert failures / trials == pytest.approx(per, abs=0.05)


class TestSnrThreshold:
    def test_cliff(self):
        model = SnrThresholdErrorModel(threshold_db=10.0)
        assert model.packet_error_rate(10.0, 1000, OFDM_QPSK_12) == 0.0
        assert model.packet_error_rate(9.99, 1000, OFDM_QPSK_12) == 1.0

    def test_deterministic_sampling(self):
        model = SnrThresholdErrorModel(threshold_db=5.0)
        rng = random.Random(1)
        assert model.frame_survives(6.0, 1000, OFDM_QPSK_12, rng)
        assert not model.frame_survives(4.0, 1000, OFDM_QPSK_12, rng)


class TestFixedPer:
    def test_constant_rate(self):
        model = FixedPerErrorModel(per=0.25)
        assert model.packet_error_rate(100.0, 10, OFDM_QPSK_12) == 0.25

    def test_sampling_long_run(self):
        model = FixedPerErrorModel(per=0.3)
        rng = random.Random(2)
        trials = 5000
        failures = sum(
            not model.frame_survives(0.0, 1, OFDM_QPSK_12, rng)
            for _ in range(trials))
        assert failures / trials == pytest.approx(0.3, abs=0.03)

    @given(st.floats(min_value=-0.01, max_value=1.01))
    def test_per_validation(self, per):
        if 0.0 <= per <= 1.0:
            FixedPerErrorModel(per=per)
        else:
            with pytest.raises(ValueError):
                FixedPerErrorModel(per=per)
