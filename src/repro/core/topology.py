"""Positions and node placement helpers.

Wireless behaviour is dominated by geometry, so positions are first-class:
:class:`Position` is an immutable 3-D point, and the placement helpers
produce the layouts used throughout the examples and benchmarks (grids,
uniform discs, lines, hexagonal cell sites).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True, slots=True)
class Position:
    """An immutable point in meters.

    Immutability is load-bearing for performance: the PHY's
    :class:`~repro.phy.channel.LinkCache` validates cached link budgets
    by position *identity*, so "moving" a node must always assign a new
    ``Position`` (as :meth:`translated` / :meth:`toward` and every
    mobility model do) rather than mutating coordinates in place.
    """

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance in meters."""
        dx = self.x - other.x
        dy = self.y - other.y
        dz = self.z - other.z
        return math.sqrt(dx * dx + dy * dy + dz * dz)

    def bearing_to(self, other: "Position") -> float:
        """Horizontal bearing (radians, from +x axis) to ``other``."""
        return math.atan2(other.y - self.y, other.x - self.x)

    def translated(self, dx: float = 0.0, dy: float = 0.0, dz: float = 0.0) -> "Position":
        return Position(self.x + dx, self.y + dy, self.z + dz)

    def toward(self, other: "Position", distance: float) -> "Position":
        """The point ``distance`` meters from here along the line to ``other``."""
        total = self.distance_to(other)
        if total == 0.0:
            return self
        fraction = distance / total
        return Position(self.x + (other.x - self.x) * fraction,
                        self.y + (other.y - self.y) * fraction,
                        self.z + (other.z - self.z) * fraction)


ORIGIN = Position(0.0, 0.0, 0.0)


def line_layout(count: int, spacing: float, start: Position = ORIGIN) -> List[Position]:
    """``count`` positions along the +x axis, ``spacing`` meters apart."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [start.translated(dx=index * spacing) for index in range(count)]


def grid_layout(rows: int, cols: int, spacing: float,
                start: Position = ORIGIN) -> List[Position]:
    """A rows x cols grid in the xy plane."""
    if rows < 0 or cols < 0:
        raise ValueError("rows and cols must be non-negative")
    return [start.translated(dx=col * spacing, dy=row * spacing)
            for row in range(rows) for col in range(cols)]


def circle_layout(count: int, radius: float, center: Position = ORIGIN) -> List[Position]:
    """``count`` positions evenly spaced on a circle around ``center``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    positions = []
    for index in range(count):
        angle = 2.0 * math.pi * index / max(count, 1)
        positions.append(center.translated(dx=radius * math.cos(angle),
                                           dy=radius * math.sin(angle)))
    return positions


def random_disc_layout(count: int, radius: float, rng: random.Random,
                       center: Position = ORIGIN) -> List[Position]:
    """``count`` positions uniformly distributed over a disc.

    Uniform over *area* (sqrt radial transform), not uniform in radius.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    positions = []
    for _ in range(count):
        r = radius * math.sqrt(rng.random())
        theta = 2.0 * math.pi * rng.random()
        positions.append(center.translated(dx=r * math.cos(theta),
                                           dy=r * math.sin(theta)))
    return positions


def hexagonal_cell_centers(rings: int, cell_radius: float,
                           center: Position = ORIGIN) -> List[Position]:
    """Centers of a hexagonal cell cluster: the center cell plus ``rings``
    concentric rings (ring k contributes 6k cells).

    Used by the cellular substrate for frequency-reuse layouts.
    """
    if rings < 0:
        raise ValueError(f"rings must be non-negative, got {rings}")
    centers = [center]
    # Axial hex coordinates; distance between adjacent centers is
    # sqrt(3) * cell_radius for flat-top hexagons.
    pitch = math.sqrt(3.0) * cell_radius
    directions = [(1, 0), (0, 1), (-1, 1), (-1, 0), (0, -1), (1, -1)]
    for ring in range(1, rings + 1):
        # Classic ring walk: start one ring out along direction 4, then
        # take `ring` steps in each of the six directions.
        q, r = 0, -ring
        for direction in directions:
            for _ in range(ring):
                x = pitch * (q + r / 2.0)
                y = pitch * (math.sqrt(3.0) / 2.0) * r
                centers.append(center.translated(dx=x, dy=y))
                q += direction[0]
                r += direction[1]
    return centers


def nearest(position: Position, candidates: List[Position]) -> Tuple[int, float]:
    """Index of and distance to the nearest candidate position."""
    if not candidates:
        raise ValueError("candidates must be non-empty")
    best_index = 0
    best_distance = position.distance_to(candidates[0])
    for index, candidate in enumerate(candidates[1:], start=1):
        distance = position.distance_to(candidate)
        if distance < best_distance:
            best_index = index
            best_distance = distance
    return best_index, best_distance
