#!/usr/bin/env python3
"""Capture seeded golden traces for the determinism contract.

Runs the DES macro-scenarios with full tracing enabled and dumps each
protocol event trace (repr-exact timestamps) plus the seeded stats to a
directory.  Used two ways:

* Around a refactor: capture before, capture after, ``diff -r`` — the
  byte-identical-traces acceptance check.

      PYTHONPATH=src:benchmarks:tests python tools/capture_golden.py /tmp/before
      ... refactor ...
      PYTHONPATH=src:benchmarks:tests python tools/capture_golden.py /tmp/after
      diff -r /tmp/before /tmp/after

* ``--fixture``: regenerate the committed backoff tie-break fixture
  (``tests/mac/fixtures/tiebreak_trace.json``).  Only do this
  deliberately, from a commit whose contention behavior is the intended
  reference.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import pathlib
import sys
from typing import Any, Dict, List, Optional, Sequence

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
sys.path.insert(0, str(REPO_ROOT / "tests"))

FIXTURE_PATH = REPO_ROOT / "tests" / "mac" / "fixtures" / "tiebreak_trace.json"

#: Macros whose runs are DES-driven: every in-process simulator they
#: build is captured with full tracing (multi-simulator macros emit one
#: ``# sim N`` section per simulator, in construction order).
TRACED_MACROS = ("dcf_saturation", "dcf_saturation_fast",
                 "dcf_saturation_100", "dcf_saturation_100_fast",
                 "multi_bss", "hidden_terminal", "interference_field",
                 "interference_field_fast", "mesh_backhaul", "roaming_ess",
                 "fault_storm")
#: Macros captured by seeded stats fingerprint only: wep_audit is pure
#: computation (no event trace), and the city_scale pair runs its
#: simulators inside forked shard workers where the parent cannot reach
#: their trace logs — their canonical arrival-log sha1 in the stats is
#: the equivalent byte-level pin.
STATS_ONLY_MACROS = ("wep_audit", "city_scale", "city_scale_1p")
#: Everything capture-able: the traced set plus the stats-only macros.
CAPTURABLE_MACROS = TRACED_MACROS + STATS_ONLY_MACROS


def select_macros(patterns: Optional[Sequence[str]],
                  error) -> List[str]:
    """Resolve ``--only`` patterns against the capturable macro set.

    Same contract as ``run_bench.py --only``: each entry is an exact
    name or a glob, order follows the command line, duplicates
    collapse, and a pattern matching nothing is an error — a typo must
    not silently capture zero macros and report success.  ``error`` is
    the parser's error callback (or any ``str -> NoReturn``).
    """
    if not patterns:
        return list(CAPTURABLE_MACROS)
    names: List[str] = []
    unmatched = []
    for pattern in patterns:
        matched = [name for name in CAPTURABLE_MACROS
                   if fnmatch.fnmatch(name, pattern)]
        if not matched:
            unmatched.append(pattern)
        names.extend(name for name in matched if name not in names)
    if unmatched:
        error(f"unknown macro(s)/pattern(s): {unmatched}; "
              f"capturable: {list(CAPTURABLE_MACROS)}")
    return names


def _strip_stats(stats: Dict[str, Any]) -> Dict[str, Any]:
    # Strip instrumentation counters along with the kernel event
    # count: cache/plan hit ratios, telemetry accumulators and the
    # like are implementation diagnostics, not protocol outcomes,
    # and legitimately change when a perf PR restructures the
    # caching (the traces are the bit-identity contract).
    return {key: value for key, value in stats.items()
            if key != "events"
            and not key.startswith(("link_cache", "fanout_",
                                    "telemetry"))}


def capture_macros(out_dir: pathlib.Path, scale: float,
                   names: Optional[Sequence[str]] = None,
                   telemetry: bool = False) -> None:
    from perf import macro as macro_mod
    from repro.core.engine import Simulator
    from repro.core.trace import TraceLog

    captured: List[Simulator] = []

    def traced_simulator(seed: int) -> Simulator:
        trace = TraceLog(capacity=None, enabled=True)
        sim = Simulator(seed=seed, trace=trace)
        captured.append(sim)
        return sim

    if names is None:
        names = CAPTURABLE_MACROS
    macro_mod._perf_simulator = traced_simulator
    for name in [n for n in names if n in TRACED_MACROS]:
        captured.clear()
        result = macro_mod.MACROS[name](scale, telemetry=telemetry)
        # One section per simulator, in construction order.  The
        # single-simulator format (no section marker) is unchanged from
        # before multi-simulator macros were capturable, so historical
        # before/after diffs stay line-for-line comparable.
        sections: List[str] = []
        total = 0
        for index, sim in enumerate(captured):
            lines = [
                f"{record.time!r} {record.source} {record.event} "
                + " ".join(f"{key}={value!r}"
                           for key, value in sorted(record.detail.items()))
                for record in sim.trace
            ]
            total += len(lines)
            if len(captured) > 1:
                sections.append(f"# sim {index}")
            sections.extend(lines)
        (out_dir / f"{name}.trace").write_text("\n".join(sections) + "\n")
        stats = _strip_stats(result["stats"])
        stats["protocol_events"] = total
        (out_dir / f"{name}.stats.json").write_text(
            json.dumps(stats, indent=2, sort_keys=True) + "\n")
        if telemetry:
            # Sim-time stream only: it's part of the determinism
            # contract and diffs byte-for-byte; the wall stream is
            # machine noise and would break ``diff -r``.
            (out_dir / f"{name}.telemetry.jsonl").write_text(
                result["telemetry_jsonl"])
        print(f"{name:24s} {total:8d} trace lines -> {out_dir}")
    for name in [n for n in names if n in STATS_ONLY_MACROS]:
        captured.clear()
        # Stats only: wep_audit is pure computation; the city_scale
        # pair's simulators live in forked shard workers (their
        # canonical arrival-log sha1 inside the stats is the byte pin).
        if name == "wep_audit":
            result = macro_mod.MACROS[name](min(scale, 1.0))
            stats = result["stats"]
        else:
            result = macro_mod.MACROS[name](scale)
            stats = _strip_stats(result["stats"])
        (out_dir / f"{name}.stats.json").write_text(
            json.dumps(stats, indent=2, sort_keys=True) + "\n")
        print(f"{name:24s} stats only -> {out_dir}")


def capture_fixture() -> None:
    from mac.golden_tiebreak import (SCENARIO_VERSION, run_tiebreak_scenario,
                                     same_slot_transmissions)
    lines, stats = run_tiebreak_scenario()
    ties = same_slot_transmissions(lines)
    if ties < 1:
        raise SystemExit("scenario produced no same-slot ties; fixture "
                         "would not pin the tie-break ordering")
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps({
        "scenario_version": SCENARIO_VERSION,
        "same_slot_ties": ties,
        "stats": stats,
        "trace": lines,
    }, indent=2, sort_keys=True) + "\n")
    print(f"fixture: {len(lines)} trace lines, {ties} same-slot ties "
          f"-> {FIXTURE_PATH}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("out_dir", nargs="?", type=pathlib.Path,
                        help="directory for <macro>.trace / .stats.json")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="macro workload scale (default 0.5)")
    parser.add_argument("--only", action="append", metavar="NAME",
                        help="capture only this macro (repeatable; accepts "
                             "glob patterns, same contract as "
                             "run_bench.py --only; a pattern matching "
                             "nothing is an error)")
    parser.add_argument("--kernel", default=None,
                        metavar="{auto,python,c}",
                        help="run-loop implementation for every captured "
                             "macro (exported as REPRO_KERNEL so forked "
                             "shard workers inherit it).  The cross-kernel "
                             "gate is two captures + diff -r:\n"
                             "  capture_golden.py /tmp/py --kernel python\n"
                             "  capture_golden.py /tmp/c  --kernel c\n"
                             "  diff -r /tmp/py /tmp/c\n"
                             "'c' errors out if the extension is not built "
                             "(default: honor REPRO_KERNEL, else auto)")
    parser.add_argument("--fixture", action="store_true",
                        help="regenerate the committed tie-break fixture")
    parser.add_argument("--telemetry", action="store_true",
                        help="run the traced macros with telemetry armed and "
                             "additionally capture each sim-time stream as "
                             "<macro>.telemetry.jsonl (the wall stream is "
                             "machine noise and is never captured)")
    args = parser.parse_args(argv)
    if args.kernel is not None:
        import os

        from repro.core.engine import KERNELS, resolve_kernel
        if args.kernel not in KERNELS:
            parser.error(f"unknown kernel {args.kernel!r}; "
                         f"expected one of {KERNELS}")
        os.environ["REPRO_KERNEL"] = args.kernel
        try:
            resolve_kernel()  # fail fast on an unbuilt explicit 'c'
        except Exception as exc:
            parser.error(str(exc))
    if not args.fixture and args.out_dir is None:
        parser.error("need an out_dir (or --fixture)")
    if args.out_dir is not None:
        names = select_macros(args.only, parser.error)
        args.out_dir.mkdir(parents=True, exist_ok=True)
        capture_macros(args.out_dir, args.scale, names,
                       telemetry=args.telemetry)
    if args.fixture:
        capture_fixture()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
