"""E6 — Fig 1.6: the home WLAN.

A domestic infrastructure BSS: one AP, several stations at realistic
in-home distances, everyone associated over the real management
exchanges, mixed uplink traffic.

Reproduced claims:

* an 802.11g BSS outperforms an 802.11b BSS severalfold (§2.2: 54 vs
  11 Mb/s link rates),
* b/g coexistence: 802.11g "will use the same 2.4-GHz band that
  802.11b uses" — a legacy 802.11b transmitter on the channel drags an
  802.11g network's throughput down (energy it cannot decode still
  jams the medium).
"""

import pytest

from repro import scenarios
from repro.analysis.tables import render_table
from repro.core import Position, Simulator
from repro.mac.dcf import DcfMac
from repro.mac.rate_adapt import fixed_rate_factory
from repro.net.bss import IndependentBss
from repro.net.station import Station
from repro.phy.standards import DOT11B, DOT11G
from repro.traffic.generators import CbrSource
from repro.traffic.sink import TrafficSink

STATIONS = 3
HORIZON = 3.0


def run_home_bss(standard, seed=1, interferer=False):
    sim = Simulator(seed=seed)
    bss = scenarios.build_infrastructure_bss(
        sim, station_count=STATIONS, standard=standard, radius_m=12.0)
    sink = TrafficSink(sim)
    bss.ap.on_receive(sink)
    for station in bss.stations:
        CbrSource(sim, lambda p, s=station: s.send(bss.ap.address, p),
                  packet_bytes=1000, interval=0.004)
    if interferer:
        # A legacy 802.11b pair saturating the same channel.
        ibss = IndependentBss.start(sim)
        legacy_tx = Station(sim, bss.medium, DOT11B, Position(6, 6, 0),
                            name="legacy-tx", adhoc=True,
                            ibss_bssid=ibss.bssid,
                            rate_factory=fixed_rate_factory("DSSS-1"))
        legacy_rx = Station(sim, bss.medium, DOT11B, Position(7, 6, 0),
                            name="legacy-rx", adhoc=True,
                            ibss_bssid=ibss.bssid,
                            rate_factory=fixed_rate_factory("DSSS-1"))
        for station in (legacy_tx, legacy_rx):
            ibss.join(station)
        # The g radios cannot decode DSSS but must defer to its energy;
        # the b radios likewise defer to OFDM energy.
        CbrSource(sim, lambda p: legacy_tx.send(legacy_rx.address, p),
                  packet_bytes=1000, interval=0.006)
    start = sim.now
    sim.run(until=start + HORIZON)
    return sink.total_goodput_bps(HORIZON)


def run_all():
    return {
        "802.11b BSS": run_home_bss(DOT11B),
        "802.11g BSS": run_home_bss(DOT11G),
        "802.11g BSS + 802.11b interferer": run_home_bss(DOT11G,
                                                         interferer=True),
    }


def test_fig_home_wlan(benchmark, record_result):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[name, goodput / 1e6]
            for name, goodput in results.items()]
    text = render_table(
        "E6: Home WLAN (Fig 1.6): 3 stations, uplink CBR to the AP",
        ["configuration", "aggregate goodput Mb/s"],
        rows, formats=[None, ".2f"])
    record_result("E6_home_wlan", text)

    b_rate = results["802.11b BSS"]
    g_rate = results["802.11g BSS"]
    g_jammed = results["802.11g BSS + 802.11b interferer"]
    # Offered load: 3 x 2 Mb/s = 6 Mb/s. The g BSS carries it all;
    # the b BSS cannot (11 Mb/s link rate minus MAC overhead < 6 Mb/s).
    assert g_rate > b_rate
    assert g_rate == pytest.approx(6e6, rel=0.05)
    assert b_rate < 5.7e6
    # Coexistence: the legacy transmitter costs the g network throughput.
    assert g_jammed < g_rate * 0.98
