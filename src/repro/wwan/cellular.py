"""Cellular networks: cells, frequency reuse, generations, handoff.

The source text (§2.4) sketches the cellular system: coverage divided
into cells, each served by a low-power transmitter, channels reused at
distance ("frequency reuse at much smaller distances"), and a ladder of
generations — 1G (2.4 kb/s analog voice) through 4G (1 Gb/s).

Model pieces:

* :class:`CellularNetwork` — a hexagonal cell cluster
  (:func:`~repro.core.topology.hexagonal_cell_centers`) with a reuse
  factor: the channel pool is split into ``reuse_factor`` groups, cells
  colored so adjacent cells never share a group.
* :class:`MobileDevice` — attaches to the strongest (nearest) cell;
  a session occupies one channel; blocked when the cell's group is
  exhausted.
* **Handoff** — mobiles re-evaluate the serving cell periodically; a
  move to a new strongest cell hands the session over (or drops it if
  the target is full), which is what experiment E8 exercises.
* :data:`GENERATIONS` — the per-generation peak data rates from the
  text, shared among a cell's active data users.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..core.engine import PeriodicTask, Simulator
from ..core.errors import ConfigurationError, ProtocolError
from ..core.stats import Counter
from ..core.topology import Position, hexagonal_cell_centers, nearest
from ..core.units import gbps, kbps, mbps


@dataclass(frozen=True)
class Generation:
    """One cellular generation, per the text's §2.4 ladder."""

    name: str
    year: int
    peak_rate_bps: float
    description: str


GENERATIONS = {
    "1G": Generation("1G", 1981, kbps(2.4), "analog voice"),
    "2G": Generation("2G", 1992, kbps(64), "digital, SMS (GSM)"),
    "2.5G": Generation("2.5G", 1998, kbps(144), "2G + GPRS"),
    "3G": Generation("3G", 2000, mbps(2), "mobile data (UMTS)"),
    "3.5G": Generation("3.5G", 2006, mbps(14), "HSDPA"),
    "4G": Generation("4G", 2010, gbps(1), "all-IP (LTE-A)"),
}

_ALLOWED_REUSE = (1, 3, 4, 7, 12)


class Cell:
    """One cell site."""

    def __init__(self, cell_id: int, center: Position, channel_group: int,
                 channels: int):
        self.cell_id = cell_id
        self.center = center
        self.channel_group = channel_group
        self.channels = channels
        self.active: List["MobileDevice"] = []
        self.counters = Counter()

    @property
    def free_channels(self) -> int:
        return self.channels - len(self.active)

    def admit(self, mobile: "MobileDevice") -> bool:
        if self.free_channels <= 0:
            self.counters.incr("blocked")
            return False
        self.active.append(mobile)
        self.counters.incr("admitted")
        return True

    def release(self, mobile: "MobileDevice") -> None:
        if mobile in self.active:
            self.active.remove(mobile)


class CellularNetwork:
    """A hexagonal deployment of one generation's technology."""

    def __init__(self, sim: Simulator, generation: str = "4G",
                 rings: int = 2, cell_radius_m: float = 1500.0,
                 total_channels: int = 70, reuse_factor: int = 7):
        if generation not in GENERATIONS:
            raise ConfigurationError(f"unknown generation {generation!r}")
        if reuse_factor not in _ALLOWED_REUSE:
            raise ConfigurationError(
                f"reuse factor must be one of {_ALLOWED_REUSE}")
        if total_channels < reuse_factor:
            raise ConfigurationError("need at least one channel per group")
        self.sim = sim
        self.generation = GENERATIONS[generation]
        self.cell_radius_m = cell_radius_m
        self.reuse_factor = reuse_factor
        self.channels_per_cell = total_channels // reuse_factor
        centers = hexagonal_cell_centers(rings, cell_radius_m)
        self.cells = [Cell(index, center, index % reuse_factor,
                           self.channels_per_cell)
                      for index, center in enumerate(centers)]
        self.counters = Counter()

    # --- attachment ------------------------------------------------------------

    def strongest_cell(self, position: Position) -> Cell:
        index, _distance = nearest(position,
                                   [cell.center for cell in self.cells])
        return self.cells[index]

    def total_capacity_sessions(self) -> int:
        """Simultaneous sessions the whole deployment supports — the
        frequency-reuse payoff experiment E8 reports."""
        return self.channels_per_cell * len(self.cells)

    def data_rate_for(self, cell: Cell) -> float:
        """Per-user data rate: the generation's peak shared in-cell."""
        users = max(len(cell.active), 1)
        return self.generation.peak_rate_bps / users


class MobileDevice:
    """A handset: one session, mobility-aware, hands off between cells."""

    def __init__(self, sim: Simulator, network: CellularNetwork, name: str,
                 position: Position, reevaluate_every: float = 1.0):
        self.sim = sim
        self.network = network
        self.name = name
        self.position = position
        self.serving: Optional[Cell] = None
        self.counters = Counter()
        self.in_session = False
        self._monitor = PeriodicTask(sim, reevaluate_every,
                                     self._reevaluate)

    # --- session control -----------------------------------------------------------

    def start_session(self) -> bool:
        """Place a call / open a data session; False if blocked."""
        if self.in_session:
            raise ProtocolError(f"{self.name} already in a session")
        cell = self.network.strongest_cell(self.position)
        if not cell.admit(self):
            self.counters.incr("blocked")
            return False
        self.serving = cell
        self.in_session = True
        self.counters.incr("sessions")
        return True

    def end_session(self) -> None:
        if self.serving is not None:
            self.serving.release(self)
        self.serving = None
        self.in_session = False

    def current_rate_bps(self) -> float:
        if not self.in_session or self.serving is None:
            return 0.0
        return self.network.data_rate_for(self.serving)

    # --- handoff ------------------------------------------------------------------

    def _reevaluate(self) -> None:
        if not self.in_session or self.serving is None:
            return
        best = self.network.strongest_cell(self.position)
        if best is self.serving:
            return
        # Hard handoff: break-before-make on channel exhaustion.
        if best.admit(self):
            self.serving.release(self)
            self.serving = best
            self.counters.incr("handoffs")
        else:
            self.serving.release(self)
            self.serving = None
            self.in_session = False
            self.counters.incr("dropped")
