"""Every committed perf macro runs clean with telemetry armed, exports
all three telemetry keys, and keeps its seeded protocol stats."""

import pathlib
import sys

from repro.telemetry.export import parse_jsonl

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from perf.macro import MACROS  # noqa: E402

SCALE = 0.02


class TestMacroSweep:
    def test_all_macros_run_clean_with_telemetry(self):
        for name in sorted(MACROS):
            result = MACROS[name](SCALE, telemetry=True)
            for key in ("telemetry_jsonl", "telemetry_wall_jsonl",
                        "telemetry_summary"):
                assert key in result, f"{name} missing {key}"
            records = parse_jsonl(result["telemetry_jsonl"])
            assert records, f"{name} exported an empty stream"
            header = records[0]
            assert header["type"] in ("header", "merged", "part"), name
            # The BENCH contract keys survive untouched.
            assert result["work"] > 0, name
            assert isinstance(result["stats"], dict), name

    def test_macros_without_telemetry_stay_bare(self):
        for name in ("dcf_saturation", "wep_audit", "city_scale_1p"):
            result = MACROS[name](SCALE)
            assert "telemetry_jsonl" not in result, name
            assert "telemetry_summary" not in result, name
