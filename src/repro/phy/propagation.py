"""Radio propagation (path-loss) models.

A propagation model answers one question: given a transmit power and two
positions, what power arrives at the receiver?  The classic trio is
implemented — Friis free-space, log-distance with a configurable
exponent, and two-ray ground reflection — plus a log-normal shadowing
decorator that adds a per-link random (but frozen, hence reproducible)
offset.

Models expose two domains:

* :meth:`path_loss_db(tx, rx)` — loss in dB (reporting/introspection),
* :meth:`link_gain(tx, rx)` — the *linear* power gain of the link.

Every subclass overrides :meth:`link_gain` with a form that avoids
``log10`` entirely (Friis as ``(λ/4πd)²``, log-distance as a single
``pow``, the disc/fixed models as precomputed constants).  The frame
hot loop itself does **not** call either method per frame — the
:class:`~repro.phy.channel.LinkCache` memoizes
:meth:`received_power_watts`, which stays in dB space so cached,
uncached and historical seeded runs are bit-identical.  ``link_gain``
is for analysis code and new subsystems that work in the linear domain
and don't need ulp-compatibility with the dB pipeline.
"""

from __future__ import annotations

import math
import random
from typing import Dict, Optional, Tuple

from ..core.errors import ConfigurationError
from ..core.topology import Position
from ..core.units import (
    dbm_to_watts,
    frequency_to_wavelength,
    watts_to_dbm,
)


class PropagationModel:
    """Abstract base: subclasses implement :meth:`path_loss_db` and may
    override :meth:`link_gain` with a ``log10``-free fast path."""

    def path_loss_db(self, tx: Position, rx: Position) -> float:
        raise NotImplementedError

    def link_gain(self, tx: Position, rx: Position) -> float:
        """Linear power gain (rx power / tx power) of the link."""
        return 10.0 ** (-0.1 * self.path_loss_db(tx, rx))

    def received_power_watts(self, tx_power_watts: float,
                             tx: Position, rx: Position) -> float:
        """Apply the path loss to a transmit power.

        Deliberately kept in dB space, bit-compatible with historical
        results: the hot path never calls this per frame — the
        :class:`~repro.phy.channel.LinkCache` memoizes its value per
        radio pair, so the transcendental round-trip is paid once per
        link, not once per frame.  Use :meth:`link_gain` directly when
        working in the linear domain and ulp-level compatibility with
        the dB pipeline is not required.
        """
        tx_dbm = watts_to_dbm(tx_power_watts)
        rx_dbm = tx_dbm - self.path_loss_db(tx, rx)
        return dbm_to_watts(rx_dbm)


class FreeSpace(PropagationModel):
    """Friis free-space model: loss grows with 20 log10(d).

    ``loss(d) = 20 log10(4 pi d / lambda)``.  Below ``min_distance`` the
    loss is clamped to the min-distance value so co-located nodes do not
    produce infinite receive power.
    """

    def __init__(self, frequency_hz: float, min_distance: float = 1.0):
        if frequency_hz <= 0:
            raise ConfigurationError(f"bad frequency: {frequency_hz}")
        if min_distance <= 0:
            raise ConfigurationError(f"bad min_distance: {min_distance}")
        self.frequency_hz = frequency_hz
        self.min_distance = min_distance
        self._wavelength = frequency_to_wavelength(frequency_hz)
        # Friis in linear form: gain(d) = (lambda / 4 pi d)^2.
        self._gain_numerator = (self._wavelength / (4.0 * math.pi)) ** 2

    def path_loss_db(self, tx: Position, rx: Position) -> float:
        distance = max(tx.distance_to(rx), self.min_distance)
        return 20.0 * math.log10(4.0 * math.pi * distance / self._wavelength)

    def link_gain(self, tx: Position, rx: Position) -> float:
        distance = max(tx.distance_to(rx), self.min_distance)
        return self._gain_numerator / (distance * distance)


class LogDistance(PropagationModel):
    """Log-distance model: free-space up to ``reference_distance``, then a
    configurable exponent.

    ``exponent`` ≈ 2 outdoors line-of-sight, 3–4 indoors / obstructed.
    This is the workhorse model for indoor WLAN scenarios.
    """

    def __init__(self, frequency_hz: float, exponent: float = 3.0,
                 reference_distance: float = 1.0):
        if exponent < 1.0:
            raise ConfigurationError(f"implausible exponent: {exponent}")
        if reference_distance <= 0:
            raise ConfigurationError(
                f"bad reference_distance: {reference_distance}")
        self.exponent = exponent
        self.reference_distance = reference_distance
        self._free_space = FreeSpace(frequency_hz, min_distance=reference_distance)
        self._reference_loss = self._free_space.path_loss_db(
            Position(0, 0, 0), Position(reference_distance, 0, 0))
        self._reference_gain = 10.0 ** (-0.1 * self._reference_loss)

    def path_loss_db(self, tx: Position, rx: Position) -> float:
        distance = tx.distance_to(rx)
        if distance <= self.reference_distance:
            return self._free_space.path_loss_db(tx, rx)
        return self._reference_loss + 10.0 * self.exponent * math.log10(
            distance / self.reference_distance)

    def link_gain(self, tx: Position, rx: Position) -> float:
        distance = tx.distance_to(rx)
        if distance <= self.reference_distance:
            return self._free_space.link_gain(tx, rx)
        # One pow instead of a log10 + pow round-trip through dB space.
        return self._reference_gain * (
            self.reference_distance / distance) ** self.exponent


class TwoRayGround(PropagationModel):
    """Two-ray ground reflection: free-space close in, d^4 beyond the
    crossover distance ``d_c = 4 pi h_t h_r / lambda``.

    Appropriate for km-scale outdoor links (the WiMAX substrate).
    Antenna heights default to 1.5 m.
    """

    def __init__(self, frequency_hz: float, tx_height: float = 1.5,
                 rx_height: float = 1.5, min_distance: float = 1.0):
        if tx_height <= 0 or rx_height <= 0:
            raise ConfigurationError("antenna heights must be positive")
        self.tx_height = tx_height
        self.rx_height = rx_height
        self._free_space = FreeSpace(frequency_hz, min_distance=min_distance)
        wavelength = frequency_to_wavelength(frequency_hz)
        self.crossover = 4.0 * math.pi * tx_height * rx_height / wavelength
        self._height_product_sq = (tx_height * rx_height) ** 2

    def path_loss_db(self, tx: Position, rx: Position) -> float:
        distance = tx.distance_to(rx)
        if distance <= self.crossover:
            return self._free_space.path_loss_db(tx, rx)
        # Beyond crossover: Pr = Pt * (ht hr)^2 / d^4  (antenna gains = 1).
        loss_linear = (distance ** 4) / (
            (self.tx_height * self.rx_height) ** 2)
        return 10.0 * math.log10(loss_linear)

    def link_gain(self, tx: Position, rx: Position) -> float:
        distance = tx.distance_to(rx)
        if distance <= self.crossover:
            return self._free_space.link_gain(tx, rx)
        return self._height_product_sq / (distance ** 4)


class Shadowing(PropagationModel):
    """Log-normal shadowing decorator.

    Adds a zero-mean Gaussian offset (in dB, stdev ``sigma_db``) to an
    underlying model.  The offset is drawn **once per unordered link**
    and cached, which models static obstructions: the same wall
    attenuates every frame between the same pair the same way, in both
    directions, for the whole run.
    """

    def __init__(self, base: PropagationModel, sigma_db: float,
                 rng: random.Random):
        if sigma_db < 0:
            raise ConfigurationError(f"sigma_db must be >= 0: {sigma_db}")
        self.base = base
        self.sigma_db = sigma_db
        self._rng = rng
        self._offsets: Dict[Tuple[Position, Position], float] = {}
        # Linear-domain factor 10^(-offset/10), frozen alongside each
        # offset so the fast path never re-runs pow for a known link.
        self._factors: Dict[Tuple[Position, Position], float] = {}

    def _link_key(self, tx: Position, rx: Position) -> Tuple[Position, Position]:
        first = (tx.x, tx.y, tx.z)
        second = (rx.x, rx.y, rx.z)
        return (tx, rx) if first <= second else (rx, tx)

    def _offset_for(self, key: Tuple[Position, Position]) -> float:
        offset = self._offsets.get(key)
        if offset is None:
            offset = self._rng.gauss(0.0, self.sigma_db)
            self._offsets[key] = offset
        return offset

    def path_loss_db(self, tx: Position, rx: Position) -> float:
        key = self._link_key(tx, rx)
        return self.base.path_loss_db(tx, rx) + self._offset_for(key)

    def link_gain(self, tx: Position, rx: Position) -> float:
        key = self._link_key(tx, rx)
        factor = self._factors.get(key)
        if factor is None:
            factor = 10.0 ** (-0.1 * self._offset_for(key))
            self._factors[key] = factor
        return self.base.link_gain(tx, rx) * factor


class FixedLoss(PropagationModel):
    """A constant path loss regardless of geometry.

    Useful in unit tests (deterministic link budget) and for modelling
    wired segments of a distribution system.
    """

    def __init__(self, loss_db: float):
        self.loss_db = loss_db
        self._gain = 10.0 ** (-0.1 * loss_db)

    def path_loss_db(self, tx: Position, rx: Position) -> float:
        return self.loss_db

    def link_gain(self, tx: Position, rx: Position) -> float:
        return self._gain


class RangePropagation(PropagationModel):
    """An idealized disc model: zero loss within ``range_m``, infinite
    beyond.  Handy for topology-focused experiments (ZigBee mesh routing)
    where radio detail is not the object of study.
    """

    def __init__(self, range_m: float,
                 in_range_loss_db: float = 40.0):
        if range_m <= 0:
            raise ConfigurationError(f"range must be positive: {range_m}")
        self.range_m = range_m
        self.in_range_loss_db = in_range_loss_db
        self._in_range_gain = 10.0 ** (-0.1 * in_range_loss_db)

    def path_loss_db(self, tx: Position, rx: Position) -> float:
        if tx.distance_to(rx) <= self.range_m:
            return self.in_range_loss_db
        return math.inf

    def link_gain(self, tx: Position, rx: Position) -> float:
        if tx.distance_to(rx) <= self.range_m:
            return self._in_range_gain
        return 0.0


def max_range_for_budget(model: PropagationModel, tx_power_dbm: float,
                         sensitivity_dbm: float,
                         upper_bound_m: float = 1e6) -> float:
    """Binary-search the maximum distance at which the link budget closes.

    Assumes loss is non-decreasing in distance along the +x axis (true
    for every model above except per-link shadowing, for which this
    returns the range of the particular sampled link).
    """
    budget_db = tx_power_dbm - sensitivity_dbm
    origin = Position(0, 0, 0)

    def loss_at(distance: float) -> float:
        return model.path_loss_db(origin, Position(distance, 0, 0))

    if loss_at(upper_bound_m) <= budget_db:
        return upper_bound_m
    low, high = 0.0, upper_bound_m
    for _ in range(80):
        mid = (low + high) / 2.0
        if loss_at(mid) <= budget_db:
            low = mid
        else:
            high = mid
    return low
