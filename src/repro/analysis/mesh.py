"""Mesh evaluation metrics: hop counts, path stretch, per-link airtime.

The questions a mesh operator asks after a run:

* **How long were the paths?** — hop-count distributions come straight
  from the per-packet counters the forwarding layer maintains
  (:attr:`MeshNode.hop_counts`, ``FlowStats.hops``).
* **Were they longer than they needed to be?** — *path stretch* is the
  ratio of the hops actually traversed to the shortest possible over
  the connectivity graph; 1.0 means the routing protocol found optimal
  paths.  The connectivity graph is derived from node positions and the
  radio range, matching the disc propagation the mesh scenarios use.
* **Which links carried the load?** — per-directed-link frame/byte
  counts aggregated across nodes, plus an on-air time estimate so
  relay-bottleneck analysis ("the first hop of a chain carries
  everything") reads in seconds, not bytes.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from ..core.stats import Counter
from ..core.topology import Position
from ..phy.standards import PhyMode, PhyStandard

if TYPE_CHECKING:  # pragma: no cover
    from ..routing.node import MeshNode

#: 3-address data header + FCS, the fixed per-frame wire overhead used
#: by the airtime estimate.
DATA_FRAME_OVERHEAD_BYTES = 28


def connectivity_graph(positions: Sequence[Position],
                       range_m: float) -> Dict[int, List[int]]:
    """Adjacency (by index) under a disc radio model of radius ``range_m``."""
    if range_m <= 0:
        raise ValueError(f"range must be positive: {range_m}")
    graph: Dict[int, List[int]] = {index: [] for index in range(len(positions))}
    for i, a in enumerate(positions):
        for j in range(i + 1, len(positions)):
            if a.distance_to(positions[j]) <= range_m:
                graph[i].append(j)
                graph[j].append(i)
    return graph


def shortest_hop_count(graph: Dict[int, List[int]], source: int,
                       destination: int) -> Optional[int]:
    """BFS shortest path length in hops; None when disconnected."""
    if source == destination:
        return 0
    seen = {source}
    frontier = deque([(source, 0)])
    while frontier:
        node, hops = frontier.popleft()
        for neighbor in graph[node]:
            if neighbor == destination:
                return hops + 1
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append((neighbor, hops + 1))
    return None


def path_stretch(actual_hops: float, shortest_hops: int) -> float:
    """Actual-over-optimal hop ratio (1.0 = shortest-path routing)."""
    if shortest_hops <= 0:
        raise ValueError(f"shortest_hops must be >= 1: {shortest_hops}")
    return actual_hops / shortest_hops


def aggregate_mesh_counters(nodes: Sequence["MeshNode"]) -> Counter:
    """Fleet-wide forwarding counters (sum over nodes)."""
    total = Counter()
    for node in nodes:
        total.merge(node.counters)
    return total


#: Directed link key: (transmitting node name, next-hop address string).
LinkKey = Tuple[str, str]


def per_link_load(nodes: Sequence["MeshNode"]) -> Dict[LinkKey, Counter]:
    """Frame/byte/failure counts per directed link, across the fleet."""
    links: Dict[LinkKey, Counter] = {}
    for node in nodes:
        for next_hop, counter in node.link_counters.items():
            links.setdefault((node.name, str(next_hop)),
                             Counter()).merge(counter)
    return links


def per_link_airtime(nodes: Sequence["MeshNode"], standard: PhyStandard,
                     mode: PhyMode) -> Dict[LinkKey, float]:
    """Estimated on-air seconds per directed link.

    An *estimate*: it prices every frame at the given PHY mode with the
    fixed 3-address overhead, ignoring retries and rate adaptation —
    the right lens for "which relay is the bottleneck", not a substitute
    for :class:`~repro.analysis.airtime.AirtimeReport` when exact
    airtime matters.
    """
    airtimes: Dict[LinkKey, float] = {}
    for key, counter in per_link_load(nodes).items():
        bits = (counter.get("bytes")
                + counter.get("frames") * DATA_FRAME_OVERHEAD_BYTES) * 8
        frames = counter.get("frames")
        if frames == 0:
            airtimes[key] = 0.0
            continue
        # Per-frame preamble overhead is inside frame_airtime; price the
        # link as `frames` average-size frames.
        per_frame_bits = bits / frames
        airtimes[key] = frames * standard.frame_airtime(per_frame_bits, mode)
    return airtimes


def mesh_hop_histogram(nodes: Sequence["MeshNode"]) -> Dict[int, int]:
    """Delivered-packet count by hop count, across the fleet."""
    histogram: Dict[int, int] = {}
    for node in nodes:
        for sample in node.hop_counts.samples:
            hops = int(sample)
            histogram[hops] = histogram.get(hops, 0) + 1
    return histogram
