"""E1 — the chapter 8 comparison table.

Regenerates, per technology: standard, band, nominal range, and maximum
bit rate — with the rate/range *measured* from the library's substrates
wherever a quick simulation can produce it, and the source text's value
alongside for comparison.
"""

import pytest

from repro.analysis.tables import render_table
from repro.core import Position, Simulator
from repro.core.units import to_mbps
from repro.phy.propagation import LogDistance, max_range_for_budget
from repro.phy.standards import STANDARDS
from repro.wman.wimax import WimaxBaseStation
from repro.wpan.bluetooth import BluetoothDevice, DeviceClass, Piconet
from repro.wpan.irda import IrdaDevice, IrdaLink, MAX_RANGE_M
from repro.wpan.uwb import UwbLink
from repro.wpan.zigbee import DATA_RATE_BPS as ZIGBEE_RATE
from repro.wwan.cellular import GENERATIONS
from repro.wwan.satellite import DVBS2_RATE_BPS, GEO_ALTITUDE_M
import math


def measure_bluetooth(seed=1):
    sim = Simulator(seed=seed)
    master = BluetoothDevice("m", Position(0, 0, 0))
    piconet = Piconet(sim, master)
    slave = BluetoothDevice("s", Position(5, 0, 0))
    piconet.add_slave(slave)
    piconet.start()
    piconet.queue_payload(slave, bytes(1_000_000))
    horizon = 4.0
    sim.run(until=horizon)
    rate = slave.counters.get("rx_bytes") * 8 / horizon
    return rate, DeviceClass.CLASS2.range_m


def measure_irda(seed=2):
    sim = Simulator(seed=seed)
    from repro.core.units import mbps
    a = IrdaDevice("a", Position(0, 0, 0), 0.0, max_rate_bps=mbps(16.0))
    b = IrdaDevice("b", Position(0.5, 0, 0), math.pi,
                   max_rate_bps=mbps(16.0))
    link = IrdaLink(sim, a, b)
    return link.rate_bps, MAX_RANGE_M


def measure_uwb(seed=3):
    sim = Simulator(seed=seed)
    link = UwbLink(sim, Position(0, 0, 0), Position(2, 0, 0))
    from repro.core.units import mbps
    return link.rate_bps(), link.max_range_for_rate(mbps(110.0))


def measure_wifi(standard_name):
    standard = STANDARDS[standard_name]
    model = LogDistance(standard.band_hz, exponent=3.0)
    usable_range = max_range_for_budget(
        model, standard.default_tx_power_dbm,
        standard.sensitivity_dbm(standard.modes[0]))
    return standard.max_rate_bps, usable_range


def measure_wimax(seed=4):
    sim = Simulator(seed=seed)
    bs = WimaxBaseStation(sim, Position(0, 0, 0))
    return bs.peak_rate_bps(), bs.max_range_m()


ROWS_SPEC = [
    # (type, name, standard label, text range, text max rate Mb/s)
    ("WPAN", "Bluetooth", "IEEE 802.15.1", "10 m", 0.72),
    ("WPAN", "IrDA", "IrDA", "1 m", 16.0),
    ("WPAN", "ZigBee", "IEEE 802.15.4", "10 m", 0.25),
    ("WPAN", "UWB", "IEEE 802.15.3", "10 m", 480.0),
    # The ch.8 table lists 1 Mb/s for legacy 802.11, contradicting the
    # text's own §4.3 ("the bit rate for the original IEEE 802.11
    # standard is 2 Mbps"); we reproduce the §4.3 figure.
    ("WLAN", "Wi-Fi", "IEEE 802.11", "100 m", 2.0),
    ("WLAN", "Wi-Fi", "IEEE 802.11a", "100 m", 54.0),
    ("WLAN", "Wi-Fi", "IEEE 802.11b", "100 m", 11.0),
    ("WLAN", "Wi-Fi", "IEEE 802.11g", "100 m", 54.0),
    ("WLAN", "Wi-Fi", "IEEE 802.11n", "250 m", 600.0),
    ("WLAN", "Wi-Fi", "IEEE 802.11ac", "250 m", 1300.0),
    ("WMAN", "WiMAX", "IEEE 802.16", "50 km", 70.0),
    ("WWAN", "Cellular", "AMPS..LTE", "> 50 km", 1000.0),
    ("WWAN", "Satellite", "DVB-S2", "> 50 km", 60.0),
]


def build_comparison_rows():
    rows = []
    bt_rate, bt_range = measure_bluetooth()
    ir_rate, ir_range = measure_irda()
    uwb_rate, uwb_range = measure_uwb()
    wimax_rate, wimax_range = measure_wimax()
    measured = {
        "Bluetooth": (to_mbps(bt_rate), f"{bt_range:.0f} m"),
        "IrDA": (to_mbps(ir_rate), f"{ir_range:.0f} m"),
        "ZigBee": (to_mbps(ZIGBEE_RATE), "30 m (configurable)"),
        "UWB": (to_mbps(uwb_rate), f"{uwb_range:.0f} m @110Mb/s"),
        "IEEE 802.16": (to_mbps(wimax_rate), f"{wimax_range / 1e3:.0f} km"),
        "AMPS..LTE": (to_mbps(GENERATIONS["4G"].peak_rate_bps),
                      "cell planning"),
        "DVB-S2": (to_mbps(DVBS2_RATE_BPS),
                   f"GEO ({GEO_ALTITUDE_M / 1e6:.0f} Mm)"),
    }
    for net_type, name, label, text_range, text_rate in ROWS_SPEC:
        if label.startswith("IEEE 802.11"):
            rate_bps, range_m = measure_wifi(label.replace("IEEE ", ""))
            measured_rate = to_mbps(rate_bps)
            measured_range = f"{range_m:.0f} m"
        elif name in measured:
            measured_rate, measured_range = measured[name]
        else:
            measured_rate, measured_range = measured[label]
        rows.append([net_type, name, label, text_range, measured_range,
                     text_rate, measured_rate])
    return rows


def test_table_comparison(benchmark, record_result):
    rows = benchmark.pedantic(build_comparison_rows, rounds=1, iterations=1)
    text = render_table(
        "E1: Comparison of wireless network types (text ch.8 table)",
        ["type", "name", "standard", "range(text)", "range(measured)",
         "Mb/s(text)", "Mb/s(measured)"],
        rows, formats=[None, None, None, None, None, ".2f", ".2f"])
    record_result("E1_table_comparison", text)
    # Shape checks: measured peak rates within 15% of the text's figures.
    for row in rows:
        text_rate, measured_rate = row[5], row[6]
        assert measured_rate == pytest.approx(text_rate, rel=0.15), row
