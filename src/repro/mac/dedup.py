"""Receiver-side duplicate detection.

An ACK can be lost even when the data frame it acknowledges was
delivered; the sender then retransmits (Retry bit set) and the receiver
would hand the same MSDU up twice.  Per the standard, receivers keep a
per-transmitter cache of the last seen (sequence, fragment) tuple and
discard retries that match.

We keep a small bounded history per transmitter rather than just the
last tuple, which also absorbs reordering introduced by fragmentation
retries.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Tuple

from .addresses import MacAddress


class DuplicateCache:
    """Tracks recently seen (transmitter, sequence, fragment) tuples."""

    def __init__(self, history_per_sender: int = 8,
                 max_senders: int = 1024):
        if history_per_sender < 1:
            raise ValueError("history_per_sender must be >= 1")
        self._history = history_per_sender
        self._max_senders = max_senders
        self._caches: "OrderedDict[MacAddress, OrderedDict[Tuple[int, int], None]]" = \
            OrderedDict()
        self.duplicates_dropped = 0

    def is_duplicate(self, transmitter: MacAddress, sequence: int,
                     fragment: int, retry: bool) -> bool:
        """Record the tuple and report whether it is a duplicate.

        Only frames with the Retry bit may be classified as duplicates —
        a repeated tuple on a fresh (non-retry) frame means the sender's
        counter wrapped, which is legitimate traffic.
        """
        cache = self._caches.get(transmitter)
        if cache is None:
            cache = OrderedDict()
            self._caches[transmitter] = cache
            if len(self._caches) > self._max_senders:
                self._caches.popitem(last=False)
        key = (sequence, fragment)
        duplicate = retry and key in cache
        if duplicate:
            self.duplicates_dropped += 1
        else:
            cache[key] = None
            cache.move_to_end(key)
            if len(cache) > self._history:
                cache.popitem(last=False)
        # Keep the sender LRU fresh.
        self._caches.move_to_end(transmitter)
        return duplicate

    def forget(self, transmitter: MacAddress) -> None:
        """Drop state for a sender (station left the BSS)."""
        self._caches.pop(transmitter, None)
