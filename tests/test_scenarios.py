"""Tests for the scenario builders."""

import pytest

from repro import scenarios
from repro.core import Simulator
from repro.core.errors import ConfigurationError, SimulationError
from repro.phy.standards import DOT11A, DOT11B


class TestInfrastructureBuilder:
    def test_builds_and_associates(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=3)
        assert len(bss.stations) == 3
        assert all(sta.associated for sta in bss.stations)
        assert bss.ap.station_count == 3

    def test_standard_is_configurable(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=1,
                                                 standard=DOT11A)
        assert bss.ap.radio.standard is DOT11A
        assert bss.stations[0].radio.standard is DOT11A

    def test_zero_stations(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=0)
        assert bss.stations == []

    def test_no_associate_option(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=2,
                                                 associate=False)
        assert not any(sta.associated for sta in bss.stations)

    def test_association_timeout_raises(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=1,
                                                 radius_m=100_000.0,
                                                 associate=False)
        with pytest.raises(SimulationError, match="failed to associate"):
            scenarios.associate_all(sim, bss.stations, timeout=1.0)

    def test_timeout_error_names_the_stuck_stations(self, sim):
        from repro.core.errors import AssociationTimeoutError
        bss = scenarios.build_infrastructure_bss(sim, station_count=2,
                                                 associate=False)
        bss.ap.crash()   # dead AP: everyone stays stuck scanning
        for station in bss.stations:
            station.associate(bss.ap.ssid)
        with pytest.raises(AssociationTimeoutError) as excinfo:
            scenarios.associate_all(sim, bss.stations, timeout=1.0)
        message = str(excinfo.value)
        assert "2 of 2 stations failed to associate" in message
        for station in bss.stations:
            assert station.name in message
        assert "(scanning)" in message
        assert excinfo.value.stations == bss.stations

    def test_associate_all_returns_at_association_time(self, sim):
        """Event-driven associate_all stops the instant the last station
        associates instead of stepping to the next polling boundary."""
        bss = scenarios.build_infrastructure_bss(sim, station_count=2,
                                                 associate=False)
        last_association = []
        for station in bss.stations:
            station.on_associated(
                lambda _bssid: last_association.append(sim.now))
        scenarios.associate_all(sim, bss.stations, timeout=10.0)
        assert all(sta.associated for sta in bss.stations)
        assert sim.now == last_association[-1]

    def test_associate_all_noop_when_already_associated(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=1)
        before = sim.now
        scenarios.associate_all(sim, bss.stations, timeout=5.0)
        assert sim.now == before

    def test_stale_hooks_never_stop_a_later_run(self, sim):
        """A station that associates *after* associate_all timed out
        must not sim.stop() the caller's next run via the stale hook."""
        bss = scenarios.build_infrastructure_bss(sim, station_count=1,
                                                 associate=False)
        # Make association impossible for now by detuning the scan.
        station = bss.stations[0]
        with pytest.raises(SimulationError, match="failed to associate"):
            scenarios.associate_all(sim, [station], timeout=0.01)
        # The station associates later, on its own schedule.
        sim.run(until=sim.now + 5.0)
        assert station.associated
        # The stale hook fired during that run; it must not have
        # stopped it short of the requested horizon.
        target = sim.now + 1.0
        assert sim.run(until=target) == target

    def test_mid_wait_disassociation_does_not_fail_with_budget_left(
            self, sim):
        """A station associated at call time that churns mid-wait must
        keep the wait alive until it re-associates — not turn into a
        hard SimulationError while timeout budget remains."""
        from repro.core.topology import Position
        from repro.net.station import Station
        bss = scenarios.build_infrastructure_bss(sim, station_count=1)
        churner = bss.stations[0]
        assert churner.associated
        late = Station(sim, bss.medium, bss.ap.radio.standard,
                       Position(5, 0, 0), name="late")
        # Mid-wait, the AP kicks the already-associated station; it
        # rescans and rejoins on its own schedule.
        sim.schedule(0.05, lambda: bss.ap.deauthenticate(churner.address))
        late.associate(bss.ap.ssid)
        scenarios.associate_all(sim, [churner, late], timeout=10.0)
        assert churner.associated and late.associated

    def test_associate_all_waits_out_a_transient_disassociation(self, sim):
        """Even when the *last* association event fires while another
        station is down, completion is judged on current state."""
        bss = scenarios.build_infrastructure_bss(sim, station_count=2)
        churner = bss.stations[0]
        sim.schedule(0.02, lambda: bss.ap.deauthenticate(churner.address))
        scenarios.associate_all(sim, bss.stations, timeout=10.0)
        assert all(sta.associated for sta in bss.stations)


class TestAdhocBuilder:
    def test_peers_share_one_bssid(self, sim):
        net = scenarios.build_adhoc_network(sim, station_count=4)
        bssids = {sta.mac.bssid for sta in net.stations}
        assert bssids == {net.ibss.bssid}
        assert all(sta.adhoc for sta in net.stations)

    def test_traffic_flows(self, sim):
        net = scenarios.build_adhoc_network(sim, station_count=2,
                                            standard=DOT11B)
        inbox = []
        net.stations[1].on_receive(lambda s, p, m: inbox.append(p))
        net.stations[0].send(net.stations[1].address, b"peer to peer")
        sim.run(until=1.0)
        assert inbox == [b"peer to peer"]


class TestHiddenTerminalBuilder:
    def test_senders_are_mutually_hidden(self, sim):
        scenario = scenarios.build_hidden_terminal(sim)
        a_to_b = scenario.medium.link_rx_power_dbm(
            scenario.sender_a.radio, scenario.sender_b.radio)
        assert a_to_b == float("-inf")

    def test_both_senders_reach_the_receiver(self, sim):
        scenario = scenarios.build_hidden_terminal(sim)
        for sender in (scenario.sender_a, scenario.sender_b):
            power = scenario.medium.link_rx_power_dbm(
                sender.radio, scenario.receiver.radio)
            assert power > -80.0


class TestMeshTopologies:
    def test_chain_topology_spacing(self):
        positions = scenarios.chain_topology(5, 25.0)
        assert [p.x for p in positions] == [0.0, 25.0, 50.0, 75.0, 100.0]
        assert all(p.y == 0.0 and p.z == 0.0 for p in positions)

    def test_chain_topology_needs_two_nodes(self):
        with pytest.raises(ConfigurationError):
            scenarios.chain_topology(1, 10.0)

    def test_grid_topology_placement(self):
        positions = scenarios.grid_topology(2, 3, 10.0)
        assert len(positions) == 6
        assert (positions[0].x, positions[0].y) == (0.0, 0.0)
        assert (positions[2].x, positions[2].y) == (20.0, 0.0)   # row 0
        assert (positions[5].x, positions[5].y) == (20.0, 10.0)  # row 1
        # Grid pitch: nearest neighbors are exactly `spacing` apart.
        assert positions[0].distance_to(positions[1]) == 10.0
        assert positions[0].distance_to(positions[3]) == 10.0

    def test_grid_topology_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            scenarios.grid_topology(0, 3, 10.0)

    def test_build_mesh_network_wires_one_ibss(self, sim):
        from repro.routing import StaticRouting
        mesh = scenarios.build_mesh_network(
            sim, scenarios.chain_topology(3, 30.0), StaticRouting,
            range_m=40.0)
        assert len(mesh.nodes) == 3
        bssids = {node.station.mac.bssid for node in mesh.nodes}
        assert bssids == {mesh.ibss.bssid}
        # Adjacent nodes hear each other; the ends do not.
        assert mesh.medium.link_rx_power_dbm(
            mesh.nodes[0].station.radio,
            mesh.nodes[1].station.radio) > -90.0
        assert mesh.medium.link_rx_power_dbm(
            mesh.nodes[0].station.radio,
            mesh.nodes[2].station.radio) == float("-inf")


class TestEssBuilder:
    def test_aps_in_a_line_sharing_the_ds(self, sim):
        scenario = scenarios.build_ess(sim, ap_count=3, spacing_m=50.0)
        positions = [ap.position.x for ap in scenario.aps]
        assert positions == [0.0, 50.0, 100.0]
        assert all(ap.ds is scenario.ess.ds for ap in scenario.aps)

    def test_beacons_are_staggered(self, sim):
        scenario = scenarios.build_ess(sim, ap_count=2)
        sim.run(until=0.5)
        beacons = [ap.ap_counters.get("beacons") for ap in scenario.aps]
        assert all(count > 0 for count in beacons)
