"""Declarative campaign scenario specs: schema, loader, canonical keys.

A *campaign spec* is a plain dict (usually loaded from a TOML or JSON
file) that describes one experiment family as data::

    [campaign]
    name = "hidden_terminal"

    [scenario]
    builder = "hidden_terminal"     # repro.campaign.runner registry
    horizon = 0.5                   # measured sim-seconds
    seed = 11                       # base seed

    [scenario.params]               # builder-specific knobs
    rts_threshold_bytes = 2347

    [traffic]
    kind = "saturate"               # saturate | cbr | none
    payload_bytes = 1000

    [mode]
    profile = "exact"               # exact | fast
    kernel = "auto"                 # auto | python | c

    [sweep]                         # cartesian axes, by spec path
    "scenario.params.rts_threshold_bytes" = [2347, 256]

    [seeds]
    count = 3                       # seed, seed+1, seed+2

Validation is *by spec path*: every error names the exact location
(``scenario.params.stations``) plus the source file when the spec came
from disk, so a typo in a 40-line TOML file is a one-line fix, not an
archaeology session.

The *canonical form* of a fully-concrete job spec (one sweep point, one
seed) is a sorted-key, compact JSON encoding with floats rendered via
``repr`` — the same byte-comparable convention the telemetry exporter
uses.  Its sha1 is the job's content-addressed identity: the resumable
manifest and the result store key every job by it, so "has this exact
configuration already run?" is a dictionary lookup, never a guess.
"""

from __future__ import annotations

import copy
import hashlib
import json
import pathlib
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.engine import KERNELS, Simulator
from ..core.errors import ConfigurationError

__all__ = ["SpecError", "load_spec", "validate_spec", "canonical_json",
           "spec_sha1", "get_path", "set_path", "SCHEMA_DOC"]


class SpecError(ConfigurationError):
    """A campaign spec failed validation.

    ``path`` is the dotted spec path of the offending value (e.g.
    ``scenario.params.stations``); ``source`` names the file the spec
    was loaded from, when there was one.
    """

    def __init__(self, path: str, message: str,
                 source: Optional[str] = None):
        self.path = path
        self.source = source
        self.message = message
        prefix = f"{source}: " if source else ""
        super().__init__(f"{prefix}{path}: {message}")


# --- schema tables ----------------------------------------------------------

#: Scenario builders the runner knows how to execute, with the params
#: each accepts (value = (type, default) — None default means optional
#: with the builder's own fallback).  Kept here, next to the validator,
#: so an unknown-param error can say what *would* be accepted.
BUILDER_PARAMS: Dict[str, Dict[str, type]] = {
    "infrastructure_bss": {
        "stations": int, "radius_m": float, "path_loss_exponent": float,
        "rts_threshold_bytes": int, "standard": str,
    },
    "hidden_terminal": {
        "rts_threshold_bytes": int, "carrier_range_m": float,
    },
    "mesh_chain": {
        "nodes": int, "spacing_m": float, "range_m": float,
        "protocol": str, "warmup": float, "source": int,
        "destination": int,
    },
    "mesh_grid": {
        "rows": int, "cols": int, "spacing_m": float, "range_m": float,
        "protocol": str, "warmup": float, "source": int,
        "destination": int,
    },
    "interference_field": {
        "stations": int, "emitters": int, "radius_m": float,
        "emitter_ring_m": float, "emitter_power_dbm": float,
        "emitter_on_time": float, "emitter_period": float,
        "path_loss_exponent": float,
    },
    "city_cells": {
        "bss_count": int, "stations_per_bss": int, "spacing_m": float,
        "payload_size": int,
    },
}

#: Adversary kinds attachable to any medium-bearing scenario, with
#: their accepted parameters.  ``position`` ([x, y, z]) is implicit and
#: required for every kind; ``start`` (sim-seconds, default 0) is
#: implicit and optional.
ADVERSARY_PARAMS: Dict[str, Dict[str, type]] = {
    "periodic_jammer": {"power_dbm": float, "on_time": float,
                        "period": float, "offset": float,
                        "channel_id": int},
    "constant_jammer": {"power_dbm": float, "burst_duration": float,
                        "channel_id": int},
    "reactive_jammer": {"power_dbm": float, "burst_duration": float,
                        "turnaround": float, "channel_id": int},
    "bluetooth_hopper": {"power_dbm": float, "tx_probability": float,
                         "channel_id": int},
    "microwave_oven": {"power_dbm": float, "mains_hz": float,
                       "channels": list},
}

TRAFFIC_KINDS = ("saturate", "cbr", "none")
TRAFFIC_PARAMS: Dict[str, type] = {
    "kind": str, "payload_bytes": int, "interval": float, "depth": int,
}

_TOP_LEVEL = ("campaign", "scenario", "traffic", "adversaries", "mode",
              "sweep", "seeds", "differential")

SCHEMA_DOC = """\
campaign.name        str   campaign identity (store/manifest file stem)
scenario.builder     str   one of: %s
scenario.horizon     float measured sim-seconds (> 0)
scenario.seed        int   base seed
scenario.params.*          builder-specific knobs (validated per builder)
traffic.kind         str   saturate | cbr | none
traffic.payload_bytes int  per-packet payload
traffic.interval     float cbr inter-packet gap (cbr only)
traffic.depth        int   saturate prime depth (saturate only)
adversaries          list  [{kind, position=[x,y,z], start, ...params}]
mode.profile         str   exact | fast
mode.kernel          str   auto | python | c
sweep.<spec.path>    list  cartesian axis over any scalar spec path
seeds.count          int   seed ensemble: seed .. seed+count-1
seeds.list           list  explicit seed ensemble (overrides count)
differential.reference   str  campaign name this one is compared against
differential.tolerances  {stat = {rel=..} or {abs=..}} equivalence gate
""" % ", ".join(sorted(BUILDER_PARAMS))


# --- loading ----------------------------------------------------------------

def load_spec(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Load and validate a spec file (TOML by default, JSON by suffix)."""
    path = pathlib.Path(path)
    source = path.name
    try:
        text = path.read_text()
    except OSError as exc:
        raise SpecError("(file)", f"cannot read spec: {exc}", source=source)
    if path.suffix == ".json":
        try:
            raw = json.loads(text)
        except ValueError as exc:
            raise SpecError("(file)", f"invalid JSON: {exc}", source=source)
    else:
        import tomllib
        try:
            raw = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError("(file)", f"invalid TOML: {exc}", source=source)
    return validate_spec(raw, source=source)


def _require(table: Dict[str, Any], path: str, key: str, kind,
             source: Optional[str]) -> Any:
    if key not in table:
        raise SpecError(f"{path}.{key}", "required key is missing",
                        source=source)
    return _typed(table[key], f"{path}.{key}", kind, source)


def _typed(value: Any, path: str, kind, source: Optional[str]) -> Any:
    # bool is an int subclass; an accidental `stations = true` must not
    # slip through the int check.
    if kind is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SpecError(path, f"expected a number, got {value!r}",
                            source=source)
        return float(value)
    if kind is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SpecError(path, f"expected an integer, got {value!r}",
                            source=source)
        return value
    if not isinstance(value, kind):
        raise SpecError(path, f"expected {kind.__name__}, got {value!r}",
                        source=source)
    return value


def _check_unknown(table: Dict[str, Any], path: str,
                   allowed: Sequence[str], source: Optional[str]) -> None:
    for key in table:
        if key not in allowed:
            raise SpecError(f"{path}.{key}",
                            f"unknown key; expected one of "
                            f"{sorted(allowed)}", source=source)


def _validate_params(params: Dict[str, Any], path: str, builder: str,
                     source: Optional[str]) -> Dict[str, Any]:
    allowed = BUILDER_PARAMS[builder]
    out = {}
    for key, value in params.items():
        if key not in allowed:
            raise SpecError(f"{path}.{key}",
                            f"unknown parameter for builder {builder!r}; "
                            f"accepted: {sorted(allowed)}", source=source)
        out[key] = _typed(value, f"{path}.{key}", allowed[key], source)
    return out


def _validate_traffic(table: Dict[str, Any], source: Optional[str]
                      ) -> Dict[str, Any]:
    _check_unknown(table, "traffic", tuple(TRAFFIC_PARAMS), source)
    out = {key: _typed(value, f"traffic.{key}", TRAFFIC_PARAMS[key], source)
           for key, value in table.items()}
    kind = out.setdefault("kind", "saturate")
    if kind not in TRAFFIC_KINDS:
        raise SpecError("traffic.kind",
                        f"unknown kind {kind!r}; expected one of "
                        f"{list(TRAFFIC_KINDS)}", source=source)
    if kind == "cbr" and "interval" in out and out["interval"] <= 0:
        raise SpecError("traffic.interval", "must be positive",
                        source=source)
    return out


def _validate_adversary(entry: Any, path: str, source: Optional[str]
                        ) -> Dict[str, Any]:
    entry = _typed(entry, path, dict, source)
    kind = _require(entry, path, "kind", str, source)
    if kind not in ADVERSARY_PARAMS:
        raise SpecError(f"{path}.kind",
                        f"unknown adversary kind {kind!r}; available: "
                        f"{sorted(ADVERSARY_PARAMS)}", source=source)
    position = _require(entry, path, "position", list, source)
    if len(position) != 3 or any(
            isinstance(c, bool) or not isinstance(c, (int, float))
            for c in position):
        raise SpecError(f"{path}.position",
                        f"expected [x, y, z] numbers, got {position!r}",
                        source=source)
    allowed = ADVERSARY_PARAMS[kind]
    out: Dict[str, Any] = {"kind": kind,
                           "position": [float(c) for c in position]}
    for key, value in entry.items():
        if key in ("kind", "position"):
            continue
        if key == "start":
            out["start"] = _typed(value, f"{path}.start", float, source)
            if out["start"] < 0:
                raise SpecError(f"{path}.start", "must be >= 0",
                                source=source)
            continue
        if key not in allowed:
            raise SpecError(f"{path}.{key}",
                            f"unknown parameter for {kind!r}; accepted: "
                            f"{sorted(allowed) + ['start']}", source=source)
        if allowed[key] is list:
            out[key] = _typed(value, f"{path}.{key}", list, source)
        else:
            out[key] = _typed(value, f"{path}.{key}", allowed[key], source)
    return out


def validate_spec(raw: Any, source: Optional[str] = None) -> Dict[str, Any]:
    """Validate + normalize a raw spec dict.

    Returns a fresh normalized dict (defaults filled in, numbers
    coerced to float where the schema says float).  Raises
    :class:`SpecError` naming the offending spec path on the first
    problem found.
    """
    raw = _typed(raw, "(root)", dict, source)
    _check_unknown(raw, "(root)", _TOP_LEVEL, source)

    campaign = _typed(raw.get("campaign", {}), "campaign", dict, source)
    _check_unknown(campaign, "campaign", ("name",), source)
    name = _require(campaign, "campaign", "name", str, source)
    if not name or "/" in name or name != name.strip():
        raise SpecError("campaign.name",
                        f"must be a clean identifier, got {name!r}",
                        source=source)

    scenario = _typed(raw.get("scenario", {}), "scenario", dict, source)
    _check_unknown(scenario, "scenario",
                   ("builder", "horizon", "seed", "params"), source)
    builder = _require(scenario, "scenario", "builder", str, source)
    if builder not in BUILDER_PARAMS:
        raise SpecError("scenario.builder",
                        f"unknown builder {builder!r}; available: "
                        f"{sorted(BUILDER_PARAMS)}", source=source)
    horizon = _require(scenario, "scenario", "horizon", float, source)
    if horizon <= 0:
        raise SpecError("scenario.horizon",
                        f"must be positive sim-seconds, got {horizon}",
                        source=source)
    seed = _typed(scenario.get("seed", 0), "scenario.seed", int, source)
    params = _typed(scenario.get("params", {}), "scenario.params", dict,
                    source)
    params = _validate_params(params, "scenario.params", builder, source)

    traffic = _validate_traffic(
        _typed(raw.get("traffic", {}), "traffic", dict, source), source)

    adversaries_raw = _typed(raw.get("adversaries", []), "adversaries",
                             list, source)
    adversaries = [_validate_adversary(entry, f"adversaries.{index}", source)
                   for index, entry in enumerate(adversaries_raw)]

    mode = _typed(raw.get("mode", {}), "mode", dict, source)
    _check_unknown(mode, "mode", ("profile", "kernel"), source)
    profile = _typed(mode.get("profile", "exact"), "mode.profile", str,
                     source)
    if profile not in Simulator.PROFILES:
        raise SpecError("mode.profile",
                        f"unknown profile {profile!r}; expected one of "
                        f"{list(Simulator.PROFILES)}", source=source)
    kernel = _typed(mode.get("kernel", "auto"), "mode.kernel", str, source)
    if kernel not in KERNELS:
        raise SpecError("mode.kernel",
                        f"unknown kernel {kernel!r}; expected one of "
                        f"{list(KERNELS)}", source=source)

    seeds = _typed(raw.get("seeds", {}), "seeds", dict, source)
    _check_unknown(seeds, "seeds", ("count", "list"), source)
    if "list" in seeds:
        seed_list = _typed(seeds["list"], "seeds.list", list, source)
        if not seed_list:
            raise SpecError("seeds.list", "must not be empty", source=source)
        seed_list = [_typed(s, f"seeds.list.{i}", int, source)
                     for i, s in enumerate(seed_list)]
        if len(set(seed_list)) != len(seed_list):
            raise SpecError("seeds.list",
                            f"duplicate seeds: {seed_list}", source=source)
    elif "count" in seeds:
        count = _typed(seeds["count"], "seeds.count", int, source)
        if count < 1:
            raise SpecError("seeds.count", f"must be >= 1, got {count}",
                            source=source)
        seed_list = list(range(seed, seed + count))
    else:
        seed_list = [seed]

    sweep_raw = _typed(raw.get("sweep", {}), "sweep", dict, source)
    normalized = {
        "campaign": {"name": name},
        "scenario": {"builder": builder, "horizon": horizon, "seed": seed,
                     "params": params},
        "traffic": traffic,
        "adversaries": adversaries,
        "mode": {"profile": profile, "kernel": kernel},
        "seeds": {"list": seed_list},
        "sweep": {},
    }
    for axis_path, values in sweep_raw.items():
        values = _typed(values, f"sweep.{axis_path}", list, source)
        if not values:
            raise SpecError(f"sweep.{axis_path}",
                            "axis must list at least one value",
                            source=source)
        # The axis must point *into* the normalized spec: its parent
        # container has to exist (the leaf itself may be a new knob —
        # builder-param validation re-runs on every expanded job, so a
        # misspelled leaf still fails loudly, with this path).
        _resolve_parent(normalized, axis_path, f"sweep.{axis_path}", source)
        if axis_path.startswith(("sweep", "seeds", "campaign")):
            raise SpecError(f"sweep.{axis_path}",
                            "sweeping the sweep/seeds/campaign sections "
                            "is not meaningful", source=source)
        normalized["sweep"][axis_path] = list(values)

    if "differential" in raw:
        diff = _typed(raw["differential"], "differential", dict, source)
        _check_unknown(diff, "differential", ("reference", "tolerances"),
                       source)
        reference = _require(diff, "differential", "reference", str, source)
        tolerances_raw = _typed(diff.get("tolerances", {}),
                                "differential.tolerances", dict, source)
        tolerances = {}
        for stat, tol in tolerances_raw.items():
            tol_path = f"differential.tolerances.{stat}"
            tol = _typed(tol, tol_path, dict, source)
            _check_unknown(tol, tol_path, ("rel", "abs"), source)
            if not tol:
                raise SpecError(tol_path, "needs a rel or abs bound",
                                source=source)
            tolerances[stat] = {key: _typed(value, f"{tol_path}.{key}",
                                            float, source)
                                for key, value in tol.items()}
        normalized["differential"] = {"reference": reference,
                                      "tolerances": tolerances}
    return normalized


# --- spec paths -------------------------------------------------------------

def _segments(path: str) -> List[Union[str, int]]:
    out: List[Union[str, int]] = []
    for segment in path.split("."):
        out.append(int(segment) if segment.isdigit() else segment)
    return out


def _resolve_parent(spec: Dict[str, Any], path: str, error_path: str,
                    source: Optional[str]) -> Tuple[Any, Union[str, int]]:
    """Walk to the parent container of ``path``; error by spec path."""
    segments = _segments(path)
    node: Any = spec
    for depth, segment in enumerate(segments[:-1]):
        try:
            node = node[segment]
        except (KeyError, IndexError, TypeError):
            walked = ".".join(str(s) for s in segments[:depth + 1])
            raise SpecError(error_path,
                            f"path does not exist in the spec "
                            f"(failed at {walked!r})", source=source)
    leaf = segments[-1]
    if isinstance(node, list):
        if not isinstance(leaf, int) or not 0 <= leaf < len(node):
            raise SpecError(error_path,
                            f"index {leaf!r} out of range "
                            f"(list has {len(node)} entries)", source=source)
    elif not isinstance(node, dict):
        raise SpecError(error_path,
                        f"parent of {str(leaf)!r} is not a container",
                        source=source)
    return node, leaf


def get_path(spec: Dict[str, Any], path: str) -> Any:
    node, leaf = _resolve_parent(spec, path, path, None)
    try:
        return node[leaf]
    except (KeyError, IndexError):
        raise SpecError(path, "path does not exist in the spec")


def set_path(spec: Dict[str, Any], path: str, value: Any) -> None:
    node, leaf = _resolve_parent(spec, path, path, None)
    node[leaf] = value


# --- canonical form ---------------------------------------------------------

def _canon(value: Any) -> Any:
    """Floats become repr strings — the byte-comparable convention
    shared with :mod:`repro.telemetry.export`."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, dict):
        return {str(key): _canon(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    return value


def canonical_json(value: Any) -> str:
    """Deterministic compact JSON: sorted keys, repr'd floats."""
    return json.dumps(_canon(value), sort_keys=True, separators=(",", ":"))


def spec_sha1(value: Any) -> str:
    """The content address of a (job) spec: sha1 of its canonical form."""
    return hashlib.sha1(canonical_json(value).encode()).hexdigest()


def concrete_job_spec(spec: Dict[str, Any], axes: Dict[str, Any],
                      seed: int) -> Dict[str, Any]:
    """One fully-concrete job: sweep axes applied, single seed pinned.

    The returned dict has no ``sweep``/``seeds`` sections (identity
    must not depend on what *else* the grid contained) and is
    re-validated, so a swept-in value of the wrong type or an axis that
    created an unknown builder param fails here, naming the axis path.
    """
    job = copy.deepcopy(spec)
    job.pop("sweep", None)
    job.pop("seeds", None)
    job.pop("differential", None)
    for path, value in axes.items():
        set_path(job, path, value)
    job["scenario"]["seed"] = seed
    try:
        job = validate_spec(job)
    except SpecError as exc:
        raise SpecError(exc.path,
                        f"{exc.message} (after applying sweep axes "
                        f"{sorted(axes)})")
    # validate_spec re-normalizes empty sweep/seeds sections in; strip
    # them again — a concrete job has neither, by definition.
    del job["sweep"], job["seeds"]
    return job
