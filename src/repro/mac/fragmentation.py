"""MSDU fragmentation and reassembly.

When an MSDU exceeds the fragmentation threshold the MAC slices it into
fragments that share one sequence number and carry increasing fragment
numbers, all but the last with the More Fragments bit set (source text
§4.2).  Fragments of one MSDU are sent as a SIFS-separated burst, each
individually acknowledged.

:func:`fragment_payload` does the slicing; :class:`Reassembler` is the
receiver side, keyed by (transmitter, sequence number), tolerant of
duplicate fragments and able to time out incomplete MSDUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..core.errors import FrameError
from .addresses import MacAddress
from .frames import MAX_FRAGMENTS


@dataclass(frozen=True)
class Fragment:
    """One slice of an MSDU, pre-header."""

    index: int
    more_fragments: bool
    payload: bytes


def fragment_payload(payload: bytes, threshold: int) -> List[Fragment]:
    """Slice ``payload`` into fragments of at most ``threshold`` bytes.

    A payload that fits in one fragment yields a single entry with
    ``more_fragments=False`` (the common case — callers need no special
    path for unfragmented MSDUs).
    """
    if threshold < 1:
        raise FrameError(f"fragmentation threshold must be >= 1: {threshold}")
    if not payload:
        return [Fragment(index=0, more_fragments=False, payload=b"")]
    pieces = [payload[offset:offset + threshold]
              for offset in range(0, len(payload), threshold)]
    if len(pieces) > MAX_FRAGMENTS:
        raise FrameError(
            f"payload of {len(payload)} bytes needs {len(pieces)} fragments; "
            f"the 4-bit fragment field allows at most {MAX_FRAGMENTS}")
    return [Fragment(index=i, more_fragments=(i < len(pieces) - 1),
                     payload=piece)
            for i, piece in enumerate(pieces)]


@dataclass
class _PartialMsdu:
    started_at: float
    fragments: Dict[int, bytes] = field(default_factory=dict)
    last_index: Optional[int] = None  # set when the final fragment arrives

    def complete(self) -> bool:
        if self.last_index is None:
            return False
        return all(i in self.fragments for i in range(self.last_index + 1))

    def assemble(self) -> bytes:
        assert self.last_index is not None
        return b"".join(self.fragments[i] for i in range(self.last_index + 1))


class Reassembler:
    """Receiver-side fragment reassembly with aging."""

    def __init__(self, timeout: float = 1.0):
        if timeout <= 0:
            raise FrameError(f"timeout must be positive: {timeout}")
        self._timeout = timeout
        self._partials: Dict[Tuple[MacAddress, int], _PartialMsdu] = {}
        self.timed_out = 0

    def add_fragment(self, now: float, transmitter: MacAddress,
                     sequence: int, fragment_index: int,
                     more_fragments: bool, payload: bytes
                     ) -> Optional[bytes]:
        """Feed one fragment in; returns the full MSDU when complete."""
        self._expire(now)
        if fragment_index == 0 and not more_fragments:
            return payload  # unfragmented fast path
        key = (transmitter, sequence)
        partial = self._partials.get(key)
        if partial is None:
            partial = _PartialMsdu(started_at=now)
            self._partials[key] = partial
        partial.fragments[fragment_index] = payload
        if not more_fragments:
            partial.last_index = fragment_index
        if partial.complete():
            del self._partials[key]
            return partial.assemble()
        return None

    def _expire(self, now: float) -> None:
        stale = [key for key, partial in self._partials.items()
                 if now - partial.started_at > self._timeout]
        for key in stale:
            del self._partials[key]
            self.timed_out += 1

    @property
    def pending(self) -> int:
        return len(self._partials)
