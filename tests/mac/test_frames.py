"""Tests for 802.11 MAC frame encoding (source text §4.2)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import FrameError
from repro.mac.addresses import BROADCAST, MacAddress
from repro.mac.frames import (
    ACK_SIZE_BYTES,
    CTS_SIZE_BYTES,
    ControlSubtype,
    Dot11Frame,
    FrameControl,
    FrameType,
    ManagementSubtype,
    RTS_SIZE_BYTES,
    SequenceControl,
    make_ack,
    make_cts,
    make_data,
    make_management,
    make_rts,
)

TA = MacAddress.from_string("02:00:00:00:00:01")
RA = MacAddress.from_string("02:00:00:00:00:02")
BSSID = MacAddress.from_string("02:00:00:00:00:03")
A4 = MacAddress.from_string("02:00:00:00:00:04")

addresses = st.integers(min_value=0, max_value=(1 << 48) - 1)\
    .map(MacAddress)


class TestFrameControl:
    def test_bit_packing_round_trip(self):
        fc = FrameControl(protocol_version=0, type=FrameType.DATA,
                          subtype=0, to_ds=True, retry=True,
                          protected=True, more_data=True)
        assert FrameControl.from_int(fc.to_int()) == fc

    @given(st.integers(min_value=0, max_value=3),
           st.sampled_from(list(FrameType)),
           st.integers(min_value=0, max_value=15),
           *[st.booleans() for _ in range(8)])
    def test_all_fields_round_trip(self, version, ftype, subtype, to_ds,
                                   from_ds, more_frag, retry, pm,
                                   more_data, protected, order):
        fc = FrameControl(protocol_version=version, type=ftype,
                          subtype=subtype, to_ds=to_ds, from_ds=from_ds,
                          more_fragments=more_frag, retry=retry,
                          power_management=pm, more_data=more_data,
                          protected=protected, order=order)
        assert FrameControl.from_int(fc.to_int()) == fc

    def test_wep_bit_position(self):
        """The WEP/Protected bit is bit 14 of the frame control field."""
        fc = FrameControl(protected=True)
        assert fc.to_int() & (1 << 14)

    def test_reserved_type_rejected(self):
        with pytest.raises(FrameError):
            FrameControl.from_int(0b1100)  # type bits = 3

    def test_bad_subtype_rejected(self):
        with pytest.raises(FrameError):
            FrameControl(subtype=16)


class TestSequenceControl:
    @given(st.integers(min_value=0, max_value=4095),
           st.integers(min_value=0, max_value=15))
    def test_round_trip(self, sequence, fragment):
        sc = SequenceControl(sequence=sequence, fragment=fragment)
        assert SequenceControl.from_int(sc.to_int()) == sc

    def test_field_limits(self):
        with pytest.raises(FrameError):
            SequenceControl(sequence=4096)
        with pytest.raises(FrameError):
            SequenceControl(fragment=16)


class TestControlFrameSizes:
    """Exact on-air sizes from the standard."""

    def test_rts_is_20_bytes(self):
        rts = make_rts(TA, RA, duration_us=100)
        assert rts.wire_size_bytes() == RTS_SIZE_BYTES == 20
        assert len(rts.serialize()) == 20

    def test_cts_is_14_bytes(self):
        cts = make_cts(RA, duration_us=80)
        assert cts.wire_size_bytes() == CTS_SIZE_BYTES == 14
        assert len(cts.serialize()) == 14

    def test_ack_is_14_bytes(self):
        ack = make_ack(RA)
        assert ack.wire_size_bytes() == ACK_SIZE_BYTES == 14
        assert len(ack.serialize()) == 14

    def test_data_header_is_28_plus_body(self):
        frame = make_data(TA, RA, BSSID, b"x" * 100, sequence=1)
        assert frame.wire_size_bytes() == 24 + 100 + 4


class TestSerialization:
    def test_data_round_trip(self):
        frame = make_data(TA, RA, BSSID, b"payload bytes", sequence=77,
                          fragment=2, more_fragments=True, to_ds=True,
                          protected=True, duration_us=314)
        parsed = Dot11Frame.parse(frame.serialize())
        assert parsed == frame

    def test_management_round_trip(self):
        frame = make_management(ManagementSubtype.BEACON, TA, BROADCAST,
                                BSSID, b"beacon body", sequence=9)
        parsed = Dot11Frame.parse(frame.serialize())
        assert parsed == frame
        assert parsed.is_beacon

    def test_rts_round_trip(self):
        rts = make_rts(TA, RA, duration_us=512)
        parsed = Dot11Frame.parse(rts.serialize())
        assert parsed.is_rts
        assert parsed.transmitter == TA
        assert parsed.duration_us == 512

    def test_ack_round_trip(self):
        parsed = Dot11Frame.parse(make_ack(RA).serialize())
        assert parsed.is_ack
        assert parsed.receiver == RA

    def test_four_address_round_trip(self):
        fc = FrameControl(type=FrameType.DATA, to_ds=True, from_ds=True)
        frame = Dot11Frame(fc=fc, addr1=RA, addr2=TA, addr3=BSSID,
                           addr4=A4, body=b"wds")
        parsed = Dot11Frame.parse(frame.serialize())
        assert parsed.addr4 == A4
        assert parsed.body == b"wds"

    @given(st.binary(max_size=256),
           st.integers(min_value=0, max_value=4095),
           st.integers(min_value=0, max_value=15),
           st.booleans(), st.booleans())
    def test_data_round_trip_property(self, body, sequence, fragment,
                                      retry, protected):
        frame = make_data(TA, RA, BSSID, body, sequence=sequence,
                          fragment=fragment, protected=protected)
        if retry:
            frame = frame.with_retry()
        assert Dot11Frame.parse(frame.serialize()) == frame


class TestCorruptionDetection:
    def test_flipped_bit_fails_fcs(self):
        raw = bytearray(make_data(TA, RA, BSSID, b"x" * 50,
                                  sequence=1).serialize())
        raw[30] ^= 0x01
        with pytest.raises(FrameError, match="FCS"):
            Dot11Frame.parse(bytes(raw))

    def test_truncated_frame_rejected(self):
        with pytest.raises(FrameError):
            Dot11Frame.parse(b"\x00" * 6)


class TestValidation:
    def test_wds_without_addr4_rejected(self):
        fc = FrameControl(type=FrameType.DATA, to_ds=True, from_ds=True)
        with pytest.raises(FrameError):
            Dot11Frame(fc=fc, addr1=RA, addr2=TA, addr3=BSSID)

    def test_duration_range(self):
        with pytest.raises(FrameError):
            make_cts(RA, duration_us=0x10000)

    def test_with_retry_sets_only_the_retry_bit(self):
        frame = make_data(TA, RA, BSSID, b"x", sequence=5)
        retried = frame.with_retry()
        assert retried.fc.retry and not frame.fc.retry
        assert retried.body == frame.body
        assert retried.seq == frame.seq
