"""Shared fixtures for the repro test suite."""

import pytest

from repro.core import Simulator
from repro.mac.addresses import reset_allocator
from repro.traffic.generators import _SourceBase


@pytest.fixture(autouse=True)
def _fresh_addresses():
    """Give every test a clean MAC address space and flow-id space, so
    RNG stream names derived from them are reproducible regardless of
    test execution order."""
    reset_allocator()
    _SourceBase._next_flow_id = 1
    yield
    reset_allocator()
    _SourceBase._next_flow_id = 1


@pytest.fixture
def sim():
    """A deterministic simulator with a fixed seed."""
    return Simulator(seed=42)
