"""Declarative fault schedules and the chaos monkey.

Two ways to decide *when* faults happen:

* :class:`FaultSchedule` — a declarative timeline ("crash the AP at
  t=1.0 for 300 ms, fade node 4 at t=1.2") installed onto the kernel
  heap up front.  Entries fire in insertion order at equal times (the
  kernel's monotone sequence tie-break), every firing is appended to a
  :class:`FaultLog`, and the whole run is bit-reproducible.
* :class:`ChaosMonkey` — randomized crash/restart storms sampled from a
  dedicated seeded RNG stream (``chaos.<name>``), so a storm is as
  reproducible as a timeline while still exploring the fault space.

The log is the subsystem's ground truth: each
:class:`FaultRecord` serializes with ``repr``-exact floats and sorted
keys (the same recipe as the monitor-mode capture log), so two seeded
runs can be byte-compared end to end.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..core.engine import Simulator, Timer
from ..core.errors import ConfigurationError
from ..core.stats import Counter


@dataclass(frozen=True)
class FaultRecord:
    """One fault event as it fired."""

    time: float
    action: str      # "crash", "restart", "fade", "fade-clear", ...
    target: str      # component name / address the fault hit
    detail: str = ""

    def to_json(self) -> str:
        # repr() round-trips floats exactly; sorted keys make the
        # serialization canonical so traces can be byte-compared.
        return json.dumps({
            "time": repr(self.time),
            "action": self.action,
            "target": self.target,
            "detail": self.detail,
        }, sort_keys=True, separators=(",", ":"))


class FaultLog:
    """Append-only record of every fault that fired."""

    def __init__(self) -> None:
        self.records: List[FaultRecord] = []

    def append(self, record: FaultRecord) -> None:
        self.records.append(record)

    def to_jsonl(self) -> str:
        return "\n".join(record.to_json() for record in self.records)

    def downtime_spans(self, horizon: Optional[float] = None
                       ) -> List[tuple]:
        """Pair crash/restart records into per-target downtime windows.

        Returns ``(target, start, end)`` tuples: one per crash/restart
        pair (in restart order), then one per target still down at the
        end of the log (in crash order) with ``end=None``.  A repeated
        crash of an already-down target extends nothing — the first
        crash opened the window.  ``horizon`` is accepted for symmetry
        with the analysis helpers but unrestored windows stay open
        (``end=None``) so consumers can distinguish "restored at t" from
        "still down at the horizon"; pass the figure on to
        :func:`repro.analysis.resilience.downtime_windows` or
        :func:`repro.telemetry.probes.record_fault_spans` to close them.
        """
        del horizon  # see docstring: open windows stay open here
        open_at: Dict[str, float] = {}
        spans: List[tuple] = []
        for record in self.records:
            if record.action == "crash":
                if record.target not in open_at:
                    open_at[record.target] = record.time
            elif record.action == "restart":
                start = open_at.pop(record.target, None)
                if start is not None:
                    spans.append((record.target, start, record.time))
        for target, start in open_at.items():
            spans.append((target, start, None))
        return spans

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)


def _target_name(target) -> str:
    """Best human-readable handle for a fault target."""
    name = getattr(target, "name", None)
    if name is not None:
        return str(name)
    address = getattr(target, "address", None)
    if address is not None:
        return str(address)
    return repr(target)


class FaultSchedule:
    """A declarative, seeded-deterministic fault timeline.

    Build the schedule with the verb methods (:meth:`crash`,
    :meth:`fade`, ...), then :meth:`install` it once before
    ``sim.run``.  Targets are duck-typed: anything with ``crash()`` /
    ``restart()`` works (stations, APs, mesh nodes), so one schedule
    can storm a heterogeneous deployment.
    """

    def __init__(self, sim: Simulator, name: str = "faults",
                 log: Optional[FaultLog] = None):
        self.sim = sim
        self.name = name
        self.log = log if log is not None else FaultLog()
        self.counters = Counter()
        self._entries: List[tuple] = []   # (time, action, target, detail, fn)
        self._installed = False

    # --- building ----------------------------------------------------------

    def at(self, time: float, fn: Callable[[], None], action: str,
           target: str, detail: str = "") -> "FaultSchedule":
        """Schedule an arbitrary fault callable (escape hatch)."""
        if time < 0:
            raise ConfigurationError(f"fault time must be >= 0: {time}")
        self._entries.append((time, action, target, detail, fn))
        return self

    def crash(self, target, at: float,
              down_for: Optional[float] = None) -> "FaultSchedule":
        """Crash ``target`` at ``at``; auto-restart after ``down_for``."""
        name = _target_name(target)
        self.at(at, target.crash, "crash", name,
                "" if down_for is None else f"down_for={down_for!r}")
        if down_for is not None:
            if down_for <= 0:
                raise ConfigurationError(
                    f"down_for must be > 0: {down_for}")
            self.at(at + down_for, target.restart, "restart", name)
        return self

    def restart(self, target, at: float) -> "FaultSchedule":
        """Restart a previously crashed ``target`` at ``at``."""
        self.at(at, target.restart, "restart", _target_name(target))
        return self

    def fade(self, fader, position, loss_db: float, at: float,
             duration: Optional[float] = None,
             target: str = "") -> "FaultSchedule":
        """Fade all links at ``position`` by ``loss_db`` starting at
        ``at``; auto-clear after ``duration``."""
        label = target or repr(position)
        self.at(at, lambda: fader.fade(position, loss_db),
                "fade", label, f"loss_db={loss_db!r}")
        if duration is not None:
            if duration <= 0:
                raise ConfigurationError(
                    f"duration must be > 0: {duration}")
            self.at(at + duration, lambda: fader.clear(position),
                    "fade-clear", label)
        return self

    def queue_pressure(self, mac, at: float, fill: float = 1.0,
                       payload_bytes: int = 200,
                       destination=None) -> "FaultSchedule":
        """Flood ``mac``'s interface queue at ``at``.

        Pick ``destination`` deliberately: junk toward an unreachable
        unicast address drains at retry-limit speed (the queue stays
        wedged for seconds); the broadcast address drains at one
        unacknowledged transmission per frame.
        """
        from .injectors import inject_queue_pressure
        self.at(at,
                lambda: inject_queue_pressure(
                    mac, fill=fill, payload_bytes=payload_bytes,
                    destination=destination),
                "queue-pressure", _target_name(mac), f"fill={fill!r}")
        return self

    # --- arming ------------------------------------------------------------

    def install(self) -> "FaultSchedule":
        """Put every entry on the kernel heap (once).

        Entries are scheduled in insertion order, so equal-time faults
        fire in the order the schedule was written — the kernel's
        monotone sequence tie-break guarantees it.
        """
        if self._installed:
            raise ConfigurationError(
                f"fault schedule {self.name!r} already installed")
        self._installed = True
        for time, action, target, detail, fn in self._entries:
            self.sim.schedule_at(time, self._fire, action, target, detail, fn)
        return self

    def _fire(self, action: str, target: str, detail: str,
              fn: Callable[[], None]) -> None:
        self.counters.incr(action.replace("-", "_"))
        self.log.append(FaultRecord(self.sim.now, action, target, detail))
        fn()

    def __len__(self) -> int:
        return len(self._entries)


class ChaosMonkey:
    """Randomized crash/restart storms from a dedicated seeded stream.

    Strike times are exponentially distributed with mean
    ``mean_interval``; each strike picks a uniform target and crashes
    it for an exponential downtime with mean ``mean_downtime``.  A
    target already down when struck is skipped — but the RNG draws
    happen **unconditionally and in a fixed order** (target, downtime,
    next interval) so the stream stays aligned no matter which strikes
    land.  All randomness comes from the ``chaos.<name>`` stream: the
    storm never perturbs MAC, PHY, or routing jitter streams.
    """

    def __init__(self, sim: Simulator, targets: Sequence,
                 mean_interval: float = 0.5, mean_downtime: float = 0.3,
                 name: str = "monkey", log: Optional[FaultLog] = None,
                 max_faults: Optional[int] = None):
        if not targets:
            raise ConfigurationError("chaos monkey needs at least one target")
        if mean_interval <= 0 or mean_downtime <= 0:
            raise ConfigurationError(
                "mean_interval and mean_downtime must be > 0")
        self.sim = sim
        self.targets = list(targets)
        self.mean_interval = mean_interval
        self.mean_downtime = mean_downtime
        self.name = name
        self.log = log if log is not None else FaultLog()
        self.max_faults = max_faults
        self.counters = Counter()
        self._rng = sim.rng.stream(f"chaos.{name}")
        self._timer = Timer(sim, self._strike)
        self._down: set = set()
        self._running = False

    # --- lifecycle ---------------------------------------------------------

    def start(self) -> "ChaosMonkey":
        """Begin striking (first strike after one mean interval draw)."""
        self._running = True
        self._timer.schedule(self._rng.expovariate(1.0 / self.mean_interval))
        return self

    def stop(self) -> None:
        """Stop striking; targets already down stay down until their
        scheduled restarts fire (or :meth:`restore_all`)."""
        self._running = False
        self._timer.cancel()

    def restore_all(self) -> None:
        """Immediately restart every target the monkey still holds down
        (lowest index first, for determinism)."""
        for index in sorted(self._down):
            self._restore(index)

    @property
    def faults_injected(self) -> int:
        return self.counters.get("strikes")

    # --- internals ---------------------------------------------------------

    def _strike(self) -> None:
        if not self._running:
            return
        if self.max_faults is not None and \
                self.counters.get("strikes") >= self.max_faults:
            self._running = False
            return
        # Fixed draw order keeps the stream aligned across skips.
        index = self._rng.randrange(len(self.targets))
        downtime = self._rng.expovariate(1.0 / self.mean_downtime)
        if index in self._down:
            self.counters.incr("skipped")
        else:
            self._down.add(index)
            self.counters.incr("strikes")
            target = self.targets[index]
            self.log.append(FaultRecord(
                self.sim.now, "crash", _target_name(target),
                f"monkey={self.name} down_for={downtime!r}"))
            target.crash()
            self.sim.schedule(downtime, self._restore, index)
        self._timer.schedule(self._rng.expovariate(1.0 / self.mean_interval))

    def _restore(self, index: int) -> None:
        if index not in self._down:
            return   # already restored by restore_all()
        self._down.discard(index)
        self.counters.incr("restores")
        target = self.targets[index]
        self.log.append(FaultRecord(
            self.sim.now, "restart", _target_name(target),
            f"monkey={self.name}"))
        target.restart()
