"""Driver-level rate adaptation algorithms.

This module is the "MAC/driver-level wireless mechanism" at the heart
of the library: the algorithms that pick which PHY mode each frame is
sent at, using only the feedback a real driver has (ACK received or
not), plus an oracle baseline that peeks at the channel.

* :class:`FixedRate` — pin one mode (the per-rate baselines).
* :class:`Arf` — Automatic Rate Fallback: step up after N consecutive
  successes or a probe timer, step down after 2 consecutive failures;
  the classic WaveLAN-II algorithm.
* :class:`Aarf` — Adaptive ARF: like ARF but doubles the success
  threshold every time an up-probe immediately fails, which suppresses
  the ARF probe-thrash on a stable channel.
* :class:`IdealSnr` — oracle that selects the fastest mode the measured
  SNR supports; the upper bound used in the benchmarks.

All controllers are per-peer: a MAC keeps one controller instance per
destination (different links have different channels).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.errors import ConfigurationError
from .addresses import MacAddress
from ..phy.standards import PhyMode, PhyStandard


class RateController:
    """Interface: pick a mode, learn from per-frame outcomes."""

    def __init__(self, standard: PhyStandard):
        self.standard = standard

    def current_mode(self) -> PhyMode:
        raise NotImplementedError

    def on_success(self) -> None:
        """An ACK came back for a frame sent at the current mode."""

    def on_failure(self) -> None:
        """A frame sent at the current mode exhausted a retry (no ACK)."""

    def on_snr_measurement(self, snr_db: float) -> None:
        """Optional feedback from received frames (used by IdealSnr)."""


class FixedRate(RateController):
    """Always use one pinned mode."""

    def __init__(self, standard: PhyStandard, mode: PhyMode):
        super().__init__(standard)
        if mode.name not in {m.name for m in standard.modes}:
            raise ConfigurationError(
                f"{mode.name} is not a {standard.name} mode")
        self._mode = mode

    def current_mode(self) -> PhyMode:
        return self._mode


class Arf(RateController):
    """Automatic Rate Fallback (Kamerman & Monteban).

    State: an index into the standard's rate ladder.

    * After ``success_threshold`` consecutive successes (or when the
      probe timer of ``timer_threshold`` transmissions expires), move up
      one rate; the first transmission at the new rate is a *probe*.
    * After ``failure_threshold`` consecutive failures — or a single
      failure on a probe — move down one rate.
    """

    def __init__(self, standard: PhyStandard, success_threshold: int = 10,
                 failure_threshold: int = 2, timer_threshold: int = 15,
                 initial_index: Optional[int] = None):
        super().__init__(standard)
        if success_threshold < 1 or failure_threshold < 1:
            raise ConfigurationError("thresholds must be >= 1")
        self.success_threshold = success_threshold
        self.failure_threshold = failure_threshold
        self.timer_threshold = timer_threshold
        self._index = (len(standard.modes) - 1 if initial_index is None
                       else initial_index)
        if not 0 <= self._index < len(standard.modes):
            raise ConfigurationError(f"bad initial index {self._index}")
        self._successes = 0
        self._failures = 0
        self._timer = 0
        self._probing = False
        self.rate_increases = 0
        self.rate_decreases = 0

    @property
    def index(self) -> int:
        return self._index

    def current_mode(self) -> PhyMode:
        return self.standard.modes[self._index]

    def on_success(self) -> None:
        self._successes += 1
        self._failures = 0
        self._timer += 1
        self._probing = False
        if self._successes >= self.success_threshold or \
                self._timer >= self.timer_threshold:
            self._try_increase()

    def on_failure(self) -> None:
        self._failures += 1
        self._successes = 0
        self._timer = 0
        if self._probing:
            # A failed probe drops us straight back down.
            self._probing = False
            self._decrease()
            self._after_failed_probe()
            return
        if self._failures >= self.failure_threshold:
            self._failures = 0
            self._decrease()

    def _try_increase(self) -> None:
        self._successes = 0
        self._timer = 0
        if self._index < len(self.standard.modes) - 1:
            self._index += 1
            self._probing = True
            self.rate_increases += 1

    def _decrease(self) -> None:
        if self._index > 0:
            self._index -= 1
            self.rate_decreases += 1

    def _after_failed_probe(self) -> None:
        """Hook for AARF's adaptive threshold; plain ARF does nothing."""


class Aarf(Arf):
    """Adaptive ARF: failed probes double the success threshold.

    On a stable channel plain ARF keeps probing the next rate every
    ``success_threshold`` frames and losing one frame each time.  AARF
    doubles the threshold (up to ``max_success_threshold``) after each
    failed probe and resets it to the base value after a rate decrease
    caused by genuine failures, recovering ARF's fast downward response
    while eliminating most probe losses.
    """

    def __init__(self, standard: PhyStandard, success_threshold: int = 10,
                 failure_threshold: int = 2, timer_threshold: int = 15,
                 max_success_threshold: int = 60,
                 initial_index: Optional[int] = None):
        super().__init__(standard, success_threshold, failure_threshold,
                         timer_threshold, initial_index)
        self.base_success_threshold = success_threshold
        self.max_success_threshold = max_success_threshold

    def _after_failed_probe(self) -> None:
        self.success_threshold = min(self.success_threshold * 2,
                                     self.max_success_threshold)
        self.timer_threshold = self.success_threshold + 5

    def _decrease(self) -> None:
        if not self._probing:
            # A genuine (non-probe) downturn: channel changed, re-enable
            # fast upward probing.
            self.success_threshold = self.base_success_threshold
            self.timer_threshold = self.base_success_threshold + 5
        super()._decrease()


class IdealSnr(RateController):
    """Oracle controller: picks the best mode for the last measured SNR.

    The measurement normally comes from the SNR of received ACKs
    (symmetric-channel assumption); benchmarks may also feed it the
    true link SNR directly.  ``margin_db`` backs off the threshold to
    absorb estimation noise.
    """

    def __init__(self, standard: PhyStandard, margin_db: float = 1.0):
        super().__init__(standard)
        self.margin_db = margin_db
        self._snr_db: Optional[float] = None

    def on_snr_measurement(self, snr_db: float) -> None:
        self._snr_db = snr_db

    def current_mode(self) -> PhyMode:
        if self._snr_db is None:
            return self.standard.modes[0]
        mode = self.standard.best_mode_for_snr(self._snr_db - self.margin_db)
        return mode if mode is not None else self.standard.modes[0]


#: Factory signature used by MAC construction helpers.
RateControllerFactory = Callable[[PhyStandard], RateController]


def fixed_rate_factory(mode_name: str) -> RateControllerFactory:
    """Factory for a FixedRate pinned to a mode looked up by name."""

    def build(standard: PhyStandard) -> RateController:
        for mode in standard.modes:
            if mode.name == mode_name:
                return FixedRate(standard, mode)
        raise ConfigurationError(
            f"{standard.name} has no mode named {mode_name!r}")

    return build
