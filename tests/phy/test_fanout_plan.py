"""Tests for the compiled arrival fan-out plans and their invalidation.

The plan is a pure restructuring of ``Medium.transmit``'s per-receiver
loop: every topology-change hook must rebuild it (asserted through the
``plan_hits`` / ``plan_misses`` counters), and a planned run must stay
bit-identical to the uncached per-receiver loop.
"""

import pytest

from repro.core import Position, Simulator
from repro.mobility.models import LinearMobility
from repro.phy.channel import Medium
from repro.phy.propagation import LogDistance
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio


def _medium(sim, **kwargs):
    return Medium(sim, LogDistance(DOT11B.band_hz, exponent=3.0), **kwargs)


def _cell(sim, receivers=3, **kwargs):
    medium = _medium(sim, **kwargs)
    tx = Radio("tx", medium, DOT11B, Position(0, 0, 0))
    rxs = [Radio(f"rx{i}", medium, DOT11B, Position(5.0 + i, 0, 0))
           for i in range(receivers)]
    return medium, tx, rxs


MODE = DOT11B.modes[0]


class TestPlanCompilation:
    def test_first_transmit_compiles_then_hits(self, sim):
        medium, tx, _rxs = _cell(sim)
        tx.transmit(b"a", 800, MODE)
        assert (medium.plan_misses, medium.plan_hits) == (1, 0)
        sim.run(until=0.1)
        tx.transmit(b"b", 800, MODE)
        assert (medium.plan_misses, medium.plan_hits) == (1, 1)

    def test_plan_culls_sub_floor_receivers(self, sim):
        medium = Medium(sim, LogDistance(DOT11B.band_hz, exponent=4.0),
                        reception_floor_dbm=-60.0)
        tx = Radio("tx", medium, DOT11B, Position(0, 0, 0))
        near = Radio("near", medium, DOT11B, Position(3, 0, 0))
        far = Radio("far", medium, DOT11B, Position(5000, 0, 0))
        tx.transmit(b"x", 800, MODE)
        plan = medium._plans[tx][2]
        planned = {entry[0].__self__ for entry in plan}
        assert near in planned
        assert far not in planned

    def test_plan_goes_through_link_cache(self, sim):
        medium, tx, rxs = _cell(sim)
        tx.transmit(b"x", 800, MODE)
        rx_power = medium._plans[tx][2][0][2]
        expected = medium.propagation.received_power_watts(
            tx.tx_power_watts, tx.position, rxs[0].position)
        assert rx_power == expected  # bit-identical, not approx
        assert medium.links.misses == len(rxs)

    def test_uncached_medium_never_plans(self, sim):
        medium, tx, _rxs = _cell(sim, cache_links=False)
        tx.transmit(b"x", 800, MODE)
        assert medium.plan_misses == 0
        assert medium.plan_hits == 0
        assert not medium._plans


class TestPlanInvalidation:
    def _warm(self, sim, medium, tx):
        tx.transmit(b"w", 800, MODE)
        sim.run(until=sim.now + 0.05)
        assert medium.plan_misses == 1

    def test_receiver_position_setter_rebuilds(self, sim):
        medium, tx, rxs = _cell(sim)
        self._warm(sim, medium, tx)
        rxs[0].position = Position(50, 0, 0)
        tx.transmit(b"x", 800, MODE)
        assert medium.plan_misses == 2

    def test_sender_position_setter_rebuilds(self, sim):
        medium, tx, _rxs = _cell(sim)
        self._warm(sim, medium, tx)
        tx.position = Position(1, 1, 0)
        tx.transmit(b"x", 800, MODE)
        assert medium.plan_misses == 2

    def test_sender_move_behind_the_hooks_rebuilds(self, sim):
        """Even a direct ``_position`` write (no invalidation hook) on
        the *sender* misses: the plan validates its position identity."""
        medium, tx, _rxs = _cell(sim)
        self._warm(sim, medium, tx)
        tx._position = Position(2, 2, 0)
        tx.transmit(b"x", 800, MODE)
        assert medium.plan_misses == 2

    def test_mobility_step_rebuilds(self, sim):
        medium, tx, rxs = _cell(sim)
        self._warm(sim, medium, tx)
        LinearMobility(sim, rxs[0], Position(40, 0, 0), speed_mps=20.0,
                       tick=0.1).start()
        sim.run(until=sim.now + 0.25)  # at least one mobility tick
        tx.transmit(b"x", 800, MODE)
        assert medium.plan_misses == 2
        # The plan carries the receiver's fresh link budget.
        plan = medium._plans[tx][2]
        moved = next(entry for entry in plan
                     if entry[0].__self__ is rxs[0])
        expected = medium.propagation.received_power_watts(
            tx.tx_power_watts, tx.position, rxs[0].position)
        assert moved[2] == expected

    def test_channel_retune_rebuilds(self, sim):
        medium, tx, rxs = _cell(sim)
        self._warm(sim, medium, tx)
        rxs[0].channel_id = 6
        tx.transmit(b"x", 800, MODE)
        assert medium.plan_misses == 2
        planned = {entry[0].__self__ for entry in medium._plans[tx][2]}
        assert rxs[0] not in planned

    def test_invalidate_links_rebuilds(self, sim):
        medium, tx, _rxs = _cell(sim)
        self._warm(sim, medium, tx)
        medium.invalidate_links()
        tx.transmit(b"x", 800, MODE)
        assert medium.plan_misses == 2

    def test_attach_rebuilds(self, sim):
        medium, tx, _rxs = _cell(sim)
        self._warm(sim, medium, tx)
        late = Radio("late", medium, DOT11B, Position(9, 0, 0))
        tx.transmit(b"x", 800, MODE)
        assert medium.plan_misses == 2
        planned = {entry[0].__self__ for entry in medium._plans[tx][2]}
        assert late in planned

    def test_tx_power_change_rebuilds(self, sim):
        medium, tx, _rxs = _cell(sim)
        self._warm(sim, medium, tx)
        tx.tx_power_watts *= 2.0
        tx.transmit(b"x", 800, MODE)
        assert medium.plan_misses == 2


class TestPlannedVersusUncachedDeterminism:
    def test_same_seed_same_arrivals(self):
        """Planned and uncached runs must deliver identical per-arrival
        powers in identical order — the bit-identity contract."""
        arrivals = []

        class SpyRadio(Radio):
            def arrival_begins(self, transmission, power):
                arrivals.append((self.name, power))
                Radio.arrival_begins(self, transmission, power)

        def run(cache_links):
            sim = Simulator(seed=3)
            medium = _medium(sim, cache_links=cache_links)
            tx = Radio("tx", medium, DOT11B, Position(0, 0, 0))
            for i in range(4):
                SpyRadio(f"rx{i}", medium, DOT11B, Position(10.0 + i, 0, 0))
            arrivals.clear()
            for _ in range(5):
                tx.transmit(b"payload", 800, MODE)
                sim.run(until=sim.now + 0.01)
            return list(arrivals)

        assert run(True) == run(False)


class TestActiveListGc:
    def test_active_list_growth_is_bounded(self, sim):
        """The opportunistic GC moved off the per-transmit hot path; the
        amortized sweep must still keep ``_active`` from growing without
        bound."""
        medium, tx, _rxs = _cell(sim)
        bound = Medium.GC_STRIDE + 8
        for _ in range(6 * Medium.GC_STRIDE):
            tx.transmit(b"x", 800, MODE)
            sim.run(until=sim.now + 0.05)  # frame fully ends
            assert len(medium._active[tx.channel_id]) <= bound
        # Nothing on the air at the end: the public view is empty and
        # prunes the backing list entirely.
        assert medium.active_transmissions(tx.channel_id) == []
        assert medium._active[tx.channel_id] == []

    def test_public_view_still_prunes_on_read(self, sim):
        medium, tx, _rxs = _cell(sim)
        tx.transmit(b"x", 80000, MODE)
        assert len(medium.active_transmissions(tx.channel_id)) == 1
        sim.run(until=1.0)
        assert medium.active_transmissions(tx.channel_id) == []
