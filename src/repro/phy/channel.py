"""The shared wireless medium.

:class:`Medium` connects radios through a propagation model.  When a
radio transmits, the medium computes the receive power at every other
attached radio on the same channel and delivers the energy after the
speed-of-light propagation delay.  Radios below the reception floor
still receive the energy for CCA/interference purposes — a frame you
cannot decode can still deafen you.

The medium is deliberately policy-free: locking, capture, SINR, and
error decisions all live in :class:`~repro.phy.transceiver.Radio`.

Fast path: for static topologies the link budget between any two radios
never changes, so :class:`LinkCache` memoizes the per-pair received
power and propagation delay.  On top of it, the medium compiles a
**fan-out plan** per sender: the audible co-channel receiver set with
the reception-floor cull done and the per-receiver upcalls, receive
powers and propagation delays pre-resolved into flat tuples.
``Medium.transmit`` then degenerates to iterating that flat list and
pushing two raw heap entries per receiver — no cache lookup, no floor
check, no per-receiver conditional.  Plans are rebuilt (through
:class:`LinkCache`, so the floats are bit-identical to the per-receiver
loop) whenever the topology changes: every path that moves, attaches or
retunes a radio funnels into :meth:`Medium.invalidate_links` /
:meth:`Medium.invalidate_channels` / :meth:`Medium.attach`, each of
which drops the compiled plans.  A plan additionally validates the
*sender's* position identity and transmit power on every use, so a
sender mutated behind the hooks still recompiles.  When ``cache_links``
is off the medium falls back to the historical per-receiver loop
(fresh propagation evaluation per frame, still bit-identical).
"""

from __future__ import annotations

import itertools
from heapq import heappush as _heappush
from typing import Any, Dict, List, Optional, Tuple

from ..core.engine import Simulator
from ..core.errors import ConfigurationError
from ..core.units import SPEED_OF_LIGHT, dbm_to_watts, watts_to_dbm
from .modulation import DBPSK_DSSS
from .propagation import PropagationModel
from .standards import PhyMode
from .transceiver import Radio

#: Mode sentinel carried by energy-only transmissions (jammers,
#: coexistence interferers, broadband noise bursts).  The name is not in
#: any standard's decodable set, so every receiver treats the arrival as
#: pure energy: it drives CCA and accumulates as interference against
#: locked receptions, but no radio ever locks onto it or upcalls a
#: frame.  The infinite min-SNR makes ideal rate selection ignore it too.
ENERGY_ONLY = PhyMode(name="ENERGY", data_rate_bps=1.0,
                      modulation=DBPSK_DSSS, min_snr_db=float("inf"))


class Transmission:
    """One frame in flight on the medium."""

    _ids = itertools.count(1)

    __slots__ = ("id", "sender", "payload", "size_bits", "mode",
                 "power_watts", "start_time", "duration")

    def __init__(self, sender: Radio, payload: Any, size_bits: int,
                 mode: PhyMode, power_watts: float, start_time: float,
                 duration: float):
        self.id = next(Transmission._ids)
        self.sender = sender
        self.payload = payload
        self.size_bits = size_bits
        self.mode = mode
        self.power_watts = power_watts
        self.start_time = start_time
        self.duration = duration

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Transmission #{self.id} from {self.sender.name} "
                f"{self.size_bits}b @{self.mode.name}>")


class LinkCache:
    """Memoized per-pair link budgets for static (between moves) topologies.

    One entry per ordered ``(sender, receiver)`` radio pair:
    ``(rx_power_watts, delay_s, tx_power_watts, tx_position,
    rx_position)``.  The positions (and transmit power) the entry was
    computed from ride along so a lookup can validate the entry with two
    identity checks and a float compare — positions are immutable value
    objects, so any movement replaces the object and the stale entry
    misses.  Explicit invalidation exists for model-level changes (e.g.
    re-seeding a shadowing decorator) and is wired into the radio
    position setter and the mobility models.

    The cached receive power is the output of
    :meth:`~repro.phy.propagation.PropagationModel.received_power_watts`,
    so cached and uncached runs (and pre-cache historical runs) produce
    bit-identical link budgets; only the per-frame cost changes.
    """

    __slots__ = ("_entries", "hits", "misses")

    def __init__(self) -> None:
        self._entries: Dict[Tuple[Radio, Radio],
                            Tuple[float, float, float, Any, Any]] = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, propagation: PropagationModel, sender: Radio,
               receiver: Radio, tx_power_watts: float
               ) -> Tuple[float, float, float, Any, Any]:
        """Return ``(rx_power, delay_s, tx_power, tx_pos, rx_pos)``."""
        key = (sender, receiver)
        tx_pos = sender.position
        rx_pos = receiver.position
        entry = self._entries.get(key)
        if entry is not None and entry[3] is tx_pos and \
                entry[4] is rx_pos and entry[2] == tx_power_watts:
            self.hits += 1
            return entry
        rx_power = propagation.received_power_watts(tx_power_watts,
                                                    tx_pos, rx_pos)
        delay = tx_pos.distance_to(rx_pos) / SPEED_OF_LIGHT
        entry = (rx_power, delay, tx_power_watts, tx_pos, rx_pos)
        self._entries[key] = entry
        self.misses += 1
        return entry

    def invalidate(self, radio: Optional[Radio] = None) -> None:
        """Drop every entry involving ``radio`` (or all entries)."""
        if radio is None:
            self._entries.clear()
            return
        self._entries = {
            key: entry for key, entry in self._entries.items()
            if key[0] is not radio and key[1] is not radio}

    def __len__(self) -> int:
        return len(self._entries)


class Medium:
    """A broadcast radio medium with per-channel isolation.

    Parameters
    ----------
    sim:
        The simulation kernel.
    propagation:
        Path-loss model applied between every transmitter/receiver pair.
    reception_floor_dbm:
        Arrivals weaker than this are dropped entirely (not even counted
        as interference).  Keeps the event count linear in *audible*
        neighbours rather than all nodes.  Default -110 dBm is well below
        any CCA threshold.
    propagation_delay:
        Whether to model the speed-of-light delay (on by default; a few
        hundred nanoseconds at WLAN scale, microseconds at WiMAX scale).
    cache_links:
        Memoize per-pair link budgets and compile per-sender fan-out
        plans (on by default).  Disable to force a fresh
        propagation-model evaluation per frame — results are
        bit-identical either way (both paths go through
        ``received_power_watts``); the knob exists for the determinism
        tests and for exotic models whose loss varies with something
        other than geometry.
    exact:
        ``True`` (default): bit-exact float behavior — the historical
        dB-space preamble/capture decisions and full re-sums of the
        arrival table, guaranteed identical to every committed golden
        trace.  ``False``: the **relaxed-ulp fast mode** — receivers
        keep a running incident-power accumulator (drift-rebased) and
        decide preamble detection and capture with precomputed
        linear-domain thresholds, and fan-out plans compute receive
        power via the propagation model's ``link_gain``.  Protocol
        *semantics* are unchanged but results are documented as
        bit-INcompatible with exact mode: seeded stats may drift by the
        odd frame whenever a decision lands within a few ulp of a
        threshold.  ``None`` inherits from the simulator's ``profile``
        (``Simulator(profile="fast")`` => relaxed).  See
        PERFORMANCE.md, "Exact vs fast mode".
    """

    #: Every N-th transmit prunes expired entries from the per-channel
    #: active lists (amortized out of the hot path; the lists stay
    #: bounded by live-transmissions + GC_STRIDE).
    GC_STRIDE = 64

    def __init__(self, sim: Simulator, propagation: PropagationModel,
                 reception_floor_dbm: float = -110.0,
                 propagation_delay: bool = True,
                 cache_links: bool = True,
                 exact: Optional[bool] = None):
        self.sim = sim
        self.propagation = propagation
        self.reception_floor_watts = dbm_to_watts(reception_floor_dbm)
        self.propagation_delay = propagation_delay
        self.cache_links = cache_links
        self.exact = (sim.profile != "fast") if exact is None else bool(exact)
        self.links = LinkCache()
        self._radios: List[Radio] = []
        self._active: Dict[int, List[Transmission]] = {}
        self._gc_countdown = self.GC_STRIDE
        # Per-channel fan-out lists: ``(radio, arrival_begins,
        # arrival_ends)`` with the bound methods pre-resolved (attach
        # order preserved, so the arrival fan-out visits receivers in
        # the same deterministic order as a scan of the full radio
        # list).  Invalidated wholesale on attach and on any retune.
        self._by_channel: Dict[int, List[Tuple[Radio, Any, Any]]] = {}
        # Compiled fan-out plans: sender -> (tx_position, tx_power,
        # entries) where entries is a flat tuple of (arrival_begins,
        # arrival_ends, rx_power_watts, delay_s) per audible co-channel
        # receiver, in attach order.  Dropped wholesale by every
        # topology-change hook; validated per transmit against the
        # sender's own position identity and power.
        self._plans: Dict[Radio, Tuple[Any, float, Tuple[Tuple[Any, Any,
                                                               float, float],
                                                         ...]]] = {}
        self.plan_hits = 0
        self.plan_misses = 0
        #: Cumulative count of plan-dropping topology changes (attach,
        #: detach, retunes, moves, surgical per-sender drops).  All the
        #: increments sit on cold invalidation paths.
        self.plan_invalidations = 0

    def attach(self, radio: Radio) -> None:
        """Register a radio (called from the Radio constructor)."""
        if radio in self._radios:
            raise ConfigurationError(f"radio {radio.name} attached twice")
        self._radios.append(radio)
        self._by_channel.clear()
        self._plans.clear()
        self.plan_invalidations += 1

    def detach(self, radio: Radio) -> None:
        """Unregister a radio (teardown, or permanent crash).

        Drops the radio from every fan-out surface: the per-channel
        receiver lists, the compiled plans (*any* sender's plan may
        carry this receiver's pre-resolved upcalls and receive power,
        so the plans are cleared wholesale, not per sender), its own
        plan, and its :class:`LinkCache` entries.  Arrival edges already
        in the heap still fire at the detached radio — in-flight energy
        drains normally; it simply receives no *new* transmissions.  A
        detached radio may be re-attached later with :meth:`attach`.
        """
        try:
            self._radios.remove(radio)
        except ValueError:
            raise ConfigurationError(
                f"radio {radio.name} is not attached") from None
        self._by_channel.clear()
        self._plans.clear()
        self.plan_invalidations += 1
        self.links.invalidate(radio)

    def invalidate_channels(self) -> None:
        """Drop the per-channel radio lists (a radio retuned)."""
        self._by_channel.clear()
        self._plans.clear()
        self.plan_invalidations += 1

    def _channel_members(self, channel_id: int) -> List[Tuple[Radio, Any, Any]]:
        members = self._by_channel.get(channel_id)
        if members is None:
            if self.exact:
                members = [(radio, radio.arrival_begins, radio.arrival_ends)
                           for radio in self._radios
                           if radio._channel_id == channel_id]
            else:
                members = [(radio, radio.arrival_begins_fast,
                            radio.arrival_ends_fast)
                           for radio in self._radios
                           if radio._channel_id == channel_id]
            self._by_channel[channel_id] = members
        return members

    def invalidate_plan(self, sender: Any) -> None:
        """Drop one sender's compiled fan-out plan.

        Plans are compiled for the channel the sender occupied at
        compile time but validated per transmit only against the
        sender's position identity and transmit power — a *receiver*
        retune funnels through :meth:`invalidate_channels` (which drops
        every plan), and :class:`~repro.phy.transceiver.Radio`'s own
        retune path does the same.  Transmit-only senders (the
        adversary layer's energy emitters) are not attached radios, so
        their retunes invalidate surgically through this hook instead
        of paying a global plan flush per frequency hop.
        """
        if self._plans.pop(sender, None) is not None:
            self.plan_invalidations += 1

    def invalidate_links(self, radio: Optional[Radio] = None) -> None:
        """Invalidate cached link budgets (all, or one radio's links).

        Called from :class:`~repro.phy.transceiver.Radio`'s position
        setter and from the mobility models on every move; call it
        directly after mutating the propagation model itself.  Also
        drops every compiled fan-out plan: a receiver that moved may
        appear in (or drop out of) any sender's audible set, and the
        plan carries its receive power, so partial invalidation by
        sender would be unsound.  Recompilation is amortized — on a
        mobile tick each active sender recompiles once, against a
        LinkCache that still holds every unmoved pair.
        """
        self.links.invalidate(radio)
        self._plans.clear()
        self.plan_invalidations += 1

    def radios_on_channel(self, channel_id: int) -> List[Radio]:
        return [radio for radio, _begins, _ends
                in self._channel_members(channel_id)]

    def active_transmissions(self, channel_id: int) -> List[Transmission]:
        """Transmissions currently on the air on a channel."""
        now = self.sim.now
        active = self._active.get(channel_id, [])
        alive = [tx for tx in active if tx.end_time > now]
        self._active[channel_id] = alive
        return list(alive)

    def _gc_active(self) -> None:
        """Prune expired transmissions from every per-channel list.

        Runs every :attr:`GC_STRIDE` transmits instead of on each one:
        the lists only feed diagnostics (:meth:`active_transmissions`
        prunes on read anyway), so the hot path should not pay a full
        list scan per frame.  Between strides a list holds at most
        live-transmissions + GC_STRIDE entries, so growth stays bounded.
        """
        self._gc_countdown = self.GC_STRIDE
        now = self.sim._now
        for channel_id, active in self._active.items():
            alive = [tx for tx in active if tx.end_time > now]
            if len(alive) != len(active):
                self._active[channel_id] = alive

    # --- transmission fan-out ------------------------------------------------

    def _compile_plan(self, sender: Radio, channel: int, power_watts: float
                      ) -> Tuple[Any, float,
                                 Tuple[Tuple[Any, Any, float, float], ...]]:
        """Build (and memoize) the sender's plan record.

        Returns the full ``(tx_position, tx_power, entries)`` record as
        stored in ``_plans`` — callers index ``[2]`` for the flat
        per-receiver entries tuple.

        Exact mode resolves receive powers through :class:`LinkCache`
        (bit-identical to the per-receiver loop, and warm pairs stay
        warm across recompiles); fast mode computes them in linear
        domain via the propagation model's ``link_gain`` — cheaper, but
        only ulp-compatible, which is fast mode's documented contract.
        """
        floor = self.reception_floor_watts
        propagation = self.propagation
        model_delay = self.propagation_delay
        exact = self.exact
        lookup = self.links.lookup
        tx_pos = sender.position
        entries = []
        for receiver, begins, ends in self._channel_members(channel):
            if receiver is sender:
                continue
            if exact:
                cached = lookup(propagation, sender, receiver, power_watts)
                rx_power = cached[0]
                if rx_power < floor:
                    continue
                delay = cached[1] if model_delay else 0.0
            else:
                rx_pos = receiver.position
                rx_power = power_watts * propagation.link_gain(tx_pos, rx_pos)
                if rx_power < floor:
                    continue
                delay = tx_pos.distance_to(rx_pos) / SPEED_OF_LIGHT \
                    if model_delay else 0.0
            entries.append((begins, ends, rx_power, delay))
        plan = tuple(entries)
        record = (tx_pos, power_watts, plan)
        self._plans[sender] = record
        return record

    def transmit(self, sender: Radio, payload: Any, size_bits: int,
                 mode: PhyMode, duration: float, power_watts: float
                 ) -> Transmission:
        """Fan a frame out to every audible co-channel radio."""
        sim = self.sim
        now = sim._now
        channel = sender._channel_id
        transmission = Transmission(sender, payload, size_bits, mode,
                                    power_watts, now, duration)
        active = self._active.get(channel)
        if active is None:
            active = self._active[channel] = []
        active.append(transmission)
        self._gc_countdown -= 1
        if self._gc_countdown <= 0:
            self._gc_active()
        heap = sim._heap
        next_seq = sim._next_seq
        if self.cache_links:
            # Compiled fan-out: the floor cull and link-budget lookups
            # happened at compile time, so the hot loop is a flat
            # iteration with two raw heap pushes per audible receiver
            # (schedule_fast_at inlined — the delays are nonnegative by
            # construction, so the bounds checks are redundant here;
            # entry shape and seq consumption are identical to the
            # schedule_fast_at path).  The plan is validated against
            # the sender's position identity and transmit power; every
            # receiver-side topology change drops the plan via the
            # invalidation hooks.
            plan = self._plans.get(sender)
            if plan is not None and plan[0] is sender._position \
                    and plan[1] == power_watts:
                self.plan_hits += 1
            else:
                plan = self._compile_plan(sender, channel, power_watts)
                self.plan_misses += 1
            entries = plan[2]
            # NOTE: a fully fused fan-out (one begins sweep + one ends
            # sweep per frame) was prototyped for fast mode and
            # rejected: collapsing the per-receiver propagation-delay
            # stagger onto a common instant aligns every contender's
            # slot grid, which turns nanosecond-resolved near-ties into
            # genuine collisions — delivery dropped ~19% on the dense
            # macro.  The stagger is load-bearing contention physics,
            # not ulp noise, so both modes keep per-receiver edges.
            for begins, ends, rx_power, delay in entries:
                _heappush(heap, (now + delay, next_seq(), None, begins,
                                 (transmission, rx_power)))
                # Parenthesized to match the historical relative-delay
                # float arithmetic exactly: now + (delay + duration),
                # NOT (now + delay) + duration — the ulp difference is
                # enough to reorder CCA edges and desynchronize seeded
                # runs.
                _heappush(heap, (now + (delay + duration), next_seq(),
                                 None, ends, (transmission,)))
            sim._scheduled += 2 * len(entries)
            return transmission
        # Uncached fallback: fresh propagation evaluation per receiver
        # per frame (bit-identical outcomes; see cache_links docs).
        floor = self.reception_floor_watts
        propagation = self.propagation
        model_delay = self.propagation_delay
        scheduled = 0
        for receiver, begins, ends in self._channel_members(channel):
            if receiver is sender:
                continue
            tx_pos = sender.position
            rx_pos = receiver.position
            rx_power = propagation.received_power_watts(
                power_watts, tx_pos, rx_pos)
            if rx_power < floor:
                continue
            delay = tx_pos.distance_to(rx_pos) / SPEED_OF_LIGHT \
                if model_delay else 0.0
            _heappush(heap, (now + delay, next_seq(), None, begins,
                             (transmission, rx_power)))
            _heappush(heap, (now + (delay + duration), next_seq(), None,
                             ends, (transmission,)))
            scheduled += 2
        sim._scheduled += scheduled
        return transmission

    # --- energy-only path (adversary / coexistence emitters) ----------------

    def transmit_energy(self, sender: Any, duration: float,
                        power_watts: float, payload: Any = None
                        ) -> Transmission:
        """Fan out a burst of non-decodable energy.

        The arrival carries power but no frame: receivers integrate it
        into CCA and interference accounting (exact and fast mode
        alike) but never lock onto it, because the transmission rides
        the :data:`ENERGY_ONLY` mode whose name no radio decodes.  The
        burst goes through :meth:`transmit` unchanged, so it composes
        with the compiled fan-out plans, the LinkCache and the
        per-channel receiver lists — and costs *nothing* when no
        emitter exists, which is the exact-mode bit-identity guarantee.

        ``sender`` may be a full :class:`~repro.phy.transceiver.Radio`
        (e.g. a reactive jammer that also carrier-senses) or any
        transmit-only object exposing ``name``, ``position``,
        ``_position`` and ``_channel_id`` — see
        :class:`repro.adversary.emitters.EnergySource`.  Transmit-only
        senders must call :meth:`invalidate_plan` when they retune and
        :meth:`invalidate_links` when they move.
        """
        return self.transmit(sender, payload, 0, ENERGY_ONLY, duration,
                             power_watts)

    # --- link budget introspection (used by scanning / benchmarks) ----------

    def link_rx_power_dbm(self, sender: Radio, receiver: Radio) -> float:
        """Receive power the receiver would see from the sender, in dBm."""
        rx_watts = self.propagation.received_power_watts(
            sender.tx_power_watts, sender.position, receiver.position)
        return watts_to_dbm(rx_watts)

    def link_snr_db(self, sender: Radio, receiver: Radio) -> float:
        """Noise-limited SNR of the sender->receiver link."""
        return receiver.snr_from_dbm(self.link_rx_power_dbm(sender, receiver))
