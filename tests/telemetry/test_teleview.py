"""teleview's stream loader and ASCII renderers (plain and merged)."""

import pathlib
import sys

from repro.telemetry.export import to_jsonl
from repro.telemetry.metrics import MetricsRegistry, make_key
from repro.telemetry.spans import Span, SpanLog

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parents[2]
                       / "tools"))

import teleview  # noqa: E402


def _stream():
    registry = MetricsRegistry()
    registry.counter("mac", "frames").inc(42)
    registry.gauge("kernel", "heap").set(7.0)
    key = make_key("kernel", "heap", {})
    for step in range(10):
        registry.record_sample(key, step * 0.1, float(step))
    spans = SpanLog()
    spans.record(Span("frame", "sta0", 0.0, end=0.5, outcome="delivered",
                      attrs={"attempts": 1, "retries": 0}))
    spans.record(Span("frame", "sta1", 0.0, end=2.0, outcome="delivered",
                      attrs={"attempts": 3, "retries": 2}))
    return to_jsonl(registry, spans=spans)


class TestLoadStream:
    def test_splits_metrics_series_spans(self):
        data = teleview.load_stream(_stream())
        assert len(data["metrics"]) == 2
        assert data["series_order"] == ["kernel/heap"]
        assert len(data["series"]["kernel/heap"]) == 10
        assert len(data["spans"]) == 2
        assert data["sources"] == 0

    def test_merged_stream_scopes_series_by_source(self):
        merged = "\n".join([
            '{"type":"merged","stream":"sim","shards":1}',
            '{"type":"source","source":"coordinator"}',
            '{"type":"header","stream":"sim","version":1}',
            '{"type":"sample","subsystem":"parallel","name":"rounds",'
            '"labels":{},"t":"0.1","v":"1"}',
            '{"type":"source","source":"shard","shard":0}',
            '{"type":"header","stream":"sim","version":1}',
            '{"type":"sample","subsystem":"kernel","name":"heap",'
            '"labels":{},"t":"0.1","v":"5"}',
        ]) + "\n"
        data = teleview.load_stream(merged)
        assert data["series_order"] \
            == ["coordinator:parallel/rounds", "shard0:kernel/heap"]
        assert data["sources"] == 2


class TestRender:
    def test_timeline_normalizes_min_to_max(self):
        rows = [(float(step), float(step)) for step in range(10)]
        strip = teleview.render_timeline(rows, width=10)
        assert len(strip) == 10
        assert strip[0] == " " and strip[-1] == "@"

    def test_constant_nonzero_series_renders_bright(self):
        rows = [(0.0, 5.0), (1.0, 5.0)]
        assert set(teleview.render_timeline(rows, width=4)) <= {"@", " "}

    def test_render_stream_sections(self):
        text = teleview.render_stream(_stream(), width=20, top=5)
        assert "metrics (top 5 by magnitude)" in text
        assert "mac/frames" in text
        assert "timelines (1 series, width 20)" in text
        assert "spans" in text
        assert "slowest 2 closed spans" in text
        assert "sta1" in text

    def test_grep_filters_and_elides_spans(self):
        text = teleview.render_stream(_stream(), grep="kernel/")
        assert "kernel/heap" in text
        assert "mac/frames" not in text
        assert "slowest" not in text

    def test_no_match_message(self):
        assert teleview.render_stream(_stream(), grep="nope") \
            == "no matching telemetry records\n"


class TestCli:
    def test_main_renders_file(self, tmp_path, capsys):
        path = tmp_path / "t.jsonl"
        path.write_text(_stream())
        assert teleview.main([str(path), "--width", "30"]) == 0
        out = capsys.readouterr().out
        assert "timelines" in out
