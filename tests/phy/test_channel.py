"""Tests for the shared medium and radio interplay."""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import SimulationError
from repro.phy.channel import Medium
from repro.phy.error_models import SnrThresholdErrorModel
from repro.phy.propagation import FixedLoss, LogDistance
from repro.phy.standards import DOT11B, DOT11G
from repro.phy.transceiver import PhyListener, Radio, RadioState


class Collector(PhyListener):
    def __init__(self):
        self.received = []
        self.busy_edges = 0
        self.idle_edges = 0
        self.tx_done = 0

    def phy_rx_end(self, payload, success, snr_db, mode):
        self.received.append((payload, success, snr_db))

    def phy_cca_busy(self):
        self.busy_edges += 1

    def phy_cca_idle(self):
        self.idle_edges += 1

    def phy_tx_end(self):
        self.tx_done += 1


def make_pair(sim, distance=20.0, standard=DOT11B, exponent=3.0):
    medium = Medium(sim, LogDistance(standard.band_hz, exponent=exponent))
    tx = Radio("tx", medium, standard, Position(0, 0, 0))
    rx = Radio("rx", medium, standard, Position(distance, 0, 0))
    listener = Collector()
    rx.listener = listener
    return medium, tx, rx, listener


class TestDelivery:
    def test_frame_is_delivered(self, sim):
        medium, tx, rx, listener = make_pair(sim)
        tx.transmit("hello", 800, DOT11B.modes[0])
        sim.run(until=0.1)
        assert len(listener.received) == 1
        payload, success, snr = listener.received[0]
        assert payload == "hello"
        assert success
        assert snr > 10.0

    def test_tx_end_callback(self, sim):
        medium, tx, rx, _ = make_pair(sim)
        sender_listener = Collector()
        tx.listener = sender_listener
        tx.transmit("x", 800, DOT11B.modes[0])
        sim.run(until=0.1)
        assert sender_listener.tx_done == 1
        assert tx.state == RadioState.IDLE

    def test_airtime_matches_standard(self, sim):
        medium, tx, rx, listener = make_pair(sim)
        mode = DOT11B.modes[0]
        duration = tx.transmit("x", 800, mode)
        assert duration == pytest.approx(DOT11B.frame_airtime(800, mode))

    def test_out_of_range_not_delivered(self, sim):
        medium, tx, rx, listener = make_pair(sim, distance=10_000.0,
                                             exponent=4.0)
        tx.transmit("x", 800, DOT11B.modes[0])
        sim.run(until=0.1)
        assert listener.received == []

    def test_channel_isolation(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        tx = Radio("tx", medium, DOT11B, Position(0, 0, 0), channel_id=1)
        rx = Radio("rx", medium, DOT11B, Position(5, 0, 0), channel_id=6)
        listener = Collector()
        rx.listener = listener
        tx.transmit("x", 800, DOT11B.modes[0])
        sim.run(until=0.1)
        assert listener.received == []

    def test_foreign_mode_not_decoded(self, sim):
        """A 802.11b-only radio hears OFDM energy but cannot decode it."""
        medium = Medium(sim, FixedLoss(50.0))
        tx = Radio("tx", medium, DOT11G, Position(0, 0, 0))
        rx = Radio("rx", medium, DOT11B, Position(5, 0, 0))
        listener = Collector()
        rx.listener = listener
        tx.transmit("x", 800, DOT11G.modes[0])
        sim.run(until=0.1)
        assert listener.received == []
        # But the energy still drove CCA busy.
        assert listener.busy_edges >= 1

    def test_mixed_mode_radio_decodes_both(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        tx_b = Radio("txb", medium, DOT11B, Position(0, 0, 0))
        rx = Radio("rx", medium, DOT11G, Position(5, 0, 0))
        rx.allow_decoding(DOT11B)
        listener = Collector()
        rx.listener = listener
        tx_b.transmit("legacy", 800, DOT11B.modes[0])
        sim.run(until=0.1)
        assert [entry[0] for entry in listener.received] == ["legacy"]


class TestCca:
    def test_busy_during_transmission_then_idle(self, sim):
        medium, tx, rx, listener = make_pair(sim, distance=10.0)
        tx.transmit("x", 8000, DOT11B.modes[0])
        sim.run(until=1.0)
        assert listener.busy_edges == 1
        assert listener.idle_edges == 1
        assert not rx.cca_busy()

    def test_own_transmission_is_busy(self, sim):
        medium, tx, rx, _ = make_pair(sim)
        tx.transmit("x", 8000, DOT11B.modes[0])
        assert tx.cca_busy()


class TestCollisions:
    def test_equal_power_overlap_corrupts(self, sim):
        medium = Medium(sim, FixedLoss(60.0))
        a = Radio("a", medium, DOT11B, Position(0, 0, 0))
        b = Radio("b", medium, DOT11B, Position(10, 0, 0))
        rx = Radio("rx", medium, DOT11B, Position(5, 0, 0))
        listener = Collector()
        rx.listener = listener
        # CCK-11 carries 8 bits/symbol: no spreading margin to ride out a
        # 0 dB SINR overlap (DSSS-1's Barker gain can survive it).
        mode = DOT11B.mode_for_rate(11e6)
        sim.schedule(0.0, lambda: a.transmit("A", 8000, mode))
        sim.schedule(0.0001, lambda: b.transmit("B", 8000, mode))
        sim.run(until=0.5)
        # The locked frame (A) must be corrupted by B's interference.
        outcomes = {payload: success
                    for payload, success, _ in listener.received}
        assert outcomes.get("A") is False

    def test_capture_strong_late_frame(self, sim):
        medium = Medium(sim, LogDistance(2.4e9, exponent=3.0))
        weak = Radio("weak", medium, DOT11B, Position(200, 0, 0))
        strong = Radio("strong", medium, DOT11B, Position(2, 0, 0))
        rx = Radio("rx", medium, DOT11B, Position(0, 0, 0))
        listener = Collector()
        rx.listener = listener
        mode = DOT11B.modes[0]
        sim.schedule(0.0, lambda: weak.transmit("weak", 8000, mode))
        sim.schedule(0.0005, lambda: strong.transmit("strong", 8000, mode))
        sim.run(until=0.5)
        payloads = [entry[0] for entry in listener.received
                    if entry[1]]
        assert "strong" in payloads

    def test_half_duplex_tx_aborts_rx(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        peer = Radio("peer", medium, DOT11B, Position(1, 0, 0))
        me = Radio("me", medium, DOT11B, Position(0, 0, 0))
        listener = Collector()
        me.listener = listener
        mode = DOT11B.modes[0]
        sim.schedule(0.0, lambda: peer.transmit("in", 80000, mode))
        # Start transmitting mid-reception: the reception must be dropped.
        sim.schedule(0.001, lambda: me.transmit("out", 800, mode))
        sim.run(until=0.5)
        assert all(payload != "in" for payload, _ok, _s in listener.received)


class TestSleep:
    def test_sleeping_radio_receives_nothing(self, sim):
        medium, tx, rx, listener = make_pair(sim, distance=5.0)
        rx.sleep()
        tx.transmit("x", 800, DOT11B.modes[0])
        sim.run(until=0.1)
        assert listener.received == []

    def test_wake_restores_reception(self, sim):
        medium, tx, rx, listener = make_pair(sim, distance=5.0)
        rx.sleep()
        rx.wake()
        tx.transmit("x", 800, DOT11B.modes[0])
        sim.run(until=0.1)
        assert len(listener.received) == 1

    def test_cannot_transmit_while_asleep(self, sim):
        medium, tx, rx, _ = make_pair(sim)
        tx.sleep()
        with pytest.raises(SimulationError):
            tx.transmit("x", 800, DOT11B.modes[0])


class TestIntrospection:
    def test_link_snr_reporting(self, sim):
        medium, tx, rx, _ = make_pair(sim, distance=20.0)
        snr = medium.link_snr_db(tx, rx)
        assert snr > 0.0
        power = medium.link_rx_power_dbm(tx, rx)
        assert power < 0.0  # well below 1 mW after 20 m

    def test_active_transmissions_listed(self, sim):
        medium, tx, rx, _ = make_pair(sim)
        tx.transmit("x", 80000, DOT11B.modes[0])
        assert len(medium.active_transmissions(1)) == 1
        sim.run(until=1.0)
        assert medium.active_transmissions(1) == []
