"""The strict-mode InvariantChecker: clean runs stay silent, forged
state trips the exact check that guards it."""

import heapq

import pytest

from repro import scenarios
from repro.core import Position, Simulator
from repro.core.errors import InvariantViolation
from repro.faults import InvariantChecker, NAV_MAX_LEGAL
from repro.mac.addresses import allocate_address
from repro.mac.dcf import DcfMac
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio
from repro.routing import RouteEntry


def _mac(sim, exact=False):
    medium = Medium(sim, FixedLoss(50.0), exact=exact)
    radio = Radio("r0", medium, DOT11B, Position(0, 0, 0))
    return medium, DcfMac(sim, radio, allocate_address())


class TestCleanRun:
    def test_busy_bss_run_has_zero_violations(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=3)
        from repro.traffic.generators import CbrSource
        for station in bss.stations:
            CbrSource(sim, lambda p, s=station: s.send(bss.ap.address, p),
                      packet_bytes=400, interval=0.01)
        checker = InvariantChecker(sim, interval=0.01, strict=True)
        checker.watch_medium(bss.medium).install()
        sim.run(until=sim.now + 1.0)
        assert checker.violations == []
        assert checker.checks_run >= 90

    def test_stop_halts_sweeping(self, sim):
        checker = InvariantChecker(sim, interval=0.01).install()
        sim.run(until=0.1)
        ran = checker.checks_run
        assert ran > 0
        checker.stop()
        sim.run(until=0.5)
        assert checker.checks_run == ran


class TestNavCheck:
    def test_forged_nav_raises_in_strict_mode(self, sim):
        medium, mac = _mac(sim)
        checker = InvariantChecker(sim, strict=True).watch_mac(mac)
        mac.nav._until = sim.now + NAV_MAX_LEGAL + 0.001
        with pytest.raises(InvariantViolation, match="nav-legal-duration"):
            checker.check_now()

    def test_forged_nav_accumulates_in_lenient_mode(self, sim):
        medium, mac = _mac(sim)
        checker = InvariantChecker(sim, strict=False).watch_mac(mac)
        mac.nav._until = sim.now + 1.0
        checker.check_now()
        assert len(checker.violations) == 1
        violation = checker.violations[0]
        assert violation.check == "nav-legal-duration"
        assert violation.subject == str(mac.address)

    def test_maximal_legal_nav_is_fine(self, sim):
        medium, mac = _mac(sim)
        checker = InvariantChecker(sim, strict=True).watch_mac(mac)
        mac.nav._until = sim.now + NAV_MAX_LEGAL
        checker.check_now()
        assert checker.violations == []


class TestBackoffLeftFold:
    def _arm(self, sim, mac, slots):
        mac._countdown_anchor = sim.now
        mac._countdown_remaining = slots
        expiry = sim.now
        for _ in range(slots):
            expiry += mac._slot_time
        mac._countdown.schedule_at(expiry)

    def test_correct_batched_expiry_passes(self, sim):
        medium, mac = _mac(sim)
        checker = InvariantChecker(sim, strict=True).watch_mac(mac)
        self._arm(sim, mac, 7)
        checker.check_now()
        assert checker.violations == []

    def test_corrupted_anchor_is_caught(self, sim):
        medium, mac = _mac(sim)
        checker = InvariantChecker(sim, strict=True).watch_mac(mac)
        self._arm(sim, mac, 7)
        mac._countdown_anchor += 1e-7
        with pytest.raises(InvariantViolation, match="backoff-left-fold"):
            checker.check_now()

    def test_naive_multiply_expiry_is_caught(self, sim):
        """slots * slot_time rounds differently from the left-fold for
        some counts; the checker must hold the exact reference."""
        medium, mac = _mac(sim)
        checker = InvariantChecker(sim, strict=False).watch_mac(mac)
        found = False
        for slots in range(1, 64):
            mac._countdown_anchor = sim.now
            mac._countdown_remaining = slots
            mac._countdown.schedule_at(sim.now + slots * mac._slot_time)
            checker.check_now()
            if checker.violations:
                found = True
                break
        assert found, "no slot count distinguishes multiply from fold"


class TestFastAccumulators:
    def test_negative_accumulator_is_caught(self, sim):
        medium, mac = _mac(sim, exact=False)
        checker = InvariantChecker(sim, strict=True).watch_medium(medium)
        mac.radio._incident_watts = -1e-12
        with pytest.raises(InvariantViolation,
                           match="fast-accumulator-nonnegative"):
            checker.check_now()

    def test_stuck_accumulator_on_quiet_air_is_caught(self, sim):
        medium, mac = _mac(sim, exact=False)
        checker = InvariantChecker(sim, strict=True).watch_medium(medium)
        assert not mac.radio._arrivals
        mac.radio._incident_watts = 1e-15
        with pytest.raises(InvariantViolation,
                           match="fast-accumulator-zero-snap"):
            checker.check_now()

    def test_exact_mode_skips_the_accumulator_check(self, sim):
        medium, mac = _mac(sim, exact=True)
        checker = InvariantChecker(sim, strict=True).watch_medium(medium)
        mac.radio._incident_watts = -1.0   # unused state in exact mode
        checker.check_now()
        assert checker.violations == []


class TestKernelCheck:
    def test_event_behind_the_clock_is_caught(self, sim):
        sim.run(until=1.0)
        checker = InvariantChecker(sim, strict=True)
        heapq.heappush(sim._heap, (0.5, -1, lambda: None, ()))
        with pytest.raises(InvariantViolation, match="heap-monotonic"):
            checker.check_now()


class _FakeProtocol:
    def __init__(self, table):
        self._table = table

    def routes(self):
        return self._table

    def next_hop(self, destination):
        entry = self._table.get(destination)
        return entry.next_hop if entry is not None else None


class _FakeNode:
    def __init__(self, address, table):
        self.address = address
        self.protocol = _FakeProtocol(table)


class TestLoopFree:
    def _two_node_loop(self, updated_at):
        a, b, dest = (allocate_address() for _ in range(3))
        # a and b each claim the other is the way to the (absent) dest.
        node_a = _FakeNode(a, {dest: RouteEntry(dest, b, 2,
                                                updated_at=updated_at)})
        node_b = _FakeNode(b, {dest: RouteEntry(dest, a, 2,
                                                updated_at=updated_at)})
        return [node_a, node_b]

    def test_stale_mutual_loop_is_caught(self, sim):
        sim.run(until=1.0)
        nodes = self._two_node_loop(updated_at=0.0)
        checker = InvariantChecker(sim, strict=True,
                                   route_settle=0.3).watch_mesh(nodes)
        with pytest.raises(InvariantViolation, match="routing-loop-free"):
            checker.check_now()

    def test_converging_tables_get_grace(self, sim):
        sim.run(until=1.0)
        nodes = self._two_node_loop(updated_at=sim.now)
        checker = InvariantChecker(sim, strict=True,
                                   route_settle=0.3).watch_mesh(nodes)
        checker.check_now()
        assert checker.violations == []

    def test_loop_free_chain_passes(self, sim):
        sim.run(until=1.0)
        a, b, c = (allocate_address() for _ in range(3))
        nodes = [
            _FakeNode(a, {c: RouteEntry(c, b, 2, updated_at=0.0)}),
            _FakeNode(b, {c: RouteEntry(c, c, 1, updated_at=0.0)}),
            _FakeNode(c, {}),
        ]
        checker = InvariantChecker(sim, strict=True).watch_mesh(nodes)
        checker.check_now()
        assert checker.violations == []


class TestShardMode:
    def test_shard_prefix_appears_in_violation_subject(self, sim):
        sim.run(until=1.0)
        checker = InvariantChecker(sim, strict=False, shard=3)
        heapq.heappush(sim._heap, (0.5, -1, lambda: None, ()))
        checker.check_now()
        (violation,) = checker.violations
        assert violation.subject.startswith("shard3:")

    def test_no_shard_keeps_historical_subjects(self, sim):
        sim.run(until=1.0)
        checker = InvariantChecker(sim, strict=False)
        heapq.heappush(sim._heap, (0.5, -1, lambda: None, ()))
        checker.check_now()
        (violation,) = checker.violations
        assert not violation.subject.startswith("shard")


class TestMergeOrder:
    def _record(self, time, shard, seq):
        # Only the (time, shard, seq) merge-key prefix matters here.
        return (time, shard, seq, "sender", 0.0, 0.0, 0.0, 1, 0.1, 1e-4)

    def test_sorted_batch_passes_and_updates_tail(self):
        tail = {}
        batch = [self._record(0.1, 0, 0), self._record(0.1, 1, 0),
                 self._record(0.2, 0, 1)]
        InvariantChecker.check_merge_order(batch, tail)
        assert tail == {0: (0.2, 1), 1: (0.1, 0)}

    def test_unsorted_batch_is_caught(self):
        batch = [self._record(0.2, 0, 0), self._record(0.1, 1, 0)]
        with pytest.raises(InvariantViolation, match="merge"):
            InvariantChecker.check_merge_order(batch, {})

    def test_per_shard_seq_regression_across_rounds_is_caught(self):
        tail = {}
        InvariantChecker.check_merge_order([self._record(0.1, 0, 5)], tail)
        with pytest.raises(InvariantViolation, match="merge"):
            InvariantChecker.check_merge_order([self._record(0.2, 0, 5)],
                                               tail)

    def test_monotone_rounds_pass(self):
        tail = {}
        InvariantChecker.check_merge_order([self._record(0.1, 0, 0)], tail)
        InvariantChecker.check_merge_order([self._record(0.1, 0, 1),
                                            self._record(0.3, 1, 0)], tail)
        assert tail == {0: (0.1, 1), 1: (0.3, 0)}


class TestCounterParity:
    """scheduled - executed - cancelled must equal the live-heap census
    at quiescence, under either kernel implementation."""

    def _mixed_workload(self, sim):
        from repro.core.engine import Timer
        timer = Timer(sim, lambda: None)
        hits = []
        for i in range(10):
            sim.schedule_fast(0.01 * i, hits.append, i)
        handles = [sim.schedule(0.005 + 0.01 * i, hits.append, 100 + i)
                   for i in range(10)]
        handles[3].cancel()
        handles[7].cancel()
        timer.schedule(0.02)
        timer.schedule(0.045)   # supersede: stale entry stays in heap
        timer.cancel()
        timer.schedule(0.06)    # re-arm after cancel
        # Leave work beyond the horizon so the heap is non-empty at
        # quiescence: pending entries must be counted, not just zero.
        sim.schedule_fast(10.0, hits.append, -1)
        sim.schedule(11.0, hits.append, -2)
        return timer, hits

    def test_clean_mixed_run_passes(self, sim):
        timer, hits = self._mixed_workload(sim)
        checker = InvariantChecker(sim, strict=True)
        checker.check_counter_parity()   # before the run
        sim.run(until=1.0)
        checker.check_counter_parity()   # at quiescence, heap non-empty
        assert checker.violations == []
        assert sim.pending_events == 2
        assert len(hits) == 10 + 8   # fast + uncancelled handles
        assert not timer.armed       # fired within the horizon

    def test_forged_scheduled_drift_is_caught(self, sim):
        sim.schedule(0.5, lambda: None)
        sim.run(until=1.0)
        checker = InvariantChecker(sim, strict=True)
        sim._scheduled += 1   # a kernel that lost an event looks like this
        with pytest.raises(InvariantViolation, match="counter-parity"):
            checker.check_counter_parity()

    def test_forged_executed_drift_accumulates_in_lenient_mode(self, sim):
        sim.schedule(0.5, lambda: None)
        sim.run(until=1.0)
        checker = InvariantChecker(sim, strict=False)
        sim._events_executed -= 1
        checker.check_counter_parity()
        (violation,) = checker.violations
        assert violation.check == "counter-parity"
        assert "live heap entries" in violation.detail

    def test_superseded_timer_trash_is_not_live(self, sim):
        from repro.core.engine import Timer
        timer = Timer(sim, lambda: None)
        for _ in range(5):
            timer.schedule(2.0)   # four stale versions ride in the heap
        checker = InvariantChecker(sim, strict=True)
        checker.check_counter_parity()
        assert sim.pending_events == 1
        assert len(sim._heap) == 5

    def test_clear_rebaseline_stays_in_parity(self, sim):
        self._mixed_workload(sim)
        sim.run(until=0.03)
        sim.clear()
        InvariantChecker(sim, strict=True).check_counter_parity()
        assert sim.pending_events == 0
