#!/usr/bin/env python3
"""The hidden-terminal problem, and RTS/CTS solving it.

Two laptops on opposite sides of a building cannot hear each other but
both reach the file server between them.  With basic CSMA/CA their
transmissions collide at the server relentlessly; enabling RTS/CTS
reserves the medium through the server's CTS (which both can hear) and
restores throughput.

Run:  python examples/hidden_terminal.py
"""

from repro import Simulator, scenarios
from repro.mac.dcf import DcfConfig, MacListener


class Saturator(MacListener):
    """Keeps a station's queue non-empty."""

    def __init__(self, station, destination, payload_bytes=800):
        self.station = station
        self.destination = destination
        self.payload = bytes(payload_bytes)
        station.on_tx_complete(lambda msdu, ok: self._refill())

    def prime(self, depth=3):
        for _ in range(depth):
            self.station.mac.send(self.destination, self.payload)

    def _refill(self):
        self.station.mac.send(self.destination, self.payload)


def run(rts_threshold: int, label: str) -> float:
    sim = Simulator(seed=11)
    scenario = scenarios.build_hidden_terminal(
        sim, mac_config=DcfConfig(rts_threshold_bytes=rts_threshold))
    a_hears_b = scenario.medium.link_rx_power_dbm(
        scenario.sender_a.radio, scenario.sender_b.radio)
    received = {"bytes": 0}
    scenario.receiver.on_receive(
        lambda src, payload, meta: received.__setitem__(
            "bytes", received["bytes"] + len(payload)))
    for sender in (scenario.sender_a, scenario.sender_b):
        Saturator(sender, scenario.receiver.address).prime()
    horizon = 4.0
    sim.run(until=horizon)
    goodput = received["bytes"] * 8 / horizon
    drops = (scenario.sender_a.mac.counters.get("msdu_dropped")
             + scenario.sender_b.mac.counters.get("msdu_dropped"))
    print(f"{label:>14}: {goodput / 1e3:7.0f} kb/s, "
          f"{drops:3d} frames dropped at the retry limit "
          f"(sender A hears sender B at {a_hears_b} dBm)")
    return goodput


def main() -> None:
    print("two saturated senders, hidden from each other, one receiver:\n")
    basic = run(rts_threshold=2347, label="basic access")
    rts = run(rts_threshold=256, label="RTS/CTS")
    print(f"\nRTS/CTS recovers {rts / basic:.2f}x the basic-access "
          "goodput in this topology")


if __name__ == "__main__":
    main()
