"""Tests for MSDU fragmentation and reassembly."""

import pytest
from hypothesis import given, strategies as st

from repro.core.errors import FrameError
from repro.mac.addresses import MacAddress
from repro.mac.fragmentation import (
    Reassembler,
    fragment_payload,
)

TA = MacAddress.from_string("02:00:00:00:00:01")


class TestFragmentation:
    def test_small_payload_single_fragment(self):
        fragments = fragment_payload(b"short", threshold=100)
        assert len(fragments) == 1
        assert not fragments[0].more_fragments
        assert fragments[0].payload == b"short"

    def test_exact_threshold_single_fragment(self):
        fragments = fragment_payload(b"x" * 100, threshold=100)
        assert len(fragments) == 1

    def test_threshold_plus_one_splits(self):
        fragments = fragment_payload(b"x" * 101, threshold=100)
        assert len(fragments) == 2
        assert fragments[0].more_fragments
        assert not fragments[1].more_fragments
        assert len(fragments[1].payload) == 1

    def test_indices_sequential(self):
        fragments = fragment_payload(b"x" * 500, threshold=100)
        assert [fragment.index for fragment in fragments] == [0, 1, 2, 3, 4]

    def test_empty_payload(self):
        fragments = fragment_payload(b"", threshold=100)
        assert len(fragments) == 1
        assert fragments[0].payload == b""

    def test_too_many_fragments_rejected(self):
        with pytest.raises(FrameError):
            fragment_payload(b"x" * 17, threshold=1)

    def test_bad_threshold_rejected(self):
        with pytest.raises(FrameError):
            fragment_payload(b"x", threshold=0)

    @given(st.binary(min_size=0, max_size=2000),
           st.integers(min_value=150, max_value=600))
    def test_fragments_concatenate_to_payload(self, payload, threshold):
        fragments = fragment_payload(payload, threshold)
        reassembled = b"".join(fragment.payload for fragment in fragments)
        assert reassembled == payload


class TestReassembler:
    def test_unfragmented_fast_path(self):
        reassembler = Reassembler()
        result = reassembler.add_fragment(0.0, TA, 1, 0, False, b"whole")
        assert result == b"whole"
        assert reassembler.pending == 0

    def test_in_order_reassembly(self):
        reassembler = Reassembler()
        assert reassembler.add_fragment(0.0, TA, 5, 0, True, b"AA") is None
        assert reassembler.add_fragment(0.1, TA, 5, 1, True, b"BB") is None
        assert reassembler.add_fragment(0.2, TA, 5, 2, False, b"CC") == \
            b"AABBCC"

    def test_duplicate_fragment_tolerated(self):
        reassembler = Reassembler()
        reassembler.add_fragment(0.0, TA, 5, 0, True, b"AA")
        reassembler.add_fragment(0.1, TA, 5, 0, True, b"AA")
        assert reassembler.add_fragment(0.2, TA, 5, 1, False, b"BB") == \
            b"AABB"

    def test_interleaved_senders(self):
        other = MacAddress.from_string("02:00:00:00:00:02")
        reassembler = Reassembler()
        reassembler.add_fragment(0.0, TA, 1, 0, True, b"ta0")
        reassembler.add_fragment(0.1, other, 1, 0, True, b"tb0")
        assert reassembler.add_fragment(0.2, TA, 1, 1, False, b"ta1") == \
            b"ta0ta1"
        assert reassembler.add_fragment(0.3, other, 1, 1, False, b"tb1") == \
            b"tb0tb1"

    def test_timeout_discards_stale_partials(self):
        reassembler = Reassembler(timeout=1.0)
        reassembler.add_fragment(0.0, TA, 1, 0, True, b"AA")
        # Far in the future, the partial is expired; the final fragment
        # alone cannot complete the MSDU.
        assert reassembler.add_fragment(5.0, TA, 1, 1, False, b"BB") is None
        assert reassembler.timed_out == 1

    def test_round_trip_with_fragment_payload(self):
        payload = bytes(range(256)) * 4
        reassembler = Reassembler()
        result = None
        for fragment in fragment_payload(payload, threshold=100):
            result = reassembler.add_fragment(
                0.0, TA, 9, fragment.index, fragment.more_fragments,
                fragment.payload)
        assert result == payload
