"""IEEE MAC addresses (EUI-48).

:class:`MacAddress` is a small immutable value type with the textual
``aa:bb:cc:dd:ee:ff`` form, byte serialization for frame encoding, and
the broadcast/multicast/locally-administered predicates the MAC and
bridging code use.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from ..core.errors import FrameError


@dataclass(frozen=True, order=True)
class MacAddress:
    """A 48-bit MAC address stored as an int for cheap hashing."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < (1 << 48):
            raise FrameError(f"MAC address out of range: {self.value:#x}")

    # --- constructors --------------------------------------------------------

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        parts = text.replace("-", ":").split(":")
        if len(parts) != 6:
            raise FrameError(f"malformed MAC address: {text!r}")
        try:
            octets = [int(part, 16) for part in parts]
        except ValueError:
            raise FrameError(f"malformed MAC address: {text!r}")
        if any(not 0 <= octet <= 0xFF for octet in octets):
            raise FrameError(f"malformed MAC address: {text!r}")
        value = 0
        for octet in octets:
            value = (value << 8) | octet
        return cls(value)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "MacAddress":
        if len(raw) != 6:
            raise FrameError(f"MAC address needs 6 bytes, got {len(raw)}")
        return cls(int.from_bytes(raw, "big"))

    # --- encoding ------------------------------------------------------------

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(6, "big")

    def __str__(self) -> str:
        raw = self.to_bytes()
        return ":".join(f"{octet:02x}" for octet in raw)

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"

    # --- predicates ------------------------------------------------------------

    @property
    def is_broadcast(self) -> bool:
        return self.value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        """Group bit (LSB of the first octet) set."""
        return bool((self.value >> 40) & 0x01)

    @property
    def is_locally_administered(self) -> bool:
        return bool((self.value >> 40) & 0x02)


BROADCAST = MacAddress((1 << 48) - 1)

_allocator = itertools.count(1)


def allocate_address(locally_administered: bool = True) -> MacAddress:
    """Hand out a fresh unique address for a simulated device."""
    serial = next(_allocator)
    if serial >= (1 << 40):
        raise FrameError("address space exhausted")
    base = 0x02_00_00_00_00_00 if locally_administered else 0
    return MacAddress(base | serial)


def reset_allocator() -> None:
    """Restart address allocation (test isolation)."""
    global _allocator
    _allocator = itertools.count(1)
