"""Sharded determinism contract for the city_scale macro family.

Two sharded runs of a reduced city grid with the same seed must agree
to the byte: identical canonical arrival logs (hence identical sha1)
and identical per-BSS stats.  CI runs this via ``-k SeededDeterminism``
like the other subsystem determinism gates.
"""

from repro.parallel import run_sharded
from repro.scenarios import build_city_cells, city_propagation


def _reduced_city(seed):
    cells = build_city_cells(bss_count=6, stations_per_bss=2,
                             payload_size=200)
    return run_sharded(cells, seed=seed, horizon=0.02, workers=3,
                       propagation_factory=city_propagation,
                       check_invariants=True)


class TestSeededDeterminism:
    def test_two_runs_byte_identical(self):
        first = _reduced_city(seed=41)
        second = _reduced_city(seed=41)
        assert first["arrival_log"] == second["arrival_log"]
        assert first["arrival_log_sha1"] == second["arrival_log_sha1"]
        assert first["cells"] == second["cells"]
        assert first["events"] == second["events"]

    def test_different_seed_diverges(self):
        first = _reduced_city(seed=41)
        other = _reduced_city(seed=42)
        # The arrival log embeds the seed in its header, and the seeded
        # stats must actually depend on the seed.
        assert first["arrival_log_sha1"] != other["arrival_log_sha1"]
        assert first["cells"] != other["cells"]
