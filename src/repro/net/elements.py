"""Management-frame bodies and information elements.

802.11 management frames carry fixed fields followed by tagged
information elements (IEs).  This module implements the small subset
the association machinery needs, byte-exact enough to round-trip:

* beacon / probe-response body: timestamp, beacon interval,
  capability field (with the privacy bit), SSID IE, supported-rates IE,
* authentication body: algorithm, transaction sequence, status,
* association request/response bodies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.errors import FrameError

#: IE identifiers (from the standard).
IE_SSID = 0
IE_SUPPORTED_RATES = 1
IE_DS_PARAMS = 3  # current channel
#: Traffic indication map: which dozing stations have buffered frames.
#: (Simplified encoding: one byte per AID instead of the partial-virtual
#: bitmap; same information content for AIDs < 256.)
IE_TIM = 5

#: Capability bits.
CAP_ESS = 0x0001
CAP_IBSS = 0x0002
CAP_PRIVACY = 0x0010

#: Authentication algorithm numbers.
AUTH_OPEN_SYSTEM = 0
AUTH_SHARED_KEY = 1

STATUS_SUCCESS = 0
STATUS_REFUSED = 1

MAX_SSID_LEN = 32


def encode_ie(element_id: int, payload: bytes) -> bytes:
    if not 0 <= element_id <= 255:
        raise FrameError(f"bad IE id {element_id}")
    if len(payload) > 255:
        raise FrameError(f"IE payload too long: {len(payload)}")
    return bytes([element_id, len(payload)]) + payload


def decode_ies(raw: bytes) -> List[Tuple[int, bytes]]:
    elements = []
    offset = 0
    while offset < len(raw):
        if offset + 2 > len(raw):
            raise FrameError("truncated IE header")
        element_id = raw[offset]
        length = raw[offset + 1]
        end = offset + 2 + length
        if end > len(raw):
            raise FrameError("truncated IE payload")
        elements.append((element_id, raw[offset + 2:end]))
        offset = end
    return elements


def find_ie(elements: List[Tuple[int, bytes]], element_id: int
            ) -> Optional[bytes]:
    for eid, payload in elements:
        if eid == element_id:
            return payload
    return None


def _validate_ssid(ssid: str) -> bytes:
    encoded = ssid.encode("utf-8")
    if len(encoded) > MAX_SSID_LEN:
        raise FrameError(f"SSID longer than {MAX_SSID_LEN} bytes: {ssid!r}")
    return encoded


@dataclass(frozen=True)
class BeaconBody:
    """Beacon / probe-response body."""

    timestamp_us: int
    beacon_interval_tu: int  # time units of 1024 us
    capability: int
    ssid: str
    supported_rates_mbps: Tuple[float, ...] = ()
    channel: Optional[int] = None
    #: AIDs of dozing stations with traffic buffered at the AP.
    tim_aids: Tuple[int, ...] = ()

    @property
    def privacy(self) -> bool:
        return bool(self.capability & CAP_PRIVACY)

    def encode(self) -> bytes:
        parts = [self.timestamp_us.to_bytes(8, "little"),
                 self.beacon_interval_tu.to_bytes(2, "little"),
                 self.capability.to_bytes(2, "little"),
                 encode_ie(IE_SSID, _validate_ssid(self.ssid))]
        if self.supported_rates_mbps:
            # Encoded in units of 500 kb/s, as the standard does.
            units = bytes(min(int(round(rate * 2)), 255)
                          for rate in self.supported_rates_mbps[:8])
            parts.append(encode_ie(IE_SUPPORTED_RATES, units))
        if self.channel is not None:
            parts.append(encode_ie(IE_DS_PARAMS, bytes([self.channel])))
        if self.tim_aids:
            aids = sorted(set(self.tim_aids))
            if any(not 1 <= aid <= 255 for aid in aids):
                raise FrameError("TIM AIDs must be in 1..255")
            parts.append(encode_ie(IE_TIM, bytes(aids)))
        return b"".join(parts)

    @classmethod
    def decode(cls, raw: bytes) -> "BeaconBody":
        if len(raw) < 12:
            raise FrameError("beacon body too short")
        timestamp = int.from_bytes(raw[0:8], "little")
        interval = int.from_bytes(raw[8:10], "little")
        capability = int.from_bytes(raw[10:12], "little")
        elements = decode_ies(raw[12:])
        ssid_raw = find_ie(elements, IE_SSID)
        if ssid_raw is None:
            raise FrameError("beacon without SSID IE")
        rates_raw = find_ie(elements, IE_SUPPORTED_RATES) or b""
        channel_raw = find_ie(elements, IE_DS_PARAMS)
        tim_raw = find_ie(elements, IE_TIM) or b""
        return cls(timestamp_us=timestamp, beacon_interval_tu=interval,
                   capability=capability, ssid=ssid_raw.decode("utf-8"),
                   supported_rates_mbps=tuple(unit / 2.0 for unit in rates_raw),
                   channel=channel_raw[0] if channel_raw else None,
                   tim_aids=tuple(tim_raw))


@dataclass(frozen=True)
class AuthBody:
    """Authentication frame body."""

    algorithm: int
    sequence: int
    status: int = STATUS_SUCCESS
    challenge: bytes = b""

    def encode(self) -> bytes:
        raw = (self.algorithm.to_bytes(2, "little")
               + self.sequence.to_bytes(2, "little")
               + self.status.to_bytes(2, "little"))
        if self.challenge:
            raw += encode_ie(16, self.challenge)  # challenge-text IE
        return raw

    @classmethod
    def decode(cls, raw: bytes) -> "AuthBody":
        if len(raw) < 6:
            raise FrameError("auth body too short")
        algorithm = int.from_bytes(raw[0:2], "little")
        sequence = int.from_bytes(raw[2:4], "little")
        status = int.from_bytes(raw[4:6], "little")
        challenge = b""
        if len(raw) > 6:
            elements = decode_ies(raw[6:])
            challenge = find_ie(elements, 16) or b""
        return cls(algorithm=algorithm, sequence=sequence, status=status,
                   challenge=challenge)


@dataclass(frozen=True)
class AssocRequestBody:
    capability: int
    listen_interval: int
    ssid: str

    def encode(self) -> bytes:
        return (self.capability.to_bytes(2, "little")
                + self.listen_interval.to_bytes(2, "little")
                + encode_ie(IE_SSID, _validate_ssid(self.ssid)))

    @classmethod
    def decode(cls, raw: bytes) -> "AssocRequestBody":
        if len(raw) < 4:
            raise FrameError("assoc request too short")
        capability = int.from_bytes(raw[0:2], "little")
        listen_interval = int.from_bytes(raw[2:4], "little")
        ssid_raw = find_ie(decode_ies(raw[4:]), IE_SSID)
        if ssid_raw is None:
            raise FrameError("assoc request without SSID")
        return cls(capability=capability, listen_interval=listen_interval,
                   ssid=ssid_raw.decode("utf-8"))


@dataclass(frozen=True)
class AssocResponseBody:
    capability: int
    status: int
    association_id: int

    def encode(self) -> bytes:
        return (self.capability.to_bytes(2, "little")
                + self.status.to_bytes(2, "little")
                + self.association_id.to_bytes(2, "little"))

    @classmethod
    def decode(cls, raw: bytes) -> "AssocResponseBody":
        if len(raw) < 6:
            raise FrameError("assoc response too short")
        return cls(capability=int.from_bytes(raw[0:2], "little"),
                   status=int.from_bytes(raw[2:4], "little"),
                   association_id=int.from_bytes(raw[4:6], "little"))
