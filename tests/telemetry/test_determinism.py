"""The telemetry determinism contract.

Two seeded runs must produce byte-identical sim-time JSONL streams —
single-process (a DES macro) and sharded (workers=2, merged streams in
pinned shard order).  And arming telemetry must leave every seeded
protocol outcome untouched: same stats modulo the kernel event count
(the sampler's own events are real heap events) and, for sharded runs,
the arrival-log fingerprint (fence records embed event counts).

CI runs this module via ``-k SeededDeterminism`` like the other
subsystem determinism gates.
"""

import pathlib
import sys

from repro.parallel import run_sharded
from repro.scenarios import build_city_cells, city_propagation
from repro.telemetry.export import parse_jsonl

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from perf.macro import MACROS  # noqa: E402

#: Stats keys legitimately perturbed by the sampler's own heap events.
INSTRUMENTATION_KEYS = ("events", "arrival_log_sha1")


def _strip(stats):
    return {key: value for key, value in stats.items()
            if key not in INSTRUMENTATION_KEYS
            and not key.startswith(("link_cache", "fanout_", "telemetry"))}


def _sharded_city(seed, telemetry):
    cells = build_city_cells(bss_count=4, stations_per_bss=2,
                             payload_size=200)
    return run_sharded(cells, seed=seed, horizon=0.02, workers=2,
                       propagation_factory=city_propagation,
                       telemetry=telemetry)


class TestSeededDeterminismSingle:
    def test_two_macro_runs_byte_identical(self):
        first = MACROS["dcf_saturation"](0.05, telemetry=True)
        second = MACROS["dcf_saturation"](0.05, telemetry=True)
        assert first["telemetry_jsonl"] == second["telemetry_jsonl"]
        assert first["stats"] == second["stats"]
        # The stream is non-trivial: samples AND frame spans present.
        types = {record["type"]
                 for record in parse_jsonl(first["telemetry_jsonl"])}
        assert {"header", "metric", "sample", "span"} <= types

    def test_macro_stats_inert_under_telemetry(self):
        plain = MACROS["dcf_saturation"](0.05)
        armed = MACROS["dcf_saturation"](0.05, telemetry=True)
        assert "telemetry_jsonl" not in plain
        assert _strip(plain["stats"]) == _strip(armed["stats"])

    def test_wall_stream_is_separate(self):
        result = MACROS["dcf_saturation"](0.05, telemetry=True)
        sim_records = parse_jsonl(result["telemetry_jsonl"])
        wall_records = parse_jsonl(result["telemetry_wall_jsonl"])
        assert sim_records[0]["stream"] == "sim"
        assert wall_records[0]["stream"] == "wall"


class TestSeededDeterminismSharded:
    def test_two_sharded_runs_byte_identical(self):
        first = _sharded_city(seed=41, telemetry=True)
        second = _sharded_city(seed=41, telemetry=True)
        assert first["telemetry_jsonl"] == second["telemetry_jsonl"]
        assert first["telemetry_wall_jsonl"] \
            != ""  # wall stream exists but is never byte-compared
        assert first["cells"] == second["cells"]
        assert first["arrival_log"] == second["arrival_log"]

    def test_merged_stream_pins_shard_order(self):
        result = _sharded_city(seed=41, telemetry=True)
        records = parse_jsonl(result["telemetry_jsonl"])
        assert records[0] == {"type": "merged", "stream": "sim",
                              "shards": 2}
        sources = [record for record in records
                   if record["type"] == "source"]
        assert sources[0] == {"type": "source", "source": "coordinator"}
        assert [record.get("shard") for record in sources[1:]] == [0, 1]

    def test_sharded_outcomes_inert_under_telemetry(self):
        plain = _sharded_city(seed=41, telemetry=False)
        armed = _sharded_city(seed=41, telemetry=True)
        assert "telemetry_jsonl" not in plain
        # Protocol outcomes must match exactly; only the kernel event
        # counts (which include sampler events) may differ.
        assert plain["cells"] == armed["cells"]
