"""Airtime accounting from the simulation trace.

Answers the MAC analyst's first question — *who held the medium, for
how long, doing what* — by folding the radios' ``phy-tx-start`` trace
records (which carry the frame size in bits and the PHY mode name)
back through the standard's airtime formula.

Useful both as a debugging lens ("why is aggregate throughput low?
because 40% of airtime is 1 Mb/s control frames") and as the overhead
decomposition some benches report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.trace import TraceLog
from ..phy.standards import PhyMode, PhyStandard
from .tables import render_table


@dataclass
class SourceAirtime:
    """Accumulated transmit airtime for one radio."""

    source: str
    frames: int = 0
    bits: int = 0
    airtime_s: float = 0.0
    by_mode: Dict[str, float] = field(default_factory=dict)

    def add(self, bits: int, mode_name: str, airtime: float) -> None:
        self.frames += 1
        self.bits += bits
        self.airtime_s += airtime
        self.by_mode[mode_name] = self.by_mode.get(mode_name, 0.0) + airtime


class AirtimeReport:
    """Per-source airtime, computed from a trace."""

    def __init__(self, trace: TraceLog, standard: PhyStandard,
                 window: Optional[float] = None):
        self.standard = standard
        self.sources: Dict[str, SourceAirtime] = {}
        self._first_time: Optional[float] = None
        self._last_time = 0.0
        modes = {mode.name: mode for mode in standard.modes}
        for record in trace.select(event="phy-tx-start"):
            mode_name = record.detail.get("mode")
            bits = record.detail.get("bits")
            mode = modes.get(mode_name)
            if mode is None or bits is None:
                continue  # a foreign standard's transmission
            airtime = standard.frame_airtime(bits, mode)
            entry = self.sources.setdefault(record.source,
                                            SourceAirtime(record.source))
            entry.add(bits, mode_name, airtime)
            if self._first_time is None:
                self._first_time = record.time
            self._last_time = max(self._last_time, record.time + airtime)
        if window is not None:
            self._window = window
        elif self._first_time is not None:
            self._window = self._last_time - self._first_time
        else:
            self._window = 0.0

    @property
    def window_s(self) -> float:
        return self._window

    @property
    def total_airtime_s(self) -> float:
        return sum(entry.airtime_s for entry in self.sources.values())

    @property
    def busy_fraction(self) -> float:
        """Fraction of the observation window some radio was sending.

        Can exceed 1.0 when transmissions overlap (hidden terminals) —
        that excess *is* the collision airtime.
        """
        if self._window <= 0:
            return 0.0
        return self.total_airtime_s / self._window

    def share_of(self, source: str) -> float:
        entry = self.sources.get(source)
        if entry is None or self.total_airtime_s == 0.0:
            return 0.0
        return entry.airtime_s / self.total_airtime_s

    def render(self, title: str = "Airtime by source") -> str:
        rows = []
        for name in sorted(self.sources):
            entry = self.sources[name]
            rows.append([
                name, entry.frames,
                entry.airtime_s * 1e3,
                self.share_of(name),
                (entry.bits / entry.airtime_s / 1e6
                 if entry.airtime_s else 0.0),
            ])
        table = render_table(
            title,
            ["source", "frames", "airtime ms", "share", "eff. Mb/s"],
            rows, formats=[None, None, ".2f", ".2f", ".2f"])
        return (f"{table}\nwindow: {self._window * 1e3:.1f} ms, "
                f"medium busy fraction: {self.busy_fraction:.2f}")
