"""Span ring buffer semantics and the frame-lifecycle tracker driven
through the DcfMac probe hook on a real two-station contention run."""

from repro.core.engine import Simulator
from repro.core.topology import Position
from repro.core.trace import TraceLog
from repro.mac.addresses import allocate_address
from repro.mac.dcf import DcfConfig, DcfMac
from repro.mac.rate_adapt import fixed_rate_factory
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio
from repro.telemetry.spans import (FRAME_DELIVERED, FRAME_ENQUEUE, FRAME_RX,
                                   FRAME_TX, FrameSpanTracker, Span, SpanLog)


class TestSpanLog:
    def test_ring_buffer_drops_oldest_and_counts(self):
        log = SpanLog(capacity=2)
        for index in range(3):
            log.record(Span("frame", f"s{index}", 0.0, end=1.0))
        assert len(log) == 2
        assert [span.subject for span in log] == ["s1", "s2"]
        assert log.dropped == 1

    def test_type_mask_gates_wants(self):
        log = SpanLog()
        assert log.wants("frame")
        log.enable_only("fault")
        assert not log.wants("frame")
        assert log.wants("fault")
        log.enable_all()
        assert log.wants("frame")
        log.enabled = False
        assert not log.wants("fault")

    def test_select_filters_type_and_outcome(self):
        log = SpanLog()
        log.record(Span("frame", "a", 0.0, end=1.0, outcome="delivered"))
        log.record(Span("frame", "b", 0.0, end=1.0, outcome="dropped"))
        log.record(Span("fault", "c", 0.0, end=1.0, outcome="down"))
        assert [s.subject for s in log.select(span_type="frame")] \
            == ["a", "b"]
        assert [s.subject for s in log.select(outcome="dropped")] == ["b"]

    def test_duration(self):
        assert Span("frame", "a", 1.5, end=4.0).duration == 2.5
        assert Span("frame", "a", 1.5).duration is None


class _FakeMac:
    def __init__(self, sim, address="aa"):
        self.sim = sim
        self.address = address
        self._frame_probe = None


class TestFrameSpanTracker:
    def test_lifecycle_builds_one_span(self):
        sim = Simulator(seed=1)
        tracker = FrameSpanTracker(SpanLog())
        mac = _FakeMac(sim)
        tracker.attach(mac, name="sta")
        msdu = object()
        sim._now = 1.0
        mac._frame_probe(FRAME_ENQUEUE, msdu)
        sim._now = 1.25
        mac._frame_probe(FRAME_TX, msdu)
        sim._now = 1.5
        mac._frame_probe(FRAME_TX, msdu)
        mac._frame_probe(FRAME_DELIVERED, msdu)
        (span,) = list(tracker.spans)
        assert span.subject == "sta"
        assert span.start == 1.0 and span.end == 1.5
        assert span.outcome == "delivered"
        assert span.attrs["first_tx"] == 1.25
        assert span.attrs["attempts"] == 2
        assert tracker.open_count() == 0

    def test_rx_counts_per_mac_without_opening_spans(self):
        sim = Simulator(seed=1)
        tracker = FrameSpanTracker(SpanLog())
        mac = _FakeMac(sim)
        tracker.attach(mac, name="rxer")
        mac._frame_probe(FRAME_RX, object())
        mac._frame_probe(FRAME_RX, object())
        assert tracker.rx_frames == {"rxer": 2}
        assert len(tracker.spans) == 0

    def test_finish_flushes_open_spans_in_enqueue_order(self):
        sim = Simulator(seed=1)
        tracker = FrameSpanTracker(SpanLog())
        mac = _FakeMac(sim)
        tracker.attach(mac, name="sta")
        first, second = object(), object()
        sim._now = 1.0
        mac._frame_probe(FRAME_ENQUEUE, first)
        sim._now = 2.0
        mac._frame_probe(FRAME_ENQUEUE, second)
        tracker.finish(now=3.0)
        spans = list(tracker.spans)
        assert [s.start for s in spans] == [1.0, 2.0]
        assert all(s.outcome == "open" and s.end == 3.0 for s in spans)
        assert tracker.open_count() == 0

    def test_detach_restores_the_probe_slot(self):
        sim = Simulator(seed=1)
        tracker = FrameSpanTracker(SpanLog())
        mac = _FakeMac(sim)
        tracker.attach(mac)
        assert mac._frame_probe is not None
        tracker.detach_all()
        assert mac._frame_probe is None

    def test_real_dcf_run_produces_delivered_spans(self):
        sim = Simulator(seed=7, trace=TraceLog(enabled=False))
        medium = Medium(sim, FixedLoss(50.0))
        config = DcfConfig()
        factory = fixed_rate_factory("CCK-11")
        rx_radio = Radio("rx", medium, DOT11B, Position(0, 0, 0))
        receiver = DcfMac(sim, rx_radio, allocate_address(), config=config,
                          rate_factory=factory)
        tracker = FrameSpanTracker(SpanLog())
        tracker.attach(receiver, name="rx")
        senders = []
        for index in range(2):
            radio = Radio(f"tx{index}", medium, DOT11B,
                          Position(1.0 + index * 0.1, 0, 0))
            mac = DcfMac(sim, radio, allocate_address(), config=config,
                         rate_factory=factory)
            tracker.attach(mac, name=f"tx{index}")
            senders.append(mac)
        payload = bytes(200)
        for mac in senders:
            for _ in range(3):
                mac.send(receiver.address, payload)
        sim.run(until=0.5)
        tracker.finish(sim._now)
        delivered = tracker.spans.select(outcome="delivered")
        assert delivered, "uncontended senders must deliver frames"
        for span in delivered:
            assert span.end >= span.start
            assert span.attrs["attempts"] >= 1
            assert span.attrs["first_tx"] is not None
        # The receiver saw every delivered data frame.
        assert tracker.rx_frames.get("rx", 0) >= len(delivered)
