"""WEP shared-key authentication — and why open-system won.

The shared-key variant (source text §5.1: "demonstrating knowledge of
a shared secret") is a four-frame exchange:

1. station -> AP: request (algorithm=1, seq=1),
2. AP -> station: a 128-byte random challenge, in the clear (seq=2),
3. station -> AP: the challenge WEP-encrypted under the shared key
   (seq=3),
4. AP -> station: success/failure (seq=4).

The famous flaw: an eavesdropper who captures one exchange has both the
plaintext challenge and its ciphertext, so ``challenge XOR ciphertext``
hands them ``keystream(iv)`` for the full challenge length.  WEP lets
the *sender* pick the IV, so the attacker replays that IV with the
recovered keystream to pass any future challenge — authenticating
without ever learning the key.  :class:`KeystreamThief` implements the
attack; the tests authenticate with it.  (This is why real deployments
were told to prefer open-system authentication + encryption over
shared-key: the handshake itself leaks keystream.)
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.errors import AuthenticationError, SecurityError
from .wep import IV_LEN, WepCipher

CHALLENGE_LEN = 128


@dataclass(frozen=True)
class CapturedExchange:
    """What a sniffer keeps from one shared-key authentication."""

    challenge: bytes
    wep_body: bytes  # iv || key-id || ciphertext as sent on the air


class SharedKeyAuthenticator:
    """AP-side responder: issues challenges, verifies responses."""

    def __init__(self, cipher: WepCipher, rng: Optional[random.Random] = None):
        self.cipher = cipher
        self._rng = rng if rng is not None else random.Random(0x5EED)
        self._outstanding: Dict[bytes, bytes] = {}  # station key -> challenge
        self.successes = 0
        self.failures = 0

    def issue_challenge(self, station_id: bytes) -> bytes:
        challenge = bytes(self._rng.getrandbits(8)
                          for _ in range(CHALLENGE_LEN))
        self._outstanding[station_id] = challenge
        return challenge

    def verify_response(self, station_id: bytes, wep_body: bytes) -> bool:
        challenge = self._outstanding.pop(station_id, None)
        if challenge is None:
            self.failures += 1
            return False
        try:
            decrypted = self.cipher.decrypt(wep_body)
        except SecurityError:
            self.failures += 1
            return False
        if decrypted != challenge:
            self.failures += 1
            return False
        self.successes += 1
        return True


class SharedKeyClient:
    """Legitimate station side: encrypts the challenge under the key."""

    def __init__(self, cipher: WepCipher):
        self.cipher = cipher

    def answer(self, challenge: bytes) -> bytes:
        return self.cipher.encrypt(challenge)


class KeystreamThief:
    """The eavesdropper: one captured exchange = free authentication.

    ``observe`` recovers keystream from a sniffed challenge/response
    pair; ``answer`` uses it to pass a fresh challenge by replaying the
    same IV.  No key material is ever known to the thief.
    """

    def __init__(self) -> None:
        self._iv_header: Optional[bytes] = None
        self._keystream: Optional[bytes] = None

    @property
    def armed(self) -> bool:
        return self._keystream is not None

    def observe(self, exchange: CapturedExchange) -> None:
        header = exchange.wep_body[:IV_LEN + 1]  # iv + key-id byte
        ciphertext = exchange.wep_body[IV_LEN + 1:]
        # ciphertext = (challenge || icv) XOR keystream; the attacker
        # knows the challenge AND can compute its CRC-32 ICV, so the
        # whole keystream prefix falls out.
        from ..mac.fcs import crc32
        icv = crc32(exchange.challenge).to_bytes(4, "little")
        plaintext = exchange.challenge + icv
        if len(ciphertext) < len(plaintext):
            raise SecurityError("captured response shorter than expected")
        self._iv_header = header
        self._keystream = bytes(c ^ p for c, p
                                in zip(ciphertext, plaintext))

    def answer(self, challenge: bytes) -> bytes:
        """Forge a valid seq-3 response to any challenge."""
        if self._keystream is None or self._iv_header is None:
            raise AuthenticationError("no exchange captured yet")
        from ..mac.fcs import crc32
        icv = crc32(challenge).to_bytes(4, "little")
        plaintext = challenge + icv
        if len(plaintext) > len(self._keystream):
            raise AuthenticationError("challenge longer than the stolen "
                                      "keystream")
        forged = bytes(p ^ k for p, k in zip(plaintext, self._keystream))
        return self._iv_header + forged


def run_legitimate_exchange(authenticator: SharedKeyAuthenticator,
                            client: SharedKeyClient,
                            station_id: bytes = b"sta") -> Tuple[bool, CapturedExchange]:
    """Run one honest authentication, returning what a sniffer captures."""
    challenge = authenticator.issue_challenge(station_id)
    response = client.answer(challenge)
    ok = authenticator.verify_response(station_id, response)
    return ok, CapturedExchange(challenge=challenge, wep_body=response)
