"""run_bench's --telemetry flag: --check exclusion, the non-gated
record key, and the --profile sidecar."""

import pathlib
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

import run_bench  # noqa: E402


def _stub_scenario(scale, telemetry=False):
    result = {"work": 10, "work_unit": "frames", "sim_seconds": 1.0,
              "stats": {"delivered": 10}}
    if telemetry:
        result["telemetry_jsonl"] = '{"type":"header"}\n'
        result["telemetry_wall_jsonl"] = '{"type":"header"}\n'
        result["telemetry_summary"] = {"columns": [], "rows": []}
    return result


@pytest.fixture
def stubbed_macros(monkeypatch):
    monkeypatch.setitem(run_bench.MACROS, "stub_tele", _stub_scenario)
    return "stub_tele"


class TestCheckExclusion:
    def test_telemetry_with_check_is_an_argparse_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            run_bench.main(["--telemetry", "--check"])
        assert excinfo.value.code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_telemetry_alone_is_accepted(self, stubbed_macros, tmp_path):
        code = run_bench.main(["--only", stubbed_macros, "--repeat", "1",
                               "--telemetry", "--out-dir", str(tmp_path)])
        assert code == 0


class TestRecordKey:
    def test_telemetry_summary_rides_a_non_gated_key(self, stubbed_macros):
        status, record = run_bench.time_scenario_guarded(
            stubbed_macros, 1.0, repeats=1, telemetry=True)
        assert status == "ok"
        assert record["telemetry"] == {"columns": [], "rows": []}
        # The BENCH schema the gate reads is untouched.
        assert record["work"] == 10
        assert "telemetry_jsonl" not in record

    def test_without_flag_no_telemetry_key(self, stubbed_macros):
        status, record = run_bench.time_scenario_guarded(
            stubbed_macros, 1.0, repeats=1)
        assert status == "ok"
        assert "telemetry" not in record


class TestProfileSidecar:
    def test_profile_writes_full_profile_next_to_bench_json(
            self, stubbed_macros, tmp_path):
        code = run_bench.run_full([stubbed_macros], 1.0, 1, tmp_path,
                                  profile=True)
        assert code == 0
        sidecar = tmp_path / f"BENCH_{stubbed_macros}.profile.txt"
        assert sidecar.exists()
        text = sidecar.read_text()
        assert "cumulative" in text
        assert "_stub_scenario" in text or "function calls" in text

    def test_no_profile_no_sidecar(self, stubbed_macros, tmp_path):
        code = run_bench.run_full([stubbed_macros], 1.0, 1, tmp_path)
        assert code == 0
        assert not (tmp_path / f"BENCH_{stubbed_macros}.profile.txt").exists()
