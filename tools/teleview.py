#!/usr/bin/env python3
"""ASCII viewer for exported telemetry streams.

Renders a ``*.telemetry.jsonl`` file (from ``run_sharded``,
``capture_golden.py --telemetry``, or any macro run with
``telemetry=True``) as aligned tables and character timelines — no
plotting stack, no web UI, just a terminal:

    PYTHONPATH=src python tools/teleview.py /tmp/cap/dcf_saturation.telemetry.jsonl
    PYTHONPATH=src python tools/teleview.py merged.jsonl --grep 'mac/' --width 100

Sections, in order: the final-value metric table (``--top`` biggest
counters first), one timeline per sampled series (sim-time on the x
axis, min..max normalized to a 9-glyph ramp), span rollups, and the
``--top`` slowest closed frame spans.  Merged sharded streams are
understood: ``source`` marker lines scope each shard's series, and the
source tag becomes part of the rendered series name.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Any, Dict, List, Optional, Tuple

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.telemetry.export import parse_jsonl, render_table  # noqa: E402

#: Dark-to-bright ramp for timeline cells (pure ASCII, 9 levels).
RAMP = " .:-=+*#@"


def _metric_label(record: Dict[str, Any], source: str) -> str:
    labels = record.get("labels") or {}
    base = f"{record['subsystem']}/{record['name']}"
    if labels:
        inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
        base = f"{base}{{{inner}}}"
    if source:
        base = f"{source}:{base}"
    return base


def _as_float(value: Any) -> float:
    # Exported floats are repr strings; counters stay ints.
    return float(value)


def load_stream(text: str) -> Dict[str, Any]:
    """Split a (possibly merged) stream into metrics/series/spans.

    Returns ``{"metrics": [...], "series": {label: [(t, v), ...]},
    "series_order": [...], "spans": [...], "sources": int}``.
    """
    metrics: List[Tuple[str, Dict[str, Any]]] = []
    series: Dict[str, List[Tuple[float, float]]] = {}
    series_order: List[str] = []
    spans: List[Dict[str, Any]] = []
    source = ""
    sources = 0
    for record in parse_jsonl(text):
        kind = record.get("type")
        if kind == "source":
            sources += 1
            if record.get("source") == "shard":
                source = f"shard{record['shard']}"
            else:
                source = str(record.get("source", ""))
            continue
        if kind in ("header", "merged", "part"):
            continue
        if kind == "metric":
            metrics.append((source, record))
        elif kind == "sample":
            label = _metric_label(record, source)
            rows = series.get(label)
            if rows is None:
                rows = series[label] = []
                series_order.append(label)
            rows.append((_as_float(record["t"]), _as_float(record["v"])))
        elif kind == "span":
            spans.append(record)
    return {"metrics": metrics, "series": series,
            "series_order": series_order, "spans": spans,
            "sources": sources}


def metric_rows(metrics: List[Tuple[str, Dict[str, Any]]],
                top: int) -> List[List[Any]]:
    """Final-value rows, biggest magnitudes first, capped at ``top``."""
    rows: List[Tuple[float, List[Any]]] = []
    for source, record in metrics:
        label = _metric_label(record, source)
        if record["kind"] == "histogram":
            total = record["total"]
            mean = _as_float(record["sum"]) / total if total else 0.0
            rows.append((float(total),
                         [label, "histogram", f"n={total} mean={mean:.6g}"]))
        else:
            value = record["value"]
            rows.append((abs(_as_float(value)),
                         [label, record["kind"], value]))
    rows.sort(key=lambda item: -item[0])
    return [row for _sort_key, row in rows[:top]]


def render_timeline(rows: List[Tuple[float, float]], width: int) -> str:
    """One-line min..max-normalized character strip for a series."""
    if not rows:
        return ""
    cells: List[List[float]] = [[] for _ in range(width)]
    t_low, t_high = rows[0][0], rows[-1][0]
    t_span = t_high - t_low
    for time, value in rows:
        index = int((time - t_low) / t_span * (width - 1)) if t_span else 0
        cells[index].append(value)
    values = [value for _time, value in rows]
    v_low, v_high = min(values), max(values)
    v_span = v_high - v_low
    out = []
    for bucket in cells:
        if not bucket:
            out.append(" ")
            continue
        level = max(bucket)
        if v_span:
            rank = int((level - v_low) / v_span * (len(RAMP) - 1))
        else:
            rank = len(RAMP) - 1 if level else 0
        out.append(RAMP[rank])
    return "".join(out)


def span_sections(spans: List[Dict[str, Any]],
                  top: int) -> List[str]:
    rollup: Dict[Tuple[str, str], List[float]] = {}
    order: List[Tuple[str, str]] = []
    closed: List[Tuple[float, Dict[str, Any]]] = []
    for span in spans:
        bucket = (span["span"], span["outcome"])
        stats = rollup.get(bucket)
        if stats is None:
            stats = rollup[bucket] = [0, 0.0]
            order.append(bucket)
        stats[0] += 1
        if span["end"] is not None:
            duration = _as_float(span["end"]) - _as_float(span["start"])
            stats[1] += duration
            closed.append((duration, span))
    sections = []
    if order:
        rows = [[span_type, outcome, rollup[(span_type, outcome)][0],
                 f"{rollup[(span_type, outcome)][1]:.6g}"]
                for span_type, outcome in order]
        sections.append("spans\n" + render_table(
            ["span", "outcome", "count", "total_duration"], rows))
    if closed:
        closed.sort(key=lambda item: -item[0])
        rows = [[span["subject"], span["outcome"], f"{duration:.6g}",
                 span["attrs"].get("attempts", ""),
                 span["attrs"].get("retries", "")]
                for duration, span in closed[:top]]
        sections.append(f"slowest {min(top, len(closed))} closed spans\n"
                        + render_table(
                            ["subject", "outcome", "duration",
                             "attempts", "retries"], rows))
    return sections


def render_stream(text: str, width: int = 72, top: int = 15,
                  grep: Optional[str] = None) -> str:
    data = load_stream(text)
    sections: List[str] = []

    metrics = data["metrics"]
    if grep:
        metrics = [(source, record) for source, record in metrics
                   if grep in _metric_label(record, source)]
    if metrics:
        sections.append(f"metrics (top {top} by magnitude)\n" + render_table(
            ["metric", "kind", "value"], metric_rows(metrics, top)))

    labels = data["series_order"]
    if grep:
        labels = [label for label in labels if grep in label]
    lines = []
    for label in labels:
        rows = data["series"][label]
        values = [value for _time, value in rows]
        strip = render_timeline(rows, width)
        lines.append(f"{label}  [{min(values):.6g} .. {max(values):.6g}] "
                     f"n={len(rows)}")
        lines.append(f"  |{strip}|")
    if lines:
        header = f"timelines ({len(labels)} series, width {width})"
        if data["sources"]:
            header += f", {data['sources']} merged sources"
        sections.append(header + "\n" + "\n".join(lines))

    if not grep:
        sections.extend(span_sections(data["spans"], top))

    if not sections:
        return "no matching telemetry records\n"
    return "\n\n".join(sections) + "\n"


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("path", type=pathlib.Path,
                        help="telemetry JSONL file (sim or wall stream; "
                             "merged sharded streams understood)")
    parser.add_argument("--width", type=int, default=72,
                        help="timeline width in characters (default 72)")
    parser.add_argument("--top", type=int, default=15,
                        help="rows in the metric / slowest-span tables "
                             "(default 15)")
    parser.add_argument("--grep", metavar="SUBSTR",
                        help="only metrics/series whose rendered name "
                             "contains SUBSTR (spans are elided)")
    args = parser.parse_args(argv)
    if args.width < 8:
        parser.error(f"--width must be >= 8, got {args.width}")
    if args.top < 1:
        parser.error(f"--top must be >= 1, got {args.top}")
    sys.stdout.write(render_stream(args.path.read_text(), width=args.width,
                                   top=args.top, grep=args.grep))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
