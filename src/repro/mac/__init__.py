"""IEEE 802.11 MAC: frames, DCF, fragmentation, dedup, rate adaptation."""

from .addresses import BROADCAST, MacAddress, allocate_address, reset_allocator
from .backoff import BackoffWindow
from .dcf import DcfConfig, DcfMac, MacListener
from .dedup import DuplicateCache
from .fcs import crc32, fcs_bytes, verify_fcs
from .fragmentation import Fragment, Reassembler, fragment_payload
from .frames import (
    ACK_SIZE_BYTES,
    CTS_SIZE_BYTES,
    ControlSubtype,
    DataSubtype,
    Dot11Frame,
    FrameControl,
    FrameType,
    MAX_FRAGMENTS,
    ManagementSubtype,
    RTS_SIZE_BYTES,
    SEQUENCE_MODULO,
    SequenceControl,
    make_ack,
    make_cts,
    make_data,
    make_management,
    make_null,
    make_ps_poll,
    make_rts,
)
from .nav import Nav
from .queueing import DropTailQueue, Msdu
from .rate_adapt import (
    Aarf,
    Arf,
    FixedRate,
    IdealSnr,
    RateController,
    fixed_rate_factory,
)

__all__ = [
    "ACK_SIZE_BYTES",
    "Aarf",
    "Arf",
    "BROADCAST",
    "BackoffWindow",
    "CTS_SIZE_BYTES",
    "ControlSubtype",
    "DataSubtype",
    "DcfConfig",
    "DcfMac",
    "Dot11Frame",
    "DropTailQueue",
    "DuplicateCache",
    "FixedRate",
    "Fragment",
    "FrameControl",
    "FrameType",
    "IdealSnr",
    "MAX_FRAGMENTS",
    "MacAddress",
    "MacListener",
    "ManagementSubtype",
    "Msdu",
    "Nav",
    "RTS_SIZE_BYTES",
    "RateController",
    "Reassembler",
    "SEQUENCE_MODULO",
    "SequenceControl",
    "allocate_address",
    "crc32",
    "fcs_bytes",
    "fixed_rate_factory",
    "fragment_payload",
    "make_ack",
    "make_cts",
    "make_data",
    "make_management",
    "make_null",
    "make_ps_poll",
    "make_rts",
    "reset_allocator",
    "verify_fcs",
]
