"""Tests for PSK derivation, the 4-way handshake, and WPS."""

import pytest

from repro.core.errors import AuthenticationError, SecurityError
from repro.security.handshake import (
    FourWayHandshake,
    WpsRegistrar,
    derive_psk,
    derive_ptk,
    make_wps_pin,
    prf,
    wps_checksum_digit,
    wps_pin_attack,
)

AA = b"\x02\x00\x00\x00\x00\x01"
SPA = b"\x02\x00\x00\x00\x00\x02"


class TestPskDerivation:
    def test_known_vector(self):
        """The canonical WPA-PSK test vector (passphrase 'password',
        SSID 'IEEE')."""
        psk = derive_psk("password", "IEEE")
        assert psk.hex() == (
            "f42c6fc52df0ebef9ebb4b90b38a5f902e83fe1b135a70e23aed762e9710a12e")

    def test_deterministic(self):
        assert derive_psk("correct horse", "ssid") == \
            derive_psk("correct horse", "ssid")

    def test_ssid_separates_keys(self):
        assert derive_psk("same pass", "net-a") != \
            derive_psk("same pass", "net-b")

    def test_passphrase_length_enforced(self):
        with pytest.raises(SecurityError):
            derive_psk("short", "ssid")
        with pytest.raises(SecurityError):
            derive_psk("x" * 64, "ssid")


class TestPtkDerivation:
    PMK = derive_psk("a fine passphrase", "the-network")

    def test_symmetric_in_address_order(self):
        anonce, snonce = bytes(32), bytes(range(32))
        a = derive_ptk(self.PMK, AA, SPA, anonce, snonce)
        b = derive_ptk(self.PMK, SPA, AA, anonce, snonce)
        # min/max ordering makes the PTK independent of argument order.
        assert a == b

    def test_nonces_change_the_ptk(self):
        n1, n2 = bytes(32), bytes(range(32))
        assert derive_ptk(self.PMK, AA, SPA, n1, n1) != \
            derive_ptk(self.PMK, AA, SPA, n1, n2)

    def test_key_roles_are_disjoint_slices(self):
        keys = derive_ptk(self.PMK, AA, SPA, bytes(32), bytes(range(32)))
        assert len(keys.kck) == 16
        assert len(keys.kek) == 16
        assert len(keys.tk) == 16
        assert len(keys.mic_tx) == len(keys.mic_rx) == 8
        assert keys.kck != keys.kek != keys.tk

    def test_prf_length_and_determinism(self):
        out = prf(b"key", "label", b"data", 48)
        assert len(out) == 48
        assert out == prf(b"key", "label", b"data", 48)
        assert out[:16] == prf(b"key", "label", b"data", 16)


class TestFourWayHandshake:
    def test_matching_passphrases_agree_on_keys(self):
        pmk = derive_psk("shared secret 1", "net")
        handshake = FourWayHandshake(AA, SPA, pmk, pmk)
        result = handshake.run()
        assert result.messages_exchanged == 4
        assert len(result.keys.tk) == 16
        assert handshake.transcript == [
            "M1: ANonce", "M2: SNonce + MIC", "M3: install + MIC",
            "M4: confirm"]

    def test_wrong_passphrase_detected_at_message_2(self):
        good = derive_psk("the real passphrase", "net")
        bad = derive_psk("a guessed passphrase", "net")
        with pytest.raises(AuthenticationError, match="message 2"):
            FourWayHandshake(AA, SPA, good, bad).run()

    def test_fresh_nonces_give_fresh_keys(self):
        import random
        pmk = derive_psk("shared secret 2", "net")
        first = FourWayHandshake(AA, SPA, pmk, pmk,
                                 rng=random.Random(1)).run()
        second = FourWayHandshake(AA, SPA, pmk, pmk,
                                  rng=random.Random(2)).run()
        assert first.keys.tk != second.keys.tk


class TestWps:
    def test_checksum_digit(self):
        # A PIN must satisfy the Luhn-style rule; verify self-consistency.
        for seven in (0, 1234567, 9999999, 5550123):
            pin = make_wps_pin(seven)
            assert pin // 10 == seven
            assert pin % 10 == wps_checksum_digit(seven)

    def test_registrar_rejects_invalid_pin(self):
        with pytest.raises(SecurityError):
            WpsRegistrar(12345678 if wps_checksum_digit(1234567) != 8
                         else 12345670)

    def test_attack_finds_the_pin(self):
        pin = make_wps_pin(7_654_321)
        registrar = WpsRegistrar(pin)
        found, attempts = wps_pin_attack(registrar)
        assert found == pin
        assert attempts <= 11_000

    def test_attack_bound_is_11000_worst_case(self):
        worst = make_wps_pin(9_999_999)
        _found, attempts = wps_pin_attack(WpsRegistrar(worst))
        assert attempts <= 11_000

    def test_split_pin_is_much_cheaper_than_monolithic(self):
        """10^4 + 10^3 vs 10^7: the design flaw, quantified."""
        _found, attempts = wps_pin_attack(WpsRegistrar(make_wps_pin(9_999_999)))
        assert attempts * 900 < 10_000_000
