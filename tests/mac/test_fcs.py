"""Tests for the from-scratch CRC-32."""

import zlib

import pytest
from hypothesis import given, strategies as st

from repro.mac.fcs import crc32, fcs_bytes, verify_fcs


class TestCrc32:
    @given(st.binary(max_size=500))
    def test_matches_zlib(self, data):
        assert crc32(data) == zlib.crc32(data)

    def test_known_vector(self):
        # The classic "123456789" check value.
        assert crc32(b"123456789") == 0xCBF43926

    def test_empty(self):
        assert crc32(b"") == 0

    @given(st.binary(min_size=1, max_size=200),
           st.binary(min_size=1, max_size=200))
    def test_linearity(self, a, b):
        """crc(a^b) == crc(a) ^ crc(b) ^ crc(0...) — the property the WEP
        bit-flip attack exploits."""
        length = min(len(a), len(b))
        a, b = a[:length], b[:length]
        xored = bytes(x ^ y for x, y in zip(a, b))
        assert crc32(xored) == crc32(a) ^ crc32(b) ^ crc32(bytes(length))


class TestFcs:
    @given(st.binary(max_size=300))
    def test_round_trip(self, data):
        assert verify_fcs(data, fcs_bytes(data))

    def test_corruption_detected(self):
        data = b"a perfectly good frame"
        fcs = fcs_bytes(data)
        assert not verify_fcs(data + b"!", fcs)
        assert not verify_fcs(data, bytes(4))

    def test_wrong_fcs_length_rejected(self):
        assert not verify_fcs(b"data", b"\x00" * 3)
