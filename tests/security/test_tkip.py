"""Tests for TKIP."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.errors import IntegrityError, ReplayError, SecurityError
from repro.security.tkip import (
    TKIP_OVERHEAD,
    TkipCipher,
    phase1_mix,
    phase2_mix,
)

TK = bytes(range(16))
MIC_KEY = bytes(range(8))
TA = b"\x02\x00\x00\x00\x00\x01"


def pair():
    tx = TkipCipher(TK, MIC_KEY, TA)
    rx = TkipCipher(TK, MIC_KEY, TA)
    return tx, rx


class TestRoundTrip:
    @given(st.binary(min_size=1, max_size=300))
    @settings(max_examples=30)
    def test_encrypt_decrypt(self, plaintext):
        tx, rx = pair()
        assert rx.decrypt(tx.encrypt(plaintext)) == plaintext

    def test_overhead(self):
        tx, _ = pair()
        assert len(tx.encrypt(b"x" * 40)) == 40 + TKIP_OVERHEAD

    def test_sequence_of_frames(self):
        tx, rx = pair()
        for index in range(20):
            payload = bytes([index]) * 10
            assert rx.decrypt(tx.encrypt(payload)) == payload


class TestPerPacketKeys:
    def test_consecutive_frames_use_different_keys(self):
        tx, _ = pair()
        first = tx.encrypt(b"same plaintext")
        second = tx.encrypt(b"same plaintext")
        # Different TSC -> different per-packet key -> different bytes.
        assert first[6:] != second[6:]

    def test_phase1_cached_across_low_tsc(self):
        p1_a = phase1_mix(TK, TA, tsc_high=0)
        p1_b = phase1_mix(TK, TA, tsc_high=0)
        assert p1_a == p1_b
        assert phase1_mix(TK, TA, tsc_high=1) != p1_a

    def test_phase2_depends_on_low_tsc(self):
        p1 = phase1_mix(TK, TA, 0)
        assert phase2_mix(p1, TK, 1) != phase2_mix(p1, TK, 2)

    def test_weak_iv_defence_bit_pattern(self):
        """Byte 1 of the RC4 key is forced to (b0 | 0x20) & 0x7f, which
        excludes the 0xFF second byte every FMS-weak IV requires."""
        p1 = phase1_mix(TK, TA, 0)
        for tsc_low in (0, 1, 0x1234, 0xFFFF):
            key = phase2_mix(p1, TK, tsc_low)
            assert key[1] != 0xFF
            assert key[1] == (key[0] | 0x20) & 0x7F

    def test_transmitter_address_binds_the_key(self):
        other_ta = b"\x02\x00\x00\x00\x00\x02"
        assert phase1_mix(TK, TA, 0) != phase1_mix(TK, other_ta, 0)


class TestReplayProtection:
    def test_replayed_frame_rejected(self):
        tx, rx = pair()
        frame = tx.encrypt(b"first")
        rx.decrypt(frame)
        with pytest.raises(ReplayError):
            rx.decrypt(frame)

    def test_reordered_frame_rejected(self):
        tx, rx = pair()
        first = tx.encrypt(b"one")
        second = tx.encrypt(b"two")
        rx.decrypt(second)
        with pytest.raises(ReplayError):
            rx.decrypt(first)


class TestIntegrity:
    def test_payload_tamper_detected(self):
        tx, rx = pair()
        frame = bytearray(tx.encrypt(b"protected payload"))
        frame[10] ^= 0x01
        with pytest.raises(IntegrityError):
            rx.decrypt(bytes(frame))

    def test_mic_failures_trigger_countermeasures(self):
        tx, rx = pair()
        # Craft two frames whose ICV passes but MIC fails: encrypt with a
        # cipher holding a different MIC key.
        evil_tx = TkipCipher(TK, bytes(8), TA)
        for now, _ in zip((0.0, 1.0), range(2)):
            frame = evil_tx.encrypt(b"forgery attempt")
            with pytest.raises(IntegrityError, match="Michael"):
                rx.decrypt(frame, now=now)
        assert not rx.countermeasures.usable(2.0)
        # While disabled, even good frames are refused.
        with pytest.raises(SecurityError, match="countermeasures"):
            rx.decrypt(tx.encrypt(b"legit"), now=3.0)

    def test_wrong_temporal_key_fails_icv(self):
        tx = TkipCipher(TK, MIC_KEY, TA)
        rx = TkipCipher(bytes(16), MIC_KEY, TA)
        with pytest.raises(IntegrityError):
            rx.decrypt(tx.encrypt(b"data"))


class TestValidation:
    def test_key_lengths_enforced(self):
        with pytest.raises(SecurityError):
            TkipCipher(b"short", MIC_KEY, TA)
        with pytest.raises(SecurityError):
            TkipCipher(TK, b"short", TA)

    def test_short_body_rejected(self):
        _, rx = pair()
        with pytest.raises(SecurityError):
            rx.decrypt(b"tiny")
