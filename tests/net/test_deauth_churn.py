"""Deauth-flood churn: AP-driven kick/re-associate cycles under load.

Extends the PR-3 `associate_all` churn fix to the adversarial regime
this PR opens: repeated :meth:`AccessPoint.deauthenticate` against
stations that are simultaneously saturating the uplink must leave the
AP's association table, the stations' state machines and the
`associate_all` completion logic consistent — no stuck station, no
premature timeout, no leaked association records.

One asynchrony matters throughout: ``deauthenticate`` drops the AP-side
record immediately but the station only learns when the DEAUTH frame
*arrives*, so station-side state lags by one frame exchange.  The
helpers below wait on the disassociation hook rather than assuming the
two views agree at the instant of the kick.
"""

import pytest

from repro.core import Position, Simulator
from repro.core.engine import PeriodicTask
from repro.net.ap import AccessPoint
from repro.net.station import Station, StationState
from repro.phy.channel import Medium
from repro.phy.propagation import LogDistance
from repro.phy.standards import DOT11G
from repro.scenarios import associate_all


def build_bss(sim, station_count=3):
    medium = Medium(sim, LogDistance(2.4e9, exponent=3.0))
    ap = AccessPoint(sim, medium, DOT11G, Position(0, 0, 0), name="ap",
                     ssid="churnnet")
    ap.start_beaconing()
    stations = []
    for index in range(station_count):
        station = Station(sim, medium, DOT11G,
                          Position(8.0 + index, 0, 0), name=f"sta{index}")
        station.associate("churnnet")
        stations.append(station)
    associate_all(sim, stations)
    return medium, ap, stations


def saturate(stations, ap, payload=bytes(600), depth=4):
    """Keep every station's queue non-empty via tx-complete refills."""
    for station in stations:
        def refill(msdu, ok, s=station):
            if s.associated:
                s.send(ap.address, payload)
        station.on_tx_complete(refill)
        for _ in range(depth):
            station.send(ap.address, payload)


def kick_and_wait(sim, ap, station, timeout=2.0):
    """Deauthenticate and run until the station has processed the kick.

    The DEAUTH is a real frame: it contends, flies, and only then tears
    the station's link state down.
    """
    ap.deauthenticate(station.address)
    unsubscribe = station.on_disassociated(sim.stop)
    try:
        sim.run(until=sim.now + timeout)
    finally:
        unsubscribe()
    assert not station.associated, "DEAUTH never reached the station"


class TestDeauthChurnUnderSaturation:
    def test_repeated_kicks_recover_every_time(self, sim):
        medium, ap, stations = build_bss(sim)
        saturate(stations, ap)
        kicked = []

        def kick_round_robin():
            target = stations[len(kicked) % len(stations)]
            # Kick only when both views agree the station is on — a
            # target mid-recovery would make the kick a no-op AP-side.
            if target.associated and ap.is_associated(target.address):
                ap.deauthenticate(target.address)
                kicked.append(target.name)

        churn = PeriodicTask(sim, 0.25, kick_round_robin)
        sim.run(until=sim.now + 4.0)
        churn.cancel()
        # Let any in-flight DEAUTH land, then wait out the recovery:
        # associate_all must ride through the tail of the churn.
        sim.run(until=sim.now + 1.0)
        associate_all(sim, stations, timeout=10.0)
        assert len(kicked) >= 10
        for station in stations:
            assert station.state == StationState.ASSOCIATED
            assert station.sta_counters.get("link_lost_ap_kicked_us") >= 2
            assert station.sta_counters.get("associations") >= 3
            assert ap.is_associated(station.address)
        # The AP's table holds exactly the live stations — churn must
        # not leak stale records (each kick removed exactly one).
        assert ap.station_count == len(stations)
        assert ap.ap_counters.get("removed_deauthenticated") == len(kicked)

    def test_associate_all_survives_mid_wait_kick(self, sim):
        medium, ap, stations = build_bss(sim)
        saturate(stations, ap)
        # Knock one station down so associate_all genuinely waits...
        kick_and_wait(sim, ap, stations[0])
        # ...and kick a *currently associated* one mid-wait: the PR-3
        # completion semantics judge current state, so the wait stays
        # alive until both are back instead of raising with timeout
        # budget left.
        sim.schedule(0.1, lambda: ap.deauthenticate(stations[1].address))
        associate_all(sim, stations, timeout=8.0)
        assert all(station.associated for station in stations)
        for index in (0, 1):
            assert stations[index].sta_counters.get(
                "link_lost_ap_kicked_us") == 1
            assert stations[index].sta_counters.get("associations") == 2

    def test_sequence_state_survives_churn(self, sim):
        # Data keeps flowing after each re-association: the dedup /
        # sequence machinery must not eat post-churn traffic, and the
        # AP must never see post-recovery data as class-3 frames.
        medium, ap, stations = build_bss(sim, station_count=1)
        station = stations[0]
        received = []
        ap.on_receive(lambda source, payload, meta: received.append(payload))
        for round_index in range(3):
            station.send(ap.address, bytes([round_index]) * 32)
            sim.run(until=sim.now + 0.3)
            kick_and_wait(sim, ap, station)
            associate_all(sim, [station], timeout=5.0)
            assert ap.is_associated(station.address)
        station.send(ap.address, b"final" * 8)
        sim.run(until=sim.now + 0.3)
        assert len(received) == 4
        assert ap.ap_counters.get("unassociated_data", ) == 0
        assert station.sta_counters.get("associations") == 4
