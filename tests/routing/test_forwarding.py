"""The forwarding engine: multi-hop delivery, TTL, dedup, route-miss
queueing, and seeded per-hop determinism — all over StaticRouting so
routing dynamics cannot blur what is being tested."""

import pytest

from repro.core import Simulator
from repro.core.errors import ConfigurationError
from repro.mac.addresses import reset_allocator
from repro.routing import MeshConfig, MeshHeader, StaticRouting
from repro import scenarios
from repro.traffic.generators import CbrSource
from repro.traffic.sink import TrafficSink


def build_chain(sim, count=4, mesh_config=None, spacing=30.0, range_m=40.0):
    mesh = scenarios.build_mesh_network(
        sim, scenarios.chain_topology(count, spacing), StaticRouting,
        range_m=range_m, mesh_config=mesh_config)
    scenarios.install_chain_routes(mesh.nodes)
    return mesh


class TestStaticMultiHop:
    def test_end_to_end_over_three_plus_hops(self, sim):
        mesh = build_chain(sim, count=8)
        sink = TrafficSink(sim)
        mesh.nodes[7].on_receive(sink)
        source = CbrSource(sim, mesh.nodes[0].sender(mesh.nodes[7].address),
                           packet_bytes=160, interval=0.02)
        sim.run(until=2.0)
        assert source.generated >= 90
        assert sink.total_received == source.generated
        # Every packet crossed exactly the 7 chain hops.
        flow = sink.flow(source.flow_id)
        assert flow.hops.minimum == flow.hops.maximum == 7
        # Interior relays forwarded everything they heard.
        for relay in mesh.nodes[1:7]:
            assert relay.counters.get("forwarded") == source.generated
            assert relay.counters.get("delivered") == 0

    def test_intermediate_nodes_see_mesh_payloads_not_apps(self, sim):
        mesh = build_chain(sim, count=3)
        deliveries = []
        mesh.nodes[1].on_receive(lambda s, p, m: deliveries.append(p))
        mesh.nodes[0].send(mesh.nodes[2].address, b"through the middle")
        sim.run(until=0.5)
        assert deliveries == []  # relay forwards, never delivers up
        assert mesh.nodes[1].counters.get("forwarded") == 1

    def test_loopback_delivery_skips_the_radio(self, sim):
        mesh = build_chain(sim, count=2)
        inbox = []
        mesh.nodes[0].on_receive(lambda s, p, m: inbox.append((s, p, m)))
        assert mesh.nodes[0].send(mesh.nodes[0].address, b"self") is True
        source, payload, meta = inbox[0]
        assert payload == b"self" and meta["loopback"]
        assert mesh.nodes[0].station.mac.counters.get("tx_data") == 0


class TestTtl:
    def test_ttl_expiry_drops_a_looped_packet(self, sim):
        """A two-node routing loop must shed the packet at the hop
        limit, not circulate it forever (dedup off to isolate TTL)."""
        config = MeshConfig(ttl=6, dedup=False)
        mesh = build_chain(sim, count=2, mesh_config=config)
        a, b = mesh.nodes
        phantom = "02:00:00:00:00:77"
        from repro.mac.addresses import MacAddress
        target = MacAddress.from_string(phantom)
        a.protocol.set_route(target, b.address)
        b.protocol.set_route(target, a.address)   # the loop
        a.send(target, b"doomed")
        sim.run(until=1.0)
        drops = a.counters.get("ttl_drops") + b.counters.get("ttl_drops")
        assert drops == 1
        # The packet bounced ttl-1 times in total, then died.
        bounces = a.counters.get("forwarded") + b.counters.get("forwarded")
        assert bounces == config.ttl - 1

    def test_delivery_consumes_no_ttl_budget_on_short_paths(self, sim):
        config = MeshConfig(ttl=3)
        mesh = build_chain(sim, count=3, mesh_config=config)
        inbox = []
        mesh.nodes[2].on_receive(lambda s, p, m: inbox.append(m["mesh_hops"]))
        mesh.nodes[0].send(mesh.nodes[2].address, b"fits")
        sim.run(until=0.5)
        assert inbox == [2]


class TestDuplicateSuppression:
    def test_rebroadcast_duplicate_is_dropped_once_seen(self, sim):
        """The same (origin, sequence) arriving again — e.g. from a
        different transmitter after a rebroadcast — must not be
        forwarded or delivered twice.  MAC-level dedup cannot catch
        this: each transmitter uses its own sequence space."""
        mesh = build_chain(sim, count=3)
        a, b, c = mesh.nodes
        inbox = []
        c.on_receive(lambda s, p, m: inbox.append(p))
        a.send(c.address, b"once only")
        sim.run(until=0.5)
        assert inbox == [b"once only"]
        # Replay the identical mesh packet into the destination as if a
        # second relay had rebroadcast it.
        header = MeshHeader(a.address, c.address, sequence=0,
                            ttl=mesh.nodes[0].config.ttl, hops=2)
        c._mac_receive(b.address, header.encode() + b"once only",
                       {"transmitter": b.address})
        assert inbox == [b"once only"]
        assert c.counters.get("duplicate_drops") == 1

    def test_distinct_sequences_are_not_duplicates(self, sim):
        mesh = build_chain(sim, count=2)
        a, b = mesh.nodes
        inbox = []
        b.on_receive(lambda s, p, m: inbox.append(p))
        a.send(b.address, b"first")
        a.send(b.address, b"second")
        sim.run(until=0.5)
        assert inbox == [b"first", b"second"]
        assert b.counters.get("duplicate_drops") == 0


class TestRouteMissQueue:
    def test_packets_wait_for_a_route_then_flush(self, sim):
        mesh = scenarios.build_mesh_network(
            sim, scenarios.chain_topology(2, 30.0), StaticRouting,
            range_m=40.0)
        a, b = mesh.nodes
        inbox = []
        b.on_receive(lambda s, p, m: inbox.append(p))
        assert a.send(b.address, b"early") is True      # no route yet
        sim.run(until=0.2)
        assert inbox == [] and a.pending_count() == 1
        a.protocol.set_route(b.address, b.address)      # flushes
        sim.run(until=0.5)
        assert inbox == [b"early"]
        assert a.counters.get("route_misses") == 1
        assert a.counters.get("pending_flushed") == 1

    def test_pending_queue_is_bounded(self, sim):
        config = MeshConfig(pending_limit=4)
        mesh = scenarios.build_mesh_network(
            sim, scenarios.chain_topology(2, 30.0), StaticRouting,
            range_m=40.0, mesh_config=config)
        a, b = mesh.nodes
        results = [a.send(b.address, bytes([i])) for i in range(6)]
        assert results == [True] * 4 + [False] * 2
        assert a.counters.get("pending_drops") == 2


class TestLinkFailureRequeue:
    def test_rerouted_packet_survives_revisiting_a_relay(self, sim):
        """A packet requeued after a MAC retry-limit failure must get
        through even when the repaired route revisits relays that
        already forwarded it — FLAG_REROUTED exempts the retransmission
        from duplicate suppression."""
        from repro.mac.addresses import MacAddress
        # A unit square: a(0,0) b(30,0) c(30,30) d(0,30); range covers
        # the sides but not the diagonal.
        from repro.core.topology import Position
        positions = [Position(0, 0, 0), Position(30, 0, 0),
                     Position(30, 30, 0), Position(0, 30, 0)]
        mesh = scenarios.build_mesh_network(sim, positions, StaticRouting,
                                            range_m=40.0)
        a, b, c, d = mesh.nodes
        dead = MacAddress.from_string("02:00:00:00:00:99")
        a.protocol.set_route(d.address, b.address)
        b.protocol.set_route(d.address, c.address)
        c.protocol.set_route(d.address, dead)      # fails at the retry limit
        inbox = []
        d.on_receive(lambda s, p, m: inbox.append((s, p)))
        a.send(d.address, b"survivor")
        sim.run(until=0.1)
        assert inbox == [] and c.counters.get("link_failures") >= 1
        assert c.counters.get("requeued_after_failure") >= 1
        # Repair: the new path c -> b -> a -> d revisits b (which
        # forwarded the packet) and a (its origin).
        b.protocol.set_route(d.address, a.address)
        a.protocol.set_route(d.address, d.address)
        c.protocol.set_route(d.address, b.address)
        sim.run(until=2.0)
        assert inbox == [(a.address, b"survivor")]
        total_dup_drops = sum(node.counters.get("duplicate_drops")
                              for node in mesh.nodes)
        assert total_dup_drops == 0

    def test_failed_attempts_spend_ttl_until_the_packet_is_shed(self, sim):
        """With a static route to a dead next hop, the packet is
        retransmitted (each attempt costs one TTL) and finally shed —
        never stranded in the pending queue, never counted as a route
        miss."""
        from repro.mac.addresses import MacAddress
        mesh = scenarios.build_mesh_network(
            sim, scenarios.chain_topology(2, 30.0), StaticRouting,
            range_m=40.0, mesh_config=MeshConfig(ttl=3))
        a, b = mesh.nodes
        dead = MacAddress.from_string("02:00:00:00:00:99")
        a.protocol.set_route(b.address, dead)
        a.send(b.address, b"will fail")
        sim.run(until=2.0)
        # ttl=3: initial send + two rerouted retransmissions, then shed.
        assert a.counters.get("link_failures") == 3
        assert a.counters.get("requeued_after_failure") == 2
        assert a.counters.get("ttl_drops") == 1
        assert a.counters.get("route_misses") == 0
        assert a.pending_count() == 0

    def test_destination_still_deduplicates_rerouted_packets(self, sim):
        """An ACK-loss requeue can produce a second copy; relays must
        let it through (route may revisit them) but the destination
        must not deliver twice."""
        from repro.routing.packet import FLAG_REROUTED
        mesh = build_chain(sim, count=3)
        a, b, c = mesh.nodes
        inbox = []
        c.on_receive(lambda s, p, m: inbox.append(p))
        header = MeshHeader(a.address, c.address, sequence=9,
                            ttl=8, hops=2, flags=FLAG_REROUTED)
        packet = header.encode() + b"copy"
        c._mac_receive(b.address, packet, {"transmitter": b.address})
        c._mac_receive(b.address, packet, {"transmitter": b.address})
        assert inbox == [b"copy"]
        assert c.counters.get("duplicate_drops") == 1
        # A relay seeing the same rerouted packet twice forwards both.
        relay_header = MeshHeader(a.address, c.address, sequence=10,
                                  ttl=8, hops=1, flags=FLAG_REROUTED)
        relay_packet = relay_header.encode() + b"transit"
        b._mac_receive(a.address, relay_packet, {"transmitter": a.address})
        b._mac_receive(a.address, relay_packet, {"transmitter": a.address})
        assert b.counters.get("duplicate_drops") == 0
        assert b.counters.get("forwarded") == 2


class TestSeededDeterminism:
    @staticmethod
    def _run_once(seed):
        reset_allocator()
        sim = Simulator(seed=seed)
        mesh = scenarios.build_mesh_network(
            sim, scenarios.chain_topology(8, 30.0), StaticRouting,
            range_m=40.0, mesh_config=MeshConfig(record_path=True))
        scenarios.install_chain_routes(mesh.nodes)
        sink = TrafficSink(sim)
        mesh.nodes[7].on_receive(sink)
        CbrSource(sim, mesh.nodes[0].sender(mesh.nodes[7].address),
                  packet_bytes=160, interval=0.02)
        sim.run(until=1.0)
        trace = []
        for node in mesh.nodes:
            trace.extend(node.hop_log)
        trace.sort()
        return trace, sink.total_received

    def test_same_seed_identical_per_hop_trace(self):
        first_trace, first_rx = self._run_once(seed=77)
        second_trace, second_rx = self._run_once(seed=77)
        assert first_rx == second_rx > 0
        # Bit-identical per-hop history: same packets, same relays,
        # same float timestamps, same order.
        assert first_trace == second_trace

    def test_different_seed_changes_the_trace(self):
        first_trace, _ = self._run_once(seed=77)
        other_trace, _ = self._run_once(seed=78)
        assert first_trace != other_trace


class TestGuards:
    def test_mesh_node_requires_adhoc_station(self, sim):
        from repro.net.station import Station
        from repro.phy.channel import Medium
        from repro.phy.propagation import RangePropagation
        from repro.phy.standards import DOT11B
        from repro.core.topology import Position
        from repro.routing import MeshNode
        medium = Medium(sim, RangePropagation(40.0))
        infra = Station(sim, medium, DOT11B, Position(0, 0, 0), name="infra")
        with pytest.raises(ConfigurationError, match="ad-hoc"):
            MeshNode(infra, StaticRouting())

    def test_install_chain_routes_requires_static(self, sim):
        from repro.routing import DsdvRouting
        mesh = scenarios.build_mesh_network(
            sim, scenarios.chain_topology(2, 30.0), DsdvRouting,
            range_m=40.0)
        with pytest.raises(ConfigurationError, match="StaticRouting"):
            scenarios.install_chain_routes(mesh.nodes)
