"""Emitter profiles: jammers and coexistence interferers."""

import pytest

from repro.core import Position, Simulator
from repro.core.errors import ConfigurationError
from repro.adversary.emitters import (
    BT_SLOT_TIME,
    BluetoothHopper,
    ConstantJammer,
    MicrowaveOven,
    PeriodicJammer,
    ReactiveJammer,
    SweepingJammer,
)
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B
from repro.phy.transceiver import PhyListener, Radio


class Edges(PhyListener):
    def __init__(self):
        self.busy = 0
        self.idle = 0

    def phy_cca_busy(self):
        self.busy += 1

    def phy_cca_idle(self):
        self.idle += 1


def build(sim, channel_id=1):
    medium = Medium(sim, FixedLoss(50.0))
    victim = Radio("victim", medium, DOT11B, Position(0, 0, 0),
                   channel_id=channel_id)
    victim.listener = Edges()
    return medium, victim


class TestConstantJammer:
    def test_wall_to_wall_busy(self, sim):
        medium, victim = build(sim)
        jammer = ConstantJammer(sim, medium, Position(1, 0, 0),
                                burst_duration=5e-3)
        jammer.start()
        sim.run(until=0.1)
        # Chained bursts leave no idle gap: one busy edge, no idle edge.
        assert victim.listener.busy == 1 and victim.listener.idle == 0
        assert victim.cca_busy()
        assert jammer.counters.get("bursts") in (20, 21)  # ~0.1 / 5e-3
        assert jammer.duty_cycle() == pytest.approx(1.0, abs=0.06)

    def test_stop_releases_the_medium(self, sim):
        medium, victim = build(sim)
        jammer = ConstantJammer(sim, medium, Position(1, 0, 0),
                                burst_duration=5e-3)
        jammer.start()
        sim.schedule_at(0.05, jammer.stop)
        sim.run(until=0.1)
        assert not victim.cca_busy()
        assert victim.listener.idle == 1


class TestPeriodicJammer:
    def test_duty_cycle(self, sim):
        medium, victim = build(sim)
        jammer = PeriodicJammer(sim, medium, Position(1, 0, 0),
                                on_time=1e-3, period=4e-3)
        jammer.start()
        sim.run(until=0.4)
        assert jammer.duty == 0.25
        assert jammer.duty_cycle() == pytest.approx(0.25, rel=0.05)
        # One busy+idle pair per pulse.
        assert victim.listener.busy == victim.listener.idle
        assert victim.listener.busy == jammer.counters.get("bursts")

    def test_stop_start_toggle_does_not_double_the_chain(self, sim):
        # Regression: stop() must cancel the pending tick — a stale
        # in-heap tick surviving a stop/start toggle would chain a
        # second burst train and double the duty cycle.
        medium, _victim = build(sim)
        jammer = PeriodicJammer(sim, medium, Position(1, 0, 0),
                                on_time=1e-3, period=4e-3)
        jammer.start()
        sim.run(until=6.5e-3)
        jammer.stop()
        sim.schedule_at(7e-3, jammer.start)
        sim.run(until=0.107)
        # ~0.1 s of active time at one burst per 4 ms: a doubled chain
        # would show ~50.
        assert jammer.counters.get("bursts") == pytest.approx(27, abs=2)
        assert jammer.duty_cycle() == pytest.approx(0.25, rel=0.15)

    def test_on_time_cannot_exceed_period(self, sim):
        medium, _ = build(sim)
        with pytest.raises(ConfigurationError):
            PeriodicJammer(sim, medium, Position(1, 0, 0),
                           on_time=2e-3, period=1e-3)


class TestSweepingJammer:
    def test_sweep_hits_each_channel_in_turn(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        victims = {}
        for channel in (1, 6, 11):
            radio = Radio(f"v{channel}", medium, DOT11B, Position(0, 0, 0),
                          channel_id=channel)
            radio.listener = Edges()
            victims[channel] = radio
        jammer = SweepingJammer(sim, medium, Position(1, 0, 0),
                                channels=(1, 6, 11), dwell=1e-3)
        jammer.start()
        sim.run(until=0.3)
        per_channel = [victims[ch].listener.busy for ch in (1, 6, 11)]
        # 300 dwells over 3 channels: 100 visits each.
        assert per_channel == [100, 100, 100]
        assert jammer.counters.get("sweeps") == 100


class TestReactiveJammer:
    def test_reacts_only_to_real_transmissions(self, sim):
        medium, victim = build(sim)
        sender = Radio("sender", medium, DOT11B, Position(2, 0, 0))
        jammer = ReactiveJammer(sim, medium, Position(3, 0, 0))
        jammer.start()
        sim.run(until=0.05)
        assert jammer.counters.get("bursts") == 0  # idle medium: silent
        sender.transmit("frame", 8000, DOT11B.modes[0])
        sim.run(until=0.1)
        assert jammer.counters.get("triggers") >= 1
        assert jammer.counters.get("bursts") >= 1

    def test_never_decodes(self, sim):
        medium, _ = build(sim)
        jammer = ReactiveJammer(sim, medium, Position(3, 0, 0))
        assert not jammer.radio.decodable_modes


class TestBluetoothHopper:
    def test_hit_fraction_tracks_the_overlap(self, sim):
        medium, victim = build(sim)
        hopper = BluetoothHopper(sim, medium, Position(1, 0, 0))
        hopper.start()
        sim.run(until=2.0)
        slots = hopper.counters.get("slots")
        hits = hopper.counters.get("hits")
        assert slots == int(2.0 / BT_SLOT_TIME)
        # 22/79 ~ 0.278 of hops land in-band.
        assert hits / slots == pytest.approx(22 / 79, rel=0.15)
        assert victim.listener.busy == hits

    def test_seeded_hop_pattern_is_deterministic(self):
        def run():
            sim = Simulator(seed=123)
            medium, victim = build(sim)
            hopper = BluetoothHopper(sim, medium, Position(1, 0, 0))
            hopper.start()
            sim.run(until=0.5)
            return (hopper.counters.get("hits"), victim.listener.busy)

        assert run() == run()


class TestMicrowaveOven:
    def test_splatters_every_configured_channel(self, sim):
        medium = Medium(sim, FixedLoss(50.0))
        victims = {}
        for channel in (1, 6):
            radio = Radio(f"v{channel}", medium, DOT11B, Position(0, 0, 0),
                          channel_id=channel)
            radio.listener = Edges()
            victims[channel] = radio
        oven = MicrowaveOven(sim, medium, Position(1, 0, 0),
                             channels=(1, 6), mains_hz=50.0)
        oven.start()
        sim.run(until=0.205)  # past the 11th burst's begin edges
        assert oven.counters.get("bursts") == 11
        for channel in (1, 6):
            assert victims[channel].listener.busy == 11
        # Half-duty mains cycle.
        assert oven.airtime_seconds() == pytest.approx(0.11)
