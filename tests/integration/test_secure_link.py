"""Integration: encrypted payloads over the simulated MAC.

The security suites protect MSDU payloads above the MAC; the WEP bit in
the frame control field marks protected frames on the air.  This test
wires the two layers together the way the example application does.
"""

import pytest

from repro import scenarios
from repro.core import Simulator
from repro.core.errors import IntegrityError
from repro.security.suites import SecuritySuite, build_link_security


class TestEncryptedTraffic:
    @pytest.mark.parametrize("suite", [
        SecuritySuite.WEP,
        SecuritySuite.WPA_TKIP,
        SecuritySuite.WPA2_AES,
    ])
    def test_protected_payload_end_to_end(self, sim, suite):
        bss = scenarios.build_infrastructure_bss(sim, station_count=2,
                                                 radius_m=10.0)
        src, dst = bss.stations
        tx_side, rx_side = build_link_security(
            suite, passphrase="integration passphrase",
            ssid="repro-net", wep_key=b"\x01\x02\x03\x04\x05")
        received = []

        def on_receive(source, payload, meta):
            assert meta["protected"]
            received.append(rx_side.unprotect(payload, now=sim.now))

        dst.on_receive(on_receive)
        for index in range(5):
            plaintext = b"secret %d" % index
            src.send(dst.address, tx_side.protect(plaintext),
                     protected=True)
        sim.run(until=sim.now + 2.0)
        assert received == [b"secret %d" % i for i in range(5)]

    def test_protected_bit_travels_on_the_air(self, sim):
        bss = scenarios.build_infrastructure_bss(sim, station_count=2,
                                                 radius_m=10.0)
        src, dst = bss.stations
        sniffed = []
        bss.ap.mac.sniffer = lambda frame, snr: sniffed.append(frame)
        src.send(dst.address, b"\x00" * 32, protected=True)
        sim.run(until=sim.now + 1.0)
        assert any(frame.is_data and frame.fc.protected
                   for frame in sniffed)

    def test_eavesdropper_sees_only_ciphertext(self, sim):
        """The §5.2 claim: without encryption anyone in range reads the
        traffic; with it, the sniffer gets ciphertext it cannot open."""
        bss = scenarios.build_infrastructure_bss(sim, station_count=2,
                                                 radius_m=10.0)
        src, dst = bss.stations
        tx_side, _rx = build_link_security(
            SecuritySuite.WPA2_AES, passphrase="the right passphrase",
            ssid="repro-net")
        captured = []
        # The AP radio doubles as our in-range eavesdropper.
        bss.ap.mac.sniffer = lambda frame, snr: captured.append(frame)
        secret = b"the plans for the mainframe"
        src.send(dst.address, tx_side.protect(secret), protected=True)
        sim.run(until=sim.now + 1.0)
        data_frames = [frame for frame in captured
                       if frame.is_data and frame.body]
        assert data_frames
        assert all(secret not in frame.body for frame in data_frames)
        # And a wrong-passphrase receiver cannot open it either.
        _tx2, wrong_rx = build_link_security(
            SecuritySuite.WPA2_AES, passphrase="a wrong guess",
            ssid="repro-net")
        with pytest.raises(IntegrityError):
            wrong_rx.unprotect(data_frames[0].body)
