"""Kernel selection semantics: ``Simulator(kernel=...)``, the
``REPRO_KERNEL`` environment override, the strict explicit-``"c"``
contract, ``pin_python_kernel``, and the telemetry-probe bypass."""

import pytest

from repro.core import Simulator
from repro.core.engine import (KERNELS, ckernel_available, default_kernel,
                               resolve_kernel)
from repro.core.errors import SimulationError

HAVE_C = ckernel_available()
needs_c = pytest.mark.skipif(not HAVE_C,
                             reason="compiled kernel not built")
needs_no_c = pytest.mark.skipif(HAVE_C,
                                reason="compiled kernel is built")


class TestResolveKernel:
    def test_python_always_resolves(self):
        assert resolve_kernel("python") == "python"
        assert Simulator(kernel="python").kernel == "python"

    def test_unknown_kernel_raises(self):
        with pytest.raises(SimulationError, match="unknown kernel"):
            resolve_kernel("rust")
        with pytest.raises(SimulationError, match="unknown kernel"):
            Simulator(kernel="rust")

    def test_auto_resolves_to_a_concrete_kernel(self):
        assert resolve_kernel("auto") == ("c" if HAVE_C else "python")
        assert Simulator(kernel="auto").kernel in ("python", "c")

    def test_kernels_tuple_exposed_on_simulator(self):
        assert Simulator.KERNELS == KERNELS == ("auto", "python", "c")

    @needs_c
    def test_explicit_c_selects_compiled_loop(self):
        sim = Simulator(kernel="c")
        assert sim.kernel == "c"
        assert sim._ckernel_run is not None

    @needs_no_c
    def test_explicit_c_without_extension_is_an_error(self):
        # An explicit request must never silently run the other kernel:
        # CI's REPRO_KERNEL=c lane relies on this to prove the compiled
        # path actually executed.
        with pytest.raises(SimulationError, match="build_kernel"):
            resolve_kernel("c")


class TestEnvOverride:
    def test_env_sets_the_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert default_kernel() == "python"
        assert Simulator().kernel == "python"
        monkeypatch.delenv("REPRO_KERNEL")
        assert default_kernel() == "auto"

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "auto")
        assert Simulator(kernel="python").kernel == "python"

    def test_unknown_env_kernel_raises_at_construction(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "fast")
        with pytest.raises(SimulationError, match="unknown kernel"):
            Simulator()


class TestPinPythonKernel:
    def test_pin_is_idempotent_on_python_kernel(self):
        sim = Simulator(kernel="python")
        sim.pin_python_kernel()
        assert sim.kernel == "python"
        sim.schedule(0.5, lambda: None)
        assert sim.run() == 0.5

    @needs_c
    def test_pin_downgrades_a_c_simulator(self):
        sim = Simulator(kernel="c")
        sim.pin_python_kernel()
        assert sim.kernel == "python"
        assert sim._ckernel_run is None
        sim.schedule(0.5, lambda: None)
        assert sim.run() == 0.5

    @needs_c
    def test_dispatch_probe_shadows_past_the_c_kernel(self):
        # Telemetry's instrumented dispatch loop is an instance-attribute
        # shadow of ``run``; callers reach it before the class method's
        # C dispatch, so arming it needs no kernel flag at all.
        from repro.telemetry import MetricsRegistry, KernelDispatchProbe
        sim = Simulator(kernel="c")
        probe = KernelDispatchProbe(
            sim, MetricsRegistry(enabled=True)).install()
        sim.schedule(0.25, lambda: None)
        sim.schedule_fast(0.5, lambda: None)
        sim.run()
        assert "run" in vars(sim)          # the shadow is in place
        assert probe.dispatch_handle.value == 1
        assert probe.dispatch_fast.value == 1
        probe.uninstall()
        assert "run" not in vars(sim)      # class method resurfaces


@needs_c
class TestStrictCKernelRuns:
    def test_c_kernel_reentrancy_guard(self):
        sim = Simulator(kernel="c")
        seen = []

        def reenter():
            with pytest.raises(SimulationError, match="re-entrantly"):
                sim.run()
            seen.append(sim.now)

        sim.schedule(0.1, reenter)
        sim.run()
        assert seen == [0.1]

    def test_c_kernel_strict_after_env_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "c")
        assert Simulator().kernel == "c"
