"""Validation: simulated DCF saturation throughput vs the Bianchi model.

This is the credibility check for experiment E10 — the simulated MAC,
run to saturation, should land near the analytic prediction computed
from the *same* timing constants.
"""

import pytest

from repro.analysis.metrics import bianchi_saturation_throughput
from repro.core import Position, Simulator
from repro.mac.addresses import allocate_address
from repro.mac.dcf import DcfConfig, DcfMac, MacListener
from repro.mac.rate_adapt import fixed_rate_factory
from repro.phy.channel import Medium
from repro.phy.propagation import FixedLoss
from repro.phy.standards import DOT11B
from repro.phy.transceiver import Radio


class _Refill(MacListener):
    """Keeps a MAC saturated: one completion triggers one fresh MSDU."""

    def __init__(self, mac, destination, payload):
        self.mac = mac
        self.destination = destination
        self.payload = payload

    def prime(self, depth=4):
        for _ in range(depth):
            self.mac.send(self.destination, self.payload)

    def mac_tx_complete(self, msdu, success):
        self.mac.send(self.destination, self.payload)


class _Count(MacListener):
    def __init__(self):
        self.bytes = 0

    def mac_receive(self, source, destination, payload, meta):
        self.bytes += len(payload)


def run_saturation(n, payload_bytes=800, horizon=4.0, seed=5):
    sim = Simulator(seed=seed)
    medium = Medium(sim, FixedLoss(50.0))
    receiver_radio = Radio("rx", medium, DOT11B, Position(0, 0, 0))
    receiver = DcfMac(sim, receiver_radio, allocate_address(),
                      rate_factory=fixed_rate_factory("CCK-11"))
    counter = _Count()
    receiver.listener = counter
    payload = bytes(payload_bytes)
    for index in range(n):
        radio = Radio(f"tx{index}", medium, DOT11B,
                      Position(1.0 + index * 0.1, 0, 0))
        mac = DcfMac(sim, radio, allocate_address(),
                     rate_factory=fixed_rate_factory("CCK-11"))
        refill = _Refill(mac, receiver.address, payload)
        mac.listener = refill
        refill.prime()
    warmup = 0.5
    sim.run(until=warmup)
    counter.bytes = 0
    sim.run(until=warmup + horizon)
    return counter.bytes * 8 / horizon


class TestDcfMatchesBianchi:
    @pytest.mark.slow
    @pytest.mark.parametrize("n", [1, 5, 10])
    def test_saturation_throughput_tracks_the_model(self, n):
        simulated = run_saturation(n)
        analytic = bianchi_saturation_throughput(
            n, DOT11B, payload_bytes=800, data_rate_bps=11e6)
        # The model idealizes (no EIFS, slotted collisions, ...): agree
        # within 25%.
        assert simulated == pytest.approx(analytic, rel=0.25)

    @pytest.mark.slow
    def test_throughput_declines_with_contention(self):
        sparse = run_saturation(2)
        crowded = run_saturation(12)
        assert crowded < sparse
